"""Setup shim so ``pip install -e .`` works without the ``wheel`` package.

The offline environment ships setuptools but not wheel, so PEP 660 editable
installs fail at ``bdist_wheel``; this legacy shim lets
``python setup.py develop`` / ``pip install -e . --no-build-isolation``
fall back to the egg-link mechanism. All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
