"""Table III — pruning rate of different n for VGG-16 on ImageNet.

Rows n = 5 and n = 4. The conv parameter count matches CIFAR's (same conv
stack); MACs are profiled at 224x224. The paper's printed baseline FLOPs
(6.82e9) disagrees with the standard VGG-16 MAC count (1.53e10) that its
own per-layer structure implies; we report ours and note the discrepancy
in EXPERIMENTS.md. Compression columns (the claims: 1.8x/1.7x and
2.3x/2.2x) are architecture-determined and reproduce.
"""

import pytest

from repro.analysis import format_compression_table
from repro.core import PCNNConfig, pcnn_compression

from common import vgg16_imagenet_profile

PAPER_ROWS = {5: (44.4, 1.8, 1.7), 4: (56.5, 2.3, 2.2)}


def build_table3():
    profile = vgg16_imagenet_profile()
    return [
        pcnn_compression(profile, PCNNConfig.uniform(n, 13), setting=f"n = {n}")
        for n in (5, 4)
    ]


def test_table3_rows(benchmark):
    reports = benchmark(build_table3)
    print("\n" + format_compression_table(reports, title="Table III (VGG-16 / ImageNet)"))

    profile = vgg16_imagenet_profile()
    assert profile.conv_params == pytest.approx(1.47e7, rel=0.01)

    for report, n in zip(reports, (5, 4)):
        paper_pruned, paper_w, paper_wi = PAPER_ROWS[n]
        assert report.weight_compression == pytest.approx(paper_w, rel=0.05)
        assert report.weight_idx_compression == pytest.approx(paper_wi, rel=0.05)
        assert 100 * report.flops_pruned_fraction == pytest.approx(paper_pruned, abs=1.5)
