"""Table VIII — PCNN fused with channel-level pruning (VGG-16 / CIFAR-10).

Paper: 3.75x PCNN x 9x channel pruning = 34.4x fused (setting A) and
50.3x (setting B), beating Structured-ADMM (50x @ -0.60%), SNIP (20x) and
Synaptic Strength (25x) on the compression/accuracy frontier. We
regenerate the fused accounting and run the mask-level fusion.
"""

import numpy as np
import pytest

from repro.analysis import format_table
from repro.core import (
    PCNNConfig,
    PCNNPruner,
    apply_channel_pruning,
    channel_keep_for_rate,
    fused_channel_report,
)
from repro.models import patternnet

from common import PAPER_TABLE8_LITERATURE, vgg16_cifar_profile


def build_table8():
    profile = vgg16_cifar_profile()
    # Setting A: PCNN n=2 (4.5x on VGG's all-3x3 stack; the paper's quoted
    # PCNN share is 3.75x on its mixed setting) x 9x channel pruning.
    cfg = PCNNConfig.uniform(2, 13)
    fused_a = fused_channel_report(
        profile, cfg, channel_keep_fraction=channel_keep_for_rate(9.0),
        setting="PCNN + channel pruning A",
    )
    # Setting B: deeper channel pruning (~13x) for the 50.3x row.
    fused_b = fused_channel_report(
        profile, cfg, channel_keep_fraction=channel_keep_for_rate(12.5),
        setting="PCNN + channel pruning B",
    )
    return fused_a, fused_b


def test_table8_fusion(benchmark):
    fused_a, fused_b = benchmark(build_table8)
    rows = [
        ["PCNN + Channel Pruning-A", "-0.02% (paper)", f"{fused_a.weight_compression:.1f}x", "34.4x"],
        ["PCNN + Channel Pruning-B", "-0.46% (paper)", f"{fused_b.weight_compression:.1f}x", "50.3x"],
    ]
    rows += [[name, acc, "-", f"{comp:.1f}x"] for name, acc, comp in PAPER_TABLE8_LITERATURE]
    print("\n" + format_table(
        ["method", "relative acc", "measured", "paper"],
        rows,
        title="Table VIII (PCNN + channel pruning, VGG-16 / CIFAR-10)",
    ))

    # Shape: fused compression lands in the headline's 30-55x band and
    # the B setting beats SNIP's and Synaptic Strength's rates.
    assert fused_a.weight_compression == pytest.approx(34.4, rel=0.2)
    assert fused_a.weight_compression > 25.0
    assert fused_b.weight_compression > fused_a.weight_compression
    assert fused_b.weight_compression == pytest.approx(50.3, rel=0.2)


def test_table8_mask_level_fusion(benchmark):
    """Channel masks compose with pattern masks on a real model."""

    def run():
        model = patternnet(channels=(16, 32), num_classes=4, rng=np.random.default_rng(0))
        PCNNPruner(model, PCNNConfig.uniform(2, 2)).apply()
        return model, apply_channel_pruning(model, keep_fraction=1 / 3)

    model, masks = benchmark(run)
    for mask in masks.values():
        per_channel = mask.reshape(mask.shape[0], -1).sum(axis=1)
        survivors = per_channel > 0
        assert survivors.mean() == pytest.approx(1 / 3, abs=0.05)
