"""Ablation — sensitivity to activation density (beyond the paper).

The paper fixes average activation density at 0.8 (Sec. IV-E). This bench
sweeps density on the cycle-accurate layer model: absolute cycles scale
with density (the shared-activation zero-detect path skips zeros), while
the *speedup over dense* is density-invariant because the dense
counterpart shares the datapath.
"""

import numpy as np
import pytest

from repro.analysis import format_table
from repro.arch import ArchConfig, ConvLayerSimulator, simulate_network_analytic
from repro.core import PCNNConfig, project_topn

from common import vgg16_cifar_profile


def build_density_sweep():
    rng = np.random.default_rng(0)
    arch = ArchConfig(num_pes=16, macs_per_pe=4)
    sim = ConvLayerSimulator(arch)
    weight = project_topn(rng.normal(size=(32, 16, 3, 3)), 4)
    mask = (weight != 0).astype(float)
    base = np.abs(rng.normal(size=(1, 16, 10, 10))) + 0.05
    rows = []
    for density in (1.0, 0.8, 0.5, 0.3):
        x = base.copy()
        x[rng.random(x.shape) > density] = 0.0
        pruned = sim.cycle_count(x, mask, padding=1)
        dense = sim.cycle_count(x, np.ones_like(mask), padding=1)
        rows.append((density, pruned.cycles, dense.cycles, dense.cycles / pruned.cycles))
    return rows


def test_activation_density_sweep(benchmark):
    rows = benchmark.pedantic(build_density_sweep, rounds=1, iterations=1)
    print("\n" + format_table(
        ["act density", "pruned cycles", "dense cycles", "speedup"],
        [[f"{d:.1f}", p, dn, f"{s:.2f}x"] for d, p, dn, s in rows],
        title="Ablation: activation density sweep (n=4 layer, 16 PEs)",
    ))

    cycles = [p for _, p, _, _ in rows]
    # Absolute cycles fall with density (zero-detect skips work)...
    assert cycles[0] > cycles[1] > cycles[2] > cycles[3]
    # ...while speedup over the shared-datapath dense baseline stays ~9/n.
    for _, _, _, speedup in rows:
        assert speedup == pytest.approx(9 / 4, rel=0.3)


def test_network_cycles_scale_with_density(benchmark):
    profile = vgg16_cifar_profile()
    cfg = PCNNConfig.uniform(2, 13)

    def run():
        return {
            d: simulate_network_analytic(profile, cfg, activation_density=d)
            for d in (1.0, 0.8, 0.4)
        }

    results = benchmark(run)
    assert results[0.8].total_cycles == pytest.approx(results[1.0].total_cycles * 0.8)
    assert results[0.4].total_cycles == pytest.approx(results[1.0].total_cycles * 0.4)
    # Speedup is the density-invariant quantity the paper reports.
    assert results[0.4].speedup == pytest.approx(results[1.0].speedup)
