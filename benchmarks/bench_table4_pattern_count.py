"""Table IV — compression (weight+idx) vs the number of patterns |P_n|.

Sweeps |P| over {full, 32, 16, 8, 4} for n = 4 and n = 2 on VGG-16. The
accuracy half of Table IV (fewer patterns cost accuracy, more so at high
sparsity) is covered by ``bench_accuracy_trend.py``.
"""

import pytest

from repro.analysis import format_table
from repro.core import PCNNConfig, pattern_count, pcnn_compression

from common import PAPER_TABLE4, vgg16_cifar_profile


def build_table4():
    profile = vgg16_cifar_profile()
    rows = []
    for n in (4, 2):
        full = pattern_count(n, 3)
        for budget in (full, 32, 16, 8, 4):
            cfg = PCNNConfig.uniform(n, 13, num_patterns=budget)
            report = pcnn_compression(profile, cfg)
            rows.append((n, budget, report.weight_idx_compression))
    return rows


def test_table4_sweep(benchmark):
    rows = benchmark(build_table4)
    table = [
        [f"n = {n}", f"|P| = {p}" + (" (full)" if p in (126, 36) else ""), f"{c:.2f}x",
         f"{PAPER_TABLE4[(n, p)]:.2f}x"]
        for n, p, c in rows
    ]
    print("\n" + format_table(
        ["sparsity", "patterns", "measured w+idx", "paper w+idx"],
        table,
        title="Table IV (|P_n| sweep, VGG-16 / CIFAR-10)",
    ))

    for n, budget, compression in rows:
        assert compression == pytest.approx(PAPER_TABLE4[(n, budget)], rel=0.02)

    # Monotone: fewer patterns -> smaller index -> higher compression.
    for n in (4, 2):
        series = [c for nn_, _, c in rows if nn_ == n]
        assert all(a < b for a, b in zip(series, series[1:]))
