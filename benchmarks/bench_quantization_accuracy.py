"""Quantization sweep — the 8-bit hardware claim (extension bench).

Sec. IV-E stores weights at 8 bits "for common cases". This bench measures
proxy-model accuracy after PCNN pruning + per-kernel quantization at 4, 6
and 8 bits. Shape claims: 8-bit costs essentially nothing; the error grows
as bits shrink; the weight-value distortion follows the quantizer's
step-size bound.
"""

import numpy as np
import pytest

from repro.analysis import format_table
from repro.core import (
    PCNNConfig,
    PCNNPruner,
    bundle_from_pruner,
    evaluate,
    fit,
)
from repro.data import ArrayDataset, DataLoader, make_synthetic_images
from repro.models import patternnet

SEED = 0


def build_sweep():
    x_train, y_train, x_test, y_test = make_synthetic_images(
        n_train=320, n_test=160, num_classes=10, image_size=12, seed=SEED, noise_std=0.5
    )
    loader = DataLoader(ArrayDataset(x_train, y_train), batch_size=32, shuffle=True, seed=SEED)
    model = patternnet(channels=(12, 24), num_classes=10, rng=np.random.default_rng(SEED))
    fit(model, loader, epochs=5, lr=0.01)
    pruner = PCNNPruner(model, PCNNConfig.uniform(2, 2, num_patterns=8))
    pruner.apply()
    fit(model, loader, epochs=3, lr=0.01)
    pruner = PCNNPruner(model, PCNNConfig.uniform(2, 2, num_patterns=8))
    pruner.apply()
    float_acc = evaluate(model, x_test, y_test)

    accuracies = {}
    for bits in (8, 6, 4, 3):
        bundle = bundle_from_pruner(pruner, quantize_bits=bits)
        quantized = patternnet(channels=(12, 24), num_classes=10, rng=np.random.default_rng(1))
        quantized.load_state_dict(model.state_dict())
        bundle.restore_into(quantized)
        accuracies[bits] = evaluate(quantized, x_test, y_test)
    return float_acc, accuracies


def test_quantization_accuracy_sweep(benchmark):
    float_acc, accuracies = benchmark.pedantic(build_sweep, rounds=1, iterations=1)
    print("\n" + format_table(
        ["precision", "accuracy", "change vs fp"],
        [["fp64", f"{float_acc:.3f}", "-"]]
        + [[f"{bits}-bit", f"{acc:.3f}", f"{acc - float_acc:+.3f}"]
           for bits, acc in accuracies.items()],
        title="Post-pruning quantization sweep (PatternNet proxy, n=2)",
    ))

    # The paper's 8-bit operating point is essentially free.
    assert accuracies[8] >= float_acc - 0.02
    assert accuracies[6] >= float_acc - 0.05
    # Monotone-ish degradation with fewer bits (allow small noise).
    assert accuracies[8] >= accuracies[4] - 0.02
    assert accuracies[8] >= accuracies[3] - 0.02
