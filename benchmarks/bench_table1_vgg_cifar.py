"""Table I — pruning rate of different n for VGG-16 on CIFAR-10.

Regenerates the deterministic columns (CONV FLOPs, FLOPs pruned %, CONV
parameters, compression weight / weight+idx) for n = 4, 3, 2, 1 and the
footnote "various" setting. Accuracy columns are covered by
``bench_accuracy_trend.py`` (see DESIGN.md substitutions).
"""

import pytest

from repro.analysis import format_compression_table
from repro.core import PCNNConfig, pcnn_compression

from common import PAPER_TABLE1, vgg16_cifar_profile


def build_table1():
    profile = vgg16_cifar_profile()
    reports = [
        pcnn_compression(profile, PCNNConfig.uniform(n, 13), setting=f"n = {n}")
        for n in (4, 3, 2, 1)
    ]
    various = PCNNConfig.from_string("2-1-1-1-1-1-1-1-1-1-1-1-1")
    reports.append(pcnn_compression(profile, various, setting="various 2-1-...-1"))
    return reports


def test_table1_rows(benchmark):
    reports = benchmark(build_table1)
    print("\n" + format_compression_table(reports, title="Table I (VGG-16 / CIFAR-10)"))

    profile = vgg16_cifar_profile()
    assert profile.conv_params == pytest.approx(1.47e7, rel=0.01)
    assert profile.conv_macs == pytest.approx(3.13e8, rel=0.01)

    for report, n in zip(reports, (4, 3, 2, 1)):
        paper_pruned, paper_w, paper_wi = PAPER_TABLE1[n]
        assert report.weight_compression == pytest.approx(paper_w, rel=0.05)
        assert report.weight_idx_compression == pytest.approx(paper_wi, rel=0.05)
        assert 100 * report.flops_pruned_fraction == pytest.approx(paper_pruned, abs=1.5)

    various = reports[-1]
    assert 100 * various.flops_pruned_fraction == pytest.approx(88.8, abs=0.2)
    assert various.weight_compression == pytest.approx(9.0, abs=0.1)
