"""Table IX + Fig. 6 — chip area/power breakdown and floorplan.

Regenerates the component table from the calibrated 55 nm technology
profile and renders the area-proportional floorplan. Shape claims: the
pattern SRAM (PCNN's only index cost) takes ~2.4% of area and ~1.9% of
power; SRAM+RF dominate the chip; totals are 8.00 mm^2 / 48.7 mW.
"""

import pytest

from repro.analysis import format_table
from repro.arch import PAPER_TECH, floorplan_ascii


def build_table9():
    return PAPER_TECH.table_rows()


def test_table9_breakdown(benchmark):
    rows = benchmark(build_table9)
    print("\n" + format_table(
        ["component", "area (mm2)", "area %", "power (mW)", "power %"],
        [
            [r["component"], f"{r['area_mm2']:.2f}", f"{r['area_share']:.1%}",
             f"{r['power_mw']:.1f}", f"{r['power_share']:.1%}"]
            for r in rows
        ],
        title="Table IX (chip area and power, 300 MHz / 1 V / 55 nm)",
    ))
    print("\nFig. 6 floorplan (area-proportional):")
    print(floorplan_ascii())

    overall = rows[0]
    assert overall["area_mm2"] == pytest.approx(8.00, abs=0.01)
    assert overall["power_mw"] == pytest.approx(48.7, abs=0.05)

    pattern = next(r for r in rows if r["component"] == "Pattern SRAM")
    assert pattern["area_share"] == pytest.approx(0.024, abs=0.002)
    assert pattern["power_share"] == pytest.approx(0.019, abs=0.002)

    # Memories + register file dominate the chip; PE group is small.
    pe = next(r for r in rows if r["component"] == "PE group")
    srams = sum(r["area_mm2"] for r in rows if "SRAM" in r["component"])
    assert srams > 0.5 * overall["area_mm2"]
    assert pe["area_share"] < 0.10
