"""Sec. IV-E efficiency — 3.15 TOPS/W (dense) to 28.39 TOPS/W (n = 1).

Regenerates the power-efficiency series from the calibrated Table IX
profile and the 256-MAC / 300 MHz / 1 V configuration.
"""

import pytest

from repro.analysis import format_table
from repro.arch import ArchConfig, PAPER_TECH, efficiency_sweep, tops_per_watt

from common import PAPER_TOPS_PER_WATT


def build_sweep():
    return efficiency_sweep(ns=(9, 4, 3, 2, 1))


def test_efficiency_series(benchmark):
    sweep = benchmark(build_sweep)
    print("\n" + format_table(
        ["setting", "sparsity", "TOPS/W"],
        [
            ["dense" if n == 9 else f"n = {n}", f"{(1 - n / 9):.1%}", f"{sweep[n]:.2f}"]
            for n in (9, 4, 3, 2, 1)
        ],
        title="Sec. IV-E power efficiency (300 MHz, 1 V)",
    ))

    assert sweep[9] == pytest.approx(PAPER_TOPS_PER_WATT["dense"], abs=0.01)
    assert sweep[1] == pytest.approx(PAPER_TOPS_PER_WATT["n1"], abs=0.05)
    # Efficiency scales ~9/n with sparsity.
    assert sweep[1] / sweep[9] == pytest.approx(9.0, rel=1e-6)


def test_peak_throughput_arithmetic(benchmark):
    """256 MACs x 300 MHz x 2 ops = 153.6 GOPS peak."""
    arch = ArchConfig()
    peak = benchmark(lambda: arch.peak_ops_per_second)
    assert peak == pytest.approx(153.6e9)
    assert peak / (PAPER_TECH.total_power_mw * 1e-3) / 1e12 == pytest.approx(3.15, abs=0.01)


def test_voltage_frequency_scaling(benchmark):
    """Ablation hook: P ~ f V^2 scaling preserves TOPS/W at fixed V."""

    def run():
        fast = PAPER_TECH.scaled(frequency_hz=600e6, voltage_v=1.0)
        arch = ArchConfig(frequency_hz=600e6)
        return tops_per_watt(arch, fast)

    efficiency = benchmark(run)
    # Doubling f doubles both ops and power: efficiency unchanged.
    assert efficiency == pytest.approx(3.15, abs=0.01)
