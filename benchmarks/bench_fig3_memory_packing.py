"""Fig. 3 — memory layout for weights and patterns.

Exercises the Fig. 3b storing format at each sparsity the figure
annotates, the 60-word kernel register's integral-storage property, and
the SRAM capacity arithmetic of Sec. III-A / IV-E.
"""

import numpy as np
import pytest

from repro.analysis import format_table
from repro.arch import (
    ArchConfig,
    KernelRegisterFile,
    fetch_geometry,
    pack_nonzero_sequences,
    unpack_nonzero_sequences,
)


def build_fig3():
    rng = np.random.default_rng(0)
    rows = []
    for n in (1, 2, 3, 4, 5, 6):
        filters_per, fetches = fetch_geometry(n, fetch_width=8)
        values = rng.normal(size=(24, n))
        packed = pack_nonzero_sequences(values)
        register = KernelRegisterFile(60)
        rows.append(
            {
                "n": n,
                "filters_per_group": filters_per,
                "fetches_per_group": fetches,
                "fetch_rows_for_24_kernels": packed.num_fetches,
                "register_capacity": register.capacity_kernels(n),
                "register_padding": register.padding_words(n),
                "roundtrip_ok": bool(
                    np.array_equal(unpack_nonzero_sequences(packed), values)
                ),
            }
        )
    return rows


def test_fig3_storing_format(benchmark):
    rows = benchmark(build_fig3)
    print("\n" + format_table(
        ["n", "filters/group", "fetches/group", "rows for 24 kernels",
         "60-word reg capacity", "padding"],
        [
            [r["n"], r["filters_per_group"], r["fetches_per_group"],
             r["fetch_rows_for_24_kernels"], r["register_capacity"], r["register_padding"]]
            for r in rows
        ],
        title="Fig. 3b storing format",
    ))

    by_n = {r["n"]: r for r in rows}
    # The figure's three annotated cases.
    assert (by_n[2]["filters_per_group"], by_n[2]["fetches_per_group"]) == (4, 1)
    assert (by_n[3]["filters_per_group"], by_n[3]["fetches_per_group"]) == (8, 3)
    assert (by_n[4]["filters_per_group"], by_n[4]["fetches_per_group"]) == (2, 1)
    # 60-word register stores n=1..6 integrally (Sec. III-A).
    assert all(by_n[n]["register_padding"] == 0 for n in range(1, 7))
    assert all(r["roundtrip_ok"] for r in rows)


def test_fig3_weight_sram_capacity(benchmark):
    """Sec. IV-E: 128 KB weight SRAM holds 32768 kernels at n=4 / 8 bit."""
    arch = ArchConfig()
    capacities = benchmark(
        lambda: {n: arch.kernels_in_weight_sram(n) for n in range(1, 10)}
    )
    assert capacities[4] == 32768
    # Capacity scales inversely with n.
    assert capacities[1] == 4 * capacities[4]
    assert capacities[8] == capacities[4] // 2
