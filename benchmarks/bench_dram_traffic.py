"""Sec. I motivation — DRAM traffic reduction (extension bench).

The paper motivates pruning with DRAM transfer cost. This bench quantifies
per-inference weight traffic for dense / PCNN / CSC storage on VGG-16 at
the hardware's 8-bit precision, and reports the end-to-end saving once the
(pruning-invariant) activation traffic is included.
"""

import pytest

from repro.analysis import format_table
from repro.arch import dram_traffic
from repro.core import PCNNConfig

from common import vgg16_cifar_profile


def build_traffic():
    profile = vgg16_cifar_profile()
    return {
        n: dram_traffic(profile, PCNNConfig.uniform(n, 13), weight_bits=8)
        for n in (4, 2, 1)
    }


def test_dram_traffic(benchmark):
    reports = benchmark(build_traffic)
    rows = []
    for n, report in reports.items():
        rows.append(
            [
                f"n = {n}",
                f"{report.dense_weight_bytes / 1e6:.2f} MB",
                f"{report.pcnn_weight_bytes / 1e6:.2f} MB",
                f"{report.csc_weight_bytes / 1e6:.2f} MB",
                f"{report.pcnn_weight_saving:.2f}x",
                f"{report.pcnn_total_saving:.2f}x",
            ]
        )
    print("\n" + format_table(
        ["setting", "dense wts", "PCNN wts", "CSC wts", "wt saving", "total saving"],
        rows,
        title="DRAM traffic per inference (VGG-16, 8-bit)",
    ))

    for n, report in reports.items():
        # PCNN always beats CSC at equal density (smaller index stream).
        assert report.pcnn_weight_bytes < report.csc_weight_bytes
        assert report.pcnn_weight_saving > 1.0
        # Activations bound the end-to-end saving.
        assert report.pcnn_total_saving < report.pcnn_weight_saving
    # Deeper pruning -> more saving.
    assert reports[1].pcnn_weight_saving > reports[2].pcnn_weight_saving > reports[4].pcnn_weight_saving


def test_8bit_quantized_bundle_storage(benchmark):
    """Hardware storage check: an 8-bit deployment bundle's measured size
    matches the analytic per-kernel arithmetic (n x 8 + SPM bits)."""
    import numpy as np

    from repro.core import PCNNConfig, PCNNPruner, bundle_from_pruner
    from repro.models import patternnet

    def run():
        model = patternnet(channels=(16, 32), num_classes=4, rng=np.random.default_rng(0))
        pruner = PCNNPruner(model, PCNNConfig.uniform(4, 2, num_patterns=16))
        pruner.apply()
        return bundle_from_pruner(pruner, quantize_bits=8)

    bundle = benchmark(run)
    for name, layer in bundle.layers.items():
        kernels = len(layer.codes)
        table_bits = len(layer.patterns) * 9
        expected = kernels * (4 * 8 + 4) + table_bits  # n=4 @ 8b + 4-bit SPM
        assert layer.storage_bits() == expected
