"""Per-inference latency/energy on the accelerator (derived from Sec. IV-E).

Sweeps the uniform sparsity settings over VGG-16 and reports ms/image and
mJ/image at 300 MHz / 1 V. Shape claims: latency and energy scale ~n/9;
the n=1 point is 9x faster and 9x more energy-efficient per image than
dense.
"""

import pytest

from repro.analysis import format_table
from repro.arch import inference_cost, inference_cost_sweep
from repro.core import PCNNConfig

from common import vgg16_cifar_profile


def build_sweep():
    profile = vgg16_cifar_profile()
    sweep = inference_cost_sweep(profile, ns=(4, 3, 2, 1))
    dense = inference_cost(profile, PCNNConfig.uniform(9, 13, num_patterns=1))
    return dense, sweep


def test_latency_energy_sweep(benchmark):
    dense, sweep = benchmark(build_sweep)
    rows = [["dense", f"{dense.latency_ms:.3f}", f"{dense.energy_mj:.4f}", "1.00x",
             f"{dense.images_per_second:.0f}"]]
    for n in (4, 3, 2, 1):
        c = sweep[n]
        rows.append(
            [f"n = {n}", f"{c.latency_ms:.3f}", f"{c.energy_mj:.4f}",
             f"{c.speedup_vs_dense:.2f}x", f"{c.images_per_second:.0f}"]
        )
    print("\n" + format_table(
        ["setting", "latency (ms)", "energy (mJ)", "speedup", "img/s"],
        rows,
        title="Per-inference cost, VGG-16 @ 300 MHz / 1 V (act. density 0.8)",
    ))

    for n in (4, 3, 2, 1):
        assert sweep[n].latency_ms == pytest.approx(dense.latency_ms * n / 9, rel=1e-6)
        assert sweep[n].energy_mj == pytest.approx(dense.energy_mj * n / 9, rel=1e-6)
    assert sweep[1].images_per_second == pytest.approx(9 * dense.images_per_second, rel=1e-6)
