"""Table VI — PCNN vs other regular compression, ResNet-18 / CIFAR-10.

Shape claim: both PCNN settings dominate the quoted baselines on
compression at smaller reported accuracy loss, with higher FLOPs
reduction.
"""

import pytest

from repro.analysis import format_table
from repro.core import PCNNConfig, pcnn_compression

from common import PAPER_TABLE6_LITERATURE, resnet18_cifar_profile


def build_table6():
    profile = resnet18_cifar_profile()
    pcnn_a = pcnn_compression(profile, PCNNConfig.uniform(3, 17), setting="PCNN n=3")
    various = PCNNConfig.from_string("2-2-2-1-1-1-1-1-1-1-1-1-1-1-1-1-1")
    pcnn_b = pcnn_compression(profile, various, setting="PCNN various")
    rows = [
        ("PCNN (n=3)", "-0.20% (paper)", f"{100 * pcnn_a.flops_pruned_fraction:.1f}%",
         pcnn_a.weight_compression),
        ("PCNN (various)", "-0.75% (paper)", f"{100 * pcnn_b.flops_pruned_fraction:.1f}%",
         pcnn_b.weight_compression),
    ]
    rows += list(PAPER_TABLE6_LITERATURE)
    return rows, pcnn_a, pcnn_b


def test_table6_comparison(benchmark):
    rows, pcnn_a, pcnn_b = benchmark(build_table6)
    print("\n" + format_table(
        ["method", "relative acc", "FLOPs pruned", "compression"],
        [[r[0], r[1], r[2], f"{r[3]:.1f}x"] for r in rows],
        title="Table VI (ResNet-18 / CIFAR-10 vs regular pruning)",
    ))

    assert pcnn_a.weight_compression == pytest.approx(3.0, abs=0.1)
    assert 100 * pcnn_a.flops_pruned_fraction == pytest.approx(65.5, abs=1.0)
    assert pcnn_b.weight_compression == pytest.approx(7.9, rel=0.05)

    literature = [r[3] for r in rows[2:]]
    assert all(pcnn_b.weight_compression > c for c in literature)
