"""Fig. 4 — sparsity pointer generation micro-benchmark.

Exercises the sparsity-IO path (mask AND, adder-AND offset chain, pointer
reconstruction, gather) over every possible 9-bit mask pair region and
measures its throughput. Shape claims: offsets reconstruct positions for
all 2^9 masks, and the pointer path computes exactly the masked dot
product.
"""

import numpy as np
import pytest

from repro.arch import (
    PatternAwarePE,
    compaction_pointers,
    gather_plan,
    pointers_from_offsets,
    sparsity_mask,
    zero_gap_offsets,
)


def all_masks():
    return [np.array([(m >> b) & 1 for b in range(9)]) for m in range(512)]


def exhaustive_offset_check():
    ok = 0
    for mask in all_masks():
        positions = pointers_from_offsets(zero_gap_offsets(mask))
        if np.array_equal(positions, np.flatnonzero(mask)):
            ok += 1
    return ok


def test_fig4_offset_chain_exhaustive(benchmark):
    ok = benchmark.pedantic(exhaustive_offset_check, rounds=1, iterations=1)
    print(f"\nFig. 4c adder-AND chain: {ok}/512 masks reconstruct exactly")
    assert ok == 512


def test_fig4_worked_example(benchmark):
    """The example of Fig. 4b: weight mask AND activation mask -> pointers."""

    def run():
        weight = np.array([1, 1, 1, 1, 0, 1, 0, 0, 0])
        activation = np.array([0, 1, 0, 1, 1, 1, 1, 1, 1])
        s = sparsity_mask(weight, activation)
        plan = gather_plan(weight, activation)
        return s, plan

    s, plan = benchmark(run)
    np.testing.assert_array_equal(s, [0, 1, 0, 1, 0, 1, 0, 0, 0])
    # Effectual positions 1, 3, 5 map to weight ranks 1, 3, 4.
    np.testing.assert_array_equal(plan.activation_positions, [1, 3, 5])
    np.testing.assert_array_equal(plan.weight_pointers, [1, 3, 4])


def test_fig4_gather_throughput(benchmark):
    """Pointer-path MACs over a batch of random kernels (throughput bench)."""
    rng = np.random.default_rng(0)
    pe = PatternAwarePE(4)
    cases = []
    for _ in range(200):
        w_mask = (rng.random(9) < 0.45).astype(np.int64)
        values = rng.normal(size=9) * w_mask
        acts = np.where(rng.random(9) < 0.8, rng.normal(size=9), 0.0)
        cases.append((w_mask, values, values[w_mask.astype(bool)], acts))

    def run():
        total = 0.0
        for w_mask, values, compact, acts in cases:
            plan = gather_plan(w_mask, (acts != 0).astype(np.int64))
            total += pe.compute(compact, acts, plan)
        return total

    total = benchmark(run)
    expected = sum(float(np.dot(v, a)) for _, v, _, a in cases)
    assert total == pytest.approx(expected)
