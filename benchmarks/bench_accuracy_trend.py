"""Accuracy columns of Tables I, II and IV — the PCNN accuracy trend.

The paper's accuracy claims are trends: (1) PCNN keeps accuracy within
fractions of a point down to n = 2 and degrades visibly only at n = 1
(Tables I/II); (2) shrinking the pattern budget |P| costs little at low
sparsity and more at high sparsity (Table IV); ADMM + masked retraining
recovers most of the hard-prune damage. Absolute VGG-16/ResNet-18 Top-1
needs GPU-days, so the trend runs on the PatternNet proxy + synthetic
data (DESIGN.md substitution) with the *identical* PCNN machinery.
"""

import numpy as np
import pytest

import repro.nn as nn
from repro.analysis import format_table
from repro.core import ADMMFineTuner, PCNNConfig, PCNNPruner, evaluate, fit
from repro.data import ArrayDataset, DataLoader, make_synthetic_images
from repro.models import patternnet

SEED = 0


def make_data():
    x_train, y_train, x_test, y_test = make_synthetic_images(
        n_train=320, n_test=160, num_classes=10, image_size=12, seed=SEED, noise_std=0.55
    )
    loader = DataLoader(ArrayDataset(x_train, y_train), batch_size=32, shuffle=True, seed=SEED)
    return loader, (x_test, y_test)


def run_pipeline(loader, test_data, n, num_patterns=8):
    """pretrain -> distill -> ADMM -> hard prune -> masked retrain."""
    x_test, y_test = test_data
    model = patternnet(channels=(12, 24), num_classes=10, rng=np.random.default_rng(SEED))
    fit(model, loader, epochs=5, lr=0.01)
    dense = evaluate(model, x_test, y_test)
    if n >= 9:
        return dense, dense, dense
    pruner = PCNNPruner(model, PCNNConfig.uniform(n, 2, num_patterns=num_patterns))
    patterns = {name: r.patterns for name, r in pruner.distill().items()}
    tuner = ADMMFineTuner(model, patterns, rho=0.05)
    tuner.run(loader, epochs=2, optimizer=nn.SGD(model.parameters(), lr=0.05, momentum=0.9))
    tuner.finalize()
    hard = evaluate(model, x_test, y_test)
    fit(model, loader, epochs=3, lr=0.01)
    final = evaluate(model, x_test, y_test)
    return dense, hard, final


def test_accuracy_vs_sparsity_trend(benchmark):
    """Tables I/II trend: accuracy loss grows as n shrinks."""
    loader, test_data = make_data()

    def run():
        return {n: run_pipeline(loader, test_data, n) for n in (9, 4, 2, 1)}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    dense = results[9][0]
    print("\n" + format_table(
        ["setting", "dense acc", "after hard prune", "after retrain", "loss"],
        [
            ["dense" if n == 9 else f"n = {n}", f"{d:.3f}", f"{h:.3f}", f"{f:.3f}",
             f"{dense - f:+.3f}"]
            for n, (d, h, f) in results.items()
        ],
        title="Accuracy trend (PatternNet proxy, synthetic 10-class)",
    ))

    acc = {n: r[2] for n, r in results.items()}
    # Paper shape: negligible loss at n=4, small at n=2, visible at n=1.
    assert acc[4] >= dense - 0.05
    assert acc[2] >= dense - 0.08
    assert acc[4] >= acc[1]
    assert acc[2] >= acc[1]
    # Everything stays far above the 10% chance level.
    assert all(a > 0.4 for a in acc.values())


def test_retraining_recovers_hard_prune_damage(benchmark):
    """ADMM + masked retraining recovers most of the projection loss."""
    loader, test_data = make_data()

    def run():
        return run_pipeline(loader, test_data, 2)

    dense, hard, final = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\ndense {dense:.3f} -> hard prune {hard:.3f} -> retrained {final:.3f}")
    assert final >= hard  # retraining never hurts here
    assert final >= dense - 0.08


def test_accuracy_vs_pattern_count_trend(benchmark):
    """Table IV trend: fewer patterns cost more at high sparsity.

    At n = 4 the budget barely matters; at n = 2 a 4-pattern budget is
    measurably worse than the full 36-pattern set (paper: -0.71% vs
    -0.17% at n = 4).
    """
    loader, test_data = make_data()

    def run():
        results = {}
        for n, budgets in ((4, (126, 4)), (2, (36, 4))):
            for budget in budgets:
                results[(n, budget)] = run_pipeline(loader, test_data, n, num_patterns=budget)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + format_table(
        ["n", "|P|", "final acc"],
        [[n, p, f"{r[2]:.3f}"] for (n, p), r in results.items()],
        title="Table IV accuracy half (pattern-budget sweep)",
    ))

    # Budget reduction hurts no more at n=4 than the n=2 collapse to 4
    # patterns (within noise tolerance of the small proxy).
    drop_n4 = results[(4, 126)][2] - results[(4, 4)][2]
    drop_n2 = results[(2, 36)][2] - results[(2, 4)][2]
    assert drop_n4 <= 0.10
    assert results[(2, 4)][2] > 0.4  # still far above chance
    # All settings above chance and the n=4 runs at least as good as n=2.
    assert results[(4, 4)][2] >= results[(2, 4)][2] - 0.05
