"""Table II — pruning rate of different n for ResNet-18 on CIFAR-10.

Same columns as Table I; ResNet's three 1x1 projection convolutions stay
dense (Sec. IV-B), which caps the compression below 9/n.
"""

import pytest

from repro.analysis import format_compression_table
from repro.core import PCNNConfig, pcnn_compression

from common import PAPER_TABLE2, resnet18_cifar_profile


def build_table2():
    profile = resnet18_cifar_profile()
    reports = [
        pcnn_compression(profile, PCNNConfig.uniform(n, 17), setting=f"n = {n}")
        for n in (4, 3, 2, 1)
    ]
    various = PCNNConfig.from_string("2-2-2-1-1-1-1-1-1-1-1-1-1-1-1-1-1")
    reports.append(pcnn_compression(profile, various, setting="various 2-2-2-1-...-1"))
    return reports


def test_table2_rows(benchmark):
    reports = benchmark(build_table2)
    print("\n" + format_compression_table(reports, title="Table II (ResNet-18 / CIFAR-10)"))

    profile = resnet18_cifar_profile()
    assert profile.conv_params == pytest.approx(1.12e7, rel=0.01)
    assert profile.conv_macs == pytest.approx(5.55e8, rel=0.01)

    for report, n in zip(reports, (4, 3, 2, 1)):
        paper_pruned, paper_w, paper_wi = PAPER_TABLE2[n]
        assert report.weight_compression == pytest.approx(paper_w, rel=0.05)
        assert report.weight_idx_compression == pytest.approx(paper_wi, rel=0.06)
        assert 100 * report.flops_pruned_fraction == pytest.approx(paper_pruned, abs=1.5)

    # 1x1 layers dilute: ResNet never reaches VGG's 9x at n=1.
    assert reports[3].weight_compression < 9.0

    various = reports[-1]
    assert 100 * various.flops_pruned_fraction == pytest.approx(84.5, abs=2.0)
    assert various.weight_compression == pytest.approx(7.9, rel=0.05)
