"""Fig. 2 — pattern frequency distribution in CONV4 of VGG-16 (n = 4).

Matches every CONV4 kernel to its nearest n=4 pattern over the full
126-pattern candidate set and plots the frequency histogram. The paper's
figure is measured on *trained* weights, where a heavy "dominant" head and
a long "trivial" tail appear; Kaiming-random initialisation is provably
near-uniform over patterns, so the dominant/trivial shape claim is
asserted on a trained PatternNet layer (DESIGN.md substitution) while the
VGG-16 CONV4 run checks the candidate-set combinatorics at paper scale.
"""

import numpy as np
import pytest

from repro.analysis import pattern_frequency_figure
from repro.core import enumerate_patterns, fit, pattern_frequencies
from repro.data import ArrayDataset, DataLoader, make_synthetic_images
from repro.models import patternnet, vgg16_cifar


def build_fig2_vgg():
    # CONV4 of VGG-16 (the paper's example layer): 128 -> 128 channels.
    model = vgg16_cifar(rng=np.random.default_rng(0))
    conv4 = model.conv_layers()[3][1]
    assert conv4.in_channels == 128 and conv4.out_channels == 128
    return pattern_frequencies(conv4.weight.data, enumerate_patterns(4))


def head_share(frequencies, k):
    order = np.argsort(-frequencies)
    return frequencies[order[:k]].sum() / frequencies.sum()


def test_fig2_candidate_set_at_paper_scale(benchmark):
    frequencies = benchmark(build_fig2_vgg)
    print("\n" + pattern_frequency_figure(frequencies, top=15))

    assert len(frequencies) == 126  # C(9,4) candidates (Sec. II-A)
    assert frequencies.sum() == 128 * 128  # every kernel matched once
    # Even at random init the empirical head exceeds the uniform share.
    assert head_share(frequencies, 32) > 32 / 126


def test_fig2_dominant_vs_trivial_on_trained_weights(benchmark):
    """The figure's message: trained kernels concentrate on few patterns."""

    def run():
        x, y, _, _ = make_synthetic_images(
            n_train=192, n_test=8, num_classes=4, image_size=8, seed=0
        )
        model = patternnet(channels=(16, 32), num_classes=4, rng=np.random.default_rng(0))
        candidates = enumerate_patterns(4)
        conv = model.conv_layers()[1][1]
        before = pattern_frequencies(conv.weight.data, candidates)
        loader = DataLoader(ArrayDataset(x, y), batch_size=32, shuffle=True, seed=0)
        fit(model, loader, epochs=4, lr=0.02)
        after = pattern_frequencies(conv.weight.data, candidates)
        return before, after

    before, after = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\ntrained-layer pattern distribution:")
    print(pattern_frequency_figure(after, top=10))
    print(
        f"\ntop-16 head share: init {head_share(before, 16):.1%} -> "
        f"trained {head_share(after, 16):.1%} (uniform = {16 / 126:.1%})"
    )

    # Dominant head: training concentrates kernels onto fewer patterns.
    assert head_share(after, 16) > head_share(before, 16)
    assert head_share(after, 16) > 1.5 * (16 / 126)
    # Trivial tail: the bottom half of patterns covers a small minority.
    order = np.argsort(-after)
    assert after[order[63:]].sum() < 0.35 * after.sum()
