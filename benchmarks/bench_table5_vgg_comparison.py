"""Table V — PCNN vs other regular compression methods, VGG-16 / CIFAR-10.

The paper compares its two headline settings against reported numbers
from filter pruning [18], network slimming [19], try-and-learn [20] and
IKR [21]. PCNN rows are computed live from our accounting; literature rows
are carried as reported (the paper does the same). The shape claim under
test: at comparable (or better) accuracy, PCNN simultaneously prunes more
FLOPs than the filter-level methods and reaches a competitive-or-better
compression rate.
"""

import pytest

from repro.analysis import format_table
from repro.core import PCNNConfig, pcnn_compression

from common import PAPER_TABLE5_LITERATURE, vgg16_cifar_profile


def build_table5():
    profile = vgg16_cifar_profile()
    pcnn_a = pcnn_compression(profile, PCNNConfig.uniform(3, 13), setting="PCNN n=3")
    various = PCNNConfig.from_string("2-1-1-1-1-1-1-1-1-1-1-1-1")
    pcnn_b = pcnn_compression(profile, various, setting="PCNN various")
    rows = [
        ("PCNN (n=3)", "+0.04% (paper)", f"{100 * pcnn_a.flops_pruned_fraction:.1f}%",
         pcnn_a.weight_compression),
        ("PCNN (various)", "-0.21% (paper)", f"{100 * pcnn_b.flops_pruned_fraction:.1f}%",
         pcnn_b.weight_compression),
    ]
    rows += [(name, acc, flops, comp) for name, acc, flops, comp in PAPER_TABLE5_LITERATURE]
    return rows, pcnn_a, pcnn_b


def test_table5_comparison(benchmark):
    rows, pcnn_a, pcnn_b = benchmark(build_table5)
    print("\n" + format_table(
        ["method", "relative acc", "FLOPs pruned", "compression"],
        [[r[0], r[1], r[2], f"{r[3]:.1f}x"] for r in rows],
        title="Table V (VGG-16 / CIFAR-10 vs regular pruning)",
    ))

    # Paper rows: PCNN 3.0x @ 66.7% FLOPs and 9.0x @ 88.8% FLOPs.
    assert pcnn_a.weight_compression == pytest.approx(3.0, abs=0.05)
    assert 100 * pcnn_a.flops_pruned_fraction == pytest.approx(66.7, abs=0.5)
    assert pcnn_b.weight_compression == pytest.approx(9.0, abs=0.1)

    # Shape: PCNN-various compresses more than every literature method
    # except slimming's 8.7x, which it still beats (9.0 > 8.7) — and it
    # prunes more FLOPs than all of them.
    literature_compressions = [r[3] for r in rows[2:]]
    assert all(pcnn_b.weight_compression > c for c in literature_compressions)
    literature_flops = [float(r[2].rstrip("%")) for r in rows[2:] if r[2] != "-"]
    assert all(100 * pcnn_b.flops_pruned_fraction > f for f in literature_flops)
