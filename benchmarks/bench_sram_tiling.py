"""SRAM tiling and DRAM traffic under the 128 KB weight SRAM (extension).

Quantifies the Sec. III-A host-controller schedule on VGG-16: how many
weight tiles each storage format needs and the resulting DRAM traffic.
Shape claims: PCNN (small per-kernel SPM code) needs no more tiles than
CSC at equal density and strictly less DRAM traffic; both beat dense.
"""

import pytest

from repro.analysis import format_table
from repro.arch import schedule_network
from repro.core import PCNNConfig

from common import vgg16_cifar_profile


def build_schedules():
    profile = vgg16_cifar_profile()
    cfg = PCNNConfig.uniform(4, 13, num_patterns=16)
    return {
        "dense": schedule_network(profile, None),
        "pcnn": schedule_network(profile, cfg, index_format="spm"),
        "csc": schedule_network(profile, cfg, index_format="csc"),
    }


def test_tiling_comparison(benchmark):
    schedules = benchmark(build_schedules)
    print("\n" + format_table(
        ["format", "weight tiles", "DRAM MB / inference"],
        [
            [name, s.total_weight_tiles, f"{s.total_dram_bytes / 1e6:.2f}"]
            for name, s in schedules.items()
        ],
        title="SRAM tiling (VGG-16, 128 KB weight SRAM, n=4, 8-bit)",
    ))

    assert schedules["pcnn"].total_weight_tiles <= schedules["csc"].total_weight_tiles
    assert schedules["pcnn"].total_weight_tiles < schedules["dense"].total_weight_tiles
    assert (
        schedules["pcnn"].total_dram_bytes
        < schedules["csc"].total_dram_bytes
        < schedules["dense"].total_dram_bytes
    )


def test_deepest_layers_dominate_tiling(benchmark):
    profile = vgg16_cifar_profile()
    schedule = benchmark(lambda: schedule_network(profile, PCNNConfig.uniform(4, 13)))
    by_name = schedule.by_name()
    # The 512x512 layers need multiple tiles; the 64-channel stem fits in one.
    first = schedule.layers[0]
    last = schedule.layers[-1]
    assert first.weight_tiles == 1
    assert last.weight_tiles > 1
