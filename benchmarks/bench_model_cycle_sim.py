"""Cycle-accurate whole-model validation of the analytic speedups.

Runs a PCNN-pruned proxy model layer-by-layer through the cycle-accurate
PE-group simulator on *real* activations (true post-ReLU sparsity), and
checks the measured speedup tracks the analytic 9/n model used for the
paper-scale VGG-16 numbers. This closes the loop between the two fidelity
levels of :mod:`repro.arch`.
"""

import numpy as np
import pytest

from repro.analysis import format_table
from repro.arch import ArchConfig, simulate_model_cycles
from repro.core import PCNNConfig, PCNNPruner
from repro.models import patternnet
from repro.runtime import default_cache


def build_reports():
    arch = ArchConfig(num_pes=16, macs_per_pe=4)
    x = np.abs(np.random.default_rng(0).normal(size=(1, 3, 12, 12)))
    results = {}
    for n in (4, 2, 1):
        model = patternnet(channels=(16, 32), num_classes=4, rng=np.random.default_rng(0))
        PCNNPruner(model, PCNNConfig.uniform(n, 2)).apply()
        results[n] = simulate_model_cycles(model, x, arch)
    return results


def test_cycle_accurate_vs_analytic(benchmark):
    default_cache.clear()
    results = benchmark.pedantic(build_reports, rounds=1, iterations=1)
    # The three pruned models share layer geometry, so the capture passes
    # (which route conv forwards through repro.runtime.dispatch) plan each
    # conv once and hit the shared cache for every later sweep point.
    assert default_cache.stats.hits > default_cache.stats.misses
    print("\n" + format_table(
        ["n", "measured speedup", "analytic 9/n", "mean utilization",
         "act density (layer 2)"],
        [
            [n, f"{r.speedup:.2f}x", f"{9 / n:.2f}x", f"{r.mean_utilization:.2f}",
             f"{r.activation_densities['features.4']:.2f}"]
            for n, r in results.items()
        ],
        title="Cycle-accurate whole-model simulation (16 PEs x 4 MACs)",
    ))

    for n, report in results.items():
        assert report.speedup == pytest.approx(9.0 / n, rel=0.3)
    assert results[1].speedup > results[2].speedup > results[4].speedup
    # PCNN keeps the array busy at every sparsity.
    for report in results.values():
        assert report.mean_utilization > 0.4
