"""Trace-driven open-loop load generator for the serving stack.

Every serving number the repo publishes used to be steady-state
closed-loop traffic; this harness replays *recorded arrival traces*
(committed JSON under ``benchmarks/traces/``) against a live server over
both transports — HTTP/JSON and the binary streaming protocol — and
writes per-scenario latency percentiles + shed counts into
``BENCH_serving.json`` rows that ``scripts/bench_guard.py`` hard-fails
on. p99-under-burst is a regression test now, not an anecdote.

Traces
------
A trace is piecewise-constant offered load::

    {
      "name": "burst",
      "description": "...",
      "duration_s": 2.0,
      "segments": [
        {"start_s": 0.0, "rate": 120.0},
        {"start_s": 0.8, "rate": 1200.0},
        {"start_s": 1.2, "rate": 120.0}
      ]
    }

Arrivals are an inhomogeneous Poisson process sampled as exponential
gaps at the segment rate in force, from a seeded
``np.random.default_rng`` — the same ``(trace, seed)`` pair always
yields the identical arrival schedule, so a scenario replays bit-for-bit
(:func:`arrival_times`).

Scenarios
---------
A :class:`Scenario` binds a trace to traffic shape: how many logical
streams the arrivals round-robin over, and (for the near-duplicate
scenario) what fraction of frames are sub-threshold jitters of their
stream's previous keyframe — the input that exercises the stream
transport's per-stream delta cache. The generator is *open-loop*: frames
are dispatched at trace arrival times whether or not earlier ones
completed, which is what makes shed counts and p99-under-burst honest.

Every completed response is checked against ``runtime.predict`` of the
frame that produced it (for delta-cache hits: of the stream's reference
keyframe, mirroring the server's cache semantics), and the row records
the max divergence — the guard holds the stream transport to 1e-5.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), ".."))
sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

TRACE_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "traces")

#: Model/server shape every scenario runs against (mirrors the
#: BENCH_serving.json header: PatternNet at the PCNN flagship density).
INPUT_SHAPE = (3, 16, 16)
SEED = 20200722

__all__ = [
    "TraceError",
    "load_trace",
    "validate_trace",
    "arrival_times",
    "peak_rate",
    "Scenario",
    "SCENARIOS",
    "build_scenario_server",
    "run_scenario",
    "merge_rows",
    "main",
]


# ---------------------------------------------------------------------
# Traces
# ---------------------------------------------------------------------
class TraceError(ValueError):
    """A trace file that cannot drive a replay, with the field named."""


def validate_trace(trace: dict, source: str = "trace") -> dict:
    """Check the trace schema; raise :class:`TraceError` naming the
    offending field (actionable, not "invalid JSON")."""
    if not isinstance(trace, dict):
        raise TraceError(f"{source}: top level must be a JSON object")
    for key in ("name", "duration_s", "segments"):
        if key not in trace:
            raise TraceError(f"{source}: missing required field {key!r}")
    if not isinstance(trace["name"], str) or not trace["name"]:
        raise TraceError(f"{source}: 'name' must be a non-empty string")
    duration = trace["duration_s"]
    if not isinstance(duration, (int, float)) or duration <= 0:
        raise TraceError(
            f"{source}: 'duration_s' must be a positive number, "
            f"got {duration!r}"
        )
    segments = trace["segments"]
    if not isinstance(segments, list) or not segments:
        raise TraceError(f"{source}: 'segments' must be a non-empty list")
    last_start = None
    for index, segment in enumerate(segments):
        where = f"{source}: segments[{index}]"
        if not isinstance(segment, dict):
            raise TraceError(f"{where} must be an object")
        for key in ("start_s", "rate"):
            if key not in segment:
                raise TraceError(f"{where} is missing {key!r}")
            if not isinstance(segment[key], (int, float)):
                raise TraceError(
                    f"{where}.{key} must be a number, got {segment[key]!r}"
                )
        if segment["rate"] < 0:
            raise TraceError(f"{where}.rate must be >= 0, got {segment['rate']}")
        start = segment["start_s"]
        if index == 0 and start != 0:
            raise TraceError(
                f"{where}.start_s must be 0 (the trace starts at t=0), "
                f"got {start}"
            )
        if last_start is not None and start <= last_start:
            raise TraceError(
                f"{where}.start_s ({start}) must be strictly after the "
                f"previous segment's start ({last_start})"
            )
        if start >= duration:
            raise TraceError(
                f"{where}.start_s ({start}) is at or past duration_s "
                f"({duration})"
            )
        last_start = start
    return trace


def load_trace(path: str) -> dict:
    """Load + validate one trace file (bare names resolve under
    ``benchmarks/traces/``)."""
    if not os.path.isabs(path) and not os.path.exists(path):
        for candidate in (
            os.path.join(TRACE_DIR, path),
            os.path.join(TRACE_DIR, path + ".json"),
        ):
            if os.path.exists(candidate):
                path = candidate
                break
    try:
        with open(path) as fh:
            trace = json.load(fh)
    except FileNotFoundError:
        raise TraceError(f"trace file {path!r} does not exist") from None
    except json.JSONDecodeError as error:
        raise TraceError(f"{path}: not valid JSON ({error})") from None
    return validate_trace(trace, source=os.path.basename(path))


def _rate_at(trace: dict, t: float) -> float:
    rate = 0.0
    for segment in trace["segments"]:
        if segment["start_s"] <= t:
            rate = float(segment["rate"])
        else:
            break
    return rate


def peak_rate(trace: dict) -> float:
    """Highest segment rate (req/s) the trace offers."""
    return max(float(s["rate"]) for s in trace["segments"])


def arrival_times(trace: dict, seed: int) -> np.ndarray:
    """Deterministic arrival schedule (seconds from t=0) for ``trace``.

    Inhomogeneous Poisson arrivals: exponential inter-arrival gaps at
    the rate of the segment in force at the current time. The same
    ``(trace, seed)`` always returns the identical schedule — that is
    the replayability contract the loadgen tests pin.
    """
    rng = np.random.default_rng(seed)
    duration = float(trace["duration_s"])
    times: List[float] = []
    t = 0.0
    while True:
        rate = _rate_at(trace, t)
        if rate <= 0:
            # Idle segment: jump to the next segment boundary.
            nxt = [s["start_s"] for s in trace["segments"] if s["start_s"] > t]
            if not nxt:
                break
            t = float(nxt[0])
            continue
        t += float(rng.exponential(1.0 / rate))
        if t >= duration:
            break
        times.append(t)
    return np.asarray(times, dtype=np.float64)


# ---------------------------------------------------------------------
# Scenarios
# ---------------------------------------------------------------------
@dataclass(frozen=True)
class Scenario:
    """One named, replayable load shape."""

    name: str
    trace: str
    #: Logical streams the arrivals round-robin over (stream transport
    #: maps them to wire stream ids; HTTP just interleaves them).
    streams: int = 4
    #: Fraction of frames that are sub-threshold jitters of their
    #: stream's previous keyframe (0 = every frame is fresh).
    near_duplicate: float = 0.0
    #: L-infinity amplitude of the jitter; must sit below the server's
    #: delta threshold for the jittered frames to hit the cache.
    jitter: float = 2e-4
    seed: int = SEED
    #: Transports the scenario is defined for.
    transports: Tuple[str, ...] = ("http", "stream")


SCENARIOS: Dict[str, Scenario] = {
    "steady": Scenario(name="steady", trace="steady.json"),
    "burst": Scenario(name="burst", trace="burst.json"),
    "diurnal": Scenario(name="diurnal", trace="diurnal.json"),
    "step": Scenario(name="step", trace="step.json"),
    # The delta-cache workload: mostly sub-threshold camera jitter on a
    # steady arrival trace, stream transport only (HTTP has no cache).
    "near_duplicate": Scenario(
        name="near_duplicate",
        trace="steady.json",
        near_duplicate=0.75,
        transports=("stream",),
    ),
}


@dataclass
class FramePlan:
    """Deterministic per-arrival frames + expected delta-cache plan.

    ``expected_source[i]`` indexes into ``keyframes`` for the frame
    whose ``predict`` output arrival ``i`` must match — for an expected
    cache hit that is the stream's previous keyframe, mirroring the
    server's reference-resets-on-miss semantics.
    """

    frames: List[np.ndarray] = field(default_factory=list)
    keyframes: np.ndarray = None
    stream_ids: List[int] = field(default_factory=list)
    expected_source: List[int] = field(default_factory=list)
    expected_hit: List[bool] = field(default_factory=list)


def _generate_frames(
    scenario: Scenario, count: int, delta_threshold: float
) -> FramePlan:
    rng = np.random.default_rng(scenario.seed + 1)
    if scenario.near_duplicate > 0 and scenario.jitter >= delta_threshold:
        raise ValueError(
            f"scenario {scenario.name!r} jitter {scenario.jitter} must sit "
            f"below the server delta threshold {delta_threshold}"
        )
    plan = FramePlan()
    keyframes: List[np.ndarray] = []
    stream_ref: Dict[int, int] = {}
    for index in range(count):
        sid = index % scenario.streams
        ref = stream_ref.get(sid)
        jittered = (
            ref is not None
            and scenario.near_duplicate > 0
            and rng.random() < scenario.near_duplicate
        )
        if jittered:
            base = keyframes[ref]
            frame = base + rng.uniform(
                -scenario.jitter, scenario.jitter, size=base.shape
            )
            plan.expected_source.append(ref)
            plan.expected_hit.append(True)
        else:
            frame = rng.normal(size=INPUT_SHAPE)
            keyframes.append(frame)
            stream_ref[sid] = len(keyframes) - 1
            plan.expected_source.append(len(keyframes) - 1)
            plan.expected_hit.append(False)
        plan.frames.append(frame)
        plan.stream_ids.append(sid)
    plan.keyframes = (
        np.stack(keyframes) if keyframes else np.empty((0,) + INPUT_SHAPE)
    )
    return plan


def build_scenario_server(max_queue: int = 512):
    """The server every scenario replays against: PatternNet at the PCNN
    flagship density (n=2, |P|=4), compiled, admission-controlled."""
    from repro.core import PCNNConfig, PCNNPruner
    from repro.models import patternnet
    from repro.serving import ModelServer

    model = patternnet(rng=np.random.default_rng(SEED))
    pruner = PCNNPruner(model, PCNNConfig.uniform(2, 3, num_patterns=4))
    pruner.apply()
    pruner.attach_encodings()
    server = ModelServer(max_batch=16, max_latency_ms=5.0, max_queue=max_queue)
    server.add_model("m", model, INPUT_SHAPE)
    server.warmup()
    return server


@dataclass
class _Outcome:
    """One arrival's fate, filled in as its response lands."""

    latency_s: Optional[float] = None
    shed_kind: Optional[str] = None
    cache_hit: bool = False
    output: Optional[np.ndarray] = None


def _percentiles(latencies: List[float]) -> Dict[str, float]:
    if not latencies:
        return {"p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0}
    p50, p95, p99 = np.percentile(latencies, [50.0, 95.0, 99.0])
    return {
        "p50_ms": round(float(p50) * 1e3, 3),
        "p95_ms": round(float(p95) * 1e3, 3),
        "p99_ms": round(float(p99) * 1e3, 3),
    }


def _run_stream(
    scenario: Scenario, schedule, frames, stream_ids, port: int
) -> List[_Outcome]:
    from repro.serving import StreamClient, WireError

    outcomes = [_Outcome() for _ in frames]
    done = threading.Event()
    remaining = [len(frames)]
    remaining_lock = threading.Lock()

    def finish_one() -> None:
        with remaining_lock:
            remaining[0] -= 1
            if remaining[0] == 0:
                done.set()

    with StreamClient("127.0.0.1", port, timeout=120.0) as client:
        t0 = time.perf_counter()
        for index, arrival in enumerate(schedule):
            now = time.perf_counter() - t0
            if arrival > now:
                time.sleep(arrival - now)
            sent = time.perf_counter()
            outcome = outcomes[index]

            def landed(future, outcome=outcome, sent=sent):
                try:
                    result = future.result()
                except WireError as error:
                    outcome.shed_kind = error.kind
                except Exception:  # noqa: BLE001 - counted as a drop
                    pass
                else:
                    outcome.latency_s = time.perf_counter() - sent
                    outcome.cache_hit = result.cache_hit
                    outcome.output = result.output
                finish_one()

            client.submit(
                frames[index], stream_id=stream_ids[index], meta=True
            ).add_done_callback(landed)
        done.wait(timeout=120.0)
    return outcomes


def _run_http(
    scenario: Scenario, schedule, frames, stream_ids, port: int, workers: int = 16
) -> List[_Outcome]:
    import http.client
    import queue as queue_mod

    outcomes = [_Outcome() for _ in frames]
    work: "queue_mod.Queue[Optional[Tuple[int, float]]]" = queue_mod.Queue()

    def worker() -> None:
        connection = http.client.HTTPConnection("127.0.0.1", port, timeout=120.0)
        try:
            while True:
                item = work.get()
                if item is None:
                    return
                index, sent = item
                outcome = outcomes[index]
                body = json.dumps({"input": frames[index].tolist()})
                try:
                    connection.request(
                        "POST", "/predict", body,
                        {"Content-Type": "application/json"},
                    )
                    response = connection.getresponse()
                    payload = json.loads(response.read())
                except Exception:  # noqa: BLE001 - counted as a drop
                    connection.close()
                    connection = http.client.HTTPConnection(
                        "127.0.0.1", port, timeout=120.0
                    )
                    continue
                if response.status == 200:
                    outcome.latency_s = time.perf_counter() - sent
                    outcome.output = np.asarray(payload["outputs"][0])
                else:
                    outcome.shed_kind = payload.get("error", {}).get(
                        "kind", f"http_{response.status}"
                    )
        finally:
            connection.close()

    threads = [
        threading.Thread(target=worker, daemon=True) for _ in range(workers)
    ]
    for thread in threads:
        thread.start()
    t0 = time.perf_counter()
    for index, arrival in enumerate(schedule):
        now = time.perf_counter() - t0
        if arrival > now:
            time.sleep(arrival - now)
        # Latency clock starts at dispatch: client-side queueing behind a
        # busy worker is part of the open-loop number, as it should be.
        work.put((index, time.perf_counter()))
    for _ in threads:
        work.put(None)
    for thread in threads:
        thread.join(timeout=120.0)
    return outcomes


def run_scenario(
    scenario: Scenario,
    transport: str,
    *,
    http_port: int,
    stream_port: int,
    delta_threshold: float,
    reference_model,
) -> dict:
    """Replay ``scenario`` over ``transport``; return one BENCH row."""
    from repro import runtime

    if transport not in scenario.transports:
        raise ValueError(
            f"scenario {scenario.name!r} is not defined for {transport!r} "
            f"(transports: {scenario.transports})"
        )
    trace = load_trace(scenario.trace)
    schedule = arrival_times(trace, scenario.seed)
    plan = _generate_frames(scenario, len(schedule), delta_threshold)
    frames, keyframes = plan.frames, plan.keyframes
    expected_source, expected_hit = plan.expected_source, plan.expected_hit
    reference = (
        runtime.predict(reference_model, keyframes)
        if len(keyframes)
        else np.empty((0, 1))
    )

    start = time.perf_counter()
    if transport == "stream":
        outcomes = _run_stream(
            scenario, schedule, frames, plan.stream_ids, stream_port
        )
    else:
        outcomes = _run_http(scenario, schedule, frames, plan.stream_ids, http_port)
    elapsed = time.perf_counter() - start

    shed: Dict[str, int] = {}
    latencies: List[float] = []
    max_diff = 0.0
    completed = 0
    cache_hits = 0
    shed_any = any(o.shed_kind for o in outcomes)
    for index, outcome in enumerate(outcomes):
        if outcome.shed_kind is not None:
            shed[outcome.shed_kind] = shed.get(outcome.shed_kind, 0) + 1
            continue
        if outcome.output is None:
            continue  # dropped: admitted but never answered
        completed += 1
        latencies.append(outcome.latency_s)
        if outcome.cache_hit:
            cache_hits += 1
        if outcome.cache_hit != expected_hit[index] or (
            outcome.cache_hit and shed_any
        ):
            # A shed keyframe desynchronises the client-side replay of
            # the server's reference chain, so hit/miss outcomes (and
            # which keyframe a hit answers for) stop being predictable;
            # frames whose observed fate matches the no-shed plan stay
            # exactly checkable, the rest are skipped.
            continue
        diff = float(
            np.abs(outcome.output - reference[expected_source[index]]).max()
        )
        max_diff = max(max_diff, diff)

    sent = len(outcomes)
    shed_total = sum(shed.values())
    admitted = sent - shed_total
    row = {
        "scenario": scenario.name,
        "transport": transport,
        "trace": os.path.basename(scenario.trace),
        "seed": scenario.seed,
        "duration_s": float(trace["duration_s"]),
        "streams": scenario.streams,
        "offered": sent,
        "offered_rps_peak": peak_rate(trace),
        "admitted": admitted,
        "completed": completed,
        "dropped": admitted - completed,
        "shed": shed,
        "shed_total": shed_total,
        "achieved_rps": round(completed / elapsed, 2) if elapsed > 0 else 0.0,
        **_percentiles(latencies),
        "max_abs_diff_vs_predict": max_diff,
    }
    if transport == "stream":
        row["cache_hits"] = cache_hits
        row["cache_hit_rate"] = (
            round(cache_hits / completed, 4) if completed else 0.0
        )
        row["delta_threshold"] = delta_threshold
    return row


# ---------------------------------------------------------------------
# BENCH plumbing + CLI
# ---------------------------------------------------------------------
def merge_rows(path: str, rows: Dict[str, dict]) -> dict:
    """Merge scenario rows into ``BENCH_serving.json``'s configs block
    (read-modify-write: the closed-loop rows are left untouched)."""
    if os.path.exists(path):
        with open(path) as fh:
            record = json.load(fh)
    else:
        record = {"benchmark": "dynamic_batching_serving", "configs": {}}
    record.setdefault("configs", {}).update(rows)
    with open(path, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    return record


def run_scenarios(
    names: List[str], transports: List[str], *, max_queue: int = 512
) -> Dict[str, dict]:
    """Stand a server up once and replay every requested scenario."""
    from repro.serving import StreamServer, serve_http

    server = build_scenario_server(max_queue=max_queue)
    served = server.get("m")
    rows: Dict[str, dict] = {}
    httpd = serve_http(server, port=0, request_timeout=120.0)
    stream_server = StreamServer(server, port=0).start()
    try:
        http_port = httpd.server_address[1]
        for name in names:
            scenario = SCENARIOS[name]
            for transport in transports:
                if transport not in scenario.transports:
                    continue
                row = run_scenario(
                    scenario,
                    transport,
                    http_port=http_port,
                    stream_port=stream_server.port,
                    delta_threshold=stream_server.delta_threshold,
                    reference_model=served.model,
                )
                rows[f"scenario_{scenario.name}_{transport}"] = row
    finally:
        stream_server.stop()
        httpd.server_close()
        server.stop()
    return rows


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Replay committed arrival traces against the serving "
        "stack over HTTP and the binary stream protocol."
    )
    parser.add_argument(
        "--scenario", action="append", choices=sorted(SCENARIOS), default=None,
        help="scenario to replay (repeatable; default: steady, burst, "
        "near_duplicate)",
    )
    parser.add_argument(
        "--transport", choices=("http", "stream", "both"), default="both",
    )
    parser.add_argument(
        "--out", default=None, metavar="BENCH_serving.json",
        help="merge the scenario rows into this BENCH file "
        "(default: print only)",
    )
    parser.add_argument(
        "--max-queue", type=int, default=512,
        help="server admission-control high-water mark (default: 512)",
    )
    args = parser.parse_args(argv)
    names = args.scenario or ["steady", "burst", "near_duplicate"]
    transports = ["http", "stream"] if args.transport == "both" else [args.transport]
    rows = run_scenarios(names, transports, max_queue=args.max_queue)
    for key, row in rows.items():
        print(
            f"{key}: offered {row['offered']} "
            f"(peak {row['offered_rps_peak']:g} rps), completed "
            f"{row['completed']}, dropped {row['dropped']}, shed "
            f"{row['shed_total']}, p99 {row['p99_ms']} ms, "
            f"diff {row['max_abs_diff_vs_predict']:.2e}"
            + (
                f", cache hits {row['cache_hits']} "
                f"({row['cache_hit_rate']:.0%})"
                if "cache_hits" in row else ""
            )
        )
    if args.out:
        merge_rows(args.out, rows)
        print(f"merged {len(rows)} scenario row(s) into {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
