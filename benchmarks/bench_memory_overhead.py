"""Sec. IV-E memory overhead — 3.1% index overhead vs EIE's 50%.

PCNN stores one small SPM code per *kernel* (4 KB pattern SRAM beside the
128 KB weight SRAM = 3.1%); EIE-style CSC needs ~4 bits per *weight*
(64 KB to denote 128 K weights). Also measures the irregular architecture's
load-imbalance penalty at equal density.
"""

import numpy as np
import pytest

from repro.analysis import format_table
from repro.arch import (
    ArchConfig,
    IrregularCycleModel,
    eie_index_sram_bytes,
    sram_overheads,
)


def build_overheads():
    arch = ArchConfig()
    return sram_overheads(arch, num_patterns=16, n_nonzero=4)


def test_memory_overhead(benchmark):
    info = benchmark(build_overheads)
    print("\n" + format_table(
        ["quantity", "value"],
        [
            ["weight SRAM", f"{info['weight_sram_bytes'] // 1024} KB"],
            ["pattern SRAM", f"{info['pattern_sram_bytes'] // 1024} KB"],
            ["kernels held (n=4, 8b)", info["kernels_capacity"]],
            ["index overhead (PCNN)", f"{info['index_overhead_fraction']:.1%}"],
            ["EIE CSC index for same weights", f"{info['eie_index_bytes_required'] // 1024} KB"],
        ],
        title="Sec. IV-E memory overhead",
    ))

    assert info["index_overhead_fraction"] == pytest.approx(0.031, abs=0.001)
    assert info["kernels_capacity"] == 32768
    # Paper: EIE needs 64 KB of index SRAM for 128 K weights — a 50%
    # overhead against the 128 KB weight SRAM, 16x PCNN's.
    assert info["eie_index_bytes_required"] == 64 * 1024
    eie_overhead = info["eie_index_bytes_required"] / info["weight_sram_bytes"]
    assert eie_overhead / info["index_overhead_fraction"] == pytest.approx(16.0)


def test_eie_index_scaling(benchmark):
    sizes = benchmark(lambda: [eie_index_sram_bytes(k * 1024) for k in (32, 64, 128, 256)])
    assert sizes == [16 * 1024, 32 * 1024, 64 * 1024, 128 * 1024]


def test_imbalance_penalty_at_equal_density(benchmark):
    """Irregular sparsity wastes cycles that PCNN's regularity recovers."""
    model = IrregularCycleModel(ArchConfig(num_pes=16, macs_per_pe=4))

    def run():
        return model.compare(
            num_filters=64, num_channels=32, num_windows=64, n_average=2,
            rng=np.random.default_rng(0), activation_density=0.8,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\nregular util {result.regular_utilization:.2f} vs "
        f"irregular util {result.irregular_utilization:.2f} "
        f"(penalty {result.imbalance_penalty:.2f}x)"
    )
    assert result.imbalance_penalty > 1.05
    assert result.regular_utilization > result.irregular_utilization
