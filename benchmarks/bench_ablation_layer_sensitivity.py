"""Ablation — per-layer sensitivity and the "various settings" configs.

The paper's best settings keep a milder n in early layers (Table I
footnote: 2-1-1-...; Table II: 2-2-2-1-...). This bench runs the
sensitivity scan that produces such configs on a trained proxy model and
checks the resulting auto-config beats the uniform config of equal
compression on accuracy-after-one-shot-prune.
"""

import numpy as np
import pytest

from repro.analysis import format_table
from repro.core import (
    PCNNConfig,
    PCNNPruner,
    evaluate,
    fit,
    sensitivity_scan,
    suggest_config,
)
from repro.data import ArrayDataset, DataLoader, make_synthetic_images
from repro.models import patternnet

SEED = 0


def trained_model_and_data():
    x_train, y_train, x_test, y_test = make_synthetic_images(
        n_train=320, n_test=160, num_classes=10, image_size=12, seed=SEED, noise_std=0.5
    )
    loader = DataLoader(ArrayDataset(x_train, y_train), batch_size=32, shuffle=True, seed=SEED)
    model = patternnet(channels=(12, 24, 24), num_classes=10, rng=np.random.default_rng(SEED))
    fit(model, loader, epochs=5, lr=0.01)
    return model, loader, (x_test, y_test)


def test_sensitivity_scan_and_autoconfig(benchmark):
    def run():
        model, loader, (x_test, y_test) = trained_model_and_data()
        scan = sensitivity_scan(model, x_test, y_test, ns=(1, 2, 4))
        config = suggest_config(scan, budget=0.06, candidates=(1, 2, 4))
        return scan, config

    scan, config = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + format_table(
        ["layer", "drop @ n=1", "drop @ n=2", "drop @ n=4", "suggested n"],
        [
            [s.name, f"{s.accuracy_drop[1]:.3f}", f"{s.accuracy_drop[2]:.3f}",
             f"{s.accuracy_drop[4]:.3f}", cfg.n]
            for s, cfg in zip(scan, config)
        ],
        title="Per-layer one-shot sensitivity (PatternNet proxy)",
    ))

    # Shape: pruning harder (smaller n) never hurts less.
    for s in scan:
        assert s.accuracy_drop[4] <= s.accuracy_drop[1] + 1e-9
    # The suggested config is a valid per-layer PCNN config.
    assert len(config) == 3
    assert all(1 <= n <= 4 for n in config.ns)


def test_autoconfig_prunes_while_keeping_accuracy(benchmark):
    def run():
        model, loader, (x_test, y_test) = trained_model_and_data()
        dense = evaluate(model, x_test, y_test)
        scan = sensitivity_scan(model, x_test, y_test, ns=(1, 2, 4))
        config = suggest_config(scan, budget=0.06, candidates=(1, 2, 4))
        PCNNPruner(model, config).apply()
        fit(model, loader, epochs=3, lr=0.01)
        pruned = evaluate(model, x_test, y_test)
        return dense, pruned, config

    dense, pruned, config = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nauto config {config.describe()}: dense {dense:.3f} -> pruned {pruned:.3f}")
    assert pruned >= dense - 0.08
    # The config actually prunes (average n < 9).
    assert np.mean(config.ns) < 9
