"""Ablation — pattern distillation selector quality (beyond the paper).

DESIGN.md calls out the KP/greedy framing of Algorithm 1 as a design
choice; this bench quantifies it. On pattern-structured weights the
greedy-frequency selector (Algorithm 1) should approach the energy-based
selector and clearly beat random selection, at a fraction of exhaustive
search's cost.
"""

import numpy as np
import pytest

from repro.analysis import format_table
from repro.core import (
    distill_patterns,
    enumerate_patterns,
    exhaustive_optimal_patterns,
    patterns_to_bit_matrix,
    projection_error,
)


def structured_weight(rng, n=4, kernels=400, planted=6):
    """Kernels concentrated on a few planted patterns (the trained-network
    regime the paper's Fig. 2 shows)."""
    favored = enumerate_patterns(n)[rng.choice(126, size=planted, replace=False)]
    bits = patterns_to_bit_matrix(favored)
    choices = rng.integers(0, planted, size=kernels)
    signal = bits[choices] * rng.normal(2.0, 0.3, size=(kernels, 9))
    noise = rng.normal(size=(kernels, 9)) * 0.1
    return (signal + noise).reshape(kernels, 1, 3, 3)


def build_comparison():
    from repro.core import anneal_patterns

    rng = np.random.default_rng(0)
    weight = structured_weight(rng)
    budget = 6
    rows = {}
    rows["frequency (Alg. 1)"] = distill_patterns(weight, 4, budget, method="frequency").residual
    rows["energy"] = distill_patterns(weight, 4, budget, method="energy").residual
    rows["annealed (ext.)"] = anneal_patterns(
        weight, 4, budget, rng=np.random.default_rng(0), iterations=800
    ).residual
    random_residuals = [
        distill_patterns(weight, 4, budget, method="random", rng=np.random.default_rng(s)).residual
        for s in range(5)
    ]
    rows["random (mean of 5)"] = float(np.mean(random_residuals))
    total_energy = float((weight**2).sum())
    return rows, total_energy


def test_distillation_selector_quality(benchmark):
    rows, total = benchmark(build_comparison)
    print("\n" + format_table(
        ["selector", "projection residual", "energy lost"],
        [[k, f"{v:.2f}", f"{v / total:.1%}"] for k, v in rows.items()],
        title="Ablation: pattern distillation selectors (n=4, |P|=6)",
    ))

    assert rows["frequency (Alg. 1)"] < rows["random (mean of 5)"]
    # On planted data greedy-frequency is near the energy selector.
    assert rows["frequency (Alg. 1)"] <= rows["energy"] * 1.5 + 1e-9
    # And loses only a small fraction of total energy.
    assert rows["frequency (Alg. 1)"] / total < 0.15
    # Annealing (initialised from greedy) never does worse — and the gap
    # it closes quantifies the head-room Algorithm 1 leaves.
    assert rows["annealed (ext.)"] <= rows["frequency (Alg. 1)"] + 1e-9


def test_greedy_vs_exhaustive_small_instance(benchmark):
    """On instances small enough for exhaustive MKP-1, greedy is near-optimal."""

    def run():
        rng = np.random.default_rng(1)
        weight = structured_weight(rng, kernels=60, planted=3)
        candidates = enumerate_patterns(4)[:20]
        greedy = distill_patterns(weight, 4, 3, method="frequency", candidates=candidates)
        _, optimal = exhaustive_optimal_patterns(weight, 4, 3, candidates=candidates)
        return greedy.residual, optimal

    greedy_residual, optimal_residual = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\ngreedy residual {greedy_residual:.2f} vs optimal {optimal_residual:.2f}")
    assert greedy_residual >= optimal_residual - 1e-9
    assert greedy_residual <= optimal_residual * 1.3 + 1e-9
