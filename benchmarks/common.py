"""Shared fixtures/constants for the benchmark harness.

Each ``bench_*.py`` regenerates one table or figure of the paper (see the
per-experiment index in DESIGN.md). Benchmarks print the paper's rows —
run with ``pytest benchmarks/ --benchmark-only -s`` to see them — and
assert the paper-shape claims (who wins, by roughly what factor).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.models import (
    ModelProfile,
    profile_model,
    resnet18_cifar,
    vgg16_cifar,
    vgg16_imagenet,
)

SEED = 0


@lru_cache(maxsize=None)
def vgg16_cifar_profile() -> ModelProfile:
    model = vgg16_cifar(rng=np.random.default_rng(SEED))
    return profile_model(model, (3, 32, 32), model_name="VGG-16")


@lru_cache(maxsize=None)
def resnet18_cifar_profile() -> ModelProfile:
    model = resnet18_cifar(rng=np.random.default_rng(SEED))
    return profile_model(model, (3, 32, 32), model_name="ResNet-18")


@lru_cache(maxsize=None)
def vgg16_imagenet_profile() -> ModelProfile:
    model = vgg16_imagenet(rng=np.random.default_rng(SEED))
    return profile_model(model, (3, 224, 224), model_name="VGG-16/ImageNet")


# ---------------------------------------------------------------------
# Paper-reported values (ground truth for shape assertions)
# ---------------------------------------------------------------------
PAPER_TABLE1 = {  # n -> (flops_pruned %, compression weight, weight+idx)
    4: (56.5, 2.3, 2.2),
    3: (66.7, 3.0, 2.9),
    2: (77.8, 4.5, 4.1),
    1: (88.9, 9.0, 8.4),
}

PAPER_TABLE2 = {  # ResNet-18
    4: (54.5, 2.2, 2.1),
    3: (65.5, 3.0, 2.8),
    2: (76.7, 4.3, 4.0),
    1: (88.0, 7.9, 7.3),
}

PAPER_TABLE4 = {  # (n, |P|) -> compression weight+idx
    (4, 126): 2.14,
    (4, 32): 2.18,
    (4, 16): 2.20,
    (4, 8): 2.21,
    (4, 4): 2.23,
    (2, 36): 4.08,
    (2, 32): 4.13,
    (2, 16): 4.19,
    (2, 8): 4.26,
    (2, 4): 4.32,
}

PAPER_SPEEDUPS = {4: 2.3, 3: 3.1, 2: 4.5, 1: 9.0}
PAPER_TOPS_PER_WATT = {"dense": 3.15, "n1": 28.39}

# Literature rows quoted by the paper's comparison tables.
PAPER_TABLE5_LITERATURE = [
    ("Filter pruning [18]", "+0.15%", "33.3%", 2.8),
    ("Network slimming [19]", "+0.14%", "51.0%", 8.7),
    ("try-and-learn b=1 [20]", "-1.10%", "82.7%", 2.2),
    ("IKR [21]", "-0.90%", "84.7%", 4.3),
]

PAPER_TABLE6_LITERATURE = [
    ("Band-limited [22]", "-1.67%", "-", 2.0),
    ("try-and-learn b=4 [20]", "-2.90%", "76.0%", 4.6),
]

PAPER_TABLE8_LITERATURE = [
    ("Structured ADMM [23]", "-0.60%", 50.0),
    ("SNIP [24]", "-0.45%", 20.0),
    ("Synaptic Strength [25]", "+0.43%", 25.0),
]
