"""Shared fixtures/constants for the benchmark harness.

Each ``bench_*.py`` regenerates one table or figure of the paper (see the
per-experiment index in DESIGN.md). Benchmarks print the paper's rows —
run with ``pytest benchmarks/ --benchmark-only -s`` to see them — and
assert the paper-shape claims (who wins, by roughly what factor).

``python benchmarks/common.py --smoke`` runs a seconds-scale smoke of the
perf-critical paths (runtime engine backends, plan cache, batched
predict, compiled pipeline, analytic speedup) for CI, so a regression in
the hot paths fails fast without the full benchmark suite. It also
measures eager vs compiled vs schedule-tuned serving throughput on the
VGG-16 CIFAR shape — including the n=2/|P|=4 config where the tuner
overrides the static gather heuristic for a measured win — and writes
the numbers to
``BENCH_runtime.json`` (tracked from PR 2 on; tuned rows from PR 5,
guarded against regression by ``scripts/bench_guard.py`` in CI),
plus a dynamic-batching serving record — in-process Batcher under
concurrent clients, dense + PCNN configs — to ``BENCH_serving.json``
(tracked from PR 3 on), plus an int8-vs-float32 compiled serving record
on the flagship PCNN config to ``BENCH_quant.json`` (tracked from
PR 4 on).
"""

from __future__ import annotations

import json
import os
import sys
import time
from functools import lru_cache

import numpy as np

from repro.models import (
    ModelProfile,
    profile_model,
    resnet18_cifar,
    vgg16_cifar,
    vgg16_imagenet,
)

SEED = 0


@lru_cache(maxsize=None)
def vgg16_cifar_profile() -> ModelProfile:
    model = vgg16_cifar(rng=np.random.default_rng(SEED))
    return profile_model(model, (3, 32, 32), model_name="VGG-16")


@lru_cache(maxsize=None)
def resnet18_cifar_profile() -> ModelProfile:
    model = resnet18_cifar(rng=np.random.default_rng(SEED))
    return profile_model(model, (3, 32, 32), model_name="ResNet-18")


@lru_cache(maxsize=None)
def vgg16_imagenet_profile() -> ModelProfile:
    model = vgg16_imagenet(rng=np.random.default_rng(SEED))
    return profile_model(model, (3, 224, 224), model_name="VGG-16/ImageNet")


# ---------------------------------------------------------------------
# Paper-reported values (ground truth for shape assertions)
# ---------------------------------------------------------------------
PAPER_TABLE1 = {  # n -> (flops_pruned %, compression weight, weight+idx)
    4: (56.5, 2.3, 2.2),
    3: (66.7, 3.0, 2.9),
    2: (77.8, 4.5, 4.1),
    1: (88.9, 9.0, 8.4),
}

PAPER_TABLE2 = {  # ResNet-18
    4: (54.5, 2.2, 2.1),
    3: (65.5, 3.0, 2.8),
    2: (76.7, 4.3, 4.0),
    1: (88.0, 7.9, 7.3),
}

PAPER_TABLE4 = {  # (n, |P|) -> compression weight+idx
    (4, 126): 2.14,
    (4, 32): 2.18,
    (4, 16): 2.20,
    (4, 8): 2.21,
    (4, 4): 2.23,
    (2, 36): 4.08,
    (2, 32): 4.13,
    (2, 16): 4.19,
    (2, 8): 4.26,
    (2, 4): 4.32,
}

PAPER_SPEEDUPS = {4: 2.3, 3: 3.1, 2: 4.5, 1: 9.0}
PAPER_TOPS_PER_WATT = {"dense": 3.15, "n1": 28.39}

# Literature rows quoted by the paper's comparison tables.
PAPER_TABLE5_LITERATURE = [
    ("Filter pruning [18]", "+0.15%", "33.3%", 2.8),
    ("Network slimming [19]", "+0.14%", "51.0%", 8.7),
    ("try-and-learn b=1 [20]", "-1.10%", "82.7%", 2.2),
    ("IKR [21]", "-0.90%", "84.7%", 4.3),
]

PAPER_TABLE6_LITERATURE = [
    ("Band-limited [22]", "-1.67%", "-", 2.0),
    ("try-and-learn b=4 [20]", "-2.90%", "76.0%", 4.6),
]

PAPER_TABLE8_LITERATURE = [
    ("Structured ADMM [23]", "-0.60%", 50.0),
    ("SNIP [24]", "-0.45%", 20.0),
    ("Synaptic Strength [25]", "+0.43%", 25.0),
]


# ---------------------------------------------------------------------
# Serving throughput record (BENCH_runtime.json)
# ---------------------------------------------------------------------
def _interleaved_ips(fns: dict, batch: int, trials: int = 7) -> dict:
    """Median images/sec per candidate over *interleaved* trials.

    Every trial times each candidate back to back, so a slow host window
    (shared-core throttling, noisy neighbours) hits all candidates alike
    instead of whichever happened to be measured in it; speedups are the
    median of per-trial ratios for the same reason.
    """
    for fn in fns.values():  # warm-up: plans, arenas, BLAS thread state
        fn()
    samples = {name: [] for name in fns}
    for _ in range(trials):
        for name, fn in fns.items():
            start = time.perf_counter()
            fn()
            samples[name].append(batch / (time.perf_counter() - start))
    return samples


def _bench_one_config(model, x, batch: int, workers: int, tune=None) -> dict:
    """Eager vs compiled (vs tuned) vs compiled+workers for one model."""
    from repro import runtime

    compiled = runtime.compile_model(model)
    compiled_out = compiled(x)
    eager_out = runtime.predict(model, x)
    max_abs_diff = float(np.abs(compiled_out - eager_out).max())

    winograd_layers = _winograd_layer_count(compiled)

    fns = {
        "eager": lambda: runtime.predict(model, x),
        "compiled": lambda: runtime.predict(compiled, x),
        "workers": lambda: runtime.predict(compiled, x, workers=workers),
    }
    if tune is not None:
        tuned_model = runtime.compile_model(model, tune=tune, input_shape=x.shape[1:])
        fns["tuned"] = lambda: runtime.predict(tuned_model, x)
    samples = _interleaved_ips(fns, batch)
    eager = np.array(samples["eager"])
    compiled_s = np.array(samples["compiled"])
    workers_s = np.array(samples["workers"])
    row = {
        "eager_images_per_sec": round(float(np.median(eager)), 2),
        "compiled_images_per_sec": round(float(np.median(compiled_s)), 2),
        "compiled_workers_images_per_sec": round(float(np.median(workers_s)), 2),
        "speedup_compiled_vs_eager": round(float(np.median(compiled_s / eager)), 2),
        "speedup_workers_vs_eager": round(float(np.median(workers_s / eager)), 2),
        "max_abs_diff_compiled_vs_eager": max_abs_diff,
        "winograd_layers": winograd_layers,
    }
    if tune is not None:
        tuned_s = np.array(samples["tuned"])
        row["tuned_images_per_sec"] = round(float(np.median(tuned_s)), 2)
        row["speedup_tuned_vs_compiled"] = round(
            float(np.median(tuned_s / compiled_s)), 3
        )
        row["tune_mode"] = tune
    return row


def _bench_tuned_vs_static(model, x, batch: int, tune: str = "measure") -> dict:
    """Static-heuristic compile vs tuned compile for one model.

    The config where the two *disagree* (the static rule gathers, the
    tuner measures dense-decode as faster — or vice versa) is the direct
    evidence the cost-model/autotune pass earns its keep.
    """
    from repro import runtime

    static = runtime.compile_model(model)
    tuned = runtime.compile_model(model, tune=tune, input_shape=x.shape[1:])
    max_abs_diff = float(np.abs(tuned(x) - static(x)).max())
    samples = _interleaved_ips(
        {
            "static": lambda: runtime.predict(static, x),
            "tuned": lambda: runtime.predict(tuned, x),
        },
        batch,
    )
    static_s = np.array(samples["static"])
    tuned_s = np.array(samples["tuned"])
    report = tuned.tuning
    return {
        "static_images_per_sec": round(float(np.median(static_s)), 2),
        "tuned_images_per_sec": round(float(np.median(tuned_s)), 2),
        "speedup_tuned_vs_static": round(float(np.median(tuned_s / static_s)), 3),
        "schedules_changed_vs_heuristic": report.changed_layers,
        "tune_mode": tune,
        "max_abs_diff_tuned_vs_static": max_abs_diff,
    }


def _winograd_layer_count(compiled) -> int:
    """Conv layers the pipeline actually runs on a Winograd schedule.

    ``winograd-auto`` markers resolve to a concrete tile (or back to
    im2col) on the first execution plan, so call this only after the
    compiled model has run once.
    """
    return sum(
        1
        for row in compiled.schedule_summary()
        if row["kind"].startswith("winograd") and row["kind"] != "winograd-auto"
    )


def _bench_winograd(model, x, batch: int) -> dict:
    """Winograd schedules vs the im2col reference on the same model.

    The row ``scripts/bench_guard.py --runtime-only`` hard-gates:
    ``max_abs_diff_winograd_vs_im2col`` must stay under the repo-wide
    1e-4 equivalence budget, and the speedup is the direct evidence the
    F(m,3) pass earns its keep.
    """
    from repro import runtime

    wino = runtime.compile_model(model)
    gemm = runtime.compile_model(model, winograd=False)
    max_abs_diff = float(np.abs(wino(x) - gemm(x)).max())
    samples = _interleaved_ips(
        {
            "winograd": lambda: runtime.predict(wino, x),
            "im2col": lambda: runtime.predict(gemm, x),
        },
        batch,
    )
    wino_s = np.array(samples["winograd"])
    gemm_s = np.array(samples["im2col"])
    return {
        "im2col_images_per_sec": round(float(np.median(gemm_s)), 2),
        "winograd_images_per_sec": round(float(np.median(wino_s)), 2),
        "speedup_winograd_vs_im2col": round(float(np.median(wino_s / gemm_s)), 3),
        "winograd_layers": _winograd_layer_count(wino),
        "max_abs_diff_winograd_vs_im2col": max_abs_diff,
    }


def _bench_int8_kernel(model, x, batch: int) -> dict:
    """True-integer int8 GEMM datapath vs the float-carried code GEMM.

    Both pipelines quantize identically (same scales, same codes); the
    only axis is the GEMM kernel: ``kernel="auto"`` resolves to the
    integer path (numba when importable, else the blocked exact-
    accumulate kernel), ``kernel="float"`` carries the codes in the
    float dtype. ``kernel_bit_exact_vs_reference`` additionally probes
    the blocked kernel against the reference integer GEMM on random
    codes with a ragged K tail — bit-identity here is the exactness
    certificate the guard hard-gates.
    """
    from repro import runtime
    from repro.runtime.quant import (
        QuantizationConfig,
        int8_gemm_int32,
        int8_gemm_int32_blocked,
    )

    calib = x[:8]
    integer = runtime.compile_model(
        model, quantize=QuantizationConfig(kernel="auto"), calibration=calib
    )
    floatk = runtime.compile_model(
        model, quantize=QuantizationConfig(kernel="float"), calibration=calib
    )
    int_out = integer(x)
    float_out = floatk(x)
    rel_diff = float(
        np.linalg.norm(int_out - float_out) / np.linalg.norm(float_out)
    )

    rng = np.random.default_rng(SEED + 7)
    a = rng.integers(-127, 128, size=(57, 2 * 1024 + 1)).astype(np.int8)
    b = rng.integers(-127, 128, size=(2 * 1024 + 1, 33)).astype(np.int8)
    bit_exact = bool(
        np.array_equal(int8_gemm_int32_blocked(a, b), int8_gemm_int32(a, b))
    )

    samples = _interleaved_ips(
        {
            "integer": lambda: runtime.predict(integer, x),
            "float": lambda: runtime.predict(floatk, x),
        },
        batch,
    )
    int_s = np.array(samples["integer"])
    float_s = np.array(samples["float"])
    return {
        "int8_kernel": integer.quantization.int8_kernel,
        "float_gemm_images_per_sec": round(float(np.median(float_s)), 2),
        "int_gemm_images_per_sec": round(float(np.median(int_s)), 2),
        "speedup_int_vs_float_gemm": round(float(np.median(int_s / float_s)), 3),
        "rel_diff_int_vs_float_gemm": round(rel_diff, 6),
        "kernel_bit_exact_vs_reference": bit_exact,
    }


def _bench_trace_executor(reps: int = 50) -> dict:
    """Trace-replay executor vs per-op dispatch on a batch-1 small model.

    Batch 1 on a small network is where per-op overhead (plan-cache
    lookups, arena dict hits, thunk rebuilding) is the largest fraction
    of a forward, so it is the honest stage for the dispatch-free
    executor. Each trial runs ``reps`` forwards so a single forward's
    microsecond-scale jitter cannot decide the row.
    """
    from repro import runtime
    from repro.models import patternnet

    model = patternnet(rng=np.random.default_rng(SEED))
    x = np.random.default_rng(SEED + 5).normal(size=(1, 3, 16, 16))
    compiled = runtime.compile_model(model)
    prior = os.environ.get("REPRO_TRACE")

    def run_mode(flag: str):
        os.environ["REPRO_TRACE"] = flag
        out = None
        for _ in range(reps):
            out = compiled(x)
        return out

    try:
        max_abs_diff = float(np.abs(run_mode("1") - run_mode("0")).max())
        samples = _interleaved_ips(
            {"trace": lambda: run_mode("1"), "dispatch": lambda: run_mode("0")},
            reps,
        )
    finally:
        if prior is None:
            os.environ.pop("REPRO_TRACE", None)
        else:
            os.environ["REPRO_TRACE"] = prior
    trace_s = np.array(samples["trace"])
    dispatch_s = np.array(samples["dispatch"])
    return {
        "model": "patternnet",
        "batch": 1,
        "forwards_per_trial": reps,
        "dispatch_images_per_sec": round(float(np.median(dispatch_s)), 2),
        "trace_images_per_sec": round(float(np.median(trace_s)), 2),
        "speedup_trace_vs_dispatch": round(
            float(np.median(trace_s / dispatch_s)), 3
        ),
        "max_abs_diff_trace_vs_dispatch": max_abs_diff,
    }


def bench_runtime(path: str = "BENCH_runtime.json", batch: int = 32) -> dict:
    """Measure eager vs compiled serving on the VGG-16 CIFAR shape.

    Two configurations, both against PR 1's eager ``predict``:

    - ``pcnn_n2_p8`` — the paper's flagship Table-I setting (n=2, |P|=8,
      SPM encodings attached): eager serves through the float64 pattern
      backend, the compiled pipeline through its lowered ops. This is
      the serving scenario the repo exists for and the headline
      ``speedup_compiled_vs_eager``.
    - ``dense`` — the unpruned model, isolating the compile-pipeline win
      (BN folding + fused epilogues + NHWC + float32 + arenas) without
      any sparsity in play.

    Plus three kernel-level rows, each isolating one schedule axis on
    otherwise-identical pipelines: ``winograd`` (F(m,3) fast-convolution
    schedules vs the im2col reference, with the max-abs divergence the
    guard gates at 1e-4), ``int8_int32`` (the true-integer int8 GEMM vs
    the float-carried code GEMM, with a bit-exactness probe of the
    blocked kernel), and ``trace_executor`` (thunk replay vs per-op
    dispatch at batch 1, where dispatch overhead is the largest
    fraction of a forward).

    Medians over interleaved trials keep one noisy scheduler tick from
    deciding the outcome.
    """
    from repro import runtime
    from repro.core import PCNNConfig, PCNNPruner
    from repro.models import vgg16_cifar

    x = np.random.default_rng(SEED + 1).normal(size=(batch, 3, 32, 32))
    workers = min(4, os.cpu_count() or 1)

    dense_model = vgg16_cifar(rng=np.random.default_rng(SEED))
    dense = _bench_one_config(dense_model, x, batch, workers)

    pruned_model = vgg16_cifar(rng=np.random.default_rng(SEED))
    pruner = PCNNPruner(pruned_model, PCNNConfig.uniform(2, 13))
    pruner.apply()
    pruner.attach_encodings()
    pcnn = _bench_one_config(pruned_model, x, batch, workers, tune="measure")

    # n=2/|P|=4 is where the static gather heuristic is wrong: |P|*n = 8
    # <= k^2 = 9 says "gather natively", but the grouped contraction is
    # barely narrower than the dense one while the numpy gather still
    # pays full A-matrix materialisation — the tuner (cost model and
    # measurement agree) decodes most layers to dense GEMMs instead.
    n2p4_model = vgg16_cifar(rng=np.random.default_rng(SEED))
    pruner = PCNNPruner(n2p4_model, PCNNConfig.uniform(2, 13, num_patterns=4))
    pruner.apply()
    pruner.attach_encodings()
    n2p4 = _bench_tuned_vs_static(n2p4_model, x, batch)

    # Kernel-level rows: Winograd vs im2col on the flagship model, the
    # integer int8 GEMM vs the float-carried one, and the trace executor
    # vs per-op dispatch — each isolating exactly one schedule axis.
    winograd = _bench_winograd(pruned_model, x, batch)
    int8_int32 = _bench_int8_kernel(pruned_model, x, batch)
    trace = _bench_trace_executor()

    record = {
        "benchmark": "runtime_serving",
        "model": "vgg16_cifar",
        "input_shape": [batch, 3, 32, 32],
        "dtype_eager": "float64",
        "dtype_compiled": "float32",
        "flagship_config": "pcnn_n2_p8",
        "eager_images_per_sec": pcnn["eager_images_per_sec"],
        "compiled_images_per_sec": pcnn["compiled_images_per_sec"],
        "tuned_images_per_sec": pcnn["tuned_images_per_sec"],
        "compiled_workers": workers,
        "speedup_compiled_vs_eager": pcnn["speedup_compiled_vs_eager"],
        "speedup_workers_vs_eager": pcnn["speedup_workers_vs_eager"],
        "speedup_tuned_vs_compiled": pcnn["speedup_tuned_vs_compiled"],
        "max_abs_diff_compiled_vs_eager": pcnn["max_abs_diff_compiled_vs_eager"],
        "winograd_layers": pcnn["winograd_layers"],
        "configs": {
            "pcnn_n2_p8": pcnn,
            "dense": dense,
            "pcnn_n2_p4": n2p4,
            "winograd": winograd,
            "int8_int32": int8_int32,
            "trace_executor": trace,
        },
        "cpu_count": os.cpu_count(),
    }
    with open(path, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    return record


# ---------------------------------------------------------------------
# Quantized serving record (BENCH_quant.json)
# ---------------------------------------------------------------------
def bench_quant(path: str = "BENCH_quant.json", batch: int = 32) -> dict:
    """Int8 vs float32 compiled serving on the flagship configuration.

    The paper's Table-I flagship (VGG-16 CIFAR, n=2, |P|=8, SPM
    encodings attached) compiled twice — plain float32 and
    ``quantize="int8"`` — and compared on (a) accuracy: relative output
    error and top-1 agreement on a synthetic eval batch, and (b)
    throughput: interleaved median images/sec and the median per-trial
    int8/float32 ratio. Both pipelines run the same GEMM schedule — the
    float leg is compiled with ``winograd=False`` because the Winograd
    transforms void the int8 integer-exactness contract, so quantized
    convs can never ride them; leaving the fast path on only the float
    leg would fold a schedule difference into what this record isolates,
    the quantization axis (``float32_winograd: false`` documents the
    choice). On matched im2col schedules the int8 path wins outright:
    int8-source im2col reads, single-span f32 accumulation under the
    value-aware exactness certificate, folded integer bias, and the
    fused band-wise requantize epilogue (``int8_kernel`` records which
    GEMM kernel served the run) — while the weight artifact drops to
    8-bit storage (``weight_compression_vs_f32``).
    """
    from repro import runtime
    from repro.core import PCNNConfig, PCNNPruner
    from repro.models import vgg16_cifar
    from repro.runtime.quant import QuantConvOp

    x = np.random.default_rng(SEED + 3).normal(size=(batch, 3, 32, 32))
    model = vgg16_cifar(rng=np.random.default_rng(SEED))
    pruner = PCNNPruner(model, PCNNConfig.uniform(2, 13))
    pruner.apply()
    pruner.attach_encodings()

    compiled_f32 = runtime.compile_model(model, winograd=False)
    compiled_int8 = runtime.compile_model(model, quantize="int8", calibration=x[:8])
    report = compiled_int8.quantization

    # Accuracy on a held-out synthetic eval batch.
    eval_x = np.random.default_rng(SEED + 4).normal(size=(4 * batch, 3, 32, 32))
    reference = runtime.predict(compiled_f32, eval_x, micro_batch=batch)
    quantized = runtime.predict(compiled_int8, eval_x, micro_batch=batch)
    rel_error = float(
        np.linalg.norm(quantized - reference) / np.linalg.norm(reference)
    )
    agreement = float(
        (quantized.argmax(axis=1) == reference.argmax(axis=1)).mean()
    )

    # Weight storage: int8 codes (SPM non-zero sequences only) vs dense
    # float32 tensors for the same convs.
    int8_bits = 0
    dense_f32_bits = 0
    for op in compiled_int8.ops:
        if isinstance(op, QuantConvOp):
            if op.encoded is not None:
                int8_bits += op.encoded.values.size * report.bits
            else:
                int8_bits += op.codes_int8.size * report.bits
            int8_bits += op.c_out * 32  # per-kernel scales
            dense_f32_bits += op.c_out * op.c_in * op.kernel[0] * op.kernel[1] * 32

    samples = _interleaved_ips(
        {
            "float32": lambda: runtime.predict(compiled_f32, x),
            "int8": lambda: runtime.predict(compiled_int8, x),
        },
        batch,
    )
    f32 = np.array(samples["float32"])
    int8 = np.array(samples["int8"])
    record = {
        "benchmark": "quantized_serving",
        "model": "vgg16_cifar",
        "config": "pcnn_n2_p8",
        "input_shape": [batch, 3, 32, 32],
        "bits": report.bits,
        "granularity": report.granularity,
        "mode": report.mode,
        "quantized_layers": report.quantized_layers,
        "fallback_layers": report.fallback_layers,
        "int8_kernel": report.int8_kernel,
        "float32_winograd": False,
        "max_layer_weight_error": round(
            max(row["error"] for row in report.layers), 5
        ),
        "eval_images": int(eval_x.shape[0]),
        "rel_output_error": round(rel_error, 5),
        "top1_agreement": agreement,
        "float32_images_per_sec": round(float(np.median(f32)), 2),
        "int8_images_per_sec": round(float(np.median(int8)), 2),
        "speedup_int8_vs_float32": round(float(np.median(int8 / f32)), 3),
        "weight_storage_int8_bits": int(int8_bits),
        "weight_storage_dense_f32_bits": int(dense_f32_bits),
        "weight_compression_vs_f32": round(dense_f32_bits / int8_bits, 2),
        "cpu_count": os.cpu_count(),
    }
    with open(path, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    return record


# ---------------------------------------------------------------------
# Serving-layer throughput record (BENCH_serving.json)
# ---------------------------------------------------------------------
def _serve_one_config(
    model, requests: int, clients: int, input_shape, worker_procs=None
) -> dict:
    """Fire concurrent single-image traffic at an in-process server.

    ``worker_procs`` switches the server to the multi-process execution
    path (shared-memory weight image + per-worker rings); the row then
    additionally records the pool's attach counters, which prove the
    workers mapped the weights rather than copying them.
    """
    from concurrent.futures import ThreadPoolExecutor

    from repro import runtime
    from repro.serving import ModelServer

    server = ModelServer(max_batch=16, max_latency_ms=10.0, worker_procs=worker_procs)
    served = server.add_model("m", model, input_shape)
    server.warmup()
    rng = np.random.default_rng(SEED + 2)
    images = rng.normal(size=(requests,) + tuple(input_shape))
    reference = runtime.predict(served.model, images)

    with server:
        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=clients) as pool:
            futures = list(pool.map(lambda i: server.submit(images[i]), range(requests)))
        outputs = np.stack([f.result(timeout=120) for f in futures])
        elapsed = time.perf_counter() - start
        workers_snap = served.pool.stats_snapshot() if served.pool is not None else None

    max_abs_diff = float(np.abs(outputs - reference).max())
    snap = served.stats.snapshot()
    row = {
        "requests": requests,
        "requests_per_sec": round(requests / elapsed, 2),
        "mean_batch": snap["mean_batch"],
        "batches": snap["batches"],
        "batch_histogram": snap["batch_histogram"],
        "p50_ms": snap["p50_ms"],
        "p95_ms": snap["p95_ms"],
        "p99_ms": snap["p99_ms"],
        "queue_p50_ms": snap["queue_p50_ms"],
        "max_abs_diff_vs_predict": max_abs_diff,
    }
    if workers_snap is not None:
        row["worker_procs"] = worker_procs
        row["workers_alive"] = workers_snap["alive"]
        row["image_attached"] = workers_snap["image"]["attached_total"]
        row["image_copied"] = workers_snap["image"]["copied_total"]
    return row


def _paired_procs_ratio(
    single_server, procs_server, input_shape, rounds: int = 21, burst: int = 64
) -> dict:
    """Interleaved single-process vs worker-pool flush timing.

    Raw per-config req/s rows are taken seconds apart, so a host load
    spike (CI neighbours, frequency drift) can land on one config and
    not the other — exactly the false failure a perf guard must not
    produce. Here each round times one ``burst``-image flush on *both*
    servers back-to-back and the guard metric is the **median** of the
    per-round ratios: a spike inflates both sides of its round, and the
    median discards the rounds it distorts asymmetrically.
    """
    rng = np.random.default_rng(SEED + 3)
    images = rng.normal(size=(burst,) + tuple(input_shape))

    def one_burst(server) -> float:
        start = time.perf_counter()
        futures = [server.submit(img) for img in images]
        for future in futures:
            future.result(timeout=120)
        return time.perf_counter() - start

    for server in (single_server, procs_server):  # steady-state both paths
        one_burst(server)
        one_burst(server)
    ratios = []
    single_ms, procs_ms = [], []
    for _ in range(rounds):
        a = one_burst(single_server)
        b = one_burst(procs_server)
        single_ms.append(a * 1e3)
        procs_ms.append(b * 1e3)
        ratios.append(a / b)
    return {
        "rounds": rounds,
        "burst": burst,
        "single_ms_p50": round(float(np.median(single_ms)), 3),
        "procs_ms_p50": round(float(np.median(procs_ms)), 3),
        # >= 1.0 means the worker pool matches single-process; the guard
        # floors this at 0.9 on 1-core hosts and 1.5 with 2+ cores.
        "throughput_ratio_p50": round(float(np.median(ratios)), 4),
    }


def _serve_chaos_config(model, requests: int, input_shape) -> dict:
    """Kill one of two workers mid-burst; count what survived.

    The row's contract (checked by ``scripts/bench_guard.py`` within the
    run, no baseline needed): every admitted request completes with the
    exact ``predict`` answer — ``dropped`` must be 0 — and the
    supervisor heals the pool back to full width. ``REPRO_CHAOS_SEED``
    pins the inputs and the victim for reproducibility.
    """
    import os as _os
    import signal as _signal

    from repro import runtime
    from repro.serving import ModelServer, Supervisor

    seed = int(_os.environ.get("REPRO_CHAOS_SEED", "0"))
    server = ModelServer(
        max_batch=16, max_latency_ms=10.0, worker_procs=2,
        supervisor=Supervisor(interval=0.05),
    )
    served = server.add_model("m", model, input_shape)
    server.warmup()
    rng = np.random.default_rng(seed)
    images = rng.normal(size=(requests,) + tuple(input_shape))
    victim_slot = int(rng.integers(0, 2))
    reference = runtime.predict(served.compiled, images)

    with server:
        victim = served.pool.worker_health()[victim_slot]["pid"]
        futures = [server.submit(images[i]) for i in range(requests // 2)]
        _os.kill(victim, _signal.SIGKILL)
        futures += [server.submit(images[i]) for i in range(requests // 2, requests)]
        outputs, dropped = [], 0
        for future in futures:
            try:
                outputs.append(future.result(timeout=120))
            except Exception:  # noqa: BLE001 - a drop, counted against the guard
                dropped += 1
        max_abs_diff = (
            float(np.abs(np.stack(outputs) - reference).max())
            if dropped == 0 else float("inf")
        )
        deadline = time.perf_counter() + 30.0
        while served.pool.alive_workers < 2 and time.perf_counter() < deadline:
            time.sleep(0.05)
        workers_alive_end = served.pool.alive_workers
        status = server.supervisor.model_status()["m"]
    return {
        "chaos_seed": seed,
        "admitted": requests,
        "completed": len(outputs),
        "dropped": dropped,
        "shed": served.stats.shed_total,
        "crashes": status["crashes"],
        "restarts": status["restarts"],
        "degraded": status["degraded"],
        "workers_alive_end": workers_alive_end,
        "max_abs_diff_vs_predict": max_abs_diff,
    }


def _serve_fleet_config(duration_s: float = 2.0) -> dict:
    """Three-tenant fleet under a budget that forces demotion.

    Tenants ``a:b:c`` run at 2:1:1 fair-share weights under saturation
    (every tenant keeps a standing backlog), with ``memory_budget_mb``
    deliberately below the 3-model working set so the residency manager
    must demote at least one cold tenant mid-run. The row's contract
    (``scripts/bench_guard.py check_fleet``, within-run): zero failed
    admitted requests, at least one demotion, a non-negative ledger,
    and no tenant starved below half its weight share.
    """
    import threading

    from repro.serving import ModelServer

    shape = (3, 16, 16)
    weights = {"a": 2.0, "b": 1.0, "c": 1.0}
    budget_mb = 0.6
    server = ModelServer(
        max_batch=8, max_latency_ms=2.0, memory_budget_mb=budget_mb
    )
    for seed, (name, weight) in enumerate(weights.items()):
        server.load_registry("patternnet", name=name, seed=seed, weight=weight)
    server.warmup()
    rng = np.random.default_rng(SEED + 4)
    image = rng.normal(size=shape)
    errors = []
    stop = threading.Event()

    def feed(name):
        pending = []
        while not stop.is_set():
            pending = [f for f in pending if not f.done()]
            while len(pending) < 16:
                pending.append(server.submit(image, name))
            time.sleep(0.0005)
        for future in pending:
            try:
                future.result(timeout=120)
            except Exception as error:  # noqa: BLE001 - counted by the guard
                errors.append(repr(error))

    with server:
        feeders = [
            threading.Thread(target=feed, args=(name,), daemon=True)
            for name in weights
        ]
        for thread in feeders:
            thread.start()
        time.sleep(duration_s)
        stop.set()
        for thread in feeders:
            thread.join()
        sched = server.scheduler.snapshot()["tenants"]
        residency = server.residency.snapshot()
        stats = server.stats()
    tenants = {}
    for name, weight in weights.items():
        row = residency["tenants"][name]
        tenants[name] = {
            "weight": weight,
            "weight_share": sched[name]["weight_share"],
            "requests": sched[name]["requests"],
            "observed_share": sched[name]["observed_share"],
            "errors": stats[name]["errors"],
            "state_end": row["state"],
            "demotions": row["demotions"],
            "promotions": row["promotions"],
            "evictions": row["evictions"],
            "bytes_end": row["bytes"],
        }
    return {
        "duration_s": duration_s,
        "memory_budget_mb": budget_mb,
        "budget_bytes": residency["budget_bytes"],
        "charged_bytes_end": residency["charged_bytes"],
        "demotions_total": sum(t["demotions"] for t in tenants.values()),
        "failed_requests": sum(t["errors"] for t in tenants.values()),
        "late_failures": errors,
        "tenants": tenants,
    }


def bench_serving(path: str = "BENCH_serving.json", requests: int = 64) -> dict:
    """Serving smoke: in-process Batcher under concurrent clients.

    Two PatternNet configs mirror BENCH_runtime.json's pair — ``dense``
    and the PCNN flagship density (n=2, |P|=4, SPM encodings attached so
    the compiled pipeline serves the pattern gather path). The record
    tracks coalescing (mean batch), latency percentiles and end-to-end
    correctness of the batched path vs plain ``predict``.

    A third row, ``pcnn_n2_p4_procs2``, serves the same pruned config
    through two inference worker *processes* (shared-memory weight
    image + tensor rings). On a 1-core box it documents the ring
    overhead (guarded at >= 0.9x the in-process row by
    ``scripts/bench_guard.py``); with 2+ cores it shows the past-the-GIL
    scaling.

    A fourth row, ``pcnn_n2_p4_chaos``, SIGKILLs one of the two workers
    mid-burst and records the zero-drop invariant (every admitted
    request completes with the exact ``predict`` answer) plus the
    supervisor's heal-back; ``bench_guard.py`` hard-fails if any
    admitted request dropped or the pool ended short-handed.

    A fifth row, ``fleet_3models_budget``, saturates three tenants at
    2:1:1 weights under a memory budget below their combined working
    set, recording per-tenant observed shares, demotion/promotion
    counts and the end-of-run byte ledger; ``bench_guard.py``
    hard-fails if any admitted request failed, the budget never forced
    a demotion, the ledger went negative, or a tenant starved below
    half its weight share.

    Finally, the trace-driven scenario rows (``scenario_*``, from
    ``benchmarks/loadgen.py``): committed arrival traces replayed
    open-loop over both the HTTP and binary-stream transports —
    steady-state, burst, and the near-duplicate camera workload that
    exercises the stream transport's per-stream delta cache.
    ``bench_guard.py`` hard-fails on dropped admitted frames, stream
    divergence from ``predict`` past 1e-5, or a near-duplicate run with
    zero delta-cache hits.
    """
    from repro.core import PCNNConfig, PCNNPruner
    from repro.models import patternnet

    shape = (3, 16, 16)
    clients = min(16, 4 * (os.cpu_count() or 1))

    dense_model = patternnet(rng=np.random.default_rng(SEED))
    dense = _serve_one_config(dense_model, requests, clients, shape)

    pruned_model = patternnet(rng=np.random.default_rng(SEED))
    pruner = PCNNPruner(pruned_model, PCNNConfig.uniform(2, 3, num_patterns=4))
    pruner.apply()
    pruner.attach_encodings()
    pcnn = _serve_one_config(pruned_model, requests, clients, shape)
    procs2 = _serve_one_config(pruned_model, requests, clients, shape, worker_procs=2)
    chaos = _serve_chaos_config(pruned_model, requests, shape)
    fleet = _serve_fleet_config()

    # Trace-driven open-loop scenarios over both transports (the
    # steady/burst/near-duplicate set the bench guard requires).
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    import loadgen

    scenario_rows = loadgen.run_scenarios(
        ["steady", "burst", "near_duplicate"], ["http", "stream"]
    )

    # Guard metric: interleaved flush timing, robust to host load spikes
    # (see _paired_procs_ratio). Both servers serve the same pruned
    # model at the full throughput batch (64) — the configuration
    # multi-process serving targets — so the fixed per-flush ring cost
    # (~0.3 ms of wakeups and record bookkeeping, flat in batch size)
    # is measured against a production-sized flush, not a toy one.
    from repro.serving import ModelServer

    single_server = ModelServer(max_batch=64, max_latency_ms=10.0)
    single_server.add_model("m", pruned_model, shape)
    procs_server = ModelServer(max_batch=64, max_latency_ms=10.0, worker_procs=2)
    procs_server.add_model("m", pruned_model, shape)
    single_server.warmup()
    procs_server.warmup()
    with single_server, procs_server:
        procs2["paired"] = _paired_procs_ratio(single_server, procs_server, shape)

    from repro.runtime import effective_cpu_count

    record = {
        "benchmark": "dynamic_batching_serving",
        "model": "patternnet",
        "input_shape": list(shape),
        "concurrent_clients": clients,
        "max_batch": 16,
        "max_latency_ms": 10.0,
        "configs": {
            "pcnn_n2_p4": pcnn,
            "dense": dense,
            "pcnn_n2_p4_procs2": procs2,
            "pcnn_n2_p4_chaos": chaos,
            "fleet_3models_budget": fleet,
            **scenario_rows,
        },
        "cpu_count": os.cpu_count(),
        "effective_cpus": effective_cpu_count(),
    }
    with open(path, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    return record


# ---------------------------------------------------------------------
# CI smoke target
# ---------------------------------------------------------------------
def smoke() -> int:
    """Fast perf-path smoke: engine backends, plan cache, predict, sim."""
    from repro import runtime
    from repro.core import (
        PCNNConfig,
        PCNNPruner,
        SPMCodebook,
        encode_layer,
        enumerate_patterns,
        project_to_patterns,
    )
    from repro.models import patternnet
    from repro.nn import Tensor
    from repro.nn.functional import conv2d

    rng = np.random.default_rng(SEED)

    # 1. All registered backends match the conv2d reference.
    patterns = enumerate_patterns(2)[:8]
    weight = project_to_patterns(rng.normal(size=(16, 8, 3, 3)), patterns)
    encoded = encode_layer(weight, SPMCodebook(patterns))
    x = rng.normal(size=(2, 8, 10, 10))
    reference = conv2d(Tensor(x), Tensor(weight), padding=1).data
    for backend in runtime.available_backends():
        out = runtime.dispatch(x, weight, encoded=encoded, padding=1, backend=backend)
        if backend == "quant":
            # Int8 execution is bounded by its quantization error, not
            # float tolerance.
            rel = np.linalg.norm(out - reference) / np.linalg.norm(reference)
            assert rel < 0.02, rel
        else:
            np.testing.assert_allclose(out, reference, rtol=1e-9, atol=1e-10)
    print(f"smoke: backends {runtime.available_backends()} match conv2d")

    # 2. Plan cache hits on repeated forwards.
    cache = runtime.PlanCache()
    for _ in range(3):
        runtime.dispatch(x, encoded=encoded, padding=1, cache=cache)
    assert cache.stats.hits == 2 and cache.stats.misses == 1, cache.stats
    print(f"smoke: plan cache {cache.stats.hits} hits / {cache.stats.misses} misses")

    # 3. Batched predict over a pruned model, micro-batch equivalence.
    model = patternnet(channels=(8, 16), num_classes=4, rng=np.random.default_rng(SEED))
    PCNNPruner(model, PCNNConfig.uniform(2, 2)).apply()
    images = rng.normal(size=(4, 3, 12, 12))
    full = runtime.predict(model, images)
    split = runtime.predict(model, images, micro_batch=2)
    np.testing.assert_allclose(split, full, rtol=1e-9, atol=1e-10)
    print(f"smoke: predict ok, output {full.shape}")

    # 4. Compiled pipeline (BN folding + fused epilogues + arenas)
    #    matches eager eval output, dense and SPM-encoded.
    compiled = runtime.compile_model(model)
    np.testing.assert_allclose(compiled(images), full, rtol=1e-4, atol=1e-5)
    pruner = PCNNPruner(model, PCNNConfig.uniform(2, 2))
    pruner.apply()
    pruner.attach_encodings()
    encoded_full = runtime.predict(model, images)
    np.testing.assert_allclose(
        runtime.compile_model(model)(images), encoded_full, rtol=1e-4, atol=1e-5
    )
    np.testing.assert_allclose(
        runtime.predict(model, images, compile=True, micro_batch=2, workers=2),
        encoded_full, rtol=1e-4, atol=1e-5,
    )
    print("smoke: compiled pipeline matches eager (dense + SPM, workers)")

    # 5. Analytic architecture speedup still tracks 9/n on VGG-16.
    from repro.arch import simulate_network_analytic

    result = simulate_network_analytic(vgg16_cifar_profile(), PCNNConfig.uniform(2, 13))
    assert abs(result.speedup - 4.5) < 0.1, result.speedup
    print(f"smoke: analytic VGG-16 speedup n=2 -> {result.speedup:.2f}x")

    # 6. Serving throughput record: eager vs compiled, 1 vs N workers,
    #    dense and PCNN-pruned (flagship) configs.
    record = bench_runtime()
    for name, row in record["configs"].items():
        if "eager_images_per_sec" not in row:
            continue  # the tuned-vs-static config reports its own fields
        print(
            f"smoke: BENCH_runtime.json [{name}] -> "
            f"eager {row['eager_images_per_sec']} ips, "
            f"compiled {row['compiled_images_per_sec']} ips "
            f"({row['speedup_compiled_vs_eager']}x), "
            f"{record['compiled_workers']} workers "
            f"{row['compiled_workers_images_per_sec']} ips"
        )
        assert row["max_abs_diff_compiled_vs_eager"] < 1e-4, (name, row)
        assert row["speedup_compiled_vs_eager"] >= 2.0, (
            f"compiled serving should be well ahead of eager predict; "
            f"got {row['speedup_compiled_vs_eager']}x on {name}"
        )
    flagship = record["configs"]["pcnn_n2_p8"]
    print(
        f"smoke: BENCH_runtime.json [pcnn_n2_p8] tuned -> "
        f"{flagship['tuned_images_per_sec']} ips "
        f"({flagship['speedup_tuned_vs_compiled']}x vs untuned compiled)"
    )
    # Measured tuning picks the best of candidates that include the
    # static default, so parity is the floor; the margin below only
    # absorbs shared-runner noise.
    assert flagship["speedup_tuned_vs_compiled"] >= 0.9, flagship
    n2p4 = record["configs"]["pcnn_n2_p4"]
    print(
        f"smoke: BENCH_runtime.json [pcnn_n2_p4] static "
        f"{n2p4['static_images_per_sec']} ips vs tuned "
        f"{n2p4['tuned_images_per_sec']} ips "
        f"({n2p4['speedup_tuned_vs_static']}x, "
        f"{n2p4['schedules_changed_vs_heuristic']} schedules changed)"
    )
    assert n2p4["max_abs_diff_tuned_vs_static"] < 1e-4, n2p4
    # The structural win: the tuner overrides the (wrong here) static
    # gather rule on most layers. The measured margin on this config is
    # ~1.7-1.9x on the 1-core container; the floor only absorbs noise.
    assert n2p4["schedules_changed_vs_heuristic"] >= 1, n2p4
    assert n2p4["speedup_tuned_vs_static"] >= 1.0, n2p4
    wino = record["configs"]["winograd"]
    print(
        f"smoke: BENCH_runtime.json [winograd] -> im2col "
        f"{wino['im2col_images_per_sec']} ips vs winograd "
        f"{wino['winograd_images_per_sec']} ips "
        f"({wino['speedup_winograd_vs_im2col']}x, "
        f"{wino['winograd_layers']} layers, "
        f"diff {wino['max_abs_diff_winograd_vs_im2col']:.1e})"
    )
    # Correctness is the hard gate; the speedup floor is parity minus
    # noise (the measured margin on the 1-core container is ~1.5x+).
    assert wino["max_abs_diff_winograd_vs_im2col"] < 1e-4, wino
    assert wino["winograd_layers"] >= 8, wino
    assert wino["speedup_winograd_vs_im2col"] >= 1.0, wino
    int8_row = record["configs"]["int8_int32"]
    print(
        f"smoke: BENCH_runtime.json [int8_int32] -> float-GEMM "
        f"{int8_row['float_gemm_images_per_sec']} ips vs "
        f"{int8_row['int8_kernel']}-GEMM "
        f"{int8_row['int_gemm_images_per_sec']} ips "
        f"({int8_row['speedup_int_vs_float_gemm']}x, "
        f"rel diff {int8_row['rel_diff_int_vs_float_gemm']:.1e}, "
        f"bit-exact {int8_row['kernel_bit_exact_vs_reference']})"
    )
    assert int8_row["kernel_bit_exact_vs_reference"], int8_row
    # The two pipelines share scales and codes; they only differ in the
    # requantize epilogue's rounding precision, so the outputs stay
    # within a sliver of the quantization error itself.
    assert int8_row["rel_diff_int_vs_float_gemm"] < 0.02, int8_row
    trace_row = record["configs"]["trace_executor"]
    print(
        f"smoke: BENCH_runtime.json [trace_executor] -> dispatch "
        f"{trace_row['dispatch_images_per_sec']} ips vs trace "
        f"{trace_row['trace_images_per_sec']} ips "
        f"({trace_row['speedup_trace_vs_dispatch']}x at batch 1, "
        f"diff {trace_row['max_abs_diff_trace_vs_dispatch']:.1e})"
    )
    assert trace_row["max_abs_diff_trace_vs_dispatch"] < 1e-4, trace_row
    assert trace_row["speedup_trace_vs_dispatch"] >= 1.0, trace_row

    # 7. Dynamic-batching serving record: in-process Batcher under
    #    concurrent clients, dense + PCNN flagship density.
    serving = bench_serving()
    for name, row in serving["configs"].items():
        if "requests_per_sec" not in row:
            continue  # chaos/fleet rows carry their own shapes, below
        print(
            f"smoke: BENCH_serving.json [{name}] -> "
            f"{row['requests_per_sec']} req/s, mean batch {row['mean_batch']}, "
            f"p50 {row['p50_ms']:.1f} ms / p99 {row['p99_ms']:.1f} ms"
        )
        assert row["max_abs_diff_vs_predict"] < 1e-4, (name, row)
        assert row["mean_batch"] > 1.0, (
            f"dynamic batching should coalesce concurrent requests; "
            f"histogram {row['batch_histogram']} on {name}"
        )
    chaos = serving["configs"]["pcnn_n2_p4_chaos"]
    print(
        f"smoke: BENCH_serving.json [pcnn_n2_p4_chaos] -> "
        f"{chaos['completed']}/{chaos['admitted']} completed through "
        f"{chaos['crashes']} crash(es), dropped {chaos['dropped']}"
    )
    assert chaos["dropped"] == 0, chaos
    assert chaos["max_abs_diff_vs_predict"] < 1e-4, chaos
    fleet = serving["configs"]["fleet_3models_budget"]
    shares = {
        name: f"{t['observed_share']:.2f}/{t['weight_share']:.2f}"
        for name, t in fleet["tenants"].items()
    }
    print(
        f"smoke: BENCH_serving.json [fleet_3models_budget] -> "
        f"{fleet['demotions_total']} demotions under "
        f"{fleet['memory_budget_mb']} MiB, {fleet['failed_requests']} "
        f"failed, shares obs/weight {shares}"
    )
    assert fleet["failed_requests"] == 0, fleet
    assert fleet["demotions_total"] >= 1, fleet
    procs2 = serving["configs"]["pcnn_n2_p4_procs2"]
    print(
        f"smoke: BENCH_serving.json [pcnn_n2_p4_procs2] -> "
        f"{procs2['workers_alive']}/{procs2['worker_procs']} workers alive, "
        f"image attached {procs2['image_attached']} / copied "
        f"{procs2['image_copied']}"
    )
    # The point of the shared image: every worker maps the weights,
    # nobody copies them.
    assert procs2["image_copied"] == 0, procs2
    assert procs2["workers_alive"] == procs2["worker_procs"], procs2
    for key, row in serving["configs"].items():
        if not key.startswith("scenario_"):
            continue
        print(
            f"smoke: BENCH_serving.json [{key}] -> offered {row['offered']} "
            f"(peak {row['offered_rps_peak']:g} rps), completed "
            f"{row['completed']}, shed {row['shed_total']}, "
            f"p99 {row['p99_ms']} ms, diff {row['max_abs_diff_vs_predict']:.1e}"
            + (
                f", cache hit rate {row['cache_hit_rate']:.0%}"
                if "cache_hit_rate" in row else ""
            )
        )
        # Zero-drop invariant: every admitted frame answers.
        assert row["dropped"] == 0, (key, row)
        tolerance = 1e-5 if row["transport"] == "stream" else 1e-4
        assert row["max_abs_diff_vs_predict"] <= tolerance, (key, row)
    near_dup = serving["configs"]["scenario_near_duplicate_stream"]
    assert near_dup["cache_hits"] > 0, near_dup

    # 8. Quantized serving record: int8 vs float32 compiled on the
    #    flagship config (matched im2col schedules) — accuracy within
    #    the quantization budget, full top-1 agreement, int8 ahead on
    #    throughput.
    quant = bench_quant()
    print(
        f"smoke: BENCH_quant.json [{quant['config']}] -> "
        f"f32 {quant['float32_images_per_sec']} ips, "
        f"int8 {quant['int8_images_per_sec']} ips "
        f"({quant['speedup_int8_vs_float32']}x), "
        f"rel err {quant['rel_output_error']}, "
        f"top-1 agreement {quant['top1_agreement']:.3f}, "
        f"{quant['weight_compression_vs_f32']}x weight storage"
    )
    assert quant["top1_agreement"] >= 0.99, quant
    assert quant["rel_output_error"] < 0.05, quant
    assert quant["fallback_layers"] == 0, quant
    # On matched im2col schedules the int8 path is genuinely faster
    # (int8-source im2col reads, single-span f32 accumulation, fused
    # band-wise requantize); the recorded speedup is the tracked signal
    # and the committed-number gate lives in scripts/bench_guard.py.
    # The asserted floor here is a loose regression backstop (it catches
    # structural slowdowns like accidental per-call quantization) sized
    # so shared-CI-runner noise alone cannot trip it.
    assert quant["speedup_int8_vs_float32"] >= 0.75, quant
    print("smoke: OK")
    return 0


if __name__ == "__main__":
    if "--smoke" in sys.argv[1:]:
        sys.exit(smoke())
    print("usage: python benchmarks/common.py --smoke", file=sys.stderr)
    sys.exit(2)
