"""Shared fixtures/constants for the benchmark harness.

Each ``bench_*.py`` regenerates one table or figure of the paper (see the
per-experiment index in DESIGN.md). Benchmarks print the paper's rows —
run with ``pytest benchmarks/ --benchmark-only -s`` to see them — and
assert the paper-shape claims (who wins, by roughly what factor).

``python benchmarks/common.py --smoke`` runs a seconds-scale smoke of the
perf-critical paths (runtime engine backends, plan cache, batched
predict, analytic speedup) for CI, so a regression in the hot paths fails
fast without the full benchmark suite.
"""

from __future__ import annotations

import sys
from functools import lru_cache

import numpy as np

from repro.models import (
    ModelProfile,
    profile_model,
    resnet18_cifar,
    vgg16_cifar,
    vgg16_imagenet,
)

SEED = 0


@lru_cache(maxsize=None)
def vgg16_cifar_profile() -> ModelProfile:
    model = vgg16_cifar(rng=np.random.default_rng(SEED))
    return profile_model(model, (3, 32, 32), model_name="VGG-16")


@lru_cache(maxsize=None)
def resnet18_cifar_profile() -> ModelProfile:
    model = resnet18_cifar(rng=np.random.default_rng(SEED))
    return profile_model(model, (3, 32, 32), model_name="ResNet-18")


@lru_cache(maxsize=None)
def vgg16_imagenet_profile() -> ModelProfile:
    model = vgg16_imagenet(rng=np.random.default_rng(SEED))
    return profile_model(model, (3, 224, 224), model_name="VGG-16/ImageNet")


# ---------------------------------------------------------------------
# Paper-reported values (ground truth for shape assertions)
# ---------------------------------------------------------------------
PAPER_TABLE1 = {  # n -> (flops_pruned %, compression weight, weight+idx)
    4: (56.5, 2.3, 2.2),
    3: (66.7, 3.0, 2.9),
    2: (77.8, 4.5, 4.1),
    1: (88.9, 9.0, 8.4),
}

PAPER_TABLE2 = {  # ResNet-18
    4: (54.5, 2.2, 2.1),
    3: (65.5, 3.0, 2.8),
    2: (76.7, 4.3, 4.0),
    1: (88.0, 7.9, 7.3),
}

PAPER_TABLE4 = {  # (n, |P|) -> compression weight+idx
    (4, 126): 2.14,
    (4, 32): 2.18,
    (4, 16): 2.20,
    (4, 8): 2.21,
    (4, 4): 2.23,
    (2, 36): 4.08,
    (2, 32): 4.13,
    (2, 16): 4.19,
    (2, 8): 4.26,
    (2, 4): 4.32,
}

PAPER_SPEEDUPS = {4: 2.3, 3: 3.1, 2: 4.5, 1: 9.0}
PAPER_TOPS_PER_WATT = {"dense": 3.15, "n1": 28.39}

# Literature rows quoted by the paper's comparison tables.
PAPER_TABLE5_LITERATURE = [
    ("Filter pruning [18]", "+0.15%", "33.3%", 2.8),
    ("Network slimming [19]", "+0.14%", "51.0%", 8.7),
    ("try-and-learn b=1 [20]", "-1.10%", "82.7%", 2.2),
    ("IKR [21]", "-0.90%", "84.7%", 4.3),
]

PAPER_TABLE6_LITERATURE = [
    ("Band-limited [22]", "-1.67%", "-", 2.0),
    ("try-and-learn b=4 [20]", "-2.90%", "76.0%", 4.6),
]

PAPER_TABLE8_LITERATURE = [
    ("Structured ADMM [23]", "-0.60%", 50.0),
    ("SNIP [24]", "-0.45%", 20.0),
    ("Synaptic Strength [25]", "+0.43%", 25.0),
]


# ---------------------------------------------------------------------
# CI smoke target
# ---------------------------------------------------------------------
def smoke() -> int:
    """Fast perf-path smoke: engine backends, plan cache, predict, sim."""
    from repro import runtime
    from repro.core import (
        PCNNConfig,
        PCNNPruner,
        SPMCodebook,
        encode_layer,
        enumerate_patterns,
        project_to_patterns,
    )
    from repro.models import patternnet
    from repro.nn import Tensor
    from repro.nn.functional import conv2d

    rng = np.random.default_rng(SEED)

    # 1. All registered backends match the conv2d reference.
    patterns = enumerate_patterns(2)[:8]
    weight = project_to_patterns(rng.normal(size=(16, 8, 3, 3)), patterns)
    encoded = encode_layer(weight, SPMCodebook(patterns))
    x = rng.normal(size=(2, 8, 10, 10))
    reference = conv2d(Tensor(x), Tensor(weight), padding=1).data
    for backend in runtime.available_backends():
        out = runtime.dispatch(x, weight, encoded=encoded, padding=1, backend=backend)
        np.testing.assert_allclose(out, reference, rtol=1e-9, atol=1e-10)
    print(f"smoke: backends {runtime.available_backends()} match conv2d")

    # 2. Plan cache hits on repeated forwards.
    cache = runtime.PlanCache()
    for _ in range(3):
        runtime.dispatch(x, encoded=encoded, padding=1, cache=cache)
    assert cache.stats.hits == 2 and cache.stats.misses == 1, cache.stats
    print(f"smoke: plan cache {cache.stats.hits} hits / {cache.stats.misses} misses")

    # 3. Batched predict over a pruned model, micro-batch equivalence.
    model = patternnet(channels=(8, 16), num_classes=4, rng=np.random.default_rng(SEED))
    PCNNPruner(model, PCNNConfig.uniform(2, 2)).apply()
    images = rng.normal(size=(4, 3, 12, 12))
    full = runtime.predict(model, images)
    split = runtime.predict(model, images, micro_batch=2)
    np.testing.assert_allclose(split, full, rtol=1e-9, atol=1e-10)
    print(f"smoke: predict ok, output {full.shape}")

    # 4. Analytic architecture speedup still tracks 9/n on VGG-16.
    from repro.arch import simulate_network_analytic

    result = simulate_network_analytic(vgg16_cifar_profile(), PCNNConfig.uniform(2, 13))
    assert abs(result.speedup - 4.5) < 0.1, result.speedup
    print(f"smoke: analytic VGG-16 speedup n=2 -> {result.speedup:.2f}x")
    print("smoke: OK")
    return 0


if __name__ == "__main__":
    if "--smoke" in sys.argv[1:]:
        sys.exit(smoke())
    print("usage: python benchmarks/common.py --smoke", file=sys.stderr)
    sys.exit(2)
