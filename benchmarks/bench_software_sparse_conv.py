"""Software sparse convolution — FLOPs vs wall-clock (extension bench).

Measures the pattern-grouped sparse convolution against the dense
im2col+GEMM path, and the runtime engine's cached-plan grouped-GEMM
backend against the seed's per-pattern gather loop. The multiply count
drops by exactly 9/n; the seed's honest finding stands — generic gather
loops lose to tuned BLAS — but the engine's grouped-contraction
formulation (pattern regularity -> one structured GEMM, Sec. I's
argument executed in software) recovers an order of magnitude over that
loop and runs within a small factor of dense BLAS. The cycle-level
accelerator win is still measured by :mod:`repro.arch.simulator`.
"""

import numpy as np
import pytest

from repro.core import (
    SPMCodebook,
    dense_conv_flops,
    encode_layer,
    enumerate_patterns,
    pattern_sparse_conv2d,
    project_to_patterns,
    sparse_conv_flops,
)
from repro.core.patterns import pattern_positions
from repro.nn import Tensor
from repro.nn.functional import conv2d, im2col
from repro.utils.timing import Timer


def make_layer(n=2, filters=64, channels=32, num_patterns=8, seed=0, hw=16):
    rng = np.random.default_rng(seed)
    patterns = enumerate_patterns(n)[:num_patterns]
    weight = project_to_patterns(rng.normal(size=(filters, channels, 3, 3)), patterns)
    encoded = encode_layer(weight, SPMCodebook(patterns))
    x = rng.normal(size=(1, channels, hw, hw))
    return x, weight, encoded


def seed_pattern_sparse_conv2d(x, encoded, stride=1, padding=0):
    """The seed implementation: per-pattern gather loop, index math per call.

    Kept verbatim (minus bias) as the baseline the runtime engine's
    cached-plan backend is measured against.
    """
    c_out, c_in, kh, kw = encoded.shape
    batch = x.shape[0]
    cols, (oh, ow) = im2col(x, (kh, kw), stride, padding)
    k2 = kh * kw
    out = np.zeros((cols.shape[0], c_out))
    codes, values = encoded.codes, encoded.values
    kernel_filters, kernel_channels = np.divmod(np.arange(len(codes)), c_in)
    for code in np.unique(codes):
        positions = np.array(
            pattern_positions(encoded.codebook.pattern(int(code)), kh), dtype=np.int64
        )
        members = np.flatnonzero(codes == code)
        order = members[np.argsort(kernel_filters[members], kind="stable")]
        filters_sorted = kernel_filters[order]
        col_idx = kernel_channels[order][:, None] * k2 + positions[None, :]
        contributions = np.einsum("wmn,mn->wm", cols[:, col_idx], values[order])
        boundaries = np.flatnonzero(
            np.concatenate(([True], filters_sorted[1:] != filters_sorted[:-1]))
        )
        out[:, filters_sorted[boundaries]] += np.add.reduceat(
            contributions, boundaries, axis=1
        )
    return out.reshape(batch, oh, ow, c_out).transpose(0, 3, 1, 2)


def test_sparse_conv_wallclock(benchmark):
    x, weight, encoded = make_layer(n=2)
    result = benchmark(lambda: pattern_sparse_conv2d(x, encoded, padding=1))
    reference = conv2d(Tensor(x), Tensor(weight), padding=1).data
    np.testing.assert_allclose(result, reference, rtol=1e-10)


def test_dense_conv_wallclock(benchmark):
    x, weight, _ = make_layer(n=2)
    result = benchmark(lambda: conv2d(Tensor(x), Tensor(weight), padding=1).data)
    assert result.shape == (1, 64, 16, 16)


def test_engine_beats_seed_loop_on_vgg_layer(benchmark):
    """Cached-plan grouped GEMM vs the seed gather loop, VGG-16 conv3-1 shape.

    The acceptance bar for the runtime engine: repeated-forward
    throughput at least 1.5x the seed loop (measured ~10x on CI-class
    hardware; asserted with a wide margin against machine noise).
    """
    x, _, encoded = make_layer(n=2, filters=256, channels=256, hw=8)

    def run_both():
        pattern_sparse_conv2d(x, encoded, padding=1)  # warm plan + caches
        seed_pattern_sparse_conv2d(x, encoded, padding=1)
        repeats = 5
        with Timer() as t_seed:
            for _ in range(repeats):
                seed_pattern_sparse_conv2d(x, encoded, padding=1)
        with Timer() as t_engine:
            for _ in range(repeats):
                pattern_sparse_conv2d(x, encoded, padding=1)
        return t_seed.elapsed / max(t_engine.elapsed, 1e-12)

    speedup = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print(f"\ncached-plan engine vs seed loop (256x256x3x3, n=2): {speedup:.1f}x")
    np.testing.assert_allclose(
        pattern_sparse_conv2d(x, encoded, padding=1),
        seed_pattern_sparse_conv2d(x, encoded, padding=1),
        rtol=1e-9,
    )
    assert speedup >= 1.5


def test_flops_reduction_is_9_over_n(benchmark):
    def run():
        ratios = {}
        for n in (4, 2, 1):
            _, _, encoded = make_layer(n=n)
            ratios[n] = dense_conv_flops(encoded, (16, 16)) / sparse_conv_flops(
                encoded, (16, 16)
            )
        return ratios

    ratios = benchmark(run)
    print("\nmultiply reduction:", {n: f"{r:.2f}x" for n, r in ratios.items()})
    for n, ratio in ratios.items():
        assert ratio == pytest.approx(9.0 / n)
