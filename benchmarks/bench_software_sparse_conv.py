"""Software sparse convolution — FLOPs vs wall-clock (extension bench).

Measures the pattern-grouped sparse convolution against the dense
im2col+GEMM path. The multiply count drops by exactly 9/n; wall-clock on
commodity CPUs does NOT follow (dense GEMM runs on tuned BLAS) — the
honest measurement that motivates the paper's specialized accelerator
(Sec. I). Assertions cover correctness and the FLOPs reduction; timings
are reported by pytest-benchmark for the record.
"""

import numpy as np
import pytest

from repro.core import (
    SPMCodebook,
    dense_conv_flops,
    encode_layer,
    enumerate_patterns,
    pattern_sparse_conv2d,
    project_to_patterns,
    sparse_conv_flops,
)
from repro.nn import Tensor
from repro.nn.functional import conv2d


def make_layer(n=2, filters=64, channels=32, num_patterns=8, seed=0):
    rng = np.random.default_rng(seed)
    patterns = enumerate_patterns(n)[:num_patterns]
    weight = project_to_patterns(rng.normal(size=(filters, channels, 3, 3)), patterns)
    encoded = encode_layer(weight, SPMCodebook(patterns))
    x = rng.normal(size=(1, channels, 16, 16))
    return x, weight, encoded


def test_sparse_conv_wallclock(benchmark):
    x, weight, encoded = make_layer(n=2)
    result = benchmark(lambda: pattern_sparse_conv2d(x, encoded, padding=1))
    reference = conv2d(Tensor(x), Tensor(weight), padding=1).data
    np.testing.assert_allclose(result, reference, rtol=1e-10)


def test_dense_conv_wallclock(benchmark):
    x, weight, _ = make_layer(n=2)
    result = benchmark(lambda: conv2d(Tensor(x), Tensor(weight), padding=1).data)
    assert result.shape == (1, 64, 16, 16)


def test_flops_reduction_is_9_over_n(benchmark):
    def run():
        ratios = {}
        for n in (4, 2, 1):
            _, _, encoded = make_layer(n=n)
            ratios[n] = dense_conv_flops(encoded, (16, 16)) / sparse_conv_flops(
                encoded, (16, 16)
            )
        return ratios

    ratios = benchmark(run)
    print("\nmultiply reduction:", {n: f"{r:.2f}x" for n, r in ratios.items()})
    for n, ratio in ratios.items():
        assert ratio == pytest.approx(9.0 / n)
