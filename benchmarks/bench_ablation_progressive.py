"""Ablation — progressive vs one-shot PCNN pruning (extension).

Gradually stepping the per-kernel budget down (6 -> 4 -> 2 -> 1) with a
short retrain at each level is the standard refinement of one-shot
pruning. Shape claim at the aggressive n=1 endpoint: progressive pruning
matches or beats one-shot within noise, and both end with the exact PCNN
regularity invariant.
"""

import numpy as np
import pytest

from repro.analysis import format_table
from repro.core import (
    PCNNConfig,
    PCNNPruner,
    ProgressivePruner,
    evaluate,
    fit,
    kernel_nonzeros,
)
from repro.data import ArrayDataset, DataLoader, make_synthetic_images
from repro.models import patternnet

SEED = 0


def make_setup():
    x_train, y_train, x_test, y_test = make_synthetic_images(
        n_train=320, n_test=160, num_classes=10, image_size=12, seed=SEED, noise_std=0.55
    )
    loader = DataLoader(ArrayDataset(x_train, y_train), batch_size=32, shuffle=True, seed=SEED)
    return loader, (x_test, y_test)


def pretrained_model(loader):
    model = patternnet(channels=(12, 24), num_classes=10, rng=np.random.default_rng(SEED))
    fit(model, loader, epochs=5, lr=0.01)
    return model


def test_progressive_vs_oneshot(benchmark):
    def run():
        loader, eval_data = make_setup()

        oneshot = pretrained_model(loader)
        dense_acc = evaluate(oneshot, *eval_data)
        PCNNPruner(oneshot, PCNNConfig.uniform(1, 2)).apply()
        fit(oneshot, loader, epochs=6, lr=0.01)
        oneshot_acc = evaluate(oneshot, *eval_data)

        progressive_model = pretrained_model(loader)
        pruner = ProgressivePruner(progressive_model, schedule=(4, 2, 1))
        stages = pruner.run(loader, eval_data, epochs_per_stage=2, lr=0.01)
        return dense_acc, oneshot_acc, stages, progressive_model

    dense_acc, oneshot_acc, stages, model = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + format_table(
        ["stage", "after prune", "after retrain"],
        [[f"n = {s.n}", f"{s.accuracy_after_prune:.3f}", f"{s.accuracy_after_retrain:.3f}"]
         for s in stages],
        title=f"Progressive schedule (dense {dense_acc:.3f}, one-shot n=1 {oneshot_acc:.3f})",
    ))

    progressive_acc = stages[-1].accuracy_after_retrain
    # Progressive matches or beats one-shot within noise at n=1.
    assert progressive_acc >= oneshot_acc - 0.08
    assert progressive_acc > 0.4  # far above 10% chance
    # Final state satisfies the PCNN invariant exactly.
    for _, module in model.named_modules():
        if getattr(module, "weight_mask", None) is not None:
            assert np.all(kernel_nonzeros(module.weight_mask) == 1)


def test_intermediate_stages_degrade_gracefully(benchmark):
    def run():
        loader, eval_data = make_setup()
        model = pretrained_model(loader)
        pruner = ProgressivePruner(model, schedule=(6, 4, 2))
        return pruner.run(loader, eval_data, epochs_per_stage=1, lr=0.01)

    stages = benchmark.pedantic(run, rounds=1, iterations=1)
    # Early, mild stages barely hurt (the paper's n=4..2 accuracy rows).
    assert stages[0].accuracy_after_retrain > 0.7
    assert all(s.accuracy_after_retrain > 0.4 for s in stages)
