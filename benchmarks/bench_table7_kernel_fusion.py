"""Table VII — PCNN fused with kernel-level pruning (VGG-16 / ImageNet).

PCNN n=5 contributes 1.8x; fusing with 2.4x (setting A) and 4.1x
(setting B) kernel pruning yields ~4.4x and ~7.3x — the orthogonality
claim of Sec. IV-D. Also exercises the mask-level fusion on a real model
to confirm the structural property (surviving kernels hold exactly n
weights).
"""

import numpy as np
import pytest

from repro.analysis import format_table
from repro.core import (
    PCNNConfig,
    PCNNPruner,
    apply_kernel_pruning,
    fused_kernel_report,
    pcnn_compression,
)
from repro.models import patternnet

from common import vgg16_imagenet_profile

PAPER_ROWS = [("A", 2.4, 4.4), ("B", 4.1, 7.3)]


def build_table7():
    profile = vgg16_imagenet_profile()
    cfg = PCNNConfig.uniform(5, 13)
    base = pcnn_compression(profile, cfg, setting="PCNN n=5")
    fused = [
        (
            label,
            rate,
            fused_kernel_report(profile, cfg, kernel_keep_fraction=1.0 / rate,
                                setting=f"PCNN n=5 + kernel pruning {label}"),
        )
        for label, rate, _ in PAPER_ROWS
    ]
    return base, fused


def test_table7_fusion(benchmark):
    base, fused = benchmark(build_table7)
    rows = [["PCNN n=5", "-", f"{base.weight_compression:.1f}x", "1.8x"]]
    for (label, rate, report), (_, _, paper) in zip(fused, PAPER_ROWS):
        rows.append(
            [f"+ kernel pruning {label}", f"{rate}x", f"{report.weight_compression:.1f}x",
             f"{paper}x"]
        )
    print("\n" + format_table(
        ["setting", "kernel rate", "measured fused", "paper fused"],
        rows,
        title="Table VII (PCNN + kernel pruning, VGG-16 / ImageNet)",
    ))

    assert base.weight_compression == pytest.approx(1.8, abs=0.02)
    for (label, rate, report), (_, _, paper) in zip(fused, PAPER_ROWS):
        # Orthogonality: fused rate ~= product of the individual rates.
        assert report.weight_compression == pytest.approx(1.8 * rate, rel=0.03)
        assert report.weight_compression == pytest.approx(paper, rel=0.05)


def test_table7_mask_level_fusion_structure(benchmark):
    """Mask-level check: pattern masks AND kernel masks compose cleanly."""

    def run():
        model = patternnet(channels=(8, 16), num_classes=4, rng=np.random.default_rng(0))
        PCNNPruner(model, PCNNConfig.uniform(5, 2)).apply()
        return apply_kernel_pruning(model, keep_fraction=1 / 2.4)

    masks = benchmark(run)
    for mask in masks.values():
        per_kernel = mask.reshape(-1, 9).sum(axis=1)
        assert set(np.unique(per_kernel)).issubset({0.0, 5.0})
        keep_fraction = (per_kernel > 0).mean()
        assert keep_fraction == pytest.approx(1 / 2.4, abs=0.05)
