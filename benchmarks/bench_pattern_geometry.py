"""Pattern geometry of distilled sets (extension analysis).

Analyses the D4-orbit structure and centrality of the patterns Algorithm 1
distils from a trained network. Shape claims: distilled n=4 patterns are
more centre-heavy than the candidate-set average (convolutions
concentrate energy near the kernel centre), and the orbit decomposition
bounds the distinct decode shapes hardware must support.
"""

import numpy as np
import pytest

from repro.analysis import format_table
from repro.core import (
    PCNNConfig,
    PCNNPruner,
    centrality,
    center_hit,
    enumerate_patterns,
    fit,
    orbit_decomposition,
)
from repro.data import ArrayDataset, DataLoader, make_synthetic_images
from repro.models import patternnet


def build_analysis():
    x, y, _, _ = make_synthetic_images(
        n_train=256, n_test=8, num_classes=4, image_size=8, seed=0
    )
    model = patternnet(channels=(16, 32), num_classes=4, rng=np.random.default_rng(0))
    loader = DataLoader(ArrayDataset(x, y), batch_size=32, shuffle=True, seed=0)
    fit(model, loader, epochs=4, lr=0.02)
    pruner = PCNNPruner(model, PCNNConfig.uniform(4, 2, num_patterns=8))
    distilled = pruner.distill()
    return {name: r.patterns for name, r in distilled.items()}


def test_distilled_pattern_geometry(benchmark):
    patterns_by_layer = benchmark.pedantic(build_analysis, rounds=1, iterations=1)
    candidates = enumerate_patterns(4)
    candidate_centrality = float(np.mean([centrality(int(p)) for p in candidates]))

    rows = []
    for name, patterns in patterns_by_layer.items():
        mean_centrality = float(np.mean([centrality(int(p)) for p in patterns]))
        centre_share = float(np.mean([center_hit(int(p)) for p in patterns]))
        orbits = len(orbit_decomposition([int(p) for p in patterns]))
        rows.append([name, f"{mean_centrality:.3f}", f"{centre_share:.0%}", orbits])
    print("\n" + format_table(
        ["layer", "mean centrality", "centre-hit share", "D4 orbits"],
        rows,
        title=f"Distilled-pattern geometry (candidate mean centrality "
              f"{candidate_centrality:.3f})",
    ))

    for name, patterns in patterns_by_layer.items():
        mean_centrality = float(np.mean([centrality(int(p)) for p in patterns]))
        # Distilled sets are no more peripheral than the candidate average.
        assert mean_centrality <= candidate_centrality + 0.08
        # Orbit count never exceeds the pattern count.
        assert len(orbit_decomposition([int(p) for p in patterns])) <= len(patterns)


def test_candidate_set_orbit_bound(benchmark):
    """The 126-pattern n=4 candidate set collapses to few D4 orbits."""
    orbits = benchmark(lambda: orbit_decomposition(enumerate_patterns(4).tolist()))
    # Burnside: the D4 action on C(9,4) yields ~21 orbits.
    assert 15 <= len(orbits) <= 25
    assert sum(len(v) for v in orbits.values()) == 126
