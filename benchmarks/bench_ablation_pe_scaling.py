"""Ablation — PE-array scaling (beyond the paper).

Sweeps the PE count and MACs-per-PE around the paper's 64x4 point on the
cycle-accurate layer model. Shape claims: cycles scale ~1/PEs while the
array is saturated; PCNN's balanced workload keeps utilisation high
across sizes; peak ops (and thus TOPS/W at fixed power share) scale with
the MAC count.
"""

import numpy as np
import pytest

from repro.analysis import format_table
from repro.arch import ArchConfig, ConvLayerSimulator
from repro.core import project_topn


def build_scaling():
    rng = np.random.default_rng(0)
    weight = project_topn(rng.normal(size=(64, 16, 3, 3)), 4)
    mask = (weight != 0).astype(float)
    x = np.abs(rng.normal(size=(1, 16, 10, 10)))
    x[rng.random(x.shape) < 0.2] = 0.0
    rows = []
    for num_pes in (8, 16, 32, 64):
        arch = ArchConfig(num_pes=num_pes, macs_per_pe=4)
        sim = ConvLayerSimulator(arch)
        result = sim.cycle_count(x, mask, padding=1)
        rows.append((num_pes, 4, result.cycles, result.stats.utilization))
    return rows


def test_pe_count_scaling(benchmark):
    rows = benchmark.pedantic(build_scaling, rounds=1, iterations=1)
    print("\n" + format_table(
        ["PEs", "MACs/PE", "cycles", "utilization"],
        [[p, m, c, f"{u:.2f}"] for p, m, c, u in rows],
        title="Ablation: PE-array scaling (n=4 layer, 64 filters)",
    ))

    cycles = [c for _, _, c, _ in rows]
    # More PEs -> fewer cycles, near-linearly while filters (64) saturate
    # the array.
    assert cycles[0] > cycles[1] > cycles[2] > cycles[3]
    assert cycles[0] / cycles[3] == pytest.approx(8.0, rel=0.3)
    # Balanced PCNN workload keeps utilisation high at every size.
    assert all(u > 0.6 for _, _, _, u in rows)


def test_macs_per_pe_scaling(benchmark):
    def run():
        rng = np.random.default_rng(1)
        weight = project_topn(rng.normal(size=(32, 16, 3, 3)), 4)
        mask = (weight != 0).astype(float)
        x = np.abs(rng.normal(size=(1, 16, 8, 8)))
        out = {}
        for macs in (1, 2, 4, 8):
            arch = ArchConfig(num_pes=32, macs_per_pe=macs)
            out[macs] = ConvLayerSimulator(arch).cycle_count(x, mask, padding=1).cycles
        return out

    cycles = benchmark.pedantic(run, rounds=1, iterations=1)
    assert cycles[1] > cycles[2] > cycles[4]
    # n=4 work per kernel saturates 4 MACs; 8 MACs can't split one kernel's
    # per-channel work further below one cycle per (window, channel) here.
    assert cycles[8] <= cycles[4]


def test_peak_ops_scale_with_macs(benchmark):
    peaks = benchmark(
        lambda: {p: ArchConfig(num_pes=p).peak_ops_per_second for p in (16, 32, 64, 128)}
    )
    assert peaks[128] == pytest.approx(2 * peaks[64])
    assert peaks[64] == pytest.approx(153.6e9)
