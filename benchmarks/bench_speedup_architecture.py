"""Sec. IV-E performance — speedup of the pattern-aware architecture.

Two levels:

- analytic network model on the full VGG-16 graph: 2.3x / 3.1x / 4.5x /
  9.0x for n = 4, 3, 2, 1 at 0.8 activation density (~= 9/n, since the
  dense counterpart runs the same activation-aware datapath);
- cycle-accurate simulation of a real pruned layer, including the 4-stage
  pipeline (Fig. 5), asserting the measured per-layer speedup tracks 9/n
  and that PCNN's workload stays balanced (high utilisation).
"""

import numpy as np
import pytest

from repro.analysis import format_table, series_ascii
from repro.arch import ArchConfig, ConvLayerSimulator, simulate_network_analytic
from repro.core import PCNNConfig, project_topn

from common import PAPER_SPEEDUPS, vgg16_cifar_profile


def build_network_speedups():
    profile = vgg16_cifar_profile()
    return {
        n: simulate_network_analytic(profile, PCNNConfig.uniform(n, 13)).speedup
        for n in (4, 3, 2, 1)
    }


def test_network_speedups(benchmark):
    speedups = benchmark(build_network_speedups)
    print("\n" + format_table(
        ["n", "measured speedup", "paper speedup"],
        [[n, f"{speedups[n]:.2f}x", f"{PAPER_SPEEDUPS[n]}x"] for n in (4, 3, 2, 1)],
        title="Sec. IV-E speedup over dense (VGG-16, activation density 0.8)",
    ))
    for n, paper in PAPER_SPEEDUPS.items():
        assert speedups[n] == pytest.approx(paper, rel=0.05)
    # Monotone in sparsity; n=1 reaches the 9x headline.
    assert speedups[1] > speedups[2] > speedups[3] > speedups[4]
    assert speedups[1] == pytest.approx(9.0, rel=1e-6)


def test_cycle_accurate_layer_speedup(benchmark):
    """Cycle-accurate: a realistic layer tracks the 9/n analytic speedup."""
    rng = np.random.default_rng(0)
    arch = ArchConfig(num_pes=16, macs_per_pe=4)
    sim = ConvLayerSimulator(arch)
    x = np.abs(rng.normal(size=(1, 16, 12, 12)))
    x[rng.random(x.shape) < 0.2] = 0.0  # ~0.8 activation density
    dense_weight = rng.normal(size=(32, 16, 3, 3))

    def run():
        results = {}
        dense_cycles = sim.cycle_count(x, np.ones_like(dense_weight), padding=1).cycles
        for n in (4, 2, 1):
            pruned = project_topn(dense_weight, n)
            r = sim.cycle_count(x, (pruned != 0).astype(float), padding=1)
            results[n] = (dense_cycles / r.cycles, r.stats.utilization)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + format_table(
        ["n", "cycle-accurate speedup", "ideal 9/n", "utilization"],
        [[n, f"{s:.2f}x", f"{9 / n:.2f}x", f"{u:.2f}"] for n, (s, u) in results.items()],
        title="Cycle-accurate layer speedup (16 PEs x 4 MACs)",
    ))
    for n, (speedup, utilization) in results.items():
        assert speedup == pytest.approx(9.0 / n, rel=0.25)
        assert utilization > 0.5  # PCNN keeps the MAC array busy
    assert results[1][0] > results[2][0] > results[4][0]


def test_pipeline_overhead_negligible(benchmark):
    """Fig. 5: the 4-stage pipeline adds only a constant fill latency."""
    from repro.arch import PipelineModel

    model = PipelineModel()
    cycles = benchmark(lambda: model.total_cycles([1] * 10000))
    assert cycles == 10000 + model.fill_cycles
    assert model.fill_cycles / cycles < 0.001
