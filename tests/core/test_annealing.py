"""Tests for the simulated-annealing pattern selector."""

import numpy as np
import pytest

from repro.core import (
    anneal_patterns,
    distill_patterns,
    enumerate_patterns,
    exhaustive_optimal_patterns,
    popcount,
    projection_error,
)


def random_weight(seed=0, shape=(12, 4, 3, 3)):
    return np.random.default_rng(seed).normal(size=shape)


class TestAnnealPatterns:
    def test_returns_budget_patterns_uniform_sparsity(self):
        weight = random_weight()
        result = anneal_patterns(weight, n=4, num_patterns=6, rng=np.random.default_rng(0))
        assert len(result.patterns) == 6
        assert np.all(popcount(result.patterns) == 4)
        assert len(np.unique(result.patterns)) == 6

    def test_never_worse_than_greedy(self):
        """Annealing is initialised from greedy and keeps the best state."""
        for seed in range(3):
            weight = random_weight(seed)
            greedy = distill_patterns(weight, 4, 6, method="frequency")
            annealed = anneal_patterns(
                weight, 4, 6, rng=np.random.default_rng(seed), iterations=500
            )
            assert annealed.residual <= greedy.residual + 1e-9

    def test_residual_consistent_with_projection(self):
        weight = random_weight(1)
        result = anneal_patterns(weight, 3, 4, rng=np.random.default_rng(1))
        assert result.residual == pytest.approx(
            projection_error(weight, result.patterns), rel=1e-9
        )

    def test_matches_exhaustive_on_tiny_instance(self):
        weight = random_weight(2, shape=(5, 2, 3, 3))
        candidates = enumerate_patterns(2)[:12]
        annealed = anneal_patterns(
            weight, 2, 3, candidates=candidates,
            rng=np.random.default_rng(0), iterations=3000,
        )
        _, optimal = exhaustive_optimal_patterns(weight, 2, 3, candidates=candidates)
        assert annealed.residual <= optimal * 1.05 + 1e-9

    def test_budget_clipped(self):
        weight = random_weight(3)
        result = anneal_patterns(weight, 1, 50, rng=np.random.default_rng(0), iterations=50)
        assert len(result.patterns) == 9  # C(9,1)

    def test_deterministic_given_seed(self):
        weight = random_weight(4)
        a = anneal_patterns(weight, 4, 5, rng=np.random.default_rng(7), iterations=300)
        b = anneal_patterns(weight, 4, 5, rng=np.random.default_rng(7), iterations=300)
        np.testing.assert_array_equal(a.patterns, b.patterns)
        assert a.residual == b.residual
