"""Tests for the shared training loops (repro.core.train)."""

import numpy as np
import pytest

from repro import nn
from repro.core import evaluate, fit, train_epoch
from repro.core.train import TrainHistory
from repro.data import ArrayDataset, DataLoader, make_synthetic_images
from repro.models import patternnet


@pytest.fixture(scope="module")
def setup():
    x_train, y_train, x_test, y_test = make_synthetic_images(
        n_train=96, n_test=48, num_classes=4, image_size=8, seed=0
    )
    loader = DataLoader(ArrayDataset(x_train, y_train), batch_size=32, shuffle=True, seed=0)
    return loader, x_test, y_test


def make_model(seed=0):
    return patternnet(channels=(8,), num_classes=4, rng=np.random.default_rng(seed))


class TestTrainEpoch:
    def test_returns_mean_loss(self, setup):
        loader, _, _ = setup
        model = make_model()
        loss = train_epoch(model, loader, nn.Adam(model.parameters(), lr=0.01))
        assert np.isfinite(loss) and loss > 0

    def test_loss_decreases_over_epochs(self, setup):
        loader, _, _ = setup
        model = make_model(1)
        optimizer = nn.Adam(model.parameters(), lr=0.02)
        first = train_epoch(model, loader, optimizer)
        for _ in range(4):
            last = train_epoch(model, loader, optimizer)
        assert last < first

    def test_grad_hook_called_per_batch(self, setup):
        loader, _, _ = setup
        model = make_model(2)
        calls = []
        train_epoch(
            model, loader, nn.Adam(model.parameters(), lr=0.01),
            grad_hook=lambda: calls.append(1),
        )
        assert len(calls) == len(loader)

    def test_sets_train_mode(self, setup):
        loader, _, _ = setup
        model = make_model(3)
        model.eval()
        train_epoch(model, loader, nn.Adam(model.parameters(), lr=0.01))
        assert model.training


class TestEvaluate:
    def test_eval_mode_used(self, setup):
        _, x_test, y_test = setup
        model = make_model(4)
        model.train()
        evaluate(model, x_test, y_test)
        assert not model.training

    def test_batched_equals_full(self, setup):
        _, x_test, y_test = setup
        model = make_model(5)
        full = evaluate(model, x_test, y_test, batch_size=1000)
        batched = evaluate(model, x_test, y_test, batch_size=7)
        assert full == batched

    def test_range(self, setup):
        _, x_test, y_test = setup
        model = make_model(6)
        acc = evaluate(model, x_test, y_test)
        assert 0.0 <= acc <= 1.0


class TestFit:
    def test_history_lengths(self, setup):
        loader, x_test, y_test = setup
        model = make_model(7)
        history = fit(model, loader, epochs=3, lr=0.01, eval_data=(x_test, y_test))
        assert len(history.losses) == 3
        assert len(history.accuracies) == 3
        assert history.final_accuracy == history.accuracies[-1]

    def test_no_eval_data(self, setup):
        loader, _, _ = setup
        model = make_model(8)
        history = fit(model, loader, epochs=2, lr=0.01)
        assert history.accuracies == []
        assert history.final_accuracy == 0.0

    def test_epoch_hook(self, setup):
        loader, _, _ = setup
        model = make_model(9)
        seen = []
        fit(model, loader, epochs=3, lr=0.01, epoch_hook=seen.append)
        assert seen == [0, 1, 2]

    def test_custom_optimizer(self, setup):
        loader, _, _ = setup
        model = make_model(10)
        optimizer = nn.SGD(model.parameters(), lr=0.05, momentum=0.9)
        history = fit(model, loader, epochs=2, optimizer=optimizer)
        assert len(history.losses) == 2

    def test_empty_history(self):
        assert TrainHistory().final_accuracy == 0.0
