"""Tests for quantization and deployment bundles."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DeploymentBundle,
    PCNNConfig,
    PCNNPruner,
    bundle_from_pruner,
    dequantize,
    quantization_error,
    quantize_per_kernel,
    quantize_symmetric,
)
from repro.models import patternnet
from repro.nn import Tensor
from repro.nn.functional import conv2d


def fresh_pruned_model(seed=0, n=4, quantize=None):
    model = patternnet(channels=(8, 16), num_classes=4, rng=np.random.default_rng(seed))
    pruner = PCNNPruner(model, PCNNConfig.uniform(n, 2, num_patterns=8))
    pruner.apply()
    return model, pruner


class TestQuantize:
    def test_roundtrip_small_error(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=(100,))
        q = quantize_symmetric(values, bits=8)
        assert quantization_error(values, q) < 0.01

    def test_codes_in_range(self):
        rng = np.random.default_rng(1)
        q = quantize_symmetric(rng.normal(size=50), bits=8)
        assert q.codes.max() <= 127 and q.codes.min() >= -127

    def test_zero_input(self):
        q = quantize_symmetric(np.zeros(10), bits=8)
        np.testing.assert_array_equal(dequantize(q), 0.0)

    def test_more_bits_less_error(self):
        rng = np.random.default_rng(2)
        values = rng.normal(size=200)
        errors = [
            quantization_error(values, quantize_symmetric(values, bits=b)) for b in (4, 8, 12)
        ]
        assert errors[0] > errors[1] > errors[2]

    def test_per_kernel_beats_per_tensor_on_varied_scales(self):
        rng = np.random.default_rng(3)
        values = rng.normal(size=(20, 4))
        values[::2] *= 100.0  # widely varying kernel magnitudes
        per_tensor = quantization_error(values, quantize_symmetric(values, bits=8))
        per_kernel = quantization_error(values, quantize_per_kernel(values, bits=8))
        assert per_kernel < per_tensor

    def test_per_kernel_shape_validation(self):
        with pytest.raises(ValueError):
            quantize_per_kernel(np.zeros(5))

    def test_min_bits(self):
        with pytest.raises(ValueError):
            quantize_symmetric(np.ones(3), bits=1)

    def test_storage_bits(self):
        q = quantize_symmetric(np.ones(10), bits=8)
        assert q.storage_bits == 80

    @given(st.integers(min_value=0, max_value=2**32 - 1), st.integers(min_value=4, max_value=12))
    @settings(max_examples=25)
    def test_property_error_bounded_by_stepsize(self, seed, bits):
        rng = np.random.default_rng(seed)
        values = rng.normal(size=32)
        q = quantize_symmetric(values, bits=bits)
        step = float(np.max(q.scale))
        assert np.abs(values - dequantize(q)).max() <= step / 2 + 1e-12


class TestDeploymentBundle:
    def test_bundle_roundtrip_float(self, tmp_path):
        model, pruner = fresh_pruned_model()
        bundle = bundle_from_pruner(pruner)
        path = str(tmp_path / "bundle.npz")
        bundle.save(path)
        loaded = DeploymentBundle.load(path)
        assert set(loaded.layers) == set(bundle.layers)
        for name in bundle.layers:
            np.testing.assert_array_equal(
                loaded.layers[name].codes, bundle.layers[name].codes
            )
            np.testing.assert_array_equal(
                loaded.layers[name].dense_weight(), bundle.layers[name].dense_weight()
            )

    def test_restore_into_fresh_model(self, tmp_path):
        model, pruner = fresh_pruned_model(seed=1)
        bundle = bundle_from_pruner(pruner)
        fresh = patternnet(channels=(8, 16), num_classes=4, rng=np.random.default_rng(99))
        bundle.restore_into(fresh)
        for (_, a), (_, b) in zip(model.conv_layers(), fresh.conv_layers()):
            np.testing.assert_allclose(a.effective_weight(), b.effective_weight())
            assert b.weight_mask is not None

    def test_quantized_bundle_small_error(self):
        model, pruner = fresh_pruned_model(seed=2)
        bundle = bundle_from_pruner(pruner, quantize_bits=8)
        for name, module in pruner.layers:
            restored = bundle.layers[name].dense_weight()
            original = module.effective_weight()
            rel = np.linalg.norm(restored - original) / np.linalg.norm(original)
            assert rel < 0.01

    def test_quantized_bundle_functional(self):
        """An 8-bit bundle still computes a usable convolution."""
        model, pruner = fresh_pruned_model(seed=3)
        bundle = bundle_from_pruner(pruner, quantize_bits=8)
        name, module = pruner.layers[0]
        x = np.random.default_rng(0).normal(size=(1, 3, 8, 8))
        exact = conv2d(Tensor(x), Tensor(module.effective_weight()), padding=1).data
        quant = conv2d(Tensor(x), Tensor(bundle.layers[name].dense_weight()), padding=1).data
        assert np.linalg.norm(quant - exact) / np.linalg.norm(exact) < 0.02

    def test_storage_report_compression(self):
        model, pruner = fresh_pruned_model(seed=4, n=2)
        bundle = bundle_from_pruner(pruner, quantize_bits=8)
        report = bundle.storage_report()
        for row in report.values():
            # 8-bit values + tiny SPM codes vs fp32 dense: > 9/2 * 4 / ~1.1
            assert row["compression"] > 10.0
            assert row["n"] == 2
            assert row["weight_bits"] == 8

    def test_quantized_roundtrip_through_disk(self, tmp_path):
        model, pruner = fresh_pruned_model(seed=5)
        bundle = bundle_from_pruner(pruner, quantize_bits=8)
        path = str(tmp_path / "q.npz")
        bundle.save(path)
        loaded = DeploymentBundle.load(path)
        for name in bundle.layers:
            assert loaded.layers[name].quantized
            np.testing.assert_allclose(
                loaded.layers[name].dense_weight(), bundle.layers[name].dense_weight()
            )

    def test_layer_conv_forward_through_engine(self):
        """Bundle layers execute straight from SPM storage via dispatch()."""
        model, pruner = fresh_pruned_model(seed=3)
        bundle = bundle_from_pruner(pruner)
        rng = np.random.default_rng(4)
        name, layer = next(iter(bundle.layers.items()))
        x = rng.normal(size=(2, layer.shape[1], 8, 8))
        out = layer.conv_forward(x, padding=1)
        reference = conv2d(
            Tensor(x), Tensor(layer.dense_weight()), padding=1
        ).data
        np.testing.assert_allclose(out, reference, rtol=1e-9, atol=1e-12)
        # The cached EncodedLayer (and its gather plan) is reused.
        assert layer.encoded_layer() is layer.encoded_layer()

    def test_quantized_layer_conv_forward(self):
        model, pruner = fresh_pruned_model(seed=5)
        bundle = bundle_from_pruner(pruner, quantize_bits=8)
        rng = np.random.default_rng(6)
        name, layer = next(iter(bundle.layers.items()))
        x = rng.normal(size=(1, layer.shape[1], 6, 6))
        out = layer.conv_forward(x, padding=1)
        reference = conv2d(Tensor(x), Tensor(layer.dense_weight()), padding=1).data
        np.testing.assert_allclose(out, reference, rtol=1e-9, atol=1e-12)

    def test_restore_into_wrong_model_raises(self):
        model, pruner = fresh_pruned_model(seed=6)
        bundle = bundle_from_pruner(pruner)
        wrong = patternnet(channels=(4, 4), num_classes=4, rng=np.random.default_rng(0))
        with pytest.raises((KeyError, ValueError)):
            bundle.restore_into(wrong)


class TestRestoreAttachesEncodings:
    """Regression: restore_into used to install weights and masks but
    never attach_encoding, so a restored PCNN bundle silently served
    through the dense backend."""

    def test_restored_convs_select_pattern_backend(self, tmp_path):
        from repro.nn import Conv2d
        from repro.runtime.engine import ConvRequest, select_backend

        model, pruner = fresh_pruned_model(seed=7, n=2)
        bundle = bundle_from_pruner(pruner)
        path = str(tmp_path / "bundle.npz")
        bundle.save(path)
        fresh = patternnet(channels=(8, 16), num_classes=4, rng=np.random.default_rng(8))
        DeploymentBundle.load(path).restore_into(fresh)
        convs = [m for m in fresh.modules() if isinstance(m, Conv2d)]
        assert convs
        for conv in convs:
            assert conv.encoded is not None
            x = np.zeros((1, conv.in_channels, 8, 8))
            request = ConvRequest(x=x, encoded=conv.encoded, padding=1)
            assert select_backend(request) == "pattern"

    def test_restore_reuses_bundle_cached_encoding(self):
        model, pruner = fresh_pruned_model(seed=9)
        bundle = bundle_from_pruner(pruner)
        fresh = patternnet(channels=(8, 16), num_classes=4, rng=np.random.default_rng(10))
        bundle.restore_into(fresh)
        for name, module in pruner.layers:
            restored = dict(fresh.named_modules())[name]
            assert restored.encoded is bundle.layers[name].encoded_layer()

    def test_restored_model_predicts_like_source(self):
        """Pattern-path predictions on the restored model match the
        source pruned model (same non-conv parameters by construction)."""
        from repro import runtime

        model, pruner = fresh_pruned_model(seed=11, n=2)
        bundle = bundle_from_pruner(pruner)
        fresh, _ = fresh_pruned_model(seed=11, n=2)  # same seed: same BN/FC
        bundle.restore_into(fresh)
        x = np.random.default_rng(12).normal(size=(4, 3, 16, 16))
        reference = runtime.predict(model, x)
        out = runtime.predict(fresh, x)
        np.testing.assert_allclose(out, reference, rtol=1e-9, atol=1e-12)

    def test_quantized_restore_attaches_dequantized_encoding(self):
        model, pruner = fresh_pruned_model(seed=13)
        bundle = bundle_from_pruner(pruner, quantize_bits=8)
        fresh = patternnet(channels=(8, 16), num_classes=4, rng=np.random.default_rng(14))
        bundle.restore_into(fresh)
        for name, module in pruner.layers:
            restored = dict(fresh.named_modules())[name]
            assert restored.encoded is not None
            np.testing.assert_allclose(
                restored.effective_weight(),
                bundle.layers[name].dense_weight(),
            )


class TestQuantizedBundleRoundTrip:
    """save -> load -> encoded_layer()/conv_forward for the 8-bit format."""

    def test_conv_forward_matches_unquantized_within_error_bound(self, tmp_path):
        model, pruner = fresh_pruned_model(seed=20, n=2)
        exact_bundle = bundle_from_pruner(pruner)
        quant_bundle = bundle_from_pruner(pruner, quantize_bits=8)
        path = str(tmp_path / "q.npz")
        quant_bundle.save(path)
        loaded = DeploymentBundle.load(path)
        rng = np.random.default_rng(21)
        for name, layer in exact_bundle.layers.items():
            x = rng.normal(size=(2, layer.shape[1], 8, 8))
            exact = layer.conv_forward(x, padding=1)
            quant = loaded.layers[name].conv_forward(x, padding=1)
            # Per-kernel symmetric 8-bit: the weight error is bounded by
            # step/2 per weight, so the conv error stays tiny relative
            # to the activation magnitude.
            denom = np.linalg.norm(exact)
            assert np.linalg.norm(quant - exact) / denom < 0.02
            # And the loaded encoding matches the pre-save one exactly.
            np.testing.assert_allclose(
                loaded.layers[name].encoded_layer().values,
                quant_bundle.layers[name].encoded_layer().values,
            )

    def test_storage_report_survives_round_trip(self, tmp_path):
        model, pruner = fresh_pruned_model(seed=22, n=2)
        bundle = bundle_from_pruner(pruner, quantize_bits=8)
        path = str(tmp_path / "q.npz")
        bundle.save(path)
        loaded = DeploymentBundle.load(path)
        original = bundle.storage_report()
        restored = loaded.storage_report()
        assert set(original) == set(restored)
        for name in original:
            assert original[name] == restored[name]
        assert loaded.storage_bits() == bundle.storage_bits()

    def test_codes_preserve_exact_integers(self, tmp_path):
        model, pruner = fresh_pruned_model(seed=23)
        bundle = bundle_from_pruner(pruner, quantize_bits=8)
        path = str(tmp_path / "q.npz")
        bundle.save(path)
        loaded = DeploymentBundle.load(path)
        for name in bundle.layers:
            np.testing.assert_array_equal(
                loaded.layers[name].values, bundle.layers[name].values
            )
            np.testing.assert_array_equal(
                loaded.layers[name].scales, bundle.layers[name].scales
            )
            assert loaded.layers[name].weight_bits == 8
