"""Tests for SPM encoding/decoding and the projection operators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    SPMCodebook,
    decode_layer,
    encode_layer,
    enumerate_patterns,
    project_to_patterns,
    project_topn,
    projection_error,
)


class TestSPMCodebook:
    def test_basic_properties(self):
        codebook = SPMCodebook(enumerate_patterns(4)[:32])
        assert len(codebook) == 32
        assert codebook.n_nonzero == 4
        assert codebook.index_bits == 5

    def test_index_bits_paper_values(self):
        """Fig-2 / Table-IV codebook sizes and SPM widths."""
        full_n4 = SPMCodebook(enumerate_patterns(4))
        assert len(full_n4) == 126 and full_n4.index_bits == 7
        eight = SPMCodebook(enumerate_patterns(1)[:8])
        assert eight.index_bits == 3
        four = SPMCodebook(enumerate_patterns(2)[:4])
        assert four.index_bits == 2

    def test_single_pattern_codebook(self):
        codebook = SPMCodebook([0b000000111])
        assert codebook.index_bits == 1

    @given(st.integers(min_value=1, max_value=32))
    @settings(max_examples=32)
    def test_property_index_bits_delegates_to_compression(self, num_patterns):
        """The codebook and the accounting module share one formula.

        ``SPMCodebook.index_bits`` must equal ``spm_index_bits(|P|)`` for
        every codebook size — the two used to be duplicated definitions
        that had to be kept in sync by hand.
        """
        from math import ceil, log2

        from repro.core import spm_index_bits

        codebook = SPMCodebook(enumerate_patterns(2)[:num_patterns])
        assert codebook.index_bits == spm_index_bits(num_patterns)
        expected = max(1, ceil(log2(num_patterns))) if num_patterns > 1 else 1
        assert codebook.index_bits == expected

    def test_code_pattern_roundtrip(self):
        patterns = enumerate_patterns(2)[:16]
        codebook = SPMCodebook(patterns)
        for pattern in patterns:
            assert codebook.pattern(codebook.code(int(pattern))) == pattern

    def test_contains(self):
        codebook = SPMCodebook([0b11, 0b101])
        assert 0b11 in codebook
        assert 0b110 not in codebook

    def test_mixed_sparsity_rejected(self):
        """PCNN's invariant: one sparsity per layer."""
        with pytest.raises(ValueError):
            SPMCodebook([0b1, 0b11])

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            SPMCodebook([0b11, 0b11])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SPMCodebook([])

    def test_decode_mask(self):
        codebook = SPMCodebook([0b000000111])
        np.testing.assert_array_equal(codebook.decode_mask(0), [1, 1, 1, 0, 0, 0, 0, 0, 0])


class TestEncodeDecode:
    def make_pruned_weight(self, rng, patterns, shape=(4, 3, 3, 3)):
        weight = rng.normal(size=shape)
        return project_to_patterns(weight, patterns)

    def test_roundtrip_lossless_on_pruned_weights(self):
        rng = np.random.default_rng(0)
        patterns = enumerate_patterns(4)[:16]
        weight = self.make_pruned_weight(rng, patterns)
        codebook = SPMCodebook(patterns)
        encoded = encode_layer(weight, codebook)
        decoded = decode_layer(encoded)
        np.testing.assert_allclose(decoded, weight)

    def test_equal_length_sequences(self):
        """Fig. 1 / Sec. II-A: all non-zero sequences have length n."""
        rng = np.random.default_rng(1)
        patterns = enumerate_patterns(3)[:8]
        weight = self.make_pruned_weight(rng, patterns, shape=(8, 2, 3, 3))
        encoded = encode_layer(weight, SPMCodebook(patterns))
        assert encoded.values.shape == (16, 3)
        assert encoded.codes.shape == (16,)

    def test_storage_bits(self):
        patterns = enumerate_patterns(4)[:32]  # 5-bit SPM
        rng = np.random.default_rng(2)
        weight = self.make_pruned_weight(rng, patterns, shape=(2, 2, 3, 3))
        encoded = encode_layer(weight, SPMCodebook(patterns))
        # 4 kernels x (4 weights x 32 bits + 5 index bits)
        assert encoded.storage_bits(weight_bits=32) == 4 * (4 * 32 + 5)

    def test_encode_dense_weight_is_projection(self):
        """Encoding a dense weight keeps exactly the best-pattern values."""
        rng = np.random.default_rng(3)
        patterns = enumerate_patterns(4)
        weight = rng.normal(size=(2, 2, 3, 3))
        encoded = encode_layer(weight, SPMCodebook(patterns))
        decoded = decode_layer(encoded)
        np.testing.assert_allclose(decoded, project_to_patterns(weight, patterns))

    def test_kernel_size_mismatch(self):
        codebook = SPMCodebook(enumerate_patterns(2))
        with pytest.raises(ValueError):
            encode_layer(np.zeros((1, 1, 5, 5)), codebook)


class TestProjectTopN:
    def test_keeps_largest(self):
        weight = np.arange(9, dtype=float).reshape(1, 1, 3, 3)
        out = project_topn(weight, 3)
        assert np.count_nonzero(out) == 3
        np.testing.assert_array_equal(np.sort(out.reshape(-1))[-3:], [6, 7, 8])

    def test_respects_sign(self):
        weight = np.array([[-5.0, 1.0, 0.5, 0.1, 0, 0, 0, 0, 0]]).reshape(1, 1, 3, 3)
        out = project_topn(weight, 1)
        assert out.reshape(-1)[0] == -5.0

    def test_n_zero_and_full(self):
        weight = np.ones((2, 2, 3, 3))
        assert np.count_nonzero(project_topn(weight, 0)) == 0
        np.testing.assert_array_equal(project_topn(weight, 9), weight)
        np.testing.assert_array_equal(project_topn(weight, 50), weight)

    @given(st.integers(min_value=1, max_value=9), st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=30)
    def test_property_per_kernel_counts(self, n, seed):
        rng = np.random.default_rng(seed)
        weight = rng.normal(size=(3, 2, 3, 3))
        out = project_topn(weight, n)
        counts = np.count_nonzero(out.reshape(-1, 9), axis=1)
        assert np.all(counts == n)

    @given(st.integers(min_value=1, max_value=8), st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=30)
    def test_property_topn_is_best_nonexpansive(self, n, seed):
        """Top-n keeps at least as much energy as any fixed pattern."""
        rng = np.random.default_rng(seed)
        weight = rng.normal(size=(1, 1, 3, 3))
        out = project_topn(weight, n)
        kept = (out**2).sum()
        for pattern in enumerate_patterns(n)[:20]:
            masked = project_to_patterns(weight, np.array([pattern]))
            assert kept >= (masked**2).sum() - 1e-12


class TestProjectToPatterns:
    def test_projection_idempotent(self):
        rng = np.random.default_rng(5)
        patterns = enumerate_patterns(3)[:8]
        weight = rng.normal(size=(4, 2, 3, 3))
        once = project_to_patterns(weight, patterns)
        twice = project_to_patterns(once, patterns)
        np.testing.assert_allclose(once, twice)

    def test_projection_reduces_norm(self):
        rng = np.random.default_rng(6)
        patterns = enumerate_patterns(2)[:4]
        weight = rng.normal(size=(4, 4, 3, 3))
        projected = project_to_patterns(weight, patterns)
        assert (projected**2).sum() <= (weight**2).sum()

    def test_return_indices(self):
        patterns = np.array([0b000000011, 0b110000000])
        weight = np.zeros((2, 1, 3, 3))
        weight[0, 0, 0, 0] = weight[0, 0, 0, 1] = 5.0  # positions 0,1
        weight[1, 0, 2, 1] = weight[1, 0, 2, 2] = 5.0  # positions 7,8
        projected, indices = project_to_patterns(weight, patterns, return_indices=True)
        np.testing.assert_array_equal(indices, [0, 1])
        np.testing.assert_allclose(projected, weight)

    def test_projection_error_zero_for_conforming(self):
        rng = np.random.default_rng(7)
        patterns = enumerate_patterns(4)[:8]
        weight = project_to_patterns(rng.normal(size=(2, 2, 3, 3)), patterns)
        assert projection_error(weight, patterns) == pytest.approx(0.0, abs=1e-12)

    def test_projection_error_positive_for_dense(self):
        rng = np.random.default_rng(8)
        weight = rng.normal(size=(2, 2, 3, 3))
        assert projection_error(weight, enumerate_patterns(2)[:4]) > 0

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=25)
    def test_property_full_candidate_set_equals_topn(self, seed):
        """Projecting onto the full F_n equals the top-n projection."""
        rng = np.random.default_rng(seed)
        weight = rng.normal(size=(2, 2, 3, 3))
        n = int(rng.integers(1, 9))
        full = enumerate_patterns(n)
        np.testing.assert_allclose(
            project_to_patterns(weight, full), project_topn(weight, n)
        )
