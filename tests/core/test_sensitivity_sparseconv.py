"""Tests for sensitivity analysis and the pattern-grouped sparse conv."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    PCNNConfig,
    SPMCodebook,
    dense_conv_flops,
    encode_layer,
    enumerate_patterns,
    fit,
    pattern_sparse_conv2d,
    project_to_patterns,
    sensitivity_scan,
    sparse_conv_flops,
    suggest_config,
)
from repro.data import ArrayDataset, DataLoader, make_synthetic_images
from repro.models import patternnet
from repro.nn import Tensor
from repro.nn.functional import conv2d


class TestSensitivity:
    @pytest.fixture(scope="class")
    def trained_setup(self):
        x_train, y_train, x_test, y_test = make_synthetic_images(
            n_train=192, n_test=96, num_classes=4, image_size=8, seed=0
        )
        model = patternnet(channels=(8, 16), num_classes=4, rng=np.random.default_rng(0))
        loader = DataLoader(ArrayDataset(x_train, y_train), batch_size=32, shuffle=True, seed=0)
        fit(model, loader, epochs=3, lr=0.01)
        return model, x_test, y_test

    def test_scan_covers_all_layers(self, trained_setup):
        model, x, y = trained_setup
        results = sensitivity_scan(model, x, y, ns=(1, 4))
        assert len(results) == 2
        for r in results:
            assert set(r.accuracy_drop) == {1, 4}

    def test_model_restored_after_scan(self, trained_setup):
        model, x, y = trained_setup
        before = [m.weight.data.copy() for _, m in model.conv_layers()]
        sensitivity_scan(model, x, y, ns=(1,))
        for (_, module), saved in zip(model.conv_layers(), before):
            np.testing.assert_array_equal(module.weight.data, saved)

    def test_milder_pruning_hurts_less(self, trained_setup):
        model, x, y = trained_setup
        results = sensitivity_scan(model, x, y, ns=(1, 4))
        for r in results:
            assert r.accuracy_drop[4] <= r.accuracy_drop[1] + 1e-9

    def test_max_tolerable_n(self):
        from repro.core import LayerSensitivity

        s = LayerSensitivity("layer", {1: 0.5, 2: 0.1, 4: 0.0})
        assert s.max_tolerable_n(budget=0.02) == 4
        assert s.max_tolerable_n(budget=0.2) == 2
        assert s.max_tolerable_n(budget=0.9) == 1

    def test_suggest_config_shape(self, trained_setup):
        model, x, y = trained_setup
        results = sensitivity_scan(model, x, y, ns=(1, 2, 4))
        config = suggest_config(results, budget=0.05, candidates=(1, 2, 4))
        assert len(config) == len(results)
        # Larger budget -> ns never increase.
        loose = suggest_config(results, budget=0.5, candidates=(1, 2, 4))
        assert all(a <= b for a, b in zip(loose.ns, config.ns))


class TestPatternSparseConv:
    def make_encoded(self, rng, n=2, shape=(8, 4, 3, 3), num_patterns=4):
        patterns = enumerate_patterns(n)[:num_patterns]
        weight = project_to_patterns(rng.normal(size=shape), patterns)
        return weight, encode_layer(weight, SPMCodebook(patterns))

    @pytest.mark.parametrize("stride,padding", [(1, 1), (2, 1), (1, 0)])
    def test_matches_dense_conv(self, stride, padding):
        rng = np.random.default_rng(0)
        weight, encoded = self.make_encoded(rng)
        x = rng.normal(size=(2, 4, 8, 8))
        sparse = pattern_sparse_conv2d(x, encoded, stride=stride, padding=padding)
        dense = conv2d(Tensor(x), Tensor(weight), stride=stride, padding=padding).data
        np.testing.assert_allclose(sparse, dense, rtol=1e-10, atol=1e-12)

    def test_with_bias(self):
        rng = np.random.default_rng(1)
        weight, encoded = self.make_encoded(rng)
        bias = rng.normal(size=8)
        x = rng.normal(size=(1, 4, 6, 6))
        sparse = pattern_sparse_conv2d(x, encoded, bias=bias, padding=1)
        dense = conv2d(Tensor(x), Tensor(weight), Tensor(bias), padding=1).data
        np.testing.assert_allclose(sparse, dense, rtol=1e-10)

    def test_channel_mismatch(self):
        rng = np.random.default_rng(2)
        _, encoded = self.make_encoded(rng)
        with pytest.raises(ValueError):
            pattern_sparse_conv2d(rng.normal(size=(1, 5, 6, 6)), encoded)

    def test_flops_reduction(self):
        rng = np.random.default_rng(3)
        _, encoded = self.make_encoded(rng, n=2)
        sparse = sparse_conv_flops(encoded, (8, 8))
        dense = dense_conv_flops(encoded, (8, 8))
        assert dense / sparse == pytest.approx(9 / 2)

    def test_single_pattern_codebook(self):
        rng = np.random.default_rng(4)
        weight, encoded = self.make_encoded(rng, n=3, num_patterns=1)
        x = rng.normal(size=(1, 4, 5, 5))
        sparse = pattern_sparse_conv2d(x, encoded, padding=1)
        dense = conv2d(Tensor(x), Tensor(weight), padding=1).data
        np.testing.assert_allclose(sparse, dense, rtol=1e-10)

    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=20, deadline=None)
    def test_property_equivalence(self, n, num_patterns, seed):
        rng = np.random.default_rng(seed)
        patterns = enumerate_patterns(n)
        take = min(num_patterns, len(patterns))
        chosen = patterns[rng.choice(len(patterns), size=take, replace=False)]
        weight = project_to_patterns(rng.normal(size=(4, 3, 3, 3)), chosen)
        encoded = encode_layer(weight, SPMCodebook(chosen))
        x = rng.normal(size=(1, 3, 5, 5))
        sparse = pattern_sparse_conv2d(x, encoded, padding=1)
        dense = conv2d(Tensor(x), Tensor(weight), padding=1).data
        np.testing.assert_allclose(sparse, dense, rtol=1e-9, atol=1e-10)
