"""Tests for compression accounting — regenerates Table I-IV columns."""

import numpy as np
import pytest

from repro.core import (
    CSC_INDEX_BITS,
    PCNNConfig,
    irregular_compression,
    pcnn_compression,
    spm_index_bits,
)
from repro.models import profile_model, resnet18_cifar, vgg16_cifar


@pytest.fixture(scope="module")
def vgg_profile():
    return profile_model(vgg16_cifar(rng=np.random.default_rng(0)), (3, 32, 32))


@pytest.fixture(scope="module")
def resnet_profile():
    return profile_model(resnet18_cifar(rng=np.random.default_rng(0)), (3, 32, 32))


class TestSpmIndexBits:
    @pytest.mark.parametrize(
        "patterns,bits", [(126, 7), (36, 6), (32, 5), (16, 4), (8, 3), (4, 2), (2, 1), (1, 1)]
    )
    def test_bit_widths(self, patterns, bits):
        assert spm_index_bits(patterns) == bits


class TestTable1VGG:
    """Table I: VGG-16 on CIFAR-10."""

    @pytest.mark.parametrize(
        "n,paper_weight,paper_weight_idx,paper_pruned_pct",
        [
            (4, 2.3, 2.2, 56.5),
            (3, 3.0, 2.9, 66.7),
            (2, 4.5, 4.1, 77.8),
            (1, 9.0, 8.4, 88.9),
        ],
    )
    def test_uniform_rows(self, vgg_profile, n, paper_weight, paper_weight_idx, paper_pruned_pct):
        report = pcnn_compression(vgg_profile, PCNNConfig.uniform(n, 13))
        # Weight-only compression is exactly 9/n.
        assert report.weight_compression == pytest.approx(9.0 / n, rel=1e-6)
        assert report.weight_compression == pytest.approx(paper_weight, rel=0.05)
        # weight+idx within 5% of the paper's printed value.
        assert report.weight_idx_compression == pytest.approx(paper_weight_idx, rel=0.05)
        # FLOPs pruned percentage within 1.5 points (paper rounding differs).
        assert 100 * report.flops_pruned_fraction == pytest.approx(paper_pruned_pct, abs=1.5)

    def test_baseline_totals(self, vgg_profile):
        report = pcnn_compression(vgg_profile, PCNNConfig.uniform(4, 13))
        assert report.dense_params == pytest.approx(1.47e7, rel=0.01)
        assert report.dense_macs == pytest.approx(3.13e8, rel=0.01)

    def test_various_setting_row(self, vgg_profile):
        """Footnote config 2-1-...-1: paper reports 88.8% pruned, 9.0x/8.4x."""
        cfg = PCNNConfig.from_string("2-1-1-1-1-1-1-1-1-1-1-1-1")
        report = pcnn_compression(vgg_profile, cfg)
        assert 100 * report.flops_pruned_fraction == pytest.approx(88.8, abs=0.2)
        assert report.weight_compression == pytest.approx(9.0, abs=0.1)
        assert report.weight_idx_compression == pytest.approx(8.4, rel=0.05)

    def test_n4_params_column(self, vgg_profile):
        report = pcnn_compression(vgg_profile, PCNNConfig.uniform(4, 13))
        assert report.pruned_params == pytest.approx(0.65e7, rel=0.02)


class TestTable2ResNet:
    """Table II: ResNet-18 on CIFAR-10 (1x1 layers stay dense)."""

    @pytest.mark.parametrize(
        "n,paper_weight,paper_params",
        [(4, 2.2, 0.51e7), (3, 3.0, 0.38e7), (2, 4.3, 0.26e7), (1, 7.9, 0.14e7)],
    )
    def test_uniform_rows(self, resnet_profile, n, paper_weight, paper_params):
        report = pcnn_compression(resnet_profile, PCNNConfig.uniform(n, 17))
        assert report.weight_compression == pytest.approx(paper_weight, rel=0.05)
        assert report.pruned_params == pytest.approx(paper_params, rel=0.05)

    def test_weight_compression_below_9_over_n(self, resnet_profile):
        """Dense 1x1 projections cap ResNet compression below 9/n."""
        report = pcnn_compression(resnet_profile, PCNNConfig.uniform(1, 17))
        assert report.weight_compression < 9.0
        assert report.weight_compression == pytest.approx(7.9, rel=0.03)

    def test_unpruned_layers_counted_dense(self, resnet_profile):
        report = pcnn_compression(resnet_profile, PCNNConfig.uniform(2, 17))
        dense_layers = [l for l in report.layers if not l.pruned]
        assert len(dense_layers) == 3  # three 1x1 projections
        assert all(l.index_bits_per_kernel == 0 for l in dense_layers)

    def test_flops_pruned_fraction(self, resnet_profile):
        """Paper n=4 row: 54.5% FLOPs pruned (1x1s dilute the 55.6%)."""
        report = pcnn_compression(resnet_profile, PCNNConfig.uniform(4, 17))
        assert 100 * report.flops_pruned_fraction == pytest.approx(54.5, abs=1.5)


class TestTable4PatternCountSweep:
    """Table IV: compression (weight+idx) vs |P_n| for VGG-16."""

    @pytest.mark.parametrize(
        "n,budget,paper",
        [
            (4, 126, 2.14),
            (4, 32, 2.18),
            (4, 16, 2.20),
            (4, 8, 2.21),
            (4, 4, 2.23),
            (2, 36, 4.08),
            (2, 32, 4.13),
            (2, 16, 4.19),
            (2, 8, 4.26),
            (2, 4, 4.32),
        ],
    )
    def test_sweep(self, vgg_profile, n, budget, paper):
        cfg = PCNNConfig.uniform(n, 13, num_patterns=budget)
        report = pcnn_compression(vgg_profile, cfg)
        assert report.weight_idx_compression == pytest.approx(paper, rel=0.02)

    def test_fewer_patterns_higher_compression(self, vgg_profile):
        rates = [
            pcnn_compression(
                vgg_profile, PCNNConfig.uniform(4, 13, num_patterns=v)
            ).weight_idx_compression
            for v in (126, 32, 16, 8, 4)
        ]
        assert all(a < b for a, b in zip(rates, rates[1:]))


class TestIrregularComparison:
    def test_paper_irregular_strawman(self, vgg_profile):
        """Sec. IV-B: irregular VGG-16 n=4-equivalent gives only ~2.0x."""
        report = irregular_compression(vgg_profile, 4)
        assert report.weight_idx_compression == pytest.approx(2.0, rel=0.02)

    def test_pcnn_beats_irregular_on_index_overhead(self, vgg_profile):
        pcnn = pcnn_compression(vgg_profile, PCNNConfig.uniform(4, 13))
        irregular = irregular_compression(vgg_profile, 4)
        assert pcnn.weight_idx_compression > irregular.weight_idx_compression
        # Same weight-only compression, different index cost.
        assert pcnn.weight_compression == pytest.approx(irregular.weight_compression)

    def test_csc_index_bits_constant(self):
        assert CSC_INDEX_BITS == 4


class TestReportMechanics:
    def test_summary_row_keys(self, vgg_profile):
        row = pcnn_compression(vgg_profile, PCNNConfig.uniform(2, 13)).summary_row()
        assert set(row) == {
            "benchmark",
            "conv_flops",
            "flops_pruned_pct",
            "conv_params",
            "compression_weight",
            "compression_weight_idx",
        }

    def test_config_length_mismatch(self, vgg_profile):
        with pytest.raises(ValueError):
            pcnn_compression(vgg_profile, PCNNConfig.uniform(2, 5))

    def test_weight_bits_scaling(self, vgg_profile):
        """Lower weight precision makes index overhead relatively larger."""
        cfg = PCNNConfig.uniform(4, 13)
        at32 = pcnn_compression(vgg_profile, cfg, weight_bits=32)
        at8 = pcnn_compression(vgg_profile, cfg, weight_bits=8)
        assert at8.weight_idx_compression < at32.weight_idx_compression
