"""Cross-cutting property-based tests over the PCNN core.

These encode the paper's structural identities as hypothesis properties,
independent of any specific table: compression arithmetic, pruner
invariants, and bundle round-trips over randomly drawn configurations.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DeploymentBundle,
    PCNNConfig,
    PCNNPruner,
    bundle_from_pruner,
    kernel_nonzeros,
    pcnn_compression,
    spm_index_bits,
)
from repro.models import patternnet, profile_model


@st.composite
def small_model_config(draw):
    """A random PatternNet shape + a matching PCNN config."""
    num_layers = draw(st.integers(min_value=1, max_value=3))
    channels = tuple(
        draw(st.sampled_from([4, 8, 12])) for _ in range(num_layers)
    )
    n = draw(st.integers(min_value=1, max_value=8))
    budget = draw(st.sampled_from([2, 4, 8, 32]))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    return channels, n, budget, seed


class TestCompressionIdentities:
    @given(st.integers(min_value=1, max_value=9))
    def test_all_3x3_weight_compression_is_9_over_n(self, n):
        model = patternnet(channels=(8, 8), num_classes=4, rng=np.random.default_rng(0))
        profile = profile_model(model, (3, 8, 8))
        report = pcnn_compression(profile, PCNNConfig.uniform(n, 2))
        assert report.weight_compression == pytest.approx(9.0 / n)
        assert report.flops_pruned_fraction == pytest.approx(1.0 - n / 9.0)

    @given(st.integers(min_value=1, max_value=9), st.sampled_from([2, 4, 8, 16, 32]))
    def test_weight_idx_below_weight_only(self, n, budget):
        model = patternnet(channels=(8,), num_classes=4, rng=np.random.default_rng(0))
        profile = profile_model(model, (3, 8, 8))
        report = pcnn_compression(profile, PCNNConfig.uniform(n, 1, num_patterns=budget))
        assert report.weight_idx_compression < report.weight_compression
        # Closed form for an all-3x3 model at 32-bit weights.
        bits = spm_index_bits(min(budget, report.layers[0].kernel_area and budget))
        expected = 9 * 32 / (n * 32 + report.layers[0].index_bits_per_kernel)
        assert report.weight_idx_compression == pytest.approx(expected)

    @given(st.integers(min_value=2, max_value=9))
    def test_compression_monotone_in_n(self, n):
        model = patternnet(channels=(8,), num_classes=4, rng=np.random.default_rng(0))
        profile = profile_model(model, (3, 8, 8))
        harder = pcnn_compression(profile, PCNNConfig.uniform(n - 1, 1))
        softer = pcnn_compression(profile, PCNNConfig.uniform(n, 1))
        assert harder.weight_compression > softer.weight_compression


class TestPrunerProperties:
    @given(small_model_config())
    @settings(max_examples=15, deadline=None)
    def test_pruner_always_regular(self, params):
        channels, n, budget, seed = params
        model = patternnet(channels=channels, num_classes=4, rng=np.random.default_rng(seed))
        config = PCNNConfig.uniform(n, len(channels), num_patterns=budget)
        pruner = PCNNPruner(model, config)
        pruner.apply()
        pruner.verify_regularity()
        for _, module in pruner.layers:
            counts = kernel_nonzeros(module.weight_mask)
            assert np.all(counts == min(n, 9))

    @given(small_model_config())
    @settings(max_examples=10, deadline=None)
    def test_projection_never_increases_energy(self, params):
        channels, n, budget, seed = params
        model = patternnet(channels=channels, num_classes=4, rng=np.random.default_rng(seed))
        before = [float((m.weight.data**2).sum()) for _, m in model.conv_layers()]
        config = PCNNConfig.uniform(n, len(channels), num_patterns=budget)
        PCNNPruner(model, config).apply()
        after = [float((m.weight.data**2).sum()) for _, m in model.conv_layers()]
        for b, a in zip(before, after):
            assert a <= b + 1e-9

    @given(params=small_model_config())
    @settings(max_examples=10, deadline=None)
    def test_bundle_roundtrip_property(self, tmp_path_factory, params):
        channels, n, budget, seed = params
        model = patternnet(channels=channels, num_classes=4, rng=np.random.default_rng(seed))
        config = PCNNConfig.uniform(n, len(channels), num_patterns=budget)
        pruner = PCNNPruner(model, config)
        pruner.apply()
        bundle = bundle_from_pruner(pruner)
        path = str(tmp_path_factory.mktemp("bundles") / f"b{seed}.npz")
        bundle.save(path)
        loaded = DeploymentBundle.load(path)
        for name, module in pruner.layers:
            np.testing.assert_allclose(
                loaded.layers[name].dense_weight(), module.effective_weight()
            )
