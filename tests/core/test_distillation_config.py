"""Tests for Algorithm 1 (pattern distillation) and PCNNConfig parsing."""

import numpy as np
import pytest

from repro.core import (
    DEFAULT_PATTERN_BUDGET,
    LayerConfig,
    PCNNConfig,
    distill_layer,
    distill_patterns,
    enumerate_patterns,
    exhaustive_optimal_patterns,
    pattern_frequencies,
    popcount,
    projection_error,
)


def biased_weight(rng, favored_patterns, n, kernels=200):
    """Weights whose kernels concentrate on a few patterns (Fig. 2 shape)."""
    from repro.core import patterns_to_bit_matrix

    bits = patterns_to_bit_matrix(np.asarray(favored_patterns))
    choices = rng.integers(0, len(favored_patterns), size=kernels)
    base = rng.normal(size=(kernels, 9)) * 0.05
    signal = bits[choices] * rng.normal(2.0, 0.2, size=(kernels, 9))
    return (base + signal).reshape(kernels, 1, 3, 3)


class TestPatternFrequencies:
    def test_histogram_sums_to_kernels(self):
        rng = np.random.default_rng(0)
        weight = rng.normal(size=(8, 4, 3, 3))
        candidates = enumerate_patterns(4)
        freq = pattern_frequencies(weight, candidates)
        assert freq.sum() == 32
        assert len(freq) == 126

    def test_dominant_patterns_detected(self):
        rng = np.random.default_rng(1)
        favored = enumerate_patterns(4)[[3, 70]]
        weight = biased_weight(rng, favored, 4)
        freq = pattern_frequencies(weight, enumerate_patterns(4))
        top2 = np.argsort(-freq)[:2]
        assert set(enumerate_patterns(4)[top2]) == set(favored)


class TestAlgorithm1:
    def test_selects_budget_patterns(self):
        rng = np.random.default_rng(2)
        weight = rng.normal(size=(16, 8, 3, 3))
        result = distill_layer(weight, n=4, num_patterns=8)
        assert len(result.patterns) == 8
        assert np.all(popcount(result.patterns) == 4)
        assert result.candidate_count == 126

    def test_budget_clipped_to_candidates(self):
        rng = np.random.default_rng(3)
        weight = rng.normal(size=(4, 4, 3, 3))
        result = distill_layer(weight, n=1, num_patterns=50)
        assert len(result.patterns) == 9  # C(9,1)

    def test_frequencies_sorted_descending(self):
        rng = np.random.default_rng(4)
        weight = rng.normal(size=(32, 8, 3, 3))
        result = distill_layer(weight, n=2, num_patterns=8)
        assert np.all(np.diff(result.frequencies.astype(int)) <= 0)

    def test_recovers_planted_patterns(self):
        """Kernels drawn from 4 planted patterns -> Algorithm 1 finds them."""
        rng = np.random.default_rng(5)
        favored = enumerate_patterns(3)[[0, 17, 40, 77]]
        weight = biased_weight(rng, favored, 3, kernels=400)
        result = distill_layer(weight, n=3, num_patterns=4)
        assert set(result.patterns.tolist()) == set(favored.tolist())
        assert result.residual < projection_error(weight, favored[:2])

    def test_more_patterns_never_hurt(self):
        rng = np.random.default_rng(6)
        weight = rng.normal(size=(16, 4, 3, 3))
        residuals = [
            distill_layer(weight, n=4, num_patterns=v).residual for v in (4, 8, 16, 32, 126)
        ]
        assert all(a >= b - 1e-9 for a, b in zip(residuals, residuals[1:]))
        assert residuals[-1] == pytest.approx(
            projection_error(weight, enumerate_patterns(4)), abs=1e-9
        )

    def test_greedy_near_optimal_small_instance(self):
        """Greedy (Algorithm 1) vs exhaustive MKP-1 on a tiny instance."""
        rng = np.random.default_rng(7)
        candidates = enumerate_patterns(2)[:10]
        weight = rng.normal(size=(6, 2, 3, 3))
        greedy = distill_patterns(weight, 2, 3, method="frequency", candidates=candidates)
        _, optimal_residual = exhaustive_optimal_patterns(weight, 2, 3, candidates=candidates)
        assert greedy.residual >= optimal_residual - 1e-12
        # The greedy solution should be within 50% extra residual here.
        assert greedy.residual <= optimal_residual * 1.5 + 1e-9

    def test_frequency_beats_random_on_structured_weights(self):
        """On pattern-structured weights (the realistic case, Fig. 2),
        Algorithm 1 clearly beats random selection on average."""
        rng = np.random.default_rng(8)
        favored = enumerate_patterns(4)[[5, 30, 60, 90]]
        weight = biased_weight(rng, favored, 4, kernels=300)
        greedy = distill_patterns(weight, 4, 4, method="frequency")
        random_residuals = [
            distill_patterns(
                weight, 4, 4, method="random", rng=np.random.default_rng(s)
            ).residual
            for s in range(5)
        ]
        assert greedy.residual < np.mean(random_residuals)

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            distill_patterns(np.zeros((1, 1, 3, 3)), 2, 2, method="bogus")


class TestPCNNConfig:
    def test_uniform(self):
        cfg = PCNNConfig.uniform(4, 13)
        assert len(cfg) == 13
        assert cfg.ns == [4] * 13
        assert all(layer.num_patterns == 32 for layer in cfg)

    def test_uniform_n1_budget(self):
        """Sec. IV-B: at most 8 patterns for n=1."""
        cfg = PCNNConfig.uniform(1, 5)
        assert all(layer.num_patterns == 8 for layer in cfg)

    def test_uniform_budget_clip(self):
        cfg = PCNNConfig.uniform(1, 3, num_patterns=100)
        assert all(layer.num_patterns == 9 for layer in cfg)

    def test_from_string_table1_footnote(self):
        cfg = PCNNConfig.from_string("2-1-1-1-1-1-1-1-1-1-1-1-1")
        assert len(cfg) == 13
        assert cfg[0] == LayerConfig(2, 32)
        assert cfg[1] == LayerConfig(1, 8)

    def test_from_string_custom_budgets(self):
        cfg = PCNNConfig.from_string("3-3", num_patterns={3: 16})
        assert all(layer.num_patterns == 16 for layer in cfg)

    def test_validate(self):
        cfg = PCNNConfig.uniform(2, 5)
        cfg.validate_for(5)
        with pytest.raises(ValueError):
            cfg.validate_for(13)

    def test_describe(self):
        assert PCNNConfig.from_string("2-1").describe() == "n=2-1 |P|=32-8"

    def test_invalid_layer_config(self):
        with pytest.raises(ValueError):
            LayerConfig(0, 8)
        with pytest.raises(ValueError):
            LayerConfig(2, 0)

    def test_default_budgets_match_paper(self):
        assert DEFAULT_PATTERN_BUDGET[1] == 8
        assert DEFAULT_PATTERN_BUDGET[2] == 32
        assert DEFAULT_PATTERN_BUDGET[4] == 32
