"""Tests for orthogonal (kernel/channel) pruning fusion and baselines."""

import numpy as np
import pytest

from repro.core import (
    PCNNConfig,
    PCNNPruner,
    apply_channel_pruning,
    apply_kernel_pruning,
    channel_keep_for_rate,
    channel_pruning_mask,
    combine_masks,
    filter_prune_l1,
    fused_channel_report,
    fused_kernel_report,
    kernel_pruning_mask,
    magnitude_prune_irregular,
    model_conv_density,
    network_slimming,
    pcnn_compression,
    snip_prune,
)
from repro.data import make_synthetic_images
from repro.models import patternnet, profile_model, vgg16_cifar


def fresh_model(seed=0):
    return patternnet(channels=(8, 16), num_classes=4, rng=np.random.default_rng(seed))


@pytest.fixture(scope="module")
def vgg_profile():
    return profile_model(vgg16_cifar(rng=np.random.default_rng(0)), (3, 32, 32))


class TestKernelPruningMask:
    def test_keeps_requested_fraction(self):
        rng = np.random.default_rng(0)
        weight = rng.normal(size=(8, 4, 3, 3))
        mask = kernel_pruning_mask(weight, 0.5)
        kept_kernels = mask.reshape(-1, 9).max(axis=1).sum()
        assert kept_kernels == 16  # half of 32

    def test_keeps_largest_norm_kernels(self):
        weight = np.zeros((2, 1, 3, 3))
        weight[0] = 10.0
        weight[1] = 0.1
        mask = kernel_pruning_mask(weight, 0.5)
        assert mask[0].sum() == 9 and mask[1].sum() == 0

    def test_whole_kernels_only(self):
        rng = np.random.default_rng(1)
        mask = kernel_pruning_mask(rng.normal(size=(4, 4, 3, 3)), 0.3)
        per_kernel = mask.reshape(-1, 9).sum(axis=1)
        assert set(per_kernel.tolist()).issubset({0.0, 9.0})

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            kernel_pruning_mask(np.zeros((1, 1, 3, 3)), 0.0)


class TestChannelPruningMask:
    def test_whole_channels_only(self):
        rng = np.random.default_rng(2)
        mask = channel_pruning_mask(rng.normal(size=(8, 4, 3, 3)), 0.5)
        per_channel = mask.reshape(8, -1).sum(axis=1)
        assert set(per_channel.tolist()).issubset({0.0, 36.0})
        assert (per_channel > 0).sum() == 4

    def test_keeps_largest_l1(self):
        weight = np.zeros((3, 1, 3, 3))
        weight[1] = 5.0
        mask = channel_pruning_mask(weight, 1 / 3)
        assert mask[1].sum() == 9 and mask[0].sum() == 0 and mask[2].sum() == 0


class TestMaskComposition:
    def test_combine_masks(self):
        a = np.array([1.0, 1.0, 0.0])
        b = np.array([1.0, 0.0, 0.0])
        np.testing.assert_array_equal(combine_masks(a, b), [1.0, 0.0, 0.0])
        np.testing.assert_array_equal(combine_masks(None, a), a)
        assert combine_masks(None, None) is None

    def test_pcnn_then_kernel_pruning_composes(self):
        """Sec. IV-D orthogonality: fused mask = pattern mask AND kernel mask."""
        model = fresh_model(seed=3)
        pruner = PCNNPruner(model, PCNNConfig.uniform(4, 2))
        pruner.apply()
        masks = apply_kernel_pruning(model, keep_fraction=0.5)
        for name, module in pruner.layers:
            per_kernel = masks[name].reshape(-1, 9).sum(axis=1)
            # Kernels are either fully removed or hold exactly n=4 weights.
            assert set(per_kernel.tolist()).issubset({0.0, 4.0})

    def test_pcnn_then_channel_pruning_composes(self):
        model = fresh_model(seed=4)
        pruner = PCNNPruner(model, PCNNConfig.uniform(3, 2))
        pruner.apply()
        masks = apply_channel_pruning(model, keep_fraction=0.5)
        for name, module in pruner.layers:
            per_channel = masks[name].reshape(masks[name].shape[0], -1).sum(axis=1)
            surviving = per_channel[per_channel > 0]
            # Surviving channels hold n=3 weights per kernel.
            assert np.all(surviving == 3 * module.in_channels)


class TestFusedAccounting:
    def test_table7_kernel_fusion(self, vgg_profile):
        """Table VII: PCNN n=5 (1.8x) + 2.4x kernel pruning -> ~4.4x."""
        cfg = PCNNConfig.uniform(5, 13)
        base = pcnn_compression(vgg_profile, cfg)
        assert base.weight_compression == pytest.approx(1.8, abs=0.02)
        fused_a = fused_kernel_report(vgg_profile, cfg, kernel_keep_fraction=1 / 2.4)
        assert fused_a.weight_compression == pytest.approx(1.8 * 2.4, rel=0.02)
        assert fused_a.weight_compression == pytest.approx(4.4, rel=0.05)

    def test_table7_kernel_fusion_b(self, vgg_profile):
        """Table VII row B: 4.1x kernel pruning -> ~7.3x fused."""
        cfg = PCNNConfig.uniform(5, 13)
        fused_b = fused_kernel_report(vgg_profile, cfg, kernel_keep_fraction=1 / 4.1)
        assert fused_b.weight_compression == pytest.approx(7.3, rel=0.05)

    def test_table8_channel_fusion(self, vgg_profile):
        """Table VIII: 3.75x PCNN x 9x channel pruning -> 34.4x fused.

        3.75x PCNN corresponds to n=2.4 average; we use the paper's stated
        product structure with n=2/3 mix approximated by keep fractions.
        """
        # PCNN delivering 3.75x on 3x3-only VGG means n = 9/3.75 = 2.4;
        # model it as the compression-equivalent fractional keep.
        keep = channel_keep_for_rate(9.0)
        cfg = PCNNConfig.uniform(2, 13)  # n=2 -> 4.5x PCNN
        fused = fused_channel_report(vgg_profile, cfg, channel_keep_fraction=keep)
        # Product structure: first layer keeps its input side, so slightly
        # under 4.5 * 9; must be far above either factor alone.
        assert fused.weight_compression > 30.0
        assert fused.weight_compression == pytest.approx(4.5 * 9.0, rel=0.15)

    def test_channel_keep_for_rate(self):
        assert channel_keep_for_rate(9.0) == pytest.approx(1 / 3)
        assert channel_keep_for_rate(1.0) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            channel_keep_for_rate(0.5)

    def test_fused_flops_track_kernel_keep(self, vgg_profile):
        cfg = PCNNConfig.uniform(4, 13)
        fused = fused_kernel_report(vgg_profile, cfg, kernel_keep_fraction=0.5)
        base = pcnn_compression(vgg_profile, cfg)
        assert fused.pruned_macs == pytest.approx(base.pruned_macs * 0.5, rel=0.01)


class TestBaselines:
    def test_magnitude_prune_global_density(self):
        model = fresh_model(seed=5)
        magnitude_prune_irregular(model, density=0.25)
        assert model_conv_density(model) == pytest.approx(0.25, abs=0.02)

    def test_magnitude_prune_layer_scope(self):
        model = fresh_model(seed=6)
        masks = magnitude_prune_irregular(model, density=0.5, scope="layer")
        for mask in masks.values():
            assert np.count_nonzero(mask) / mask.size == pytest.approx(0.5, abs=0.05)

    def test_magnitude_prune_irregular_kernels_unequal(self):
        """Irregular pruning yields unequal per-kernel counts — the workload
        imbalance PCNN eliminates."""
        model = fresh_model(seed=7)
        masks = magnitude_prune_irregular(model, density=0.3)
        counts = np.concatenate(
            [np.count_nonzero(m.reshape(-1, 9), axis=1) for m in masks.values()]
        )
        assert len(np.unique(counts)) > 1

    def test_magnitude_invalid_args(self):
        model = fresh_model(seed=8)
        with pytest.raises(ValueError):
            magnitude_prune_irregular(model, density=0.0)
        with pytest.raises(ValueError):
            magnitude_prune_irregular(model, density=0.5, scope="bogus")

    def test_filter_prune(self):
        model = fresh_model(seed=9)
        masks = filter_prune_l1(model, keep_fraction=0.5)
        for mask in masks.values():
            per_filter = mask.reshape(mask.shape[0], -1).max(axis=1)
            assert per_filter.sum() == mask.shape[0] // 2

    def test_network_slimming_uses_gamma(self):
        model = fresh_model(seed=10)
        # Make one BN scale dominant per layer so selection is predictable.
        bn_layers = [m for m in model.modules() if hasattr(m, "gamma")]
        for bn in bn_layers:
            bn.gamma.data[...] = 0.01
            bn.gamma.data[0] = 1.0
        masks = network_slimming(model, keep_fraction=0.1)
        for mask in masks.values():
            assert mask[0].sum() > 0  # dominant channel kept

    def test_snip_density(self):
        x, y, _, _ = make_synthetic_images(n_train=32, n_test=8, num_classes=4, image_size=8)
        model = fresh_model(seed=11)
        snip_prune(model, x, y, density=0.3)
        assert model_conv_density(model) == pytest.approx(0.3, abs=0.05)

    def test_density_of_unmasked_model(self):
        assert model_conv_density(fresh_model(seed=12)) == 1.0
