"""Tests for pattern bitmask math, including hypothesis property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    best_pattern_indices,
    enumerate_patterns,
    format_pattern,
    full_pattern_count,
    kernel_to_pattern,
    mask_to_pattern,
    pattern_count,
    pattern_energy,
    pattern_positions,
    pattern_to_mask,
    patterns_to_bit_matrix,
    popcount,
    positions_to_pattern,
)


class TestCounts:
    def test_full_pattern_count_paper(self):
        """Sec. II-A: sum over i of C(9, i) = 512 total patterns."""
        assert full_pattern_count(3) == 512
        assert sum(pattern_count(i, 3) for i in range(10)) == 512

    def test_max_pattern_count_paper(self):
        """Sec. II-A: max_i C(9, i) = 126 (reached at n=4 and n=5)."""
        assert max(pattern_count(i, 3) for i in range(10)) == 126
        assert pattern_count(4, 3) == 126
        assert pattern_count(5, 3) == 126

    def test_n2_count_table4(self):
        """Table IV: the full set for n=2 has C(9,2) = 36 patterns."""
        assert pattern_count(2, 3) == 36

    def test_n1_count(self):
        assert pattern_count(1, 3) == 9


class TestEnumeration:
    @pytest.mark.parametrize("n", range(0, 10))
    def test_enumeration_size(self, n):
        patterns = enumerate_patterns(n)
        assert len(patterns) == pattern_count(n, 3)
        assert len(np.unique(patterns)) == len(patterns)

    @pytest.mark.parametrize("n", [1, 2, 4])
    def test_enumeration_popcounts(self, n):
        assert np.all(popcount(enumerate_patterns(n)) == n)

    def test_enumeration_sorted(self):
        patterns = enumerate_patterns(3)
        assert np.all(np.diff(patterns) > 0)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            enumerate_patterns(10)
        with pytest.raises(ValueError):
            enumerate_patterns(-1)

    def test_5x5_kernels_supported(self):
        assert len(enumerate_patterns(1, kernel_size=5)) == 25


class TestConversions:
    def test_mask_roundtrip(self):
        for pattern in enumerate_patterns(3):
            assert mask_to_pattern(pattern_to_mask(int(pattern))) == pattern

    def test_positions_roundtrip(self):
        pattern = 0b101000101
        assert positions_to_pattern(pattern_positions(pattern)) == pattern

    def test_pattern_to_mask_layout(self):
        # Bit 0 is (row 0, col 0); bit 8 is (row 2, col 2) — row-major.
        mask = pattern_to_mask(0b100000001)
        assert mask[0, 0] == 1 and mask[2, 2] == 1
        assert mask.sum() == 2

    def test_bit_matrix_matches_masks(self):
        patterns = enumerate_patterns(2)
        bits = patterns_to_bit_matrix(patterns)
        for row, pattern in zip(bits, patterns):
            np.testing.assert_array_equal(row.reshape(3, 3), pattern_to_mask(int(pattern)))

    def test_format_pattern(self):
        art = format_pattern(0b000000111)
        assert art.splitlines() == ["X X X", ". . .", ". . ."]


class TestEnergyAndMatching:
    def test_energy_formula(self):
        kernel = np.arange(9, dtype=float).reshape(1, 9)
        pattern = np.array([0b110000000])  # positions 7, 8
        energy = pattern_energy(kernel, pattern)
        assert energy[0, 0] == pytest.approx(49.0 + 64.0)

    def test_best_pattern_is_topn(self):
        """With the full candidate set F_n, the nearest pattern is the one
        covering the top-n magnitudes."""
        rng = np.random.default_rng(0)
        kernels = rng.normal(size=(50, 9))
        candidates = enumerate_patterns(3)
        best = best_pattern_indices(kernels, candidates)
        for kernel, index in zip(kernels, best):
            expected = kernel_to_pattern(kernel.reshape(3, 3), 3)
            assert int(candidates[index]) == expected

    def test_kernel_to_pattern_edges(self):
        kernel = np.ones((3, 3))
        assert kernel_to_pattern(kernel, 0) == 0
        assert kernel_to_pattern(kernel, 9) == 511
        assert kernel_to_pattern(kernel, 12) == 511

    def test_kernel_to_pattern_deterministic_ties(self):
        kernel = np.ones((3, 3))
        assert kernel_to_pattern(kernel, 2) == 0b000000011  # lowest positions win


class TestPropertyBased:
    @given(st.integers(min_value=0, max_value=511))
    def test_popcount_matches_python(self, pattern):
        assert popcount(np.array([pattern]))[0] == bin(pattern).count("1")

    @given(st.integers(min_value=0, max_value=511))
    def test_mask_pattern_roundtrip(self, pattern):
        assert mask_to_pattern(pattern_to_mask(pattern)) == pattern

    @given(
        st.lists(st.integers(min_value=0, max_value=8), min_size=1, max_size=9, unique=True)
    )
    def test_positions_pattern_roundtrip(self, positions):
        pattern = positions_to_pattern(positions)
        assert pattern_positions(pattern) == sorted(positions)

    @given(st.integers(min_value=1, max_value=8), st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=30)
    def test_projection_energy_bound(self, n, seed):
        """Retained energy of the best pattern >= energy of any single one."""
        rng = np.random.default_rng(seed)
        kernel = rng.normal(size=(1, 9))
        candidates = enumerate_patterns(n)
        energies = pattern_energy(kernel, candidates)
        best = best_pattern_indices(kernel, candidates)[0]
        assert energies[0, best] == energies.max()
