"""Tests for PCNNPruner (end-to-end flow) and ADMM fine-tuning."""

import numpy as np
import pytest

from repro import nn
from repro.core import (
    ADMMFineTuner,
    PCNNConfig,
    PCNNPruner,
    enumerate_patterns,
    evaluate,
    fit,
    kernel_nonzeros,
    projection_error,
    train_epoch,
)
from repro.data import ArrayDataset, DataLoader, make_synthetic_images
from repro.models import patternnet, profile_model, resnet18_cifar


@pytest.fixture(scope="module")
def tiny_model():
    return patternnet(channels=(8, 16), num_classes=4, rng=np.random.default_rng(0))


def fresh_patternnet(seed=0, channels=(8, 16), classes=4):
    return patternnet(channels=channels, num_classes=classes, rng=np.random.default_rng(seed))


class TestPCNNPruner:
    def test_finds_prunable_layers(self):
        model = fresh_patternnet()
        pruner = PCNNPruner(model, PCNNConfig.uniform(4, 2))
        assert len(pruner.layers) == 2

    def test_resnet_skips_1x1(self):
        model = resnet18_cifar(rng=np.random.default_rng(0))
        pruner = PCNNPruner(model, PCNNConfig.uniform(4, 17))
        assert len(pruner.layers) == 17
        assert all(m.kernel_size == 3 for _, m in pruner.layers)

    def test_config_mismatch_raises(self):
        model = fresh_patternnet()
        with pytest.raises(ValueError):
            PCNNPruner(model, PCNNConfig.uniform(4, 5))

    def test_apply_sets_masks_and_projects(self):
        model = fresh_patternnet(seed=1)
        pruner = PCNNPruner(model, PCNNConfig.uniform(2, 2))
        info = pruner.apply()
        assert set(info) == {name for name, _ in pruner.layers}
        for name, module in pruner.layers:
            assert module.weight_mask is not None
            counts = kernel_nonzeros(module.weight_mask)
            assert np.all(counts == 2)
            # Weights outside the mask are zero after projection.
            np.testing.assert_array_equal(
                module.weight.data * (1 - module.weight_mask), 0.0
            )

    def test_verify_regularity(self):
        model = fresh_patternnet(seed=2)
        pruner = PCNNPruner(model, PCNNConfig.uniform(3, 2))
        pruner.apply()
        pruner.verify_regularity()  # must not raise

    def test_verify_without_apply_raises(self):
        model = fresh_patternnet(seed=3)
        pruner = PCNNPruner(model, PCNNConfig.uniform(3, 2))
        with pytest.raises(RuntimeError):
            pruner.verify_regularity()

    def test_layer_sparsity(self):
        model = fresh_patternnet(seed=4)
        pruner = PCNNPruner(model, PCNNConfig.uniform(3, 2))
        info = pruner.apply()
        for layer_info in info.values():
            assert layer_info.sparsity == pytest.approx(1 - 3 / 9)

    def test_encode_roundtrip(self):
        model = fresh_patternnet(seed=5)
        pruner = PCNNPruner(model, PCNNConfig.uniform(4, 2))
        pruner.apply()
        encoded = pruner.encode()
        from repro.core import decode_layer

        for name, module in pruner.layers:
            np.testing.assert_allclose(decode_layer(encoded[name]), module.effective_weight())

    def test_encode_before_apply_raises(self):
        model = fresh_patternnet(seed=6)
        pruner = PCNNPruner(model, PCNNConfig.uniform(4, 2))
        with pytest.raises(RuntimeError):
            pruner.encode()

    def test_pattern_budget_respected(self):
        model = fresh_patternnet(seed=7, channels=(16, 32))
        cfg = PCNNConfig.uniform(4, 2, num_patterns=8)
        pruner = PCNNPruner(model, cfg)
        info = pruner.apply()
        for layer_info in info.values():
            assert len(layer_info.patterns) <= 8

    def test_compression_report_integration(self):
        model = fresh_patternnet(seed=8)
        profile = profile_model(model, (3, 16, 16))
        pruner = PCNNPruner(model, PCNNConfig.uniform(3, 2))
        report = pruner.compression_report(profile)
        assert report.weight_compression == pytest.approx(3.0)

    def test_masked_model_still_trains(self):
        """Hard-pruned model keeps pruned weights at zero through training."""
        x_train, y_train, _, _ = make_synthetic_images(
            n_train=64, n_test=8, num_classes=4, image_size=8, seed=0
        )
        model = fresh_patternnet(seed=9)
        pruner = PCNNPruner(model, PCNNConfig.uniform(2, 2))
        pruner.apply()
        loader = DataLoader(ArrayDataset(x_train, y_train), batch_size=32, shuffle=True, seed=0)
        optimizer = nn.Adam(model.parameters(), lr=0.01)
        train_epoch(model, loader, optimizer)
        for _, module in pruner.layers:
            off_pattern = module.weight.data * (1 - module.weight_mask)
            # Gradients never flowed to masked weights (mask applied in fwd),
            # so effective weights stay pattern-conforming.
            np.testing.assert_array_equal(module.effective_weight() * (1 - module.weight_mask), 0.0)


class TestADMM:
    def make_training_setup(self, seed=0, n_train=96):
        x_train, y_train, x_test, y_test = make_synthetic_images(
            n_train=n_train, n_test=48, num_classes=4, image_size=8, seed=seed
        )
        model = fresh_patternnet(seed=seed)
        loader = DataLoader(ArrayDataset(x_train, y_train), batch_size=32, shuffle=True, seed=0)
        return model, loader, (x_test, y_test)

    @staticmethod
    def relative_projection_error(model, patterns):
        numerator = denominator = 0.0
        for name, module in model.named_modules():
            if name in patterns:
                w = module.weight.data
                numerator += projection_error(w, patterns[name])
                denominator += float((w**2).sum())
        return numerator / denominator

    def test_admm_drives_weights_toward_patterns(self):
        """The point of the ADMM stage: the fraction of weight energy that
        hard pruning would destroy shrinks substantially."""
        model, loader, _ = self.make_training_setup()
        # Pretrain briefly so weights are non-trivial.
        fit(model, loader, epochs=2, lr=0.01)
        pruner = PCNNPruner(model, PCNNConfig.uniform(2, 2))
        distilled = pruner.distill()
        patterns = {name: result.patterns for name, result in distilled.items()}
        before = self.relative_projection_error(model, patterns)
        tuner = ADMMFineTuner(model, patterns, rho=0.1)
        optimizer = nn.SGD(model.parameters(), lr=0.05, momentum=0.9)
        tuner.run(loader, epochs=6, optimizer=optimizer)
        after = self.relative_projection_error(model, patterns)
        assert after < 0.7 * before

    def test_finalize_installs_conforming_masks(self):
        model, loader, _ = self.make_training_setup(seed=1)
        pruner = PCNNPruner(model, PCNNConfig.uniform(3, 2))
        patterns = {name: r.patterns for name, r in pruner.distill().items()}
        tuner = ADMMFineTuner(model, patterns, rho=0.05)
        tuner.run(loader, epochs=1, lr=0.01)
        masks = tuner.finalize()
        for name, module in pruner.layers:
            counts = kernel_nonzeros(masks[name])
            assert np.all(counts == 3)
            assert projection_error(module.weight.data, patterns[name]) == pytest.approx(
                0.0, abs=1e-12
            )

    def test_penalty_hook_adds_gradient(self):
        model, _, _ = self.make_training_setup(seed=2)
        pruner = PCNNPruner(model, PCNNConfig.uniform(2, 2))
        patterns = {name: r.patterns for name, r in pruner.distill().items()}
        tuner = ADMMFineTuner(model, patterns, rho=1.0)
        name, module = tuner.layers[0]
        module.weight.grad = None
        tuner.penalty_gradient_hook()
        state = tuner.state[name]
        np.testing.assert_allclose(
            module.weight.grad, 1.0 * (module.weight.data - state.z + state.u)
        )

    def test_unknown_layer_raises(self):
        model, _, _ = self.make_training_setup(seed=3)
        with pytest.raises(KeyError):
            ADMMFineTuner(model, {"not.a.layer": enumerate_patterns(2)[:4]})

    def test_admm_preserves_accuracy_better_than_hard_prune(self):
        """The paper's motivation for ADMM: fine-tuned pattern-constrained
        weights beat one-shot projection. We verify the weaker, robust
        claim: after ADMM + finalize, accuracy recovers to within a few
        points of dense."""
        model, loader, (x_test, y_test) = self.make_training_setup(seed=4, n_train=160)
        fit(model, loader, epochs=4, lr=0.02)
        dense_acc = evaluate(model, x_test, y_test)

        pruner = PCNNPruner(model, PCNNConfig.uniform(2, 2))
        patterns = {name: r.patterns for name, r in pruner.distill().items()}
        tuner = ADMMFineTuner(model, patterns, rho=0.02)
        tuner.run(loader, epochs=3, lr=0.01)
        tuner.finalize()
        # Masked retraining epochs after hard prune (paper's last stage).
        fit(model, loader, epochs=4, lr=0.01)
        pruned_acc = evaluate(model, x_test, y_test)
        assert pruned_acc >= dense_acc - 0.25
        assert pruned_acc > 0.5  # far above the 0.25 chance level

    def test_dual_residuals_recorded(self):
        model, loader, _ = self.make_training_setup(seed=5)
        pruner = PCNNPruner(model, PCNNConfig.uniform(2, 2))
        patterns = {name: r.patterns for name, r in pruner.distill().items()}
        tuner = ADMMFineTuner(model, patterns, rho=0.05)
        tuner.run(loader, epochs=2, lr=0.01)
        for state in tuner.state.values():
            assert len(state.residuals) == 2
