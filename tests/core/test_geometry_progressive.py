"""Tests for pattern geometry (D4 symmetry) and progressive pruning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    PCNNConfig,
    ProgressivePruner,
    canonical_pattern,
    center_hit,
    centrality,
    dihedral_orbit,
    enumerate_patterns,
    evaluate,
    fit,
    flip_pattern,
    kernel_nonzeros,
    orbit_decomposition,
    popcount,
    rotate_pattern,
)
from repro.data import ArrayDataset, DataLoader, make_synthetic_images
from repro.models import patternnet

pattern_strategy = st.integers(min_value=0, max_value=511)


class TestRotationsAndFlips:
    def test_rotation_example(self):
        # Top row (positions 0,1,2) rotates CW onto the right column.
        top_row = 0b000000111
        right_col = rotate_pattern(top_row, 1)
        assert right_col == 0b100100100  # positions 2, 5, 8

    def test_flip_example(self):
        left_col = 0b001001001  # positions 0, 3, 6
        assert flip_pattern(left_col, "horizontal") == 0b100100100

    def test_flip_vertical(self):
        top_row = 0b000000111
        assert flip_pattern(top_row, "vertical") == 0b111000000

    def test_bad_axis(self):
        with pytest.raises(ValueError):
            flip_pattern(1, "diagonal")

    @given(pattern_strategy)
    def test_property_four_rotations_identity(self, pattern):
        assert rotate_pattern(pattern, 4) == pattern

    @given(pattern_strategy)
    def test_property_double_flip_identity(self, pattern):
        assert flip_pattern(flip_pattern(pattern)) == pattern

    @given(pattern_strategy, st.integers(min_value=0, max_value=3))
    def test_property_rotation_preserves_popcount(self, pattern, turns):
        rotated = rotate_pattern(pattern, turns)
        assert popcount(np.array([rotated]))[0] == popcount(np.array([pattern]))[0]

    def test_center_fixed_under_d4(self):
        centre_only = 0b000010000
        assert dihedral_orbit(centre_only) == {centre_only}


class TestOrbits:
    @given(pattern_strategy)
    @settings(max_examples=50)
    def test_property_orbit_size_divides_8(self, pattern):
        size = len(dihedral_orbit(pattern))
        assert size in (1, 2, 4, 8)

    @given(pattern_strategy)
    @settings(max_examples=50)
    def test_property_canonical_is_orbit_invariant(self, pattern):
        label = canonical_pattern(pattern)
        for member in dihedral_orbit(pattern):
            assert canonical_pattern(member) == label

    def test_orbit_decomposition_partitions(self):
        patterns = enumerate_patterns(2)
        groups = orbit_decomposition(patterns)
        members = sorted(p for group in groups.values() for p in group)
        assert members == sorted(patterns.tolist())

    def test_orbit_count_n1(self):
        """n=1 patterns fall into 3 orbits: centre, edge-mid, corner."""
        groups = orbit_decomposition(enumerate_patterns(1))
        assert len(groups) == 3


class TestCentrality:
    def test_center_pattern_zero(self):
        assert centrality(0b000010000) == 0.0

    def test_corner_pattern_one(self):
        assert centrality(0b000000001) == 1.0

    def test_cross_pattern(self):
        # Centre + 4 edge-mids: mean distance = 4/5.
        cross = 0b010111010
        assert centrality(cross) == pytest.approx(4 / 5)

    def test_center_hit(self):
        assert center_hit(0b000010000)
        assert not center_hit(0b000000001)

    def test_empty_pattern(self):
        assert centrality(0) == 0.0


class TestProgressivePruner:
    @pytest.fixture(scope="class")
    def setup(self):
        x_train, y_train, x_test, y_test = make_synthetic_images(
            n_train=192, n_test=96, num_classes=4, image_size=8, seed=0
        )
        loader = DataLoader(ArrayDataset(x_train, y_train), batch_size=32, shuffle=True, seed=0)
        return loader, (x_test, y_test)

    def test_requires_decreasing_schedule(self):
        model = patternnet(channels=(8,), num_classes=4, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            ProgressivePruner(model, schedule=(2, 4))

    def test_stages_recorded_and_final_sparsity(self, setup):
        loader, eval_data = setup
        model = patternnet(channels=(8, 16), num_classes=4, rng=np.random.default_rng(1))
        fit(model, loader, epochs=2, lr=0.01)
        pruner = ProgressivePruner(model, schedule=(4, 2))
        stages = pruner.run(loader, eval_data, epochs_per_stage=1)
        assert [s.n for s in stages] == [4, 2]
        # Final masks have exactly 2 non-zeros per kernel.
        for _, module in model.named_modules():
            if hasattr(module, "weight_mask") and module.weight_mask is not None:
                assert np.all(kernel_nonzeros(module.weight_mask) == 2)

    def test_retraining_never_below_prune_accuracy(self, setup):
        loader, eval_data = setup
        model = patternnet(channels=(8, 16), num_classes=4, rng=np.random.default_rng(2))
        fit(model, loader, epochs=2, lr=0.01)
        pruner = ProgressivePruner(model, schedule=(4, 2, 1))
        stages = pruner.run(loader, eval_data, epochs_per_stage=2)
        for stage in stages:
            assert stage.accuracy_after_retrain >= stage.accuracy_after_prune - 0.15

    def test_final_accuracy_property(self, setup):
        loader, eval_data = setup
        model = patternnet(channels=(8,), num_classes=4, rng=np.random.default_rng(3))
        pruner = ProgressivePruner(model, schedule=(2,))
        with pytest.raises(RuntimeError):
            _ = pruner.final_accuracy
        pruner.run(loader, eval_data, epochs_per_stage=1)
        assert pruner.final_accuracy == pruner.stages[-1].accuracy_after_retrain
