"""Pydocstyle-lite: the public runtime/serving API must stay documented.

Walks every module under ``repro.runtime`` and ``repro.serving`` and
asserts that (a) the module has a docstring, (b) every ``__all__``
symbol has a real docstring (not a one-word stub), and (c) every public
method/property *defined on* an ``__all__`` class is documented too.
PR 2-3 grew these packages quickly and several additions shipped with
thin or stale docs; this check is what keeps the next growth spurt
honest. Scoped to the serving-facing packages on purpose — the research
code under core/arch documents itself against the paper instead.
"""

import importlib
import inspect
import pkgutil

import pytest

#: Packages whose public API the docstring contract covers.
PACKAGES = ["repro.runtime", "repro.serving"]

#: Shortest acceptable docstring — long enough to force a sentence.
MIN_LENGTH = 20


def _iter_modules():
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        yield package_name, package
        for info in pkgutil.iter_modules(package.__path__):
            name = f"{package_name}.{info.name}"
            yield name, importlib.import_module(name)


MODULES = dict(_iter_modules())


def _docstring_problems(qualname, obj):
    doc = inspect.getdoc(obj)
    if not doc or len(doc.strip()) < MIN_LENGTH:
        return [f"{qualname}: missing or stub docstring"]
    return []


def _public_members(cls):
    """Callables and properties defined on the class itself (not bases,
    not dunders, not private helpers)."""
    for name, member in vars(cls).items():
        if name.startswith("_"):
            continue
        if isinstance(member, property):
            yield name, member.fget
        elif inspect.isfunction(member):
            yield name, member
        elif isinstance(member, (classmethod, staticmethod)):
            yield name, member.__func__


@pytest.mark.parametrize("module_name", sorted(MODULES))
def test_module_docstring(module_name):
    assert _docstring_problems(module_name, MODULES[module_name]) == []


@pytest.mark.parametrize("module_name", sorted(MODULES))
def test_public_api_docstrings(module_name):
    module = MODULES[module_name]
    problems = []
    for symbol in getattr(module, "__all__", []):
        obj = getattr(module, symbol)
        if not (inspect.isclass(obj) or callable(obj)):
            continue  # module-level constants document themselves inline
        problems += _docstring_problems(f"{module_name}.{symbol}", obj)
        if inspect.isclass(obj):
            for name, member in _public_members(obj):
                problems += _docstring_problems(
                    f"{module_name}.{symbol}.{name}", member
                )
    assert problems == [], "\n".join(problems)
