"""Unit tests for repro.nn.functional (conv, pooling, norm, softmax)."""

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn import functional as F

from tests.conftest import check_gradients


def reference_conv2d(x, w, b=None, stride=1, padding=1):
    """Naive direct convolution used as ground truth."""
    n, c_in, h, wd = x.shape
    c_out, _, kh, kw = w.shape
    oh = (h + 2 * padding - kh) // stride + 1
    ow = (wd + 2 * padding - kw) // stride + 1
    xp = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out = np.zeros((n, c_out, oh, ow))
    for ni in range(n):
        for co in range(c_out):
            for i in range(oh):
                for j in range(ow):
                    window = xp[ni, :, i * stride : i * stride + kh, j * stride : j * stride + kw]
                    out[ni, co, i, j] = np.sum(window * w[co])
            if b is not None:
                out[ni, co] += b[co]
    return out


class TestIm2col:
    def test_shapes(self, rng):
        x = rng.normal(size=(2, 3, 8, 8))
        cols, (oh, ow) = F.im2col(x, (3, 3), stride=1, padding=1)
        assert (oh, ow) == (8, 8)
        assert cols.shape == (2 * 8 * 8, 3 * 9)

    def test_stride(self, rng):
        x = rng.normal(size=(1, 1, 8, 8))
        cols, (oh, ow) = F.im2col(x, (3, 3), stride=2, padding=1)
        assert (oh, ow) == (4, 4)

    def test_column_ordering_row_major(self):
        # Kernel position p = row*KW + col must map to column index p for C=1.
        x = np.arange(9, dtype=float).reshape(1, 1, 3, 3)
        cols, (oh, ow) = F.im2col(x, (3, 3), stride=1, padding=0)
        assert (oh, ow) == (1, 1)
        np.testing.assert_array_equal(cols[0], np.arange(9))

    def test_col2im_adjoint(self, rng):
        """<im2col(x), y> == <x, col2im(y)> — adjoint property."""
        x = rng.normal(size=(2, 3, 6, 6))
        cols, _ = F.im2col(x, (3, 3), stride=1, padding=1)
        y = rng.normal(size=cols.shape)
        back = F.col2im(y, x.shape, (3, 3), stride=1, padding=1)
        np.testing.assert_allclose((cols * y).sum(), (x * back).sum(), rtol=1e-10)


class TestConv2d:
    @pytest.mark.parametrize("stride,padding", [(1, 1), (1, 0), (2, 1), (2, 0)])
    def test_matches_reference(self, rng, stride, padding):
        x = rng.normal(size=(2, 3, 7, 7))
        w = rng.normal(size=(4, 3, 3, 3))
        b = rng.normal(size=(4,))
        out = F.conv2d(Tensor(x), Tensor(w), Tensor(b), stride=stride, padding=padding)
        expected = reference_conv2d(x, w, b, stride=stride, padding=padding)
        np.testing.assert_allclose(out.data, expected, rtol=1e-10, atol=1e-12)

    def test_1x1_kernel(self, rng):
        x = rng.normal(size=(1, 4, 5, 5))
        w = rng.normal(size=(2, 4, 1, 1))
        out = F.conv2d(Tensor(x), Tensor(w), stride=1, padding=0)
        expected = np.einsum("nchw,oc->nohw", x, w[:, :, 0, 0])
        np.testing.assert_allclose(out.data, expected, rtol=1e-10)

    def test_gradients(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 5, 5)), requires_grad=True)
        w = Tensor(rng.normal(size=(3, 2, 3, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(3,)), requires_grad=True)
        check_gradients(
            lambda: (F.conv2d(x, w, b, stride=1, padding=1) ** 2).sum(), [x, w, b]
        )

    def test_gradients_strided(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 6, 6)), requires_grad=True)
        w = Tensor(rng.normal(size=(2, 2, 3, 3)), requires_grad=True)
        check_gradients(
            lambda: (F.conv2d(x, w, stride=2, padding=1) ** 2).sum(), [x, w]
        )

    def test_channel_mismatch_raises(self, rng):
        x = Tensor(rng.normal(size=(1, 3, 5, 5)))
        w = Tensor(rng.normal(size=(2, 4, 3, 3)))
        with pytest.raises(ValueError):
            F.conv2d(x, w)

    def test_sparse_kernel_equivalence(self, rng):
        """Zeroed kernel positions contribute nothing — PCNN's core premise."""
        x = rng.normal(size=(1, 2, 5, 5))
        w = rng.normal(size=(2, 2, 3, 3))
        mask = np.zeros((3, 3))
        mask[0, 1] = mask[2, 2] = 1.0  # a 2-non-zero pattern
        w_masked = w * mask
        out_full = F.conv2d(Tensor(x), Tensor(w_masked), padding=1)
        expected = reference_conv2d(x, w_masked, padding=1)
        np.testing.assert_allclose(out_full.data, expected, rtol=1e-10)


class TestPooling:
    def test_max_pool_values(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = F.max_pool2d(Tensor(x), kernel=2)
        np.testing.assert_array_equal(out.data[0, 0], [[5, 7], [13, 15]])

    def test_max_pool_grad(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 4, 4)), requires_grad=True)
        check_gradients(lambda: (F.max_pool2d(x, 2) ** 2).sum(), [x])

    def test_avg_pool_values(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = F.avg_pool2d(Tensor(x), kernel=2)
        np.testing.assert_array_equal(out.data[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avg_pool_grad(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 4, 4)), requires_grad=True)
        check_gradients(lambda: (F.avg_pool2d(x, 2) ** 2).sum(), [x])

    def test_global_avg_pool(self, rng):
        x = rng.normal(size=(2, 3, 4, 4))
        out = F.global_avg_pool2d(Tensor(x))
        np.testing.assert_allclose(out.data, x.mean(axis=(2, 3)))


class TestBatchNorm:
    def test_training_normalises(self, rng):
        x = Tensor(rng.normal(2.0, 3.0, size=(8, 4, 5, 5)))
        gamma = Tensor(np.ones(4), requires_grad=True)
        beta = Tensor(np.zeros(4), requires_grad=True)
        rm, rv = np.zeros(4), np.ones(4)
        out = F.batch_norm2d(x, gamma, beta, rm, rv, training=True)
        np.testing.assert_allclose(out.data.mean(axis=(0, 2, 3)), 0.0, atol=1e-9)
        np.testing.assert_allclose(out.data.std(axis=(0, 2, 3)), 1.0, atol=1e-3)

    def test_running_stats_updated(self, rng):
        x = Tensor(rng.normal(5.0, 1.0, size=(16, 2, 4, 4)))
        gamma, beta = Tensor(np.ones(2)), Tensor(np.zeros(2))
        rm, rv = np.zeros(2), np.ones(2)
        F.batch_norm2d(x, gamma, beta, rm, rv, training=True, momentum=1.0)
        np.testing.assert_allclose(rm, x.data.mean(axis=(0, 2, 3)), rtol=1e-6)

    def test_eval_uses_running_stats(self, rng):
        x = Tensor(rng.normal(size=(4, 2, 3, 3)))
        gamma, beta = Tensor(np.ones(2)), Tensor(np.zeros(2))
        rm, rv = np.array([1.0, -1.0]), np.array([4.0, 9.0])
        out = F.batch_norm2d(x, gamma, beta, rm, rv, training=False)
        expected = (x.data - rm.reshape(1, 2, 1, 1)) / np.sqrt(
            rv.reshape(1, 2, 1, 1) + 1e-5
        )
        np.testing.assert_allclose(out.data, expected, rtol=1e-6)

    def test_gradients(self, rng):
        x = Tensor(rng.normal(size=(4, 2, 3, 3)), requires_grad=True)
        gamma = Tensor(rng.uniform(0.5, 1.5, size=2), requires_grad=True)
        beta = Tensor(rng.normal(size=2), requires_grad=True)
        rm, rv = np.zeros(2), np.ones(2)

        def fn():
            return (
                F.batch_norm2d(x, gamma, beta, rm.copy(), rv.copy(), training=True) ** 2
            ).sum()

        check_gradients(fn, [x, gamma, beta], atol=1e-4, rtol=1e-3)


class TestSoftmax:
    def test_softmax_sums_to_one(self, rng):
        x = Tensor(rng.normal(size=(4, 10)))
        out = F.softmax(x, axis=1)
        np.testing.assert_allclose(out.data.sum(axis=1), 1.0, rtol=1e-10)

    def test_softmax_stability(self):
        x = Tensor(np.array([[1000.0, 1000.0]]))
        out = F.softmax(x, axis=1)
        np.testing.assert_allclose(out.data, [[0.5, 0.5]])

    def test_log_softmax_matches_log_of_softmax(self, rng):
        x = Tensor(rng.normal(size=(3, 5)))
        np.testing.assert_allclose(
            F.log_softmax(x, axis=1).data, np.log(F.softmax(x, axis=1).data), rtol=1e-9
        )

    def test_log_softmax_grad(self, rng):
        x = Tensor(rng.normal(size=(2, 4)), requires_grad=True)
        check_gradients(lambda: (F.log_softmax(x, axis=1) * Tensor(np.ones((2, 4)))).sum(), [x])


class TestDropout:
    def test_identity_in_eval(self, rng):
        x = Tensor(rng.normal(size=(4, 4)))
        out = F.dropout(x, 0.5, training=False)
        assert out is x

    def test_scaling_in_train(self, rng):
        x = Tensor(np.ones((1000,)))
        out = F.dropout(x, 0.5, training=True, rng=np.random.default_rng(0))
        kept = out.data[out.data > 0]
        np.testing.assert_allclose(kept, 2.0)
        assert abs(out.data.mean() - 1.0) < 0.1


class TestIm2colOutBuffer:
    """im2col's out= path and contiguity fast path (runtime arenas)."""

    def test_out_buffer_matches_allocating_path(self, rng):
        x = rng.normal(size=(2, 3, 8, 8))
        cols, _ = F.im2col(x, (3, 3), stride=1, padding=0)
        out = np.empty_like(cols)
        cols_buf, (oh, ow) = F.im2col(x, (3, 3), stride=1, padding=0, out=out)
        assert cols_buf is out
        np.testing.assert_array_equal(cols_buf, cols)

    def test_out_buffer_shape_validated(self, rng):
        x = rng.normal(size=(1, 2, 6, 6))
        with pytest.raises(ValueError, match="out buffer"):
            F.im2col(x, (3, 3), stride=1, padding=0, out=np.empty((1, 1)))

    def test_out_buffer_contiguity_validated(self, rng):
        x = rng.normal(size=(1, 2, 6, 6))
        cols, _ = F.im2col(x, (3, 3), stride=1, padding=0)
        fortran = np.asfortranarray(np.empty_like(cols))
        with pytest.raises(ValueError, match="out buffer"):
            F.im2col(x, (3, 3), stride=1, padding=0, out=fortran)

    def test_result_always_contiguous(self, rng):
        for kernel, stride in [((3, 3), 1), ((1, 1), 1), ((2, 2), 2)]:
            cols, _ = F.im2col(rng.normal(size=(2, 3, 6, 6)), kernel, stride, 0)
            assert cols.flags.c_contiguous

    def test_nhwc_matches_nchw_column_permutation(self, rng):
        """im2col_nhwc yields the same windows with (position, channel)
        column order instead of (channel, position)."""
        x = rng.normal(size=(2, 3, 6, 6))
        cols_nchw, (oh, ow) = F.im2col(x, (3, 3), stride=1, padding=0)
        nhwc = np.ascontiguousarray(x.transpose(0, 2, 3, 1))
        cols_nhwc, (oh2, ow2) = F.im2col_nhwc(nhwc, (3, 3), stride=1)
        assert (oh, ow) == (oh2, ow2)
        # (C, K2) -> (K2, C) permutation of each row.
        perm = cols_nchw.reshape(-1, 3, 9).transpose(0, 2, 1).reshape(-1, 27)
        np.testing.assert_allclose(cols_nhwc, perm)

    def test_nhwc_out_buffer(self, rng):
        nhwc = np.ascontiguousarray(rng.normal(size=(1, 6, 6, 2)))
        cols, _ = F.im2col_nhwc(nhwc, (3, 3), stride=1)
        out = np.empty_like(cols)
        cols_buf, _ = F.im2col_nhwc(nhwc, (3, 3), stride=1, out=out)
        assert cols_buf is out
        np.testing.assert_array_equal(cols_buf, cols)


class TestPoolWindows:
    def test_shared_window_view(self, rng):
        x = rng.normal(size=(2, 3, 6, 6))
        windows = F.pool_windows(x, kernel=2, stride=2)
        assert windows.shape == (2, 3, 3, 3, 2, 2)
        np.testing.assert_array_equal(windows[0, 0, 1, 1], x[0, 0, 2:4, 2:4])

    def test_nhwc_window_view(self, rng):
        x = np.ascontiguousarray(rng.normal(size=(1, 6, 6, 3)))
        windows = F.pool_windows_nhwc(x, kernel=2, stride=2)
        assert windows.shape == (1, 3, 3, 2, 2, 3)
        np.testing.assert_array_equal(windows[0, 2, 0], x[0, 4:6, 0:2].transpose(0, 1, 2))

    def test_avg_pool_overlapping_grad(self, rng):
        """stride < kernel exercises the scatter-add backward branch."""
        x = Tensor(rng.normal(size=(2, 2, 6, 6)), requires_grad=True)
        check_gradients(lambda: (F.avg_pool2d(x, kernel=3, stride=1) ** 2).sum(), [x])

    def test_avg_pool_non_overlapping_grad_exact(self, rng):
        """Vectorised non-overlapping backward equals the analytic value:
        each input cell receives grad/k^2 of its window's output grad."""
        x = Tensor(rng.normal(size=(1, 1, 4, 4)), requires_grad=True)
        F.avg_pool2d(x, kernel=2).sum().backward()
        np.testing.assert_allclose(x.grad, np.full((1, 1, 4, 4), 0.25))
