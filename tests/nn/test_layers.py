"""Unit tests for the module/layer system (repro.nn.layers)."""

import numpy as np
import pytest

from repro.nn import (
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    Module,
    Parameter,
    ReLU,
    Sequential,
    Tensor,
)


def make_rng():
    return np.random.default_rng(7)


class TestModuleRegistration:
    def test_parameters_discovered(self):
        conv = Conv2d(3, 4, 3, rng=make_rng())
        names = dict(conv.named_parameters())
        assert set(names) == {"weight", "bias"}

    def test_nested_parameters(self):
        model = Sequential(Conv2d(3, 4, 3, rng=make_rng()), ReLU(), Linear(4, 2, rng=make_rng()))
        names = [n for n, _ in model.named_parameters()]
        assert "0.weight" in names and "2.weight" in names
        assert len(model.parameters()) == 4

    def test_buffers_discovered(self):
        bn = BatchNorm2d(8)
        buffer_names = {n for n, _ in bn.named_buffers()}
        assert buffer_names == {"running_mean", "running_var"}

    def test_named_modules(self):
        model = Sequential(Conv2d(1, 1, 3, rng=make_rng()), ReLU())
        names = {n for n, _ in model.named_modules()}
        assert "" in names and "0" in names and "1" in names

    def test_train_eval_propagates(self):
        model = Sequential(BatchNorm2d(2), Sequential(Dropout(0.5)))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_zero_grad(self):
        layer = Linear(3, 2, rng=make_rng())
        out = layer(Tensor(np.ones((1, 3)))).sum()
        out.backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None


class TestStateDict:
    def test_roundtrip(self):
        model = Sequential(Conv2d(2, 3, 3, rng=make_rng()), BatchNorm2d(3))
        state = model.state_dict()
        model2 = Sequential(Conv2d(2, 3, 3, rng=np.random.default_rng(99)), BatchNorm2d(3))
        model2.load_state_dict(state)
        for (n1, p1), (n2, p2) in zip(model.named_parameters(), model2.named_parameters()):
            assert n1 == n2
            np.testing.assert_array_equal(p1.data, p2.data)

    def test_shape_mismatch_raises(self):
        layer = Linear(3, 2, rng=make_rng())
        with pytest.raises(ValueError):
            layer.load_state_dict({"weight": np.zeros((5, 5)), "bias": np.zeros(2)})

    def test_unknown_key_raises(self):
        layer = Linear(3, 2, rng=make_rng())
        with pytest.raises(KeyError):
            layer.load_state_dict({"nonsense": np.zeros(1)})


class TestConv2dLayer:
    def test_output_shape(self):
        conv = Conv2d(3, 8, kernel_size=3, stride=2, padding=1, rng=make_rng())
        out = conv(Tensor(np.zeros((2, 3, 8, 8))))
        assert out.shape == (2, 8, 4, 4)

    def test_no_bias(self):
        conv = Conv2d(1, 1, 3, bias=False, rng=make_rng())
        assert conv.bias is None
        assert len(conv.parameters()) == 1

    def test_weight_mask_zeroes_output_contribution(self):
        rng = make_rng()
        conv = Conv2d(1, 1, 3, padding=1, bias=False, rng=rng)
        x = Tensor(rng.normal(size=(1, 1, 5, 5)))
        mask = np.zeros_like(conv.weight.data)
        conv.set_weight_mask(mask)
        out = conv(x)
        np.testing.assert_array_equal(out.data, 0.0)

    def test_weight_mask_blocks_gradient(self):
        rng = make_rng()
        conv = Conv2d(1, 2, 3, padding=1, bias=False, rng=rng)
        mask = np.ones_like(conv.weight.data)
        mask[0] = 0.0  # prune the entire first filter
        conv.set_weight_mask(mask)
        out = conv(Tensor(rng.normal(size=(1, 1, 4, 4))))
        (out**2).sum().backward()
        np.testing.assert_array_equal(conv.weight.grad[0], 0.0)
        assert np.abs(conv.weight.grad[1]).sum() > 0

    def test_effective_weight(self):
        conv = Conv2d(1, 1, 3, rng=make_rng())
        mask = np.zeros_like(conv.weight.data)
        mask[0, 0, 1, 1] = 1.0
        conv.set_weight_mask(mask)
        eff = conv.effective_weight()
        assert eff[0, 0, 1, 1] == conv.weight.data[0, 0, 1, 1]
        assert np.count_nonzero(eff) <= 1

    def test_mask_shape_validation(self):
        conv = Conv2d(1, 1, 3, rng=make_rng())
        with pytest.raises(ValueError):
            conv.set_weight_mask(np.ones((2, 2)))

    def test_clear_mask(self):
        conv = Conv2d(1, 1, 3, rng=make_rng())
        conv.set_weight_mask(np.zeros_like(conv.weight.data))
        conv.set_weight_mask(None)
        assert conv.weight_mask is None


class TestOtherLayers:
    def test_linear_shapes(self):
        layer = Linear(10, 5, rng=make_rng())
        out = layer(Tensor(np.zeros((3, 10))))
        assert out.shape == (3, 5)

    def test_linear_mask(self):
        layer = Linear(4, 2, rng=make_rng())
        layer.set_weight_mask(np.zeros((2, 4)))
        out = layer(Tensor(np.ones((1, 4))))
        np.testing.assert_array_equal(out.data, 0.0)

    def test_batchnorm_running_stats_only_in_train(self):
        bn = BatchNorm2d(2)
        x = Tensor(np.random.default_rng(0).normal(3.0, 1.0, size=(8, 2, 4, 4)))
        bn.eval()
        bn(x)
        np.testing.assert_array_equal(bn.running_mean, 0.0)
        bn.train()
        bn(x)
        assert np.abs(bn.running_mean).sum() > 0

    def test_maxpool(self):
        pool = MaxPool2d(2)
        out = pool(Tensor(np.zeros((1, 1, 4, 4))))
        assert out.shape == (1, 1, 2, 2)

    def test_flatten(self):
        assert Flatten()(Tensor(np.zeros((2, 3, 4)))).shape == (2, 12)

    def test_global_avg_pool(self):
        assert GlobalAvgPool2d()(Tensor(np.zeros((2, 3, 4, 4)))).shape == (2, 3)

    def test_identity(self):
        x = Tensor(np.ones((2, 2)))
        assert Identity()(x) is x

    def test_dropout_eval_identity(self):
        drop = Dropout(0.9)
        drop.eval()
        x = Tensor(np.ones((4,)))
        assert drop(x) is x

    def test_sequential_iteration_and_indexing(self):
        relu = ReLU()
        flat = Flatten()
        seq = Sequential(relu, flat)
        assert list(seq) == [relu, flat]
        assert seq[0] is relu
        assert len(seq) == 2

    def test_sequential_append(self):
        seq = Sequential(ReLU())
        seq.append(Flatten())
        assert len(seq) == 2
        assert len(list(seq.named_modules())) == 3
