"""Tests for weight initialisation schemes."""

import numpy as np
import pytest

from repro.nn import init


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestFanComputation:
    def test_linear_shape(self, rng):
        # (out, in) = (50, 100): fan_in = 100.
        w = init.kaiming_normal((50, 100), rng)
        assert w.shape == (50, 100)
        assert w.std() == pytest.approx(np.sqrt(2.0 / 100), rel=0.15)

    def test_conv_shape(self, rng):
        # (out, in, kh, kw) = (64, 32, 3, 3): fan_in = 32*9 = 288.
        w = init.kaiming_normal((64, 32, 3, 3), rng)
        assert w.std() == pytest.approx(np.sqrt(2.0 / 288), rel=0.1)

    def test_unsupported_shape(self, rng):
        with pytest.raises(ValueError):
            init.kaiming_normal((3, 3, 3), rng)


class TestDistributions:
    def test_kaiming_uniform_bounds(self, rng):
        w = init.kaiming_uniform((32, 64, 3, 3), rng)
        bound = np.sqrt(6.0 / (64 * 9))
        assert np.abs(w).max() <= bound
        assert np.abs(w).max() > 0.8 * bound  # actually fills the range

    def test_xavier_uniform_bounds(self, rng):
        w = init.xavier_uniform((100, 200), rng)
        bound = np.sqrt(6.0 / 300)
        assert np.abs(w).max() <= bound

    def test_zeros_and_ones(self):
        np.testing.assert_array_equal(init.zeros((3, 4)), 0.0)
        np.testing.assert_array_equal(init.ones((5,)), 1.0)

    def test_deterministic_with_seed(self):
        a = init.kaiming_normal((8, 8), np.random.default_rng(7))
        b = init.kaiming_normal((8, 8), np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)


class TestMaxPoolPadding:
    def test_padded_maxpool_shape_and_values(self):
        from repro.nn import Tensor
        from repro.nn import functional as F

        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4))
        out = F.max_pool2d(x, kernel=3, stride=2, padding=1)
        assert out.shape == (1, 1, 2, 2)
        # Top-left 3x3 window over the padded image peaks at x[1,1]=5.
        np.testing.assert_array_equal(out.data[0, 0], [[5.0, 7.0], [13.0, 15.0]])

    def test_padding_never_wins(self):
        from repro.nn import Tensor
        from repro.nn import functional as F

        x = Tensor(-np.ones((1, 1, 4, 4)))
        out = F.max_pool2d(x, kernel=3, stride=2, padding=1)
        # All-negative input: padded -inf cells must not produce zeros.
        assert (out.data == -1.0).all()

    def test_padded_maxpool_gradient(self):
        from repro.nn import Tensor
        from repro.nn import functional as F

        x = Tensor(np.random.default_rng(0).normal(size=(1, 1, 4, 4)), requires_grad=True)
        out = F.max_pool2d(x, kernel=3, stride=2, padding=1)
        (out * out).sum().backward()
        assert np.isfinite(x.grad).all()
