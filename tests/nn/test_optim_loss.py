"""Unit tests for optimisers, LR schedules, losses and serialization."""

import numpy as np
import pytest

from repro.nn import (
    SGD,
    Adam,
    CosineLR,
    Linear,
    Parameter,
    StepLR,
    Tensor,
    accuracy,
    cross_entropy,
    load_state,
    mse_loss,
    save_state,
)
from repro.nn import functional as F


def quadratic_loss(param):
    target = Tensor(np.array([1.0, -2.0, 3.0]))
    diff = param - target
    return (diff * diff).sum()


class TestSGD:
    def test_converges_on_quadratic(self):
        param = Parameter(np.zeros(3))
        opt = SGD([param], lr=0.1)
        for _ in range(100):
            opt.zero_grad()
            quadratic_loss(param).backward()
            opt.step()
        np.testing.assert_allclose(param.data, [1.0, -2.0, 3.0], atol=1e-4)

    def test_momentum_accelerates(self):
        def run(momentum):
            param = Parameter(np.zeros(3))
            opt = SGD([param], lr=0.01, momentum=momentum)
            for _ in range(50):
                opt.zero_grad()
                quadratic_loss(param).backward()
                opt.step()
            return quadratic_loss(param).item()

        assert run(0.9) < run(0.0)

    def test_weight_decay_shrinks(self):
        param = Parameter(np.array([10.0]))
        opt = SGD([param], lr=0.1, weight_decay=1.0)
        opt.zero_grad()
        (param * 0).sum().backward()
        opt.step()
        assert param.data[0] == pytest.approx(9.0)

    def test_skips_params_without_grad(self):
        a, b = Parameter(np.array([1.0])), Parameter(np.array([1.0]))
        opt = SGD([a, b], lr=0.1)
        (a * 2).backward()
        opt.step()
        assert b.data[0] == 1.0
        assert a.data[0] != 1.0

    def test_empty_params_raises(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        param = Parameter(np.zeros(3))
        opt = Adam([param], lr=0.1)
        for _ in range(300):
            opt.zero_grad()
            quadratic_loss(param).backward()
            opt.step()
        np.testing.assert_allclose(param.data, [1.0, -2.0, 3.0], atol=1e-3)

    def test_first_step_magnitude(self):
        # Bias correction makes the first Adam step ~lr in magnitude.
        param = Parameter(np.array([5.0]))
        opt = Adam([param], lr=0.01)
        (param * 1.0).sum().backward()
        opt.step()
        assert param.data[0] == pytest.approx(5.0 - 0.01, abs=1e-6)


class TestSchedulers:
    def test_step_lr(self):
        param = Parameter(np.zeros(1))
        opt = SGD([param], lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.1)
        lrs = []
        for _ in range(4):
            sched.step()
            lrs.append(opt.lr)
        assert lrs == pytest.approx([1.0, 0.1, 0.1, 0.01])

    def test_cosine_lr_endpoints(self):
        param = Parameter(np.zeros(1))
        opt = SGD([param], lr=1.0)
        sched = CosineLR(opt, t_max=10)
        for _ in range(10):
            sched.step()
        assert opt.lr == pytest.approx(0.0, abs=1e-12)


class TestLosses:
    def test_cross_entropy_uniform(self):
        logits = Tensor(np.zeros((2, 4)), requires_grad=True)
        loss = cross_entropy(logits, np.array([0, 3]))
        assert loss.item() == pytest.approx(np.log(4.0))

    def test_cross_entropy_gradient_form(self):
        rng = np.random.default_rng(3)
        logits = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
        targets = np.array([0, 1, 2, 1, 0])
        cross_entropy(logits, targets).backward()
        probs = F.softmax(Tensor(logits.data), axis=1).data
        expected = probs.copy()
        expected[np.arange(5), targets] -= 1.0
        expected /= 5.0
        np.testing.assert_allclose(logits.grad, expected, rtol=1e-8)

    def test_cross_entropy_perfect_prediction(self):
        logits = Tensor(np.array([[100.0, 0.0], [0.0, 100.0]]))
        loss = cross_entropy(logits, np.array([0, 1]))
        assert loss.item() < 1e-6

    def test_mse(self):
        pred = Tensor(np.array([1.0, 2.0]))
        target = Tensor(np.array([0.0, 0.0]))
        assert mse_loss(pred, target).item() == pytest.approx(2.5)

    def test_accuracy(self):
        logits = Tensor(np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 0.0]]))
        assert accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)


class TestSerialization:
    def test_state_roundtrip(self, tmp_path):
        state = {"layer.weight": np.arange(6.0).reshape(2, 3), "bn.running_mean": np.ones(3)}
        path = str(tmp_path / "ckpt.npz")
        save_state(state, path)
        loaded = load_state(path)
        assert set(loaded) == set(state)
        for key in state:
            np.testing.assert_array_equal(loaded[key], state[key])

    def test_model_roundtrip(self, tmp_path):
        from repro.nn import load_model, save_model

        rng = np.random.default_rng(0)
        model = Linear(4, 2, rng=rng)
        path = str(tmp_path / "model.npz")
        save_model(model, path)
        model2 = Linear(4, 2, rng=np.random.default_rng(1))
        load_model(model2, path)
        np.testing.assert_array_equal(model.weight.data, model2.weight.data)


class TestEndToEndTraining:
    def test_small_mlp_learns_xor(self):
        rng = np.random.default_rng(0)
        x = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=float)
        y = np.array([0, 1, 1, 0])
        from repro.nn import ReLU, Sequential

        model = Sequential(Linear(2, 16, rng=rng), ReLU(), Linear(16, 2, rng=rng))
        opt = Adam(model.parameters(), lr=0.05)
        for _ in range(200):
            opt.zero_grad()
            loss = cross_entropy(model(Tensor(x)), y)
            loss.backward()
            opt.step()
        assert accuracy(model(Tensor(x)), y) == 1.0
