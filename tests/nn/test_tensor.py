"""Unit tests for the autograd engine (repro.nn.tensor)."""

import numpy as np
import pytest

from repro.nn import Tensor, concatenate, no_grad, stack
from repro.nn.tensor import unbroadcast

from tests.conftest import check_gradients


class TestBasicOps:
    def test_add(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        check_gradients(lambda: (a + b).sum(), [a, b])

    def test_add_broadcast(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4,)), requires_grad=True)
        check_gradients(lambda: (a + b).sum(), [a, b])

    def test_add_scalar(self, rng):
        a = Tensor(rng.normal(size=(3,)), requires_grad=True)
        check_gradients(lambda: (a + 2.5).sum(), [a])
        check_gradients(lambda: (2.5 + a).sum(), [a])

    def test_sub(self, rng):
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        check_gradients(lambda: (a - b).sum(), [a, b])
        check_gradients(lambda: (1.0 - a).sum(), [a])

    def test_mul(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        check_gradients(lambda: (a * b).sum(), [a, b])

    def test_mul_broadcast(self, rng):
        a = Tensor(rng.normal(size=(3, 1, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(5, 4)), requires_grad=True)
        check_gradients(lambda: (a * b).sum(), [a, b])

    def test_div(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.uniform(1.0, 2.0, size=(3, 4)), requires_grad=True)
        check_gradients(lambda: (a / b).sum(), [a, b])

    def test_rdiv(self, rng):
        a = Tensor(rng.uniform(1.0, 2.0, size=(3,)), requires_grad=True)
        check_gradients(lambda: (1.0 / a).sum(), [a])

    def test_neg(self, rng):
        a = Tensor(rng.normal(size=(3,)), requires_grad=True)
        check_gradients(lambda: (-a).sum(), [a])

    def test_pow(self, rng):
        a = Tensor(rng.uniform(0.5, 2.0, size=(3, 4)), requires_grad=True)
        check_gradients(lambda: (a**3).sum(), [a])
        check_gradients(lambda: (a**-0.5).sum(), [a])

    def test_matmul_2d(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 5)), requires_grad=True)
        check_gradients(lambda: (a @ b).sum(), [a, b])

    def test_matmul_batched(self, rng):
        a = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 4, 5)), requires_grad=True)
        check_gradients(lambda: (a @ b).sum(), [a, b])

    def test_matmul_values(self, rng):
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(4, 2))
        out = Tensor(a) @ Tensor(b)
        np.testing.assert_allclose(out.data, a @ b)


class TestPointwise:
    def test_exp(self, rng):
        a = Tensor(rng.normal(size=(3,)), requires_grad=True)
        check_gradients(lambda: a.exp().sum(), [a])

    def test_log(self, rng):
        a = Tensor(rng.uniform(0.5, 2.0, size=(3,)), requires_grad=True)
        check_gradients(lambda: a.log().sum(), [a])

    def test_relu(self, rng):
        a = Tensor(rng.normal(size=(10,)) + 0.05, requires_grad=True)
        check_gradients(lambda: a.relu().sum(), [a])

    def test_relu_values(self):
        a = Tensor(np.array([-1.0, 0.0, 2.0]))
        np.testing.assert_array_equal(a.relu().data, [0.0, 0.0, 2.0])

    def test_tanh(self, rng):
        a = Tensor(rng.normal(size=(4,)), requires_grad=True)
        check_gradients(lambda: a.tanh().sum(), [a])

    def test_sigmoid(self, rng):
        a = Tensor(rng.normal(size=(4,)), requires_grad=True)
        check_gradients(lambda: a.sigmoid().sum(), [a])

    def test_abs(self, rng):
        a = Tensor(rng.normal(size=(6,)) + 0.1, requires_grad=True)
        check_gradients(lambda: a.abs().sum(), [a])

    def test_sqrt(self, rng):
        a = Tensor(rng.uniform(0.5, 2.0, size=(4,)), requires_grad=True)
        check_gradients(lambda: a.sqrt().sum(), [a])

    def test_clip(self, rng):
        a = Tensor(np.array([-2.0, -0.5, 0.3, 1.7]), requires_grad=True)
        out = a.clip(-1.0, 1.0)
        np.testing.assert_array_equal(out.data, [-1.0, -0.5, 0.3, 1.0])


class TestReductions:
    def test_sum_all(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        check_gradients(lambda: a.sum(), [a])

    def test_sum_axis(self, rng):
        a = Tensor(rng.normal(size=(3, 4, 5)), requires_grad=True)
        check_gradients(lambda: a.sum(axis=1).sum(), [a])
        check_gradients(lambda: a.sum(axis=(0, 2)).sum(), [a])

    def test_sum_keepdims(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        out = a.sum(axis=0, keepdims=True)
        assert out.shape == (1, 4)
        check_gradients(lambda: a.sum(axis=0, keepdims=True).sum(), [a])

    def test_mean(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        check_gradients(lambda: a.mean(), [a])
        check_gradients(lambda: a.mean(axis=1).sum(), [a])

    def test_var(self, rng):
        a = Tensor(rng.normal(size=(8,)), requires_grad=True)
        np.testing.assert_allclose(a.var().data, np.var(a.data))
        check_gradients(lambda: a.var(), [a])

    def test_max_all(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        assert a.max().data == a.data.max()
        check_gradients(lambda: a.max(), [a])

    def test_max_axis(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        np.testing.assert_allclose(a.max(axis=1).data, a.data.max(axis=1))
        check_gradients(lambda: a.max(axis=1).sum(), [a])


class TestShapeOps:
    def test_reshape(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        assert a.reshape(12).shape == (12,)
        assert a.reshape(2, 6).shape == (2, 6)
        check_gradients(lambda: (a.reshape(12) ** 2).sum(), [a])

    def test_flatten(self, rng):
        a = Tensor(rng.normal(size=(2, 3, 4, 5)))
        assert a.flatten().shape == (2, 60)

    def test_transpose(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        assert a.transpose().shape == (4, 3)
        check_gradients(lambda: (a.transpose() ** 2).sum(), [a])

    def test_transpose_axes(self, rng):
        a = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        assert a.transpose(2, 0, 1).shape == (4, 2, 3)
        check_gradients(lambda: (a.transpose(2, 0, 1) ** 2).sum(), [a])

    def test_getitem(self, rng):
        a = Tensor(rng.normal(size=(5, 4)), requires_grad=True)
        out = a[1:3]
        assert out.shape == (2, 4)
        check_gradients(lambda: (a[1:3] ** 2).sum(), [a])

    def test_getitem_fancy(self, rng):
        a = Tensor(rng.normal(size=(5, 4)), requires_grad=True)
        idx = np.array([0, 2, 2])
        check_gradients(lambda: (a[idx] ** 2).sum(), [a])

    def test_pad2d(self, rng):
        a = Tensor(rng.normal(size=(1, 2, 3, 3)), requires_grad=True)
        out = a.pad2d(1)
        assert out.shape == (1, 2, 5, 5)
        check_gradients(lambda: (a.pad2d(1) ** 2).sum(), [a])

    def test_concatenate(self, rng):
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        out = concatenate([a, b], axis=0)
        assert out.shape == (6, 3)
        check_gradients(lambda: (concatenate([a, b], axis=0) ** 2).sum(), [a, b])

    def test_stack(self, rng):
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        out = stack([a, b], axis=0)
        assert out.shape == (2, 2, 3)
        check_gradients(lambda: (stack([a, b]) ** 2).sum(), [a, b])


class TestAutogradMechanics:
    def test_grad_accumulates_over_reuse(self, rng):
        a = Tensor(np.array([2.0]), requires_grad=True)
        out = a * a + a  # d/da = 2a + 1 = 5
        out.backward()
        np.testing.assert_allclose(a.grad, [5.0])

    def test_backward_twice_accumulates_on_leaf(self):
        a = Tensor(np.array([3.0]), requires_grad=True)
        (a * 2).backward()
        (a * 2).backward()
        np.testing.assert_allclose(a.grad, [4.0])

    def test_no_grad_context(self):
        a = Tensor(np.array([1.0]), requires_grad=True)
        with no_grad():
            out = a * 2
        assert not out.requires_grad
        with pytest.raises(RuntimeError):
            out.backward()

    def test_detach(self):
        a = Tensor(np.array([1.0]), requires_grad=True)
        d = a.detach()
        assert not d.requires_grad
        assert d.data is a.data

    def test_backward_requires_scalar(self, rng):
        a = Tensor(rng.normal(size=(3,)), requires_grad=True)
        with pytest.raises(RuntimeError):
            (a * 2).backward()

    def test_backward_with_explicit_grad(self, rng):
        a = Tensor(rng.normal(size=(3,)), requires_grad=True)
        (a * 2).backward(np.ones(3))
        np.testing.assert_allclose(a.grad, 2 * np.ones(3))

    def test_backward_on_non_grad_tensor_raises(self):
        a = Tensor(np.array([1.0]))
        with pytest.raises(RuntimeError):
            a.backward()

    def test_diamond_graph(self):
        # a -> b, c -> d: gradient must flow through both branches once.
        a = Tensor(np.array([2.0]), requires_grad=True)
        b = a * 3
        c = a * 4
        d = b * c  # d = 12 a^2, d' = 24 a = 48
        d.backward()
        np.testing.assert_allclose(a.grad, [48.0])

    def test_deep_chain_no_recursion_limit(self):
        a = Tensor(np.array([1.0]), requires_grad=True)
        out = a
        for _ in range(3000):
            out = out + 0.0
        out.backward()
        np.testing.assert_allclose(a.grad, [1.0])

    def test_zero_grad(self):
        a = Tensor(np.array([1.0]), requires_grad=True)
        (a * 2).backward()
        a.zero_grad()
        assert a.grad is None


class TestUnbroadcast:
    def test_identity(self):
        g = np.ones((3, 4))
        assert unbroadcast(g, (3, 4)) is g

    def test_leading_axis(self):
        g = np.ones((5, 3, 4))
        np.testing.assert_array_equal(unbroadcast(g, (3, 4)), 5 * np.ones((3, 4)))

    def test_kept_axis(self):
        g = np.ones((3, 4))
        np.testing.assert_array_equal(unbroadcast(g, (3, 1)), 4 * np.ones((3, 1)))

    def test_scalar(self):
        g = np.ones((2, 2))
        assert unbroadcast(g, ()) == 4.0
