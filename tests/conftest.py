"""Shared pytest fixtures and numerical-gradient utilities."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np
import pytest

from repro.nn.tensor import Tensor


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def numerical_grad(
    fn: Callable[[], Tensor], param: Tensor, eps: float = 1e-6
) -> np.ndarray:
    """Central-difference gradient of scalar ``fn()`` w.r.t. ``param``."""
    grad = np.zeros_like(param.data)
    flat = param.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        up = fn().data.item() if hasattr(fn(), "data") else float(fn())
        flat[i] = original - eps
        down = fn().data.item() if hasattr(fn(), "data") else float(fn())
        flat[i] = original
        grad_flat[i] = (up - down) / (2.0 * eps)
    return grad


def check_gradients(
    fn: Callable[[], Tensor],
    params: Sequence[Tensor],
    atol: float = 1e-5,
    rtol: float = 1e-4,
) -> None:
    """Assert analytic gradients of ``fn`` match central differences.

    ``fn`` must rebuild the graph on every call (so perturbed parameter
    values are observed) and return a scalar Tensor.
    """
    for param in params:
        param.zero_grad()
    out = fn()
    out.backward()
    for param in params:
        expected = numerical_grad(fn, param)
        assert param.grad is not None, "missing analytic gradient"
        np.testing.assert_allclose(param.grad, expected, atol=atol, rtol=rtol)
