"""Smoke tests: the shipped examples must run and print their key results.

The two training-heavy examples (train_prune_retrain,
sensitivity_and_deployment) are exercised in quick form by the benchmark
suite; here we cover the fast ones end to end via subprocess, exactly as
a user would run them.
"""

import os
import subprocess
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def run_example(name: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, os.path.join(REPO_ROOT, "examples", name)],
        capture_output=True,
        text=True,
        timeout=timeout,
        cwd=REPO_ROOT,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "round-trip is lossless" in out
        assert "Compression accounting" in out
        assert "28.39 TOPS/W" in out or "28.39" in out

    def test_vgg16_compression_sweep(self):
        out = run_example("vgg16_compression_sweep.py")
        assert "Table I reproduction" in out
        assert "9.0x" in out
        assert "2.0x" in out  # irregular strawman

    def test_accelerator_simulation(self):
        out = run_example("accelerator_simulation.py")
        assert "functional output equals nn.functional.conv2d: True" in out
        assert "imbalance penalty" in out
        assert "3.1%" in out

    def test_orthogonal_fusion(self):
        out = run_example("orthogonal_fusion.py")
        assert "Table VII" in out and "Table VIII" in out
        assert "kernels kept 50%" in out


class TestCLISubprocess:
    def test_cli_module_invocation(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.cli", "chip"],
            capture_output=True,
            text=True,
            timeout=120,
            cwd=REPO_ROOT,
        )
        assert result.returncode == 0
        assert "Pattern SRAM" in result.stdout
