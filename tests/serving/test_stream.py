"""End-to-end tests for the streaming transport.

The differential contract: every frame answered over the binary
protocol must match ``runtime.predict`` on the same input within 1e-5 —
including responses that complete out of order, responses served from
the per-stream delta cache, and responses that straddle a worker crash.
Errors must arrive as *typed* ERROR frames carrying the same kinds (and
Retry-After semantics) as the HTTP surface, and the stream counters
must show up in ``/stats`` and ``/metrics``.
"""

import json
import os
import signal
import threading
import time
import urllib.request

import numpy as np
import pytest

from repro import runtime
from repro.core import PCNNConfig, PCNNPruner
from repro.models import patternnet
from repro.serving import (
    ModelServer,
    StreamClient,
    StreamServer,
    Supervisor,
    WireError,
    serve_http,
)

SHAPE = (3, 16, 16)


def pruned_patternnet(seed=0):
    model = patternnet(rng=np.random.default_rng(seed))
    PCNNPruner(model, PCNNConfig.uniform(2, 3, num_patterns=4)).apply()
    return model


def make_server(**kwargs):
    server = ModelServer(max_batch=8, max_latency_ms=2.0, **kwargs)
    served = server.add_model("patternnet", pruned_patternnet(), SHAPE)
    server.warmup()
    server.start()
    return server, served


class TestDifferential:
    def test_concurrent_clients_interleaved_streams_match_predict(self):
        """N clients x M streams each, all in flight at once; every
        response (matched by request id, arrival order ignored) must
        equal predict() on the submitted frame."""
        server, served = make_server()
        stream_server = StreamServer(server, port=0).start()
        rng = np.random.default_rng(1)
        n_clients, frames_each = 4, 24
        try:
            want_all, got_all = [], []
            lock = threading.Lock()
            failures = []

            def run_client(client_index):
                frames = rng.standard_normal((frames_each, *SHAPE))
                try:
                    with StreamClient(
                        "127.0.0.1", stream_server.port, timeout=60
                    ) as client:
                        futures = [
                            # Interleave 3 logical streams per client.
                            client.submit(frame, stream_id=i % 3)
                            for i, frame in enumerate(frames)
                        ]
                        outputs = [f.result(timeout=60) for f in futures]
                    with lock:
                        want_all.append(frames)
                        got_all.append(np.stack(outputs))
                except Exception as error:  # noqa: BLE001 - collected below
                    failures.append((client_index, error))

            threads = [
                threading.Thread(target=run_client, args=(i,))
                for i in range(n_clients)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            assert failures == []
            want = runtime.predict(served.compiled, np.concatenate(want_all))
            got = np.concatenate(got_all)
            np.testing.assert_allclose(got, want, atol=1e-5, rtol=1e-5)
        finally:
            stream_server.stop()
            server.stop()

    def test_out_of_order_completion_not_head_of_line_blocked(self):
        """A big batch in flight must not serialize responses: futures
        resolve per-request as flushes land, and request ids keep each
        answer attached to its own frame."""
        server, served = make_server()
        stream_server = StreamServer(server, port=0).start()
        rng = np.random.default_rng(2)
        try:
            frames = rng.standard_normal((32, *SHAPE))
            arrival_order = []
            with StreamClient("127.0.0.1", stream_server.port) as client:
                futures = []
                for i, frame in enumerate(frames):
                    future = client.submit(frame, stream_id=i % 4, meta=True)
                    future.add_done_callback(
                        lambda f: arrival_order.append(f.result().request_id)
                    )
                    futures.append(future)
                results = [f.result(timeout=60) for f in futures]
            want = runtime.predict(served.compiled, frames)
            for i, result in enumerate(results):
                np.testing.assert_allclose(
                    result.output, want[i], atol=1e-5, rtol=1e-5
                )
                assert result.stream_id == i % 4
            # Every response arrived, each exactly once.
            assert sorted(arrival_order) == sorted(r.request_id for r in results)
        finally:
            stream_server.stop()
            server.stop()


class TestDeltaCache:
    def test_near_duplicate_frame_returns_exact_cached_logits(self):
        server, served = make_server()
        stream_server = StreamServer(server, port=0, delta_threshold=1e-3).start()
        rng = np.random.default_rng(3)
        try:
            with StreamClient("127.0.0.1", stream_server.port) as client:
                key = rng.standard_normal(SHAPE)
                first = client.predict(key, stream_id=7)
                jittered = key + rng.uniform(-1e-4, 1e-4, size=SHAPE)
                hit = client.submit(jittered, stream_id=7, meta=True).result(60)
                assert hit.cache_hit is True
                # Exact bytes of the reference answer — not a re-predict.
                np.testing.assert_array_equal(hit.output, first)

                # A frame past the threshold resets the reference...
                far = key + 10.0
                miss = client.submit(far, stream_id=7, meta=True).result(60)
                assert miss.cache_hit is False
                # ...and near-duplicates of the *new* reference hit.
                again = client.submit(
                    far + 1e-4, stream_id=7, meta=True
                ).result(60)
                assert again.cache_hit is True
                np.testing.assert_array_equal(again.output, miss.output)
            snap = stream_server.snapshot()["patternnet"]
            assert snap["cache_hits"] == 2
            assert snap["cache_misses"] == 2
        finally:
            stream_server.stop()
            server.stop()

    def test_hit_on_pending_keyframe_waits_for_it(self):
        """A near-duplicate arriving while its keyframe is still being
        batched must chain onto the keyframe's future, not recompute."""
        server, served = make_server()
        stream_server = StreamServer(server, port=0, delta_threshold=1e-3).start()
        rng = np.random.default_rng(4)
        try:
            with StreamClient("127.0.0.1", stream_server.port) as client:
                key = rng.standard_normal(SHAPE)
                # Submit keyframe + duplicate back-to-back, no waiting:
                # the duplicate races the keyframe's flush.
                f_key = client.submit(key, meta=True)
                f_dup = client.submit(key, meta=True)
                key_result, dup_result = f_key.result(60), f_dup.result(60)
            assert dup_result.cache_hit is True
            np.testing.assert_array_equal(dup_result.output, key_result.output)
        finally:
            stream_server.stop()
            server.stop()

    def test_streams_are_isolated(self):
        """The same pixels on a different stream id is a miss: the cache
        key is (connection, stream), never cross-stream."""
        server, _ = make_server()
        stream_server = StreamServer(server, port=0, delta_threshold=1e-3).start()
        rng = np.random.default_rng(5)
        try:
            with StreamClient("127.0.0.1", stream_server.port) as client:
                frame = rng.standard_normal(SHAPE)
                a = client.submit(frame, stream_id=1, meta=True).result(60)
                b = client.submit(frame, stream_id=2, meta=True).result(60)
            assert a.cache_hit is False
            assert b.cache_hit is False
        finally:
            stream_server.stop()
            server.stop()

    def test_negative_threshold_disables_cache(self):
        server, _ = make_server()
        stream_server = StreamServer(server, port=0, delta_threshold=-1.0).start()
        rng = np.random.default_rng(6)
        try:
            with StreamClient("127.0.0.1", stream_server.port) as client:
                frame = rng.standard_normal(SHAPE)
                client.predict(frame)
                repeat = client.submit(frame, meta=True).result(60)
            assert repeat.cache_hit is False
        finally:
            stream_server.stop()
            server.stop()


class TestTypedErrors:
    def test_unknown_model_in_hello_is_not_found(self):
        server, _ = make_server()
        stream_server = StreamServer(server, port=0).start()
        try:
            with pytest.raises(WireError) as excinfo:
                StreamClient("127.0.0.1", stream_server.port, model="nope")
            assert excinfo.value.kind == "not_found"
        finally:
            stream_server.stop()
            server.stop()

    def test_wrong_shape_is_bad_request_and_connection_survives(self):
        server, served = make_server()
        stream_server = StreamServer(server, port=0).start()
        rng = np.random.default_rng(7)
        try:
            with StreamClient("127.0.0.1", stream_server.port) as client:
                bad = client.submit(rng.standard_normal((2, 2)))
                with pytest.raises(WireError) as excinfo:
                    bad.result(timeout=60)
                assert excinfo.value.kind == "bad_request"
                # The connection keeps serving after a rejected frame.
                frame = rng.standard_normal(SHAPE)
                out = client.predict(frame)
            want = runtime.predict(served.compiled, frame[None])[0]
            np.testing.assert_allclose(out, want, atol=1e-5, rtol=1e-5)
            snap = stream_server.snapshot()["patternnet"]
            assert snap["errors"] >= 1
        finally:
            stream_server.stop()
            server.stop()

    def test_queue_full_carries_retry_after_like_http(self):
        """Overload over the stream transport sheds with the same typed
        kind + Retry-After hint the HTTP 429 path derives."""
        server = ModelServer(max_batch=4, max_latency_ms=50.0, max_queue=1)
        server.add_model("patternnet", pruned_patternnet(), SHAPE)
        server.warmup()
        server.start()
        stream_server = StreamServer(server, port=0).start()
        rng = np.random.default_rng(8)
        try:
            with StreamClient("127.0.0.1", stream_server.port) as client:
                futures = [
                    client.submit(rng.standard_normal(SHAPE)) for _ in range(16)
                ]
                outcomes = []
                for future in futures:
                    try:
                        future.result(timeout=60)
                        outcomes.append("ok")
                    except WireError as error:
                        assert error.kind == "queue_full"
                        assert error.retry_after is not None
                        assert error.retry_after >= 1
                        outcomes.append("shed")
            # The 50 ms flush window guarantees the 1-deep queue fills:
            # some frames complete, some shed, none vanish.
            assert outcomes.count("ok") >= 1
            assert outcomes.count("shed") >= 1
            assert len(outcomes) == 16
        finally:
            stream_server.stop()
            server.stop()

    def test_garbage_bytes_get_typed_error_frame(self):
        """A client speaking garbage gets a bad_frame/protocol ERROR
        frame back instead of a silent hangup."""
        import socket

        from repro.serving.wire import FrameReader

        server, _ = make_server()
        stream_server = StreamServer(server, port=0).start()
        try:
            with socket.create_connection(
                ("127.0.0.1", stream_server.port), timeout=30
            ) as sock:
                import struct

                sock.sendall(struct.pack(">I", 24) + b"\x00" * 24)
                reader = FrameReader()
                events = []
                sock.settimeout(30)
                while not events:
                    events = reader.feed(sock.recv(65536))
                (frame,) = events
                assert frame.error().kind == "protocol"
        finally:
            stream_server.stop()
            server.stop()


class TestObservability:
    def test_stats_and_metrics_report_stream_activity(self):
        server, _ = make_server()
        httpd = serve_http(server, port=0)
        stream_server = StreamServer(server, port=0, delta_threshold=1e-3).start()
        rng = np.random.default_rng(9)
        try:
            with StreamClient("127.0.0.1", stream_server.port) as client:
                frame = rng.standard_normal(SHAPE)
                client.predict(frame, stream_id=1)
                client.predict(frame, stream_id=1)  # exact repeat: hit

                with urllib.request.urlopen(httpd.url + "/stats", timeout=30) as r:
                    stats = json.load(r)
                streams = stats["patternnet"]["streams"]
                assert streams["connections"] == 1
                assert streams["open_streams"] == 1
                assert streams["frames"] == 2
                assert streams["cache_hits"] == 1
                assert streams["cache_hit_rate"] == 0.5
                assert streams["frames_per_second"] >= 0.0

                with urllib.request.urlopen(httpd.url + "/metrics", timeout=30) as r:
                    metrics = r.read().decode()
            for family in (
                "repro_stream_connections 1",
                'repro_stream_open_streams{model="patternnet"} 1',
                'repro_stream_frames_total{model="patternnet"} 2',
                'repro_stream_cache_hits_total{model="patternnet"} 1',
                'repro_stream_cache_misses_total{model="patternnet"} 1',
                'repro_stream_errors_total{model="patternnet"} 0',
            ):
                assert family in metrics, f"missing {family!r} in /metrics"
        finally:
            stream_server.stop()
            httpd.server_close()
            server.stop()

    def test_connection_close_clears_streams(self):
        server, _ = make_server()
        stream_server = StreamServer(server, port=0).start()
        rng = np.random.default_rng(10)
        try:
            with StreamClient("127.0.0.1", stream_server.port) as client:
                client.predict(rng.standard_normal(SHAPE))
                assert stream_server.connection_count() == 1

            def gone():
                return (
                    stream_server.connection_count() == 0
                    and stream_server.open_streams("patternnet") == 0
                )

            deadline = time.monotonic() + 30
            while time.monotonic() < deadline and not gone():
                time.sleep(0.02)
            assert gone()
        finally:
            stream_server.stop()
            server.stop()


@pytest.mark.chaos
class TestChaosMidStream:
    def test_worker_sigkill_mid_stream_every_frame_answers_exact(self):
        """SIGKILL a worker while frames are in flight on the binary
        transport: the pool replays the dead worker's chunks, so every
        submitted frame still resolves with the exact predict answer."""
        server = ModelServer(
            max_batch=8, max_latency_ms=5.0, worker_procs=2,
            supervisor=Supervisor(interval=0.05),
        )
        served = server.add_model("patternnet", pruned_patternnet(), SHAPE)
        server.warmup()
        server.start()
        stream_server = StreamServer(server, port=0).start()
        seed = int(os.environ.get("REPRO_CHAOS_SEED", "0"))
        rng = np.random.default_rng(seed)
        try:
            frames = rng.standard_normal((48, *SHAPE))
            victim_slot = int(rng.integers(0, 2))
            victim = served.pool.worker_health()[victim_slot]["pid"]
            with StreamClient("127.0.0.1", stream_server.port, timeout=120) as client:
                futures = []
                for i, frame in enumerate(frames):
                    futures.append(client.submit(frame, stream_id=i % 4))
                    if i == len(frames) // 2:
                        os.kill(victim, signal.SIGKILL)
                outputs = [f.result(timeout=120) for f in futures]
            want = runtime.predict(served.compiled, frames)
            np.testing.assert_allclose(
                np.stack(outputs), want, atol=1e-5, rtol=1e-5
            )
            # Supervisor heals the pool back to strength.
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline and served.pool.alive_workers < 2:
                time.sleep(0.05)
            assert served.pool.alive_workers == 2
        finally:
            stream_server.stop()
            server.stop()
