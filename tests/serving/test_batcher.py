"""Tests for the dynamic-batching request coalescer."""

import threading
import time

import numpy as np
import pytest

from repro.serving import Batcher, ServerStats, bucket_sizes


def double_runner(x):
    return x * 2.0


class TestBucketSizes:
    def test_powers_of_two_capped(self):
        assert bucket_sizes(1) == [1]
        assert bucket_sizes(8) == [1, 2, 4, 8]
        assert bucket_sizes(12) == [1, 2, 4, 8, 12]
        assert bucket_sizes(32) == [1, 2, 4, 8, 16, 32]

    def test_invalid(self):
        with pytest.raises(ValueError):
            bucket_sizes(0)


class TestBatcher:
    def test_single_request_roundtrip(self):
        with Batcher(double_runner, max_batch=4, max_latency_ms=1.0) as batcher:
            x = np.arange(6.0).reshape(2, 3)
            out = batcher(x, timeout=10)
        np.testing.assert_array_equal(out, x * 2.0)

    def test_burst_coalesces(self):
        """A burst of queued requests is served in few, large batches."""
        stats = ServerStats()
        batcher = Batcher(double_runner, max_batch=8, max_latency_ms=50.0, stats=stats)
        images = np.random.default_rng(0).normal(size=(24, 2, 3))
        # Submits are microseconds apart while the 50 ms window is open,
        # so the worker coalesces the burst into few, large flushes.
        with batcher:
            futures = [batcher.submit(images[i]) for i in range(24)]
            outs = np.stack([f.result(timeout=10) for f in futures])
        np.testing.assert_allclose(outs, images * 2.0)
        assert stats.requests == 24
        assert stats.mean_batch > 1.0
        assert max(int(k) for k in stats.batch_histogram) <= 8

    def test_bucket_padding_rounds_flush_sizes(self):
        """Flushes hit the runner at power-of-two sizes only."""
        seen = []

        def recording_runner(x):
            seen.append(x.shape[0])
            return x + 1.0

        batcher = Batcher(recording_runner, max_batch=8, max_latency_ms=30.0)
        images = np.random.default_rng(1).normal(size=(3, 4))
        with batcher:
            futures = [batcher.submit(images[i]) for i in range(3)]
            outs = np.stack([f.result(timeout=10) for f in futures])
        np.testing.assert_allclose(outs, images + 1.0)
        assert all(size in bucket_sizes(8) for size in seen)

    def test_unbucketed_keeps_exact_sizes(self):
        seen = []

        def recording_runner(x):
            seen.append(x.shape[0])
            return x

        batcher = Batcher(recording_runner, max_batch=8, max_latency_ms=30.0, bucket=False)
        images = np.zeros((3, 2))
        with batcher:
            futures = [batcher.submit(images[i]) for i in range(3)]
            for f in futures:
                f.result(timeout=10)
        assert sum(seen) == 3  # no padding rows ever reached the runner

    def test_max_latency_bounds_lone_request(self):
        """A lone request is not held for long after max_latency_ms."""
        batcher = Batcher(double_runner, max_batch=64, max_latency_ms=5.0)
        with batcher:
            start = time.perf_counter()
            batcher(np.zeros((1,)), timeout=10)
            elapsed = time.perf_counter() - start
        assert elapsed < 5.0  # far below any full-batch wait, CI-safe bound

    def test_runner_error_propagates_to_all_requests(self):
        def failing_runner(x):
            raise RuntimeError("backend exploded")

        stats = ServerStats()
        batcher = Batcher(failing_runner, max_batch=4, max_latency_ms=20.0, stats=stats)
        with batcher:
            futures = [batcher.submit(np.zeros((2,))) for _ in range(3)]
            for f in futures:
                with pytest.raises(RuntimeError, match="backend exploded"):
                    f.result(timeout=10)
        assert stats.errors == 3
        assert stats.requests == 0

    def test_wrong_row_count_rejected(self):
        batcher = Batcher(lambda x: x[:0], max_batch=2, max_latency_ms=1.0)
        with batcher:
            future = batcher.submit(np.zeros((2,)))
            with pytest.raises(RuntimeError, match="rows"):
                future.result(timeout=10)

    def test_cancelled_future_does_not_kill_worker(self):
        """A future cancelled while queued is dropped at flush time;
        the worker must survive and keep serving later requests."""
        release = threading.Event()

        def gated_runner(x):
            release.wait(5.0)
            return x

        batcher = Batcher(gated_runner, max_batch=1, max_latency_ms=0.0)
        with batcher:
            in_flight = batcher.submit(np.zeros((1,)))
            time.sleep(0.05)  # worker is now blocked inside the runner
            doomed = batcher.submit(np.ones((1,)))
            assert doomed.cancel()  # still queued: cancel wins
            survivor = batcher.submit(np.full((1,), 2.0))
            release.set()
            np.testing.assert_array_equal(survivor.result(timeout=10), [2.0])
            np.testing.assert_array_equal(in_flight.result(timeout=10), [0.0])
        assert doomed.cancelled()

    def test_submit_after_stop_raises(self):
        batcher = Batcher(double_runner).start()
        batcher.stop()
        with pytest.raises(RuntimeError, match="not running"):
            batcher.submit(np.zeros((1,)))

    def test_stop_drains_queued_requests(self):
        release = threading.Event()

        def slow_runner(x):
            release.wait(5.0)
            return x

        batcher = Batcher(slow_runner, max_batch=1, max_latency_ms=0.0)
        batcher.start()
        futures = [batcher.submit(np.full((1,), float(i))) for i in range(4)]
        release.set()
        batcher.stop()  # drain=True serves everything already queued
        results = [f.result(timeout=10) for f in futures]
        np.testing.assert_allclose(np.concatenate(results), [0.0, 1.0, 2.0, 3.0])

    def test_start_is_idempotent(self):
        batcher = Batcher(double_runner)
        assert batcher.start() is batcher
        worker = batcher._worker
        batcher.start()
        assert batcher._worker is worker
        batcher.stop()

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            Batcher(double_runner, max_batch=0)
        with pytest.raises(ValueError):
            Batcher(double_runner, max_latency_ms=-1.0)


class TestServerStats:
    def test_percentiles_and_histogram(self):
        stats = ServerStats()
        for latency in (0.010, 0.020, 0.030, 0.040):
            stats.record_request(latency)
        stats.record_batch(4, 0.01)
        stats.record_batch(2, 0.01)
        snap = stats.snapshot(queue_depth=3)
        assert snap["requests"] == 4
        assert snap["batches"] == 2
        assert snap["mean_batch"] == 3.0
        assert snap["batch_histogram"] == {"2": 1, "4": 1}
        assert snap["queue_depth"] == 3
        assert 0 < snap["p50_ms"] <= snap["p95_ms"] <= snap["p99_ms"] <= 40.1

    def test_empty_stats_snapshot(self):
        snap = ServerStats().snapshot()
        assert snap["requests"] == 0
        assert snap["p99_ms"] == 0.0
        assert snap["mean_batch"] == 0.0

    def test_render_mentions_counts(self):
        stats = ServerStats()
        stats.record_batch(2, 0.001)
        stats.record_request(0.002)
        stats.record_request(0.002)
        text = stats.render(title="demo")
        assert "demo" in text and "2 requests" in text and "2x1" in text

    def test_window_bounds_reservoir(self):
        stats = ServerStats(window=4)
        for _ in range(100):
            stats.record_request(1.0)
        stats.record_request(0.5)
        assert len(stats._latencies) == 4
        with pytest.raises(ValueError):
            ServerStats(window=0)
