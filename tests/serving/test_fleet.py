"""Multi-tenant fleet tests: residency, weighted fairness, quotas.

ISSUE 8 acceptance, unit-sized:

- a memory budget below the fleet's working set demotes the coldest
  tenant (visible on /models and /metrics) with **zero failed admitted
  requests**, and re-promotion reuses the lowered IR (the pass trace is
  untouched — no recompile);
- concurrent predicts racing demotion/eviction always complete (or
  transparently re-promote) — never surface an error;
- two tenants at 3:1 weights under saturation see throughput within
  +/-15% of 3:1;
- per-tenant rate quotas shed with HTTP 429 kind ``quota_exceeded``;
- DELETE /models/<name> discharges the tenant's ledger bytes
  immediately (no leak).
"""

import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.serving import (
    Batcher,
    FlushScheduler,
    ModelServer,
    QuotaExceeded,
    ResidencyManager,
    serve_http,
)


def get_json(url):
    with urllib.request.urlopen(url, timeout=30) as response:
        return response.status, json.load(response)


def post_json(url, payload):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        return response.status, json.load(response)


class TestFlushScheduler:
    def test_weighted_fairness_3_to_1_under_saturation(self):
        """Saturated tenants converge to throughput ~proportional to
        their weights (the tentpole's +/-15% fairness contract)."""
        def runner(x):
            time.sleep(0.001)
            return x

        sched = FlushScheduler()
        heavy = Batcher(runner, max_batch=4, max_latency_ms=0.5, weight=3.0)
        light = Batcher(runner, max_batch=4, max_latency_ms=0.5, weight=1.0)
        sched.register("heavy", heavy)
        sched.register("light", light)
        stop = threading.Event()

        def feed(batcher):
            # Keep a standing backlog so the scheduler always has a
            # choice — fairness only shows under saturation.
            pending = []
            while not stop.is_set():
                pending = [f for f in pending if not f.done()]
                while len(pending) < 12:
                    pending.append(batcher.submit(np.zeros((2,))))
                time.sleep(0.0005)

        with sched:
            heavy.start()
            light.start()
            feeders = [
                threading.Thread(target=feed, args=(b,), daemon=True)
                for b in (heavy, light)
            ]
            for t in feeders:
                t.start()
            time.sleep(1.5)
            stop.set()
            for t in feeders:
                t.join()
            snap = sched.snapshot()
            heavy.stop(drain=False)
            light.stop(drain=False)
        served_heavy = snap["tenants"]["heavy"]["requests"]
        served_light = snap["tenants"]["light"]["requests"]
        assert served_light > 0
        ratio = served_heavy / served_light
        assert 3.0 * 0.85 <= ratio <= 3.0 * 1.15, snap["tenants"]

    def test_slo_urgency_contract(self):
        """The scheduler's EDF override keys off slo_urgent(): a queued
        request close to its deadline flags urgent, a fresh one does
        not, and a no-SLO tenant never does."""
        tight = Batcher(lambda x: x, max_batch=8, max_latency_ms=50.0, slo_ms=100.0)
        tight._flush_cost = 0.02  # recent flushes cost ~20 ms
        tight.start()
        tight.submit(np.zeros((2,)))
        deadline = tight.oldest_deadline()
        assert deadline < float("inf")
        # Fresh request: ~100 ms of slack against a 40 ms urgency window.
        assert not tight.slo_urgent(now=deadline - 0.09)
        # 30 ms left < 2 * flush cost: must jump the fair-share queue.
        assert tight.slo_urgent(now=deadline - 0.03)
        tight.stop()
        relaxed = Batcher(lambda x: x, max_batch=8, max_latency_ms=50.0)
        relaxed.start()
        relaxed.submit(np.zeros((2,)))
        assert relaxed.oldest_deadline() == float("inf")
        assert not relaxed.slo_urgent()
        relaxed.stop()

    def test_unregister_detaches_and_standalone_still_works(self):
        sched = FlushScheduler()
        batcher = Batcher(lambda x: x, max_batch=2, max_latency_ms=0.5)
        sched.register("t", batcher)
        assert sched.serves(batcher)
        sched.unregister(batcher)
        assert not sched.serves(batcher)
        with batcher:  # falls back to its private thread
            assert batcher.submit(np.ones((2,))).result(timeout=5).shape == (2,)


class TestResidency:
    # One tenant's working set is ~0.7 MB (winograd's transformed
    # weights are 4x the conv weights): 0.8 MB fits exactly one
    # resident, so a 3-model fleet must demote.
    def budget_server(self, budget_mb=0.8, **kwargs):
        server = ModelServer(
            max_batch=4, max_latency_ms=1.0, memory_budget_mb=budget_mb, **kwargs
        )
        for name, seed in (("a", 1), ("b", 2), ("c", 3)):
            server.load_registry("patternnet", name=name, seed=seed)
        return server

    def test_budget_demotes_coldest_tenant_without_failing_requests(self):
        server = self.budget_server()
        x = np.zeros((3, 16, 16))
        with server:
            for name in ("a", "b", "c"):
                for _ in range(3):
                    server.predict(x, name, timeout=30)
            desc = server.describe_models()
            # The budget is below the 3-model working set: someone was
            # demoted, and every tenant still answered every request.
            assert any(row["state"] != "resident" for row in desc.values())
            assert sum(row["demotions"] for row in desc.values()) >= 1
            stats = server.stats()
            assert all(stats[n]["errors"] == 0 for n in ("a", "b", "c"))
            fleet = stats["_fleet"]["residency"]
            assert fleet["budget_bytes"] == int(0.8 * 2**20)
            assert fleet["charged_bytes"] <= fleet["budget_bytes"]
            kinds = {i["kind"] for i in server.supervisor.incidents()}
            assert "tenant_demoted" in kinds

    def test_repromotion_reuses_lowered_ir_no_recompile(self):
        server = ModelServer(max_batch=4, max_latency_ms=1.0)
        server.load_registry("patternnet", name="m", n=2, patterns=4, seed=0)
        x = np.ones((3, 16, 16)) * 0.1
        with server:
            baseline = server.predict(x, "m", timeout=30)
            compiled = server.get("m").compiled
            trace_before = compiled.passes  # the pass-trace object itself
            ops_before = [id(op) for op in compiled.iter_ops()]
            assert server.residency.evict("m")
            assert server.describe_model("m")["state"] == "evicted"
            again = server.predict(x, "m", timeout=30)
            # Same pass-trace object and same op objects: promotion was
            # a warm prepare of the retained IR, not a recompile.
            assert compiled.passes is trace_before
            assert [id(op) for op in compiled.iter_ops()] == ops_before
            assert server.describe_model("m")["state"] == "resident"
            np.testing.assert_allclose(again, baseline)

    def test_concurrent_predicts_race_demotion_never_fail(self):
        """Requests in flight while the tenant is demoted/evicted either
        complete untouched or re-promote — never a 500."""
        server = ModelServer(max_batch=4, max_latency_ms=0.5)
        server.load_registry("patternnet", name="m", seed=4)
        x = np.zeros((3, 16, 16))
        errors = []
        stop = threading.Event()

        def attack():
            while not stop.is_set():
                server.residency.demote("m")
                server.residency.evict("m")

        def client():
            try:
                for _ in range(40):
                    server.predict(x, "m", timeout=30)
            except Exception as error:  # noqa: BLE001 - the assertion
                errors.append(error)

        with server:
            attacker = threading.Thread(target=attack, daemon=True)
            clients = [threading.Thread(target=client) for _ in range(4)]
            attacker.start()
            for t in clients:
                t.start()
            for t in clients:
                t.join()
            stop.set()
            attacker.join()
        assert errors == []
        assert server.get("m").stats.errors == 0

    def test_remove_model_discharges_ledger(self):
        server = self.budget_server(budget_mb=16.0)
        x = np.zeros((3, 16, 16))
        with server:
            for name in ("a", "b", "c"):
                server.predict(x, name, timeout=30)
            before = server.residency.total_charged()
            charged_b = server.describe_model("b")["bytes"]
            assert charged_b > 0
            server.remove_model("b")
            after = server.residency.total_charged()
            assert after == before - charged_b
            assert server.residency.tenant_names() == ["a", "c"]
            assert after >= 0

    def test_manager_refuses_unknown_and_reports_headroom(self):
        manager = ResidencyManager(budget_bytes=1000)
        assert not manager.demote("ghost")
        assert not manager.evict("ghost")
        assert manager.headroom() == 1000
        assert ResidencyManager().headroom() is None


class TestQuotas:
    def test_rate_quota_sheds_with_typed_error(self):
        batcher = Batcher(lambda x: x, max_batch=2, max_latency_ms=0.5, rate=2.0)
        with batcher:
            futures = [batcher.submit(np.zeros((2,))) for _ in range(2)]
            with pytest.raises(QuotaExceeded) as info:
                batcher.submit(np.zeros((2,)))
            assert info.value.retry_after > 0
            for f in futures:
                f.result(timeout=5)
        assert batcher.stats.shed.get("quota") == 1

    def test_token_bucket_refills(self):
        batcher = Batcher(lambda x: x, max_batch=2, max_latency_ms=0.1, rate=50.0)
        with batcher:
            for _ in range(50):
                batcher.submit(np.zeros((2,))).result(timeout=5)
            with pytest.raises(QuotaExceeded):
                batcher.submit(np.zeros((2,)))
            time.sleep(0.1)  # ~5 tokens earned back
            batcher.submit(np.zeros((2,))).result(timeout=5)


@pytest.fixture(scope="module")
def fleet_stack():
    """A 2-tenant fleet server + HTTP endpoint on an ephemeral port."""
    server = ModelServer(max_batch=8, max_latency_ms=5.0, memory_budget_mb=32.0)
    server.load_registry("patternnet", name="hot", seed=0, weight=3.0)
    server.load_registry("patternnet", name="limited", seed=1, rate=2.0)
    server.warmup()
    httpd = serve_http(server, port=0)
    yield server, httpd.url
    httpd.shutdown()
    httpd.server_close()
    server.stop()


class TestFleetHTTP:
    def test_models_rows_carry_residency_and_weight(self, fleet_stack):
        server, url = fleet_stack
        status, body = get_json(f"{url}/models")
        assert status == 200
        row = body["hot"]
        assert row["weight"] == 3.0
        assert row["state"] in ("resident", "demoted", "evicted")
        assert isinstance(row["bytes"], int)
        for key in ("resident", "demotions", "promotions", "evictions"):
            assert key in row
        assert "memory" in row  # full per-tenant byte breakdown

    def test_stats_fleet_block(self, fleet_stack):
        server, url = fleet_stack
        status, body = get_json(f"{url}/stats")
        assert status == 200
        fleet = body["_fleet"]
        assert fleet["residency"]["budget_bytes"] == int(32.0 * 2**20)
        assert set(fleet["scheduler"]["tenants"]) == {"hot", "limited"}
        assert fleet["scheduler"]["tenants"]["hot"]["weight"] == 3.0

    def test_quota_exceeded_is_typed_429(self, fleet_stack):
        server, url = fleet_stack
        image = np.zeros((3, 16, 16)).tolist()
        # Burst past the 2 req/s bucket (burst allowance 2).
        seen = []
        for _ in range(6):
            try:
                status, _ = post_json(
                    f"{url}/predict", {"input": image, "model": "limited"}
                )
                seen.append(status)
            except urllib.error.HTTPError as error:
                seen.append(error.code)
                if error.code == 429:
                    body = json.load(error)
                    assert body["error"]["kind"] == "quota_exceeded"
                    assert int(error.headers["Retry-After"]) >= 1
        assert 429 in seen
        assert 200 in seen

    def test_metrics_tenant_families(self, fleet_stack):
        server, url = fleet_stack
        with urllib.request.urlopen(f"{url}/metrics", timeout=30) as response:
            text = response.read().decode()
        assert 'repro_tenant_state{model="hot",state="resident"}' in text
        assert 'repro_tenant_weight{model="hot"} 3' in text
        assert "repro_fleet_budget_bytes" in text
        assert "repro_fleet_charged_bytes" in text
        assert 'repro_shed_total{model="limited",reason="quota"}' in text
        assert 'repro_tenant_resident_bytes{model="hot"}' in text

    def test_delete_model_releases_ledger_bytes(self, fleet_stack):
        server, url = fleet_stack
        status, _ = post_json(
            f"{url}/models",
            {"model": "patternnet", "name": "doomed", "seed": 7, "weight": 2.0},
        )
        assert status == 200
        server.predict(np.zeros((3, 16, 16)), "doomed", timeout=30)
        before = server.residency.total_charged()
        charged = server.describe_model("doomed")["bytes"]
        assert charged > 0
        request = urllib.request.Request(f"{url}/models/doomed", method="DELETE")
        with urllib.request.urlopen(request, timeout=60) as response:
            assert response.status == 200
        assert server.residency.total_charged() == before - charged
        assert "doomed" not in get_json(f"{url}/models")[1]
