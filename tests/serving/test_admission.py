"""Admission control and failure-path tests for the batcher.

Covers the overload contract (bounded queue -> ``QueueFull`` with a
``Retry-After`` hint, SLO-blown requests shed before batch assembly),
the typed ``BatcherClosed`` rejection on a stopped batcher, client-side
``timeout=`` expiring while a request is queued vs in-flight, and the
degraded-mode fallback that re-serves a flush in-process when the
worker pool fails it.
"""

import threading
import time
from concurrent.futures import TimeoutError as FutureTimeout

import numpy as np
import pytest

from repro.runtime import BrokenWorkerPool
from repro.serving import Batcher, BatcherClosed, QueueFull, SLOExpired


def double_runner(x):
    return x * 2.0


class SlowRunner:
    """Runner that blocks until released, so queues fill deterministically."""

    def __init__(self):
        self.release = threading.Event()
        self.started = threading.Event()
        self.batches = []

    def __call__(self, x):
        self.started.set()
        assert self.release.wait(timeout=30), "runner never released"
        self.batches.append(x.shape[0])
        return x * 2.0


class TestQueueFull:
    def test_submit_past_high_water_mark_raises_429_material(self):
        slow = SlowRunner()
        batcher = Batcher(slow, max_batch=1, max_latency_ms=0.0, max_queue=2)
        with batcher:
            first = batcher.submit(np.zeros(2))
            assert slow.started.wait(timeout=10)  # flush in progress
            queued = [batcher.submit(np.zeros(2)) for _ in range(2)]
            with pytest.raises(QueueFull) as excinfo:
                batcher.submit(np.zeros(2))
            assert excinfo.value.retry_after > 0
            assert batcher.stats.shed == {"queue_full": 1}
            slow.release.set()
        # Admitted requests were never dropped: all of them completed.
        for future in [first, *queued]:
            np.testing.assert_array_equal(future.result(timeout=10), np.zeros(2))
        assert batcher.stats.requests == 3

    def test_retry_after_estimate_is_clamped(self):
        batcher = Batcher(double_runner, max_latency_ms=2.0)
        # Cold server: no observed rate, falls back to the latency bound.
        assert 0.05 <= batcher.retry_after_estimate() <= 30.0

    def test_max_queue_validation(self):
        with pytest.raises(ValueError, match="max_queue"):
            Batcher(double_runner, max_queue=0)


class TestSLODeadlines:
    def test_expired_requests_shed_before_batch_assembly(self):
        """SLO-blown requests get 503 material and never reach the runner."""
        slow = SlowRunner()
        batcher = Batcher(slow, max_batch=1, max_latency_ms=0.0, slo_ms=50.0)
        with batcher:
            first = batcher.submit(np.zeros(2))
            assert slow.started.wait(timeout=10)
            stale = batcher.submit(np.zeros(2))
            time.sleep(0.12)  # let the queued request blow its 50 ms SLO
            slow.release.set()
            np.testing.assert_array_equal(first.result(timeout=10), np.zeros(2))
            with pytest.raises(SLOExpired):
                stale.result(timeout=10)
        assert batcher.stats.shed == {"slo": 1}
        # The runner only ever saw the live request's flush.
        assert slow.batches == [1]
        # Shed is not an error: the runner never failed anything.
        assert batcher.stats.errors == 0

    def test_within_slo_requests_serve_normally(self):
        batcher = Batcher(double_runner, max_batch=4, max_latency_ms=1.0,
                          slo_ms=5000.0)
        with batcher:
            out = batcher(np.arange(3.0), timeout=10)
        np.testing.assert_array_equal(out, np.arange(3.0) * 2.0)
        assert batcher.stats.shed == {}

    def test_slo_validation(self):
        with pytest.raises(ValueError, match="slo_ms"):
            Batcher(double_runner, slo_ms=0.0)


class TestBatcherClosed:
    def test_submit_before_start_raises_typed(self):
        batcher = Batcher(double_runner)
        with pytest.raises(BatcherClosed):
            batcher.submit(np.zeros(2))

    def test_submit_after_stop_raises_typed(self):
        batcher = Batcher(double_runner)
        batcher.start()
        batcher.stop()
        with pytest.raises(BatcherClosed):
            batcher.submit(np.zeros(2))

    def test_batcher_closed_is_runtime_error(self):
        # Typed for clients, but still a RuntimeError for old callers.
        assert issubclass(BatcherClosed, RuntimeError)


class TestClientTimeouts:
    def test_timeout_while_queued_then_still_served(self):
        """A client timeout on a *queued* request does not drop it."""
        slow = SlowRunner()
        batcher = Batcher(slow, max_batch=1, max_latency_ms=0.0)
        with batcher:
            batcher.submit(np.zeros(2))
            assert slow.started.wait(timeout=10)
            queued = batcher.submit(np.ones(2))
            with pytest.raises(FutureTimeout):
                queued.result(timeout=0.05)  # still waiting for a flush slot
            slow.release.set()
            # The request was admitted, so it still completes after the
            # client gave up — the timeout is client-side only.
            np.testing.assert_array_equal(queued.result(timeout=10), np.ones(2) * 2.0)

    def test_timeout_while_in_flight_then_still_served(self):
        slow = SlowRunner()
        batcher = Batcher(slow, max_batch=2, max_latency_ms=0.0)
        with batcher:
            future = batcher.submit(np.ones(2))
            assert slow.started.wait(timeout=10)  # flush running right now
            with pytest.raises(FutureTimeout):
                future.result(timeout=0.05)
            slow.release.set()
            np.testing.assert_array_equal(future.result(timeout=10), np.ones(2) * 2.0)


class TestDegradedFallback:
    def test_pool_error_reroutes_through_fallback(self):
        def broken_pool(x):
            raise BrokenWorkerPool("every worker is dead")

        batcher = Batcher(
            broken_pool,
            max_batch=4,
            max_latency_ms=1.0,
            fallback_runner=double_runner,
            fallback_on=(BrokenWorkerPool,),
        )
        with batcher:
            out = batcher(np.arange(4.0), timeout=10)
        np.testing.assert_array_equal(out, np.arange(4.0) * 2.0)
        assert batcher.stats.degraded_flushes == 1
        assert batcher.stats.degraded_requests == 1
        assert batcher.stats.errors == 0

    def test_unlisted_errors_still_fail_the_batch(self):
        def buggy(x):
            raise ValueError("not a pool failure")

        batcher = Batcher(
            buggy,
            max_batch=4,
            max_latency_ms=1.0,
            fallback_runner=double_runner,
            fallback_on=(BrokenWorkerPool,),
        )
        with batcher:
            future = batcher.submit(np.zeros(2))
            with pytest.raises(ValueError, match="not a pool failure"):
                future.result(timeout=10)
        assert batcher.stats.degraded_flushes == 0
        assert batcher.stats.errors == 1

    def test_no_fallback_configured_propagates(self):
        def broken_pool(x):
            raise BrokenWorkerPool("every worker is dead")

        batcher = Batcher(broken_pool, max_batch=4, max_latency_ms=1.0)
        with batcher:
            future = batcher.submit(np.zeros(2))
            with pytest.raises(BrokenWorkerPool):
                future.result(timeout=10)
