"""Tests for the ModelServer registry — including the end-to-end
acceptance path: a PCNN bundle served under concurrent traffic with
coalescing and pattern-backend execution verified through the full stack.
"""

import numpy as np
import pytest

from repro import nn, runtime
from repro.core import PCNNConfig, PCNNPruner, bundle_from_pruner
from repro.models import patternnet
from repro.runtime.compile import ConvOp
from repro.serving import ModelServer, bucket_sizes


def pruned_bundle_path(tmp_path, n=2, num_patterns=4, seed=0):
    """Prune the registry patternnet and write its deployment bundle."""
    model = patternnet(rng=np.random.default_rng(seed))
    pruner = PCNNPruner(model, PCNNConfig.uniform(n, 3, num_patterns=num_patterns))
    pruner.apply()
    bundle = bundle_from_pruner(pruner)
    path = str(tmp_path / "bundle.npz")
    bundle.save(path)
    return path


class TestModelServerLoading:
    def test_load_registry_dense(self):
        server = ModelServer(max_batch=4, max_latency_ms=1.0)
        served = server.load_registry("patternnet")
        assert served.input_shape == (3, 16, 16)
        assert served.compiled is not None
        assert served.meta["setting"] == "dense"

    def test_load_registry_pruned_attaches_encodings(self):
        server = ModelServer(max_batch=4, max_latency_ms=1.0)
        served = server.load_registry("patternnet", n=2, patterns=4)
        convs = [m for m in served.model.modules() if isinstance(m, nn.Conv2d)]
        assert convs and all(conv.encoded is not None for conv in convs)

    def test_load_bundle_restores_spm_serving(self, tmp_path):
        """The restore_into fix end to end: a bundle-loaded model serves
        its pruned convs from SPM encodings, not the dense fallback."""
        path = pruned_bundle_path(tmp_path)
        server = ModelServer(max_batch=4, max_latency_ms=1.0)
        served = server.load_bundle(path, "patternnet")
        convs = [m for m in served.model.modules() if isinstance(m, nn.Conv2d)]
        assert convs and all(conv.encoded is not None for conv in convs)
        # The engine auto-selects the pattern backend for each of them...
        from repro.runtime.engine import ConvRequest, select_backend

        x = np.zeros((1, 3, 16, 16))
        request = ConvRequest(x=x, encoded=convs[0].encoded, padding=1)
        assert select_backend(request) == "pattern"
        # ...and the compiled pipeline lowered them from their encodings
        # (n=2 x |P|=4 = 8 <= 9 -> native SPM gather).
        conv_ops = [op for op in served.compiled.ops if isinstance(op, ConvOp)]
        assert conv_ops and all(op.encoded is not None for op in conv_ops)
        assert all(op.use_gather for op in conv_ops)
        assert served.meta["layers"] == 3

    def test_duplicate_name_rejected(self):
        server = ModelServer(max_batch=2, max_latency_ms=1.0)
        server.load_registry("patternnet")
        with pytest.raises(KeyError, match="already registered"):
            server.load_registry("patternnet")

    def test_get_resolves_sole_model_and_unknown(self):
        server = ModelServer(max_batch=2, max_latency_ms=1.0)
        with pytest.raises(KeyError, match="model name required"):
            server.get(None)
        served = server.load_registry("patternnet")
        assert server.get(None) is served
        with pytest.raises(KeyError, match="unknown model"):
            server.get("nope")

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            ModelServer(max_batch=0)


class TestModelServerServing:
    def test_predict_matches_runtime_predict(self):
        server = ModelServer(max_batch=4, max_latency_ms=1.0)
        served = server.load_registry("patternnet", seed=3)
        x = np.random.default_rng(4).normal(size=(1, 3, 16, 16))
        reference = runtime.predict(served.model, x)
        with server:
            out = server.predict(x[0], timeout=30)
        np.testing.assert_allclose(out, reference[0], rtol=1e-4, atol=1e-5)

    def test_eager_serving_without_compile(self):
        server = ModelServer(max_batch=4, max_latency_ms=1.0, compile=False)
        served = server.load_registry("patternnet", seed=5)
        assert served.compiled is None
        x = np.random.default_rng(6).normal(size=(1, 3, 16, 16))
        reference = runtime.predict(served.model, x)
        with server:
            out = server.predict(x[0], timeout=30)
        np.testing.assert_allclose(out, reference[0], rtol=1e-9, atol=1e-12)

    def test_shape_validation(self):
        server = ModelServer(max_batch=2, max_latency_ms=1.0)
        server.load_registry("patternnet")
        with server:
            with pytest.raises(ValueError, match="expects one"):
                server.predict(np.zeros((3, 8, 8)))

    def test_warmup_prebuilds_every_bucket_geometry(self):
        server = ModelServer(max_batch=8, max_latency_ms=1.0)
        served = server.load_registry("patternnet", seed=7)
        server.warmup()
        planned = dict(served.compiled.plans.stats.__dict__)
        # Serving any bucket-sized batch afterwards never plans again.
        for size in bucket_sizes(8):
            served.batcher.runner(np.zeros((size, 3, 16, 16)))
        assert served.compiled.plans.stats.misses == planned["misses"]

    def test_stats_exposed_per_model(self):
        server = ModelServer(max_batch=2, max_latency_ms=1.0)
        server.load_registry("patternnet", name="a", seed=8)
        with server:
            server.predict(np.zeros((3, 16, 16)), "a", timeout=30)
        snapshot = server.stats()
        assert snapshot["a"]["requests"] == 1
        assert "queue_depth" in snapshot["a"]
        assert "a" in server.render_stats()


class TestEndToEndAcceptance:
    def test_concurrent_bundle_serving_coalesces_on_pattern_backend(self, tmp_path):
        """ISSUE 3 acceptance: >= 64 concurrent single-image requests at
        a PCNN-pruned model loaded from a bundle must (a) match
        ``predict()`` on the same inputs, (b) actually coalesce
        (mean batch > 1), and (c) serve the pruned convs from their SPM
        encodings (the restore_into fix, verified through the stack)."""
        path = pruned_bundle_path(tmp_path, n=2, num_patterns=4, seed=11)
        server = ModelServer(max_batch=16, max_latency_ms=25.0, workers=2)
        served = server.load_bundle(path, "patternnet", name="pcnn")

        # (c) pattern serving through the full stack: eager fast path and
        # compiled pipeline both read the SPM encodings restore attached.
        convs = [m for m in served.model.modules() if isinstance(m, nn.Conv2d)]
        assert all(conv.encoded is not None for conv in convs)
        conv_ops = [op for op in served.compiled.ops if isinstance(op, ConvOp)]
        assert conv_ops and all(
            op.encoded is not None and op.use_gather for op in conv_ops
        )

        server.warmup()
        rng = np.random.default_rng(12)
        images = rng.normal(size=(64, 3, 16, 16))
        reference = runtime.predict(served.model, images)

        with server:
            futures = [server.submit(images[i], "pcnn") for i in range(64)]
            outputs = np.stack([f.result(timeout=60) for f in futures])

        # (a) responses match predict() on the same inputs.
        np.testing.assert_allclose(outputs, reference, rtol=1e-4, atol=1e-5)
        assert float(np.abs(outputs - reference).max()) < 1e-5

        # (b) the batch-size histogram shows coalescing actually happened.
        stats = served.stats
        assert stats.requests == 64
        assert stats.mean_batch > 1.0, stats.batch_histogram
        assert sum(stats.batch_histogram.values()) < 64
        percentiles = stats.latency_percentiles()
        assert percentiles["p50_ms"] <= percentiles["p99_ms"]


class TestQuantizedServing:
    def test_quantized_bundle_serves_int8_end_to_end(self, tmp_path):
        """ISSUE 4 acceptance path: an 8-bit deployment bundle loads into
        a ModelServer(quantize=...), compiles to QuantConvOps (no dense
        float weights between bundle storage and the GEMM operand), and
        serves concurrent traffic that matches float predict() within
        the quantization error budget with full top-1 agreement."""
        from repro.models import create_model
        from repro.core.deploy import DeploymentBundle
        from repro.runtime.quant import QuantConvOp

        model = patternnet(rng=np.random.default_rng(21))
        pruner = PCNNPruner(model, PCNNConfig.uniform(2, 3, num_patterns=4))
        pruner.apply()
        bundle = bundle_from_pruner(pruner, quantize_bits=8)
        assert bundle.quantized
        path = str(tmp_path / "int8.npz")
        bundle.save(path)

        server = ModelServer(max_batch=16, max_latency_ms=25.0, quantize="int8")
        served = server.load_bundle(path, "patternnet", name="q")
        assert served.meta["quantized"] == "int8"
        assert served.meta["quantized_layers"] == 3
        assert served.meta["bundle_weight_bits"] == [8]
        qconvs = [op for op in served.compiled.ops if isinstance(op, QuantConvOp)]
        assert len(qconvs) == 3
        # SPM-aware storage: the op's artifact is the encoded (kernels, n)
        # code values, not a dense tensor.
        assert all(op.encoded is not None for op in qconvs)

        server.warmup()
        rng = np.random.default_rng(22)
        images = rng.normal(size=(48, 3, 16, 16))
        reference_model = create_model("patternnet", rng=np.random.default_rng(0))
        DeploymentBundle.load(path).restore_into(reference_model)
        reference = runtime.predict(reference_model, images)

        with server:
            futures = [server.submit(images[i], "q") for i in range(48)]
            outputs = np.stack([f.result(timeout=60) for f in futures])

        rel = np.linalg.norm(outputs - reference) / np.linalg.norm(reference)
        assert rel < 0.05, rel
        agree = (outputs.argmax(axis=1) == reference.argmax(axis=1)).mean()
        assert agree >= 0.99
        assert served.stats.requests == 48

    def test_quantize_requires_compile(self):
        with pytest.raises(ValueError, match="compile"):
            ModelServer(compile=False, quantize="int8")

    def test_registry_quantized_meta_and_stats_roundtrip(self):
        server = ModelServer(max_batch=4, max_latency_ms=1.0, quantize="int8")
        served = server.load_registry("patternnet", n=2, patterns=4)
        assert served.meta["quantized"] == "int8"
        assert served.describe()["quantized"] == "int8"
        x = np.random.default_rng(23).normal(size=(3, 16, 16))
        with server:
            out = server.predict(x)
        assert out.shape == (10,)


class TestCacheObservability:
    """PlanCache / TuningCache stats ride the /stats payload."""

    def test_plan_cache_stats_in_snapshot(self, monkeypatch):
        # Pin the per-op dispatch path: the trace executor replays
        # prebound thunks on repeat shapes and never consults the plan
        # cache again, which is exactly what this test observes.
        monkeypatch.setenv("REPRO_TRACE", "0")
        server = ModelServer(max_batch=4, max_latency_ms=1.0)
        served = server.load_registry("patternnet")
        with server:
            server.predict(np.zeros((3, 16, 16)))
            server.predict(np.zeros((3, 16, 16)))
        snap = served.stats.snapshot()
        caches = snap["caches"]
        assert caches["plans"]["misses"] > 0  # first request planned
        assert caches["plans"]["hits"] > 0  # second reused every plan
        assert 0.0 <= caches["plans"]["hit_rate"] <= 1.0
        assert server.stats()["patternnet"]["caches"]["plans"] == caches["plans"]

    def test_tuning_cache_stats_when_tuned(self):
        server = ModelServer(max_batch=4, max_latency_ms=1.0, tune="cost")
        served = server.load_registry("patternnet", n=1, patterns=4)
        assert served.meta["tuned"] == "cost"
        assert served.meta["tuned_layers"] == 3
        snap = served.stats.snapshot()
        assert set(snap["caches"]) == {"plans", "tuning"}
        for key in ("hits", "misses", "stores", "hit_rate"):
            assert key in snap["caches"]["tuning"]

    def test_tune_requires_compile(self):
        with pytest.raises(ValueError, match="tune="):
            ModelServer(compile=False, tune="cost")

    def test_eager_server_has_no_cache_section(self):
        server = ModelServer(max_batch=4, max_latency_ms=1.0, compile=False)
        served = server.load_registry("patternnet")
        assert "caches" not in served.stats.snapshot()
