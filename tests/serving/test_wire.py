"""Property-based tests for the binary wire framing.

The framing invariants the streaming transport stands on: any encodable
frame round-trips bit-exactly through any split of TCP chunk boundaries;
any corrupted/truncated/oversize frame is rejected as a *typed* event
while the reader stays synchronised — one bad frame never costs more
than its own bytes.
"""

import json
import struct
import zlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving.wire import (
    DEFAULT_MAX_FRAME_BYTES,
    DTYPE_CODES,
    FLAG_CACHE_HIT,
    KIND_ERROR,
    KIND_HELLO,
    KIND_HELLO_ACK,
    KIND_REQUEST,
    KIND_RESPONSE,
    MAGIC,
    MAX_NDIM,
    Frame,
    FrameError,
    FrameReader,
    WireError,
    encode_error_frame,
    encode_meta_frame,
    encode_tensor_frame,
)

# Dtypes a client can legitimately put on the wire.
WIRE_DTYPES = [np.dtype(d) for d in ("<f4", "<f8", "i1", "<i4", "u1", "<i8", "<u4")]


def _random_tensor(rng: np.random.Generator, dtype: np.dtype, shape) -> np.ndarray:
    if dtype.kind == "f":
        return rng.standard_normal(shape).astype(dtype)
    info = np.iinfo(dtype)
    return rng.integers(info.min, info.max, size=shape, dtype=dtype)


# ---------------------------------------------------------------------
# Round-trip fuzz (satellite: dtypes x shapes x sizes x chunk splits)
# ---------------------------------------------------------------------
class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(
        dtype_index=st.integers(0, len(WIRE_DTYPES) - 1),
        shape=st.lists(st.integers(0, 5), min_size=0, max_size=4),
        kind=st.sampled_from([KIND_REQUEST, KIND_RESPONSE]),
        request_id=st.integers(0, 2**32 - 1),
        stream_id=st.integers(0, 2**32 - 1),
        seq=st.integers(0, 2**32 - 1),
        flags=st.sampled_from([0, FLAG_CACHE_HIT]),
        chunk=st.integers(1, 64),
        seed=st.integers(0, 2**16),
    )
    def test_tensor_frame_roundtrips_across_any_chunking(
        self, dtype_index, shape, kind, request_id, stream_id, seq, flags,
        chunk, seed,
    ):
        dtype = WIRE_DTYPES[dtype_index]
        tensor = _random_tensor(np.random.default_rng(seed), dtype, tuple(shape))
        buf = encode_tensor_frame(
            kind, request_id, tensor,
            stream_id=stream_id, seq=seq, flags=flags,
        )
        reader = FrameReader()
        events = []
        for start in range(0, len(buf), chunk):
            events.extend(reader.feed(buf[start:start + chunk]))
        assert len(events) == 1
        frame = events[0]
        assert isinstance(frame, Frame), frame
        assert frame.kind == kind
        assert frame.request_id == request_id
        assert frame.stream_id == stream_id
        assert frame.seq == seq
        assert frame.flags == flags
        assert frame.cache_hit == bool(flags & FLAG_CACHE_HIT)
        assert frame.tensor.shape == tuple(shape)
        np.testing.assert_array_equal(frame.tensor, tensor)
        assert reader.pending_bytes == 0

    @settings(max_examples=30, deadline=None)
    @given(
        meta=st.dictionaries(
            st.text(min_size=1, max_size=8),
            st.one_of(st.integers(-1000, 1000), st.text(max_size=16), st.none()),
            max_size=5,
        ),
        kind=st.sampled_from([KIND_ERROR, KIND_HELLO, KIND_HELLO_ACK]),
        request_id=st.integers(0, 2**32 - 1),
        chunk=st.integers(1, 32),
    )
    def test_meta_frame_roundtrips(self, meta, kind, request_id, chunk):
        buf = encode_meta_frame(kind, request_id, meta)
        reader = FrameReader()
        events = []
        for start in range(0, len(buf), chunk):
            events.extend(reader.feed(buf[start:start + chunk]))
        (frame,) = events
        assert isinstance(frame, Frame)
        assert frame.kind == kind
        assert frame.meta == json.loads(json.dumps(meta))

    def test_many_frames_one_buffer(self):
        rng = np.random.default_rng(0)
        tensors = [rng.standard_normal((2, 3)) for _ in range(10)]
        buf = b"".join(
            encode_tensor_frame(KIND_REQUEST, i, t, seq=i)
            for i, t in enumerate(tensors)
        )
        # Feed byte-by-byte: the cruellest possible TCP fragmentation.
        reader = FrameReader()
        events = []
        for i in range(len(buf)):
            events.extend(reader.feed(buf[i:i + 1]))
        assert [f.request_id for f in events] == list(range(10))
        for frame, tensor in zip(events, tensors):
            np.testing.assert_array_equal(frame.tensor, tensor)

    def test_zero_size_tensor(self):
        buf = encode_tensor_frame(KIND_REQUEST, 1, np.empty((0, 4)))
        (frame,) = FrameReader().feed(buf)
        assert frame.tensor.shape == (0, 4)

    def test_scalar_tensor(self):
        buf = encode_tensor_frame(KIND_RESPONSE, 1, np.float64(3.5))
        (frame,) = FrameReader().feed(buf)
        assert frame.tensor.shape == ()
        assert float(frame.tensor) == 3.5

    def test_error_frame_roundtrips_to_wire_error(self):
        buf = encode_error_frame(9, "queue_full", "full up", retry_after=3)
        (frame,) = FrameReader().feed(buf)
        error = frame.error()
        assert isinstance(error, WireError)
        assert error.kind == "queue_full"
        assert error.message == "full up"
        assert error.retry_after == 3

    def test_unsupported_dtype_rejected_at_encode(self):
        with pytest.raises(ValueError, match="wire code"):
            encode_tensor_frame(KIND_REQUEST, 1, np.zeros(3, dtype=np.complex128))

    def test_rank_overflow_rejected_at_encode(self):
        with pytest.raises(ValueError, match="MAX_NDIM"):
            encode_tensor_frame(KIND_REQUEST, 1, np.zeros((1,) * (MAX_NDIM + 1)))


# ---------------------------------------------------------------------
# Corruption: typed rejection, connection survives
# ---------------------------------------------------------------------
def _valid_frame(request_id: int = 5) -> bytes:
    return encode_tensor_frame(
        KIND_REQUEST, request_id, np.arange(6, dtype=np.float64).reshape(2, 3)
    )


def _events_after(bad: bytes):
    """Feed a bad frame then a good one; the reader must survive."""
    reader = FrameReader()
    events = reader.feed(bad)
    events += reader.feed(_valid_frame(request_id=77))
    return events


class TestCorruption:
    @settings(max_examples=40, deadline=None)
    @given(
        flip=st.integers(0, 200),
        chunk=st.integers(1, 48),
    )
    def test_single_bit_flip_never_desyncs(self, flip, chunk):
        """Any one-bit corruption -> at most one bad event, and the next
        frame still decodes (CRC or header checks catch the flip)."""
        buf = bytearray(_valid_frame())
        flip %= (len(buf) - 4)  # keep the length prefix intact
        buf[4 + flip] ^= 0x40
        data = bytes(buf) + _valid_frame(request_id=77)
        reader = FrameReader()
        events = []
        for start in range(0, len(data), chunk):
            events.extend(reader.feed(data[start:start + chunk]))
        assert len(events) == 2
        # The corrupted frame either failed a check (FrameError) or the
        # flip landed somewhere semantically silent (ids/seq/payload
        # bits are CRC-protected, so that cannot happen undetected).
        assert isinstance(events[0], FrameError) or events[0].request_id == 5
        good = events[1]
        assert isinstance(good, Frame) and good.request_id == 77

    def test_crc_mismatch_detected(self):
        buf = bytearray(_valid_frame())
        buf[-1] ^= 0xFF  # stomp the CRC field itself
        events = _events_after(bytes(buf))
        assert isinstance(events[0], FrameError)
        assert events[0].kind == "bad_frame"
        assert "CRC" in events[0].message
        assert events[0].request_id == 5  # id still echoed for the reply
        assert isinstance(events[1], Frame) and events[1].request_id == 77

    def test_payload_corruption_caught_by_crc(self):
        buf = bytearray(_valid_frame())
        buf[-12] ^= 0x01  # a payload byte
        events = _events_after(bytes(buf))
        assert isinstance(events[0], FrameError) and events[0].kind == "bad_frame"
        assert isinstance(events[1], Frame)

    def test_bad_magic_is_protocol_error(self):
        buf = bytearray(_valid_frame())
        body = bytearray(buf[4:])
        body[0] ^= 0xFF
        # Re-CRC so only the magic check can fire.
        crc = zlib.crc32(bytes(body[:-4])) & 0xFFFFFFFF
        body[-4:] = struct.pack(">I", crc)
        events = _events_after(buf[:4] + bytes(body))
        assert isinstance(events[0], FrameError)
        assert events[0].kind == "protocol"
        assert "magic" in events[0].message
        assert isinstance(events[1], Frame)

    def test_wrong_version_is_protocol_error(self):
        buf = bytearray(_valid_frame())
        body = bytearray(buf[4:])
        body[2] = 99  # version byte
        crc = zlib.crc32(bytes(body[:-4])) & 0xFFFFFFFF
        body[-4:] = struct.pack(">I", crc)
        events = _events_after(buf[:4] + bytes(body))
        assert isinstance(events[0], FrameError)
        assert events[0].kind == "protocol"
        assert "version" in events[0].message

    def test_unknown_kind_rejected(self):
        buf = bytearray(_valid_frame())
        body = bytearray(buf[4:])
        body[3] = 200  # kind byte
        crc = zlib.crc32(bytes(body[:-4])) & 0xFFFFFFFF
        body[-4:] = struct.pack(">I", crc)
        events = _events_after(buf[:4] + bytes(body))
        assert isinstance(events[0], FrameError) and events[0].kind == "bad_frame"
        assert "kind" in events[0].message

    def test_shape_payload_mismatch_rejected(self):
        # Claim shape (2, 3) but ship one float too few.
        header = struct.pack(
            ">HBBIIIBBH", MAGIC, 1, KIND_REQUEST, 5, 0, 0, 2, 2, 0
        )
        dims = struct.pack(">II", 2, 3)
        payload = np.zeros(5, dtype="<f8").tobytes()
        body = header + dims + payload
        crc = struct.pack(">I", zlib.crc32(body) & 0xFFFFFFFF)
        buf = struct.pack(">I", len(body) + 4) + body + crc
        events = _events_after(buf)
        assert isinstance(events[0], FrameError) and events[0].kind == "bad_frame"
        assert "payload" in events[0].message

    def test_undecodable_json_meta_rejected(self):
        header = struct.pack(">HBBIIIBBH", MAGIC, 1, KIND_ERROR, 3, 0, 0, 0, 0, 0)
        body = header + b"\xff\xfe not json"
        crc = struct.pack(">I", zlib.crc32(body) & 0xFFFFFFFF)
        buf = struct.pack(">I", len(body) + 4) + body + crc
        events = _events_after(buf)
        assert isinstance(events[0], FrameError) and events[0].kind == "bad_frame"

    def test_truncated_frame_waits_not_errors(self):
        """A partial frame is buffered, not rejected: truncation is only
        an error at connection close, which the transport layer owns."""
        buf = _valid_frame()
        reader = FrameReader()
        assert reader.feed(buf[:-3]) == []
        assert reader.pending_bytes == len(buf) - 3
        (frame,) = reader.feed(buf[-3:])
        assert isinstance(frame, Frame) and frame.request_id == 5

    def test_declared_length_below_minimum_rejected(self):
        buf = struct.pack(">I", 3) + b"abc"
        events = _events_after(buf)
        assert isinstance(events[0], FrameError) and events[0].kind == "bad_frame"
        assert "minimum" in events[0].message
        assert isinstance(events[1], Frame)


# ---------------------------------------------------------------------
# Oversize frames: bounded skip, reader keeps serving
# ---------------------------------------------------------------------
class TestOversize:
    def test_oversize_rejected_with_request_id_then_resyncs(self):
        reader = FrameReader(max_frame_bytes=1024)
        big = encode_tensor_frame(KIND_REQUEST, 42, np.zeros(4096))
        events = reader.feed(big + _valid_frame(request_id=77))
        assert isinstance(events[0], FrameError)
        assert events[0].kind == "frame_too_large"
        assert events[0].request_id == 42
        good = events[1]
        assert isinstance(good, Frame) and good.request_id == 77
        assert reader.pending_bytes == 0

    @settings(max_examples=20, deadline=None)
    @given(chunk=st.integers(1, 97))
    def test_oversize_skip_spans_chunk_boundaries(self, chunk):
        reader = FrameReader(max_frame_bytes=1024)
        data = (
            encode_tensor_frame(KIND_REQUEST, 9, np.zeros(2048))
            + _valid_frame(request_id=77)
        )
        events = []
        for start in range(0, len(data), chunk):
            events.extend(reader.feed(data[start:start + chunk]))
        kinds = [type(e).__name__ for e in events]
        assert kinds == ["FrameError", "Frame"], kinds
        assert events[0].kind == "frame_too_large"
        assert events[1].request_id == 77

    def test_insane_length_prefix_does_not_allocate(self):
        """A corrupt length prefix claiming 4 GiB must not buffer 4 GiB."""
        reader = FrameReader()
        events = reader.feed(struct.pack(">I", 0xFFFFFFFF) + b"x" * 64)
        assert isinstance(events[0], FrameError)
        assert events[0].kind == "frame_too_large"
        assert reader.pending_bytes == 0  # discarding, not hoarding
        assert DEFAULT_MAX_FRAME_BYTES < 0xFFFFFFFF

    def test_max_frame_bytes_floor(self):
        with pytest.raises(ValueError):
            FrameReader(max_frame_bytes=8)


class TestDtypeTable:
    def test_codes_are_stable(self):
        """The wire dtype table is a protocol constant: changing a code
        breaks every deployed client, so pin the exact mapping."""
        assert {c: str(d) for c, d in DTYPE_CODES.items()} == {
            1: "float32", 2: "float64", 3: "int8",
            4: "int32", 5: "uint8", 6: "int64", 7: "uint32",
        }
