"""Tests for the stdlib JSON serving endpoint."""

import json
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro import runtime
from repro.serving import ModelServer, serve_http


@pytest.fixture(scope="module")
def stack():
    """A running ModelServer + HTTP server on an ephemeral port."""
    server = ModelServer(max_batch=8, max_latency_ms=10.0)
    served = server.load_registry("patternnet", n=2, patterns=4, seed=0)
    server.warmup()
    httpd = serve_http(server, port=0)
    yield server, served, httpd.url
    httpd.shutdown()
    httpd.server_close()
    server.stop()


def get_json(url):
    with urllib.request.urlopen(url, timeout=30) as response:
        return response.status, json.load(response)


def post_json(url, payload):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        return response.status, json.load(response)


class TestRoutes:
    def test_healthz(self, stack):
        _, _, url = stack
        status, body = get_json(url + "/healthz")
        assert status == 200
        assert body == {"status": "ok", "models": ["patternnet"]}

    def test_models_listing(self, stack):
        _, served, url = stack
        status, body = get_json(url + "/models")
        assert status == 200
        assert body["patternnet"]["input_shape"] == [3, 16, 16]
        assert body["patternnet"]["compiled"] is True
        assert body["patternnet"]["setting"].startswith("n=2")

    def test_predict_single_image(self, stack):
        server, served, url = stack
        x = np.random.default_rng(1).normal(size=(1, 3, 16, 16))
        reference = runtime.predict(served.model, x)
        status, body = post_json(url + "/predict", {"input": x[0].tolist()})
        assert status == 200
        assert body["model"] == "patternnet"
        np.testing.assert_allclose(
            np.array(body["outputs"]), reference, rtol=1e-4, atol=1e-5
        )

    def test_predict_multi_image(self, stack):
        server, served, url = stack
        x = np.random.default_rng(2).normal(size=(3, 3, 16, 16))
        reference = runtime.predict(served.model, x)
        status, body = post_json(
            url + "/predict", {"inputs": [img.tolist() for img in x]}
        )
        assert status == 200
        np.testing.assert_allclose(
            np.array(body["outputs"]), reference, rtol=1e-4, atol=1e-5
        )

    def test_stats_route_reflects_traffic(self, stack):
        _, _, url = stack
        status, body = get_json(url + "/stats")
        assert status == 200
        snap = body["patternnet"]
        assert snap["requests"] >= 1
        assert set(snap) >= {"p50_ms", "p95_ms", "p99_ms", "mean_batch", "queue_depth"}

    def test_concurrent_clients_coalesce(self, stack):
        server, served, url = stack
        x = np.random.default_rng(3).normal(size=(16, 3, 16, 16))
        reference = runtime.predict(served.model, x)
        before = served.stats.batches

        def client(i):
            return post_json(url + "/predict", {"input": x[i].tolist()})

        with ThreadPoolExecutor(max_workers=16) as pool:
            results = list(pool.map(client, range(16)))
        outputs = np.stack([np.array(body["outputs"][0]) for _, body in results])
        np.testing.assert_allclose(outputs, reference, rtol=1e-4, atol=1e-5)
        # 16 concurrent requests landed in fewer than 16 flushes.
        assert served.stats.batches - before < 16


class TestErrors:
    def test_unknown_path_404(self, stack):
        _, _, url = stack
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get_json(url + "/nope")
        assert excinfo.value.code == 404

    def test_unknown_model_404(self, stack):
        _, _, url = stack
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post_json(url + "/predict", {"model": "nope", "input": [[[0.0]]]})
        assert excinfo.value.code == 404

    def test_missing_input_400(self, stack):
        _, _, url = stack
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post_json(url + "/predict", {"oops": 1})
        assert excinfo.value.code == 400

    def test_bad_shape_400(self, stack):
        _, _, url = stack
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post_json(url + "/predict", {"input": [[0.0, 1.0]]})
        assert excinfo.value.code == 400

    def test_multi_image_validated_before_any_submit(self, stack):
        """One bad image rejects the whole request up front — no model
        forwards are burned on its valid siblings."""
        server, served, url = stack
        requests_before = served.stats.requests
        good = np.zeros((3, 16, 16)).tolist()
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post_json(url + "/predict", {"inputs": [good, [[0.0, 1.0]]]})
        assert excinfo.value.code == 400
        assert served.stats.requests == requests_before

    def test_malformed_json_400(self, stack):
        _, _, url = stack
        request = urllib.request.Request(
            url + "/predict",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400
