"""Supervision tests: restart budgets, resurrection, wedge detection,
dynamic pool membership (retire/respawn) and the incident log."""

import glob
import os
import signal
import time

import numpy as np
import pytest

from repro import runtime
from repro.core import PCNNConfig, PCNNPruner
from repro.models import patternnet
from repro.serving import ModelServer, RestartBudget, Supervisor


def repro_segments():
    return sorted(glob.glob("/dev/shm/repro-*"))


@pytest.fixture(scope="module", autouse=True)
def no_module_leaks():
    before = repro_segments()
    yield
    assert repro_segments() == before


def pruned_patternnet(seed=0):
    model = patternnet(rng=np.random.default_rng(seed))
    PCNNPruner(model, PCNNConfig.uniform(2, 3, num_patterns=4)).apply()
    return model


def wait_until(predicate, timeout=30.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestRestartBudget:
    def test_allows_up_to_max_restarts_in_window(self):
        budget = RestartBudget(max_restarts=3, window_seconds=30.0,
                               base_backoff=0.0)
        now = 1000.0
        for i in range(3):
            assert budget.allow(now + i)
            budget.record(now + i)
        assert not budget.allow(now + 3)
        assert budget.exhausted(now + 3)

    def test_window_prunes_old_restarts(self):
        budget = RestartBudget(max_restarts=2, window_seconds=10.0,
                               base_backoff=0.0)
        budget.record(1000.0)
        budget.record(1001.0)
        assert not budget.allow(1002.0)
        # Both restarts age out of the 10 s window.
        assert budget.allow(1012.0)
        assert not budget.exhausted(1012.0)

    def test_exponential_backoff_between_restarts(self):
        budget = RestartBudget(max_restarts=4, window_seconds=100.0,
                               base_backoff=1.0)
        budget.record(1000.0)
        assert budget.backoff() == 1.0
        assert not budget.allow(1000.5)  # inside the 1 s backoff
        assert budget.allow(1001.5)
        budget.record(1001.5)
        assert budget.backoff() == 2.0  # doubles with each recent restart
        assert not budget.allow(1003.0)
        assert budget.allow(1004.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            RestartBudget(max_restarts=0)
        with pytest.raises(ValueError):
            RestartBudget(window_seconds=0.0)


class TestDynamicMembership:
    """WorkerPool retire/respawn without a supervisor in the loop."""

    @pytest.fixture()
    def pool(self):
        compiled = runtime.compile_model(
            pruned_patternnet(), input_shape=(3, 16, 16)
        )
        pool = runtime.WorkerPool(compiled, 2)
        self.compiled = compiled
        yield pool
        pool.shutdown()

    def test_retire_shrinks_pool_and_keeps_serving(self, pool):
        x = np.random.default_rng(0).standard_normal((8, 3, 16, 16))
        want = runtime.predict(self.compiled, x)
        pool.retire_worker(1)
        assert pool.alive_workers == 1
        assert pool.worker_health()[1]["retired"] is True
        got = runtime.predict(self.compiled, x, executor=pool)
        np.testing.assert_allclose(got, want, atol=1e-5, rtol=1e-5)

    def test_cannot_retire_last_worker(self, pool):
        pool.retire_worker(0)
        with pytest.raises(ValueError, match="last live worker"):
            pool.retire_worker(1)

    def test_respawn_restores_killed_worker(self, pool):
        x = np.random.default_rng(1).standard_normal((8, 3, 16, 16))
        want = runtime.predict(self.compiled, x)
        victim = pool.worker_health()[0]["pid"]
        os.kill(victim, signal.SIGKILL)
        assert wait_until(lambda: pool.alive_workers == 1)
        pid = pool.respawn_worker(0)
        assert pid != victim
        assert pool.alive_workers == 2
        health = pool.worker_health()[0]
        assert health["alive"] and health["pid"] == pid
        got = runtime.predict(self.compiled, x, executor=pool)
        np.testing.assert_allclose(got, want, atol=1e-5, rtol=1e-5)

    def test_respawn_rejects_live_worker(self, pool):
        with pytest.raises(ValueError, match="still serving"):
            pool.respawn_worker(0)

    def test_kill_worker_is_observed_as_crash(self, pool):
        deaths = []
        pool.on_worker_death = lambda *args: deaths.append(args)
        pool.kill_worker(1)
        assert wait_until(lambda: pool.alive_workers == 1)
        assert wait_until(lambda: len(deaths) == 1)
        worker_id, exitcode, orphaned, redispatched = deaths[0]
        assert worker_id == 1
        assert exitcode == -signal.SIGKILL


class TestSupervisor:
    def test_respawns_crashed_worker_and_logs_incidents(self):
        server = ModelServer(
            max_batch=8, max_latency_ms=5.0, worker_procs=2,
            supervisor=Supervisor(interval=0.05),
        )
        served = server.add_model("m", pruned_patternnet(), (3, 16, 16))
        server.warmup()
        with server:
            pool = served.pool
            os.kill(pool.worker_health()[0]["pid"], signal.SIGKILL)
            # Crash observed first, then the slot heals back to 2.
            assert wait_until(
                lambda: server.supervisor.model_status()["m"]["restarts"] == 1
            )
            assert wait_until(lambda: pool.alive_workers == 2)
            status = server.supervisor.model_status()["m"]
            assert status["crashes"] == 1
            assert status["restarts"] == 1
            assert status["degraded"] is False
            kinds = [i["kind"] for i in server.supervisor.incidents()]
            assert "worker_crash" in kinds
            assert "worker_respawned" in kinds
            # The healed pool serves traffic.
            out = server.predict(np.zeros((3, 16, 16)), timeout=30)
            assert out.shape == (10,)

    def test_budget_exhaustion_marks_pool_degraded(self):
        supervisor = Supervisor(
            interval=0.05,
            budget=lambda: RestartBudget(
                max_restarts=1, window_seconds=600.0, base_backoff=0.0
            ),
        )
        server = ModelServer(
            max_batch=8, max_latency_ms=5.0, worker_procs=2,
            supervisor=supervisor,
        )
        served = server.add_model("m", pruned_patternnet(), (3, 16, 16))
        server.warmup()
        with server:
            pool = served.pool
            # First crash consumes the whole 1-restart budget...
            os.kill(pool.worker_health()[0]["pid"], signal.SIGKILL)
            assert wait_until(
                lambda: supervisor.model_status()["m"]["restarts"] == 1
            )
            assert wait_until(lambda: pool.alive_workers == 2)
            # ...so the second crash degrades the pool instead.
            victim = next(
                row["pid"]
                for row in pool.worker_health().values()
                if row["alive"]
            )
            os.kill(victim, signal.SIGKILL)
            assert wait_until(
                lambda: supervisor.model_status()["m"]["degraded"]
            )
            assert pool.alive_workers == 1
            kinds = [i["kind"] for i in supervisor.incidents()]
            assert "pool_degraded" in kinds
            # Degraded, not down: the survivor still answers.
            out = server.predict(np.zeros((3, 16, 16)), timeout=30)
            assert out.shape == (10,)

    def test_wedged_worker_is_killed_and_replaced(self):
        """SIGSTOP freezes a worker mid-service: its heartbeat goes stale
        with chunks outstanding, the supervisor SIGKILLs it, the pool
        replays the chunks on the survivor, and the slot respawns."""
        supervisor = Supervisor(interval=0.05, heartbeat_timeout=0.5)
        server = ModelServer(
            max_batch=8, max_latency_ms=5.0, worker_procs=2,
            supervisor=supervisor,
        )
        served = server.add_model("m", pruned_patternnet(), (3, 16, 16))
        server.warmup()
        with server:
            pool = served.pool
            frozen = pool.worker_health()[0]["pid"]
            os.kill(frozen, signal.SIGSTOP)
            try:
                x = np.random.default_rng(5).standard_normal((16, 3, 16, 16))
                futures = [server.submit(row) for row in x]
                want = runtime.predict(served.compiled, x)
                got = np.stack([f.result(timeout=60) for f in futures])
                np.testing.assert_allclose(got, want, atol=1e-5, rtol=1e-5)
            finally:
                # SIGKILL from the supervisor beats SIGCONT in every
                # normal run; this only cleans up if the test fails.
                try:
                    os.kill(frozen, signal.SIGCONT)
                except ProcessLookupError:
                    pass
            assert wait_until(lambda: pool.alive_workers == 2)
            status = supervisor.model_status()["m"]
            assert status["wedged"] >= 1
            kinds = [i["kind"] for i in supervisor.incidents()]
            assert "worker_wedged" in kinds

    def test_check_once_is_manually_drivable(self):
        """Supervision works without the monitor thread (deterministic)."""
        supervisor = Supervisor(
            interval=60.0,  # thread effectively never fires on its own
            budget=lambda: RestartBudget(base_backoff=0.0),
        )
        server = ModelServer(
            max_batch=8, max_latency_ms=5.0, worker_procs=2,
            supervisor=supervisor,
        )
        served = server.add_model("m", pruned_patternnet(), (3, 16, 16))
        server.warmup()
        with server:
            pool = served.pool
            os.kill(pool.worker_health()[1]["pid"], signal.SIGKILL)
            assert wait_until(lambda: pool.alive_workers == 1)
            supervisor.check_once()
            assert pool.alive_workers == 2

    def test_unwatch_stops_supervision(self):
        supervisor = Supervisor(interval=0.05)
        server = ModelServer(
            max_batch=8, max_latency_ms=5.0, worker_procs=2,
            supervisor=supervisor,
        )
        served = server.add_model("m", pruned_patternnet(), (3, 16, 16))
        with server:
            pool = served.pool
            supervisor.unwatch(pool)
            os.kill(pool.worker_health()[0]["pid"], signal.SIGKILL)
            assert wait_until(lambda: pool.alive_workers == 1)
            time.sleep(0.3)  # several supervision intervals
            assert pool.alive_workers == 1  # nobody resurrected it
