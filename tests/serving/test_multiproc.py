"""End-to-end tests for multi-process serving: ``ModelServer`` routing
flushes to worker processes over shared-memory rings, the ``/stats``
``workers`` block, the ``/workers`` HTTP route, and clean teardown."""

import glob
import json
import urllib.request
from concurrent.futures import wait

import numpy as np
import pytest

from repro import runtime
from repro.core import PCNNConfig, PCNNPruner
from repro.models import patternnet
from repro.serving import ModelServer, serve_http


def repro_segments():
    return sorted(glob.glob("/dev/shm/repro-*"))


@pytest.fixture(scope="module", autouse=True)
def no_module_leaks():
    before = repro_segments()
    yield
    assert repro_segments() == before


def pruned_patternnet(seed=0):
    model = patternnet(rng=np.random.default_rng(seed))
    PCNNPruner(model, PCNNConfig.uniform(2, 3, num_patterns=4)).apply()
    return model


@pytest.fixture(scope="module")
def stack():
    """A 2-worker ModelServer + HTTP endpoint, torn down leak-free."""
    server = ModelServer(max_batch=8, max_latency_ms=5.0, worker_procs=2)
    served = server.add_model("patternnet", pruned_patternnet(), (3, 16, 16))
    server.warmup()
    httpd = serve_http(server, port=0)
    yield server, served, httpd.url
    httpd.shutdown()
    httpd.server_close()
    server.stop()


def get_json(url):
    with urllib.request.urlopen(url, timeout=30) as response:
        return response.status, json.load(response)


class TestEndToEnd:
    def test_batched_pool_results_match_single_process(self, stack):
        server, served, _ = stack
        images = np.random.default_rng(2).standard_normal((24, 3, 16, 16))
        futures = [server.submit(image) for image in images]
        wait(futures, timeout=60)
        got = np.stack([f.result() for f in futures])
        want = runtime.predict(served.compiled, images)
        np.testing.assert_allclose(got, want, atol=1e-5, rtol=1e-5)

    def test_pool_metadata_recorded(self, stack):
        _, served, _ = stack
        assert served.meta["worker_procs"] == 2
        assert served.pool is not None
        assert served.pool.procs == 2

    def test_workers_attach_never_copy(self, stack):
        _, served, _ = stack
        snap = served.pool.stats_snapshot()
        assert snap["image"]["attached_total"] == 2 * snap["image"]["arrays"]
        assert snap["image"]["copied_total"] == 0

    def test_stats_carry_workers_block_and_queue_waits(self, stack):
        server, _, _ = stack
        server.submit(np.zeros((3, 16, 16))).result(timeout=30)
        report = server.get("patternnet").stats.snapshot()
        assert "queue_p50_ms" in report
        assert "queue_p95_ms" in report
        workers = report["workers"]
        assert workers["procs"] == 2
        assert set(workers["per_worker"]) == {"0", "1"}

    def test_http_stats_and_workers_routes(self, stack):
        server, _, url = stack
        server.submit(np.zeros((3, 16, 16))).result(timeout=30)
        status, stats = get_json(url + "/stats")
        assert status == 200
        assert stats["patternnet"]["workers"]["procs"] == 2
        status, workers = get_json(url + "/workers")
        assert status == 200
        assert workers["patternnet"]["image"]["copied_total"] == 0
        ring = workers["patternnet"]["per_worker"]["0"]["ring"]
        assert ring["capacity"] > 0


class TestValidation:
    def test_worker_procs_requires_compile(self):
        with pytest.raises(ValueError, match="compile"):
            ModelServer(worker_procs=2, compile=False)

    def test_worker_procs_must_be_positive(self):
        with pytest.raises(ValueError, match="worker_procs"):
            ModelServer(worker_procs=0)


class TestTeardown:
    def test_stop_unlinks_all_segments(self):
        before = repro_segments()
        server = ModelServer(max_batch=4, max_latency_ms=2.0, worker_procs=2)
        server.add_model("m", pruned_patternnet(seed=3), (3, 16, 16))
        with server:
            server.submit(np.zeros((3, 16, 16))).result(timeout=30)
            assert len(repro_segments()) == len(before) + 2
        assert repro_segments() == before

    def test_stop_drains_queue_before_pool_shutdown(self):
        """Requests in flight at stop() still resolve — the batcher
        drains against live workers before the pool goes away."""
        server = ModelServer(max_batch=4, max_latency_ms=50.0, worker_procs=2)
        server.add_model("m", pruned_patternnet(seed=4), (3, 16, 16))
        server.start()
        futures = [server.submit(np.zeros((3, 16, 16))) for _ in range(6)]
        server.stop()
        for future in futures:
            assert future.result(timeout=30).shape == (10,)
