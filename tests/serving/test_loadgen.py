"""Unit tests for the trace-driven load generator.

The harness is only trustworthy if it is *replayable*: the same seed
and trace must yield the exact same arrival schedule, bad traces must
fail with errors that name the offending field, and the committed burst
trace must provably exceed its own steady-state rate — otherwise the
"burst" scenario in BENCH_serving.json measures nothing.
"""

import json
import os
import sys

import numpy as np
import pytest

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "..", "benchmarks")
)
import loadgen  # noqa: E402
from loadgen import (  # noqa: E402
    SCENARIOS,
    TraceError,
    arrival_times,
    load_trace,
    peak_rate,
    validate_trace,
)


def steady():
    return load_trace("steady")


def burst():
    return load_trace("burst")


class TestDeterminism:
    def test_same_seed_same_trace_identical_schedule(self):
        trace = burst()
        a = arrival_times(trace, seed=123)
        b = arrival_times(trace, seed=123)
        np.testing.assert_array_equal(a, b)
        assert len(a) > 0

    def test_different_seed_different_schedule(self):
        trace = burst()
        a = arrival_times(trace, seed=123)
        b = arrival_times(trace, seed=124)
        assert len(a) != len(b) or not np.array_equal(a, b)

    def test_schedule_is_sorted_and_inside_duration(self):
        for name in ("steady", "burst", "diurnal", "step"):
            trace = load_trace(name)
            times = arrival_times(trace, seed=7)
            assert np.all(np.diff(times) >= 0), name
            assert times[0] >= 0.0
            assert times[-1] < trace["duration_s"], name

    def test_frame_plans_are_replayable(self):
        scenario = SCENARIOS["near_duplicate"]
        plan_a = loadgen._generate_frames(scenario, 40, delta_threshold=1e-3)
        plan_b = loadgen._generate_frames(scenario, 40, delta_threshold=1e-3)
        np.testing.assert_array_equal(plan_a.frames, plan_b.frames)
        assert plan_a.expected_hit == plan_b.expected_hit
        assert plan_a.expected_source == plan_b.expected_source
        # The near-duplicate scenario must actually plan cache hits.
        assert sum(plan_a.expected_hit) > 0

    def test_jitter_must_stay_under_threshold(self):
        scenario = SCENARIOS["near_duplicate"]
        with pytest.raises(ValueError, match="jitter"):
            loadgen._generate_frames(scenario, 10, delta_threshold=1e-6)


class TestTraceValidation:
    def good(self):
        return {
            "name": "t",
            "duration_s": 1.0,
            "segments": [
                {"start_s": 0.0, "rate": 10.0},
                {"start_s": 0.5, "rate": 20.0},
            ],
        }

    def test_good_trace_passes(self):
        validate_trace(self.good())

    def test_missing_key_named(self):
        trace = self.good()
        del trace["duration_s"]
        with pytest.raises(TraceError, match="duration_s"):
            validate_trace(trace)

    def test_non_list_segments_named(self):
        trace = self.good()
        trace["segments"] = {"start_s": 0.0}
        with pytest.raises(TraceError, match="segments"):
            validate_trace(trace)

    def test_negative_rate_named_with_index(self):
        trace = self.good()
        trace["segments"][1]["rate"] = -5.0
        with pytest.raises(TraceError, match=r"segments\[1\].*rate"):
            validate_trace(trace)

    def test_first_segment_must_start_at_zero(self):
        trace = self.good()
        trace["segments"][0]["start_s"] = 0.1
        with pytest.raises(TraceError, match="start_s"):
            validate_trace(trace)

    def test_unordered_starts_named(self):
        trace = self.good()
        trace["segments"][1]["start_s"] = 0.0
        with pytest.raises(TraceError, match="strictly after"):
            validate_trace(trace)

    def test_start_past_duration_rejected(self):
        trace = self.good()
        trace["segments"][1]["start_s"] = 2.0
        with pytest.raises(TraceError, match="duration"):
            validate_trace(trace)

    def test_bad_json_file_is_trace_error(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(TraceError, match="JSON"):
            load_trace(str(path))

    def test_missing_file_is_trace_error(self):
        with pytest.raises(TraceError, match="does not exist"):
            load_trace("does_not_exist")

    def test_committed_traces_all_validate(self):
        for name in ("steady", "burst", "diurnal", "step"):
            validate_trace(load_trace(name), source=name)


class TestBurstShape:
    def test_burst_peak_exceeds_steady(self):
        assert peak_rate(burst()) > peak_rate(steady())

    def test_burst_window_density_exceeds_baseline(self):
        """The arrivals themselves (not just the declared rates) must be
        denser inside the burst window than outside it."""
        trace = burst()
        times = arrival_times(trace, seed=42)
        in_burst = np.sum((times >= 0.8) & (times < 1.2)) / 0.4
        baseline = np.sum(times < 0.8) / 0.8
        assert in_burst > 3 * baseline

    def test_scenario_catalog_covers_required_rows(self):
        """bench_guard's REQUIRED_SCENARIOS must stay constructible."""
        assert {"steady", "burst", "near_duplicate"} <= set(SCENARIOS)
        assert "http" in SCENARIOS["steady"].transports
        assert "stream" in SCENARIOS["steady"].transports
        assert SCENARIOS["near_duplicate"].transports == ("stream",)
        assert SCENARIOS["near_duplicate"].near_duplicate > 0

    def test_traces_on_disk_match_schema_exactly(self):
        """Committed traces are protocol artifacts: re-validate the raw
        JSON (not the loader's view) so schema drift shows up here."""
        for name in ("steady", "burst", "diurnal", "step"):
            path = os.path.join(loadgen.TRACE_DIR, f"{name}.json")
            with open(path) as handle:
                raw = json.load(handle)
            validate_trace(raw, source=name)
            assert raw["name"] == name
