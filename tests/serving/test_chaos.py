"""Chaos tests: fault injection against the full serving stack.

Marked ``chaos`` (see ``pytest.ini``) so CI can run them as a dedicated
job; they are deterministic enough to ride along in tier-1 too. The
input images and the kill victim derive from ``REPRO_CHAOS_SEED``
(default 0), so a failing run reproduces with the same seed.

Two scenarios from the acceptance bar:

- **Kill a worker mid-burst.** 64 concurrent HTTP clients, SIGKILL one
  of the 2 workers while the burst is in flight. Every admitted request
  must complete with the exact predict() answer (the pool replays the
  dead worker's chunks on the survivor), the supervisor must respawn
  the worker within its restart budget, and ``/incidents`` +
  ``/metrics`` must record the crash/restart.
- **Overload shedding.** Drive the server past the bounded queue's
  high-water mark: every request resolves as 200 or as 429 with a
  ``Retry-After`` header — never a drop — and admitted requests keep a
  bounded p99.
"""

import glob
import json
import os
import signal
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro import runtime
from repro.core import PCNNConfig, PCNNPruner
from repro.models import patternnet
from repro.serving import ModelServer, Supervisor, serve_http

pytestmark = pytest.mark.chaos

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))


def repro_segments():
    return sorted(glob.glob("/dev/shm/repro-*"))


@pytest.fixture(scope="module", autouse=True)
def no_module_leaks():
    before = repro_segments()
    yield
    assert repro_segments() == before


def pruned_patternnet(seed=CHAOS_SEED):
    model = patternnet(rng=np.random.default_rng(seed))
    PCNNPruner(model, PCNNConfig.uniform(2, 3, num_patterns=4)).apply()
    return model


def wait_until(predicate, timeout=30.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def post_predict(url, image, timeout=60):
    body = json.dumps({"input": image.tolist()}).encode()
    request = urllib.request.Request(
        url + "/predict", data=body,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, json.load(response), dict(response.headers)


def scrape_metric(metrics_text, name, **labels):
    """Read one sample value out of Prometheus exposition text."""
    want = {str(k): str(v) for k, v in labels.items()}
    for line in metrics_text.splitlines():
        if not line.startswith(name + "{"):
            continue
        rendered = line[len(name) + 1 : line.index("}")]
        got = dict(
            part.split("=", 1) for part in rendered.split(",") if "=" in part
        )
        got = {k: v.strip('"') for k, v in got.items()}
        if all(got.get(k) == v for k, v in want.items()):
            return float(line.rsplit(" ", 1)[1])
    raise AssertionError(f"no sample {name}{labels} in:\n{metrics_text}")


class TestKillWorkerMidBurst:
    def test_every_admitted_request_survives_a_worker_kill(self):
        server = ModelServer(
            max_batch=8, max_latency_ms=5.0, worker_procs=2,
            supervisor=Supervisor(interval=0.05),
        )
        served = server.add_model("patternnet", pruned_patternnet(), (3, 16, 16))
        server.warmup()
        httpd = serve_http(server, port=0)
        try:
            pool = served.pool
            rng = np.random.default_rng(CHAOS_SEED)
            images = rng.standard_normal((64, 3, 16, 16))
            victim_slot = int(rng.integers(0, 2))
            victim = pool.worker_health()[victim_slot]["pid"]
            want = runtime.predict(served.compiled, images)

            results = [None] * len(images)
            failures = []
            started = threading.Barrier(len(images) + 1)

            def client(index):
                started.wait(timeout=30)
                try:
                    status, payload, _ = post_predict(httpd.url, images[index])
                    assert status == 200
                    results[index] = np.asarray(payload["outputs"][0])
                except Exception as error:  # noqa: BLE001 - collected below
                    failures.append((index, error))

            threads = [
                threading.Thread(target=client, args=(i,))
                for i in range(len(images))
            ]
            for thread in threads:
                thread.start()
            started.wait(timeout=30)  # every client is in flight now
            os.kill(victim, signal.SIGKILL)
            for thread in threads:
                thread.join(timeout=120)

            # Zero admitted requests dropped, every answer exact.
            assert failures == []
            got = np.stack(results)
            np.testing.assert_allclose(got, want, atol=1e-5, rtol=1e-5)

            # The supervisor heals the pool back to 2 within its budget.
            assert wait_until(
                lambda: server.supervisor.model_status()["patternnet"]["restarts"] >= 1
            )
            assert wait_until(lambda: pool.alive_workers == 2)
            status = server.supervisor.model_status()["patternnet"]
            assert status["degraded"] is False
            assert status["restarts"] <= 3  # within the default budget

            # /incidents records the crash and the respawn.
            with urllib.request.urlopen(httpd.url + "/incidents", timeout=30) as r:
                incidents = json.load(r)
            kinds = [i["kind"] for i in incidents["incidents"]]
            assert "worker_crash" in kinds
            assert "worker_respawned" in kinds

            # /metrics counters match what actually happened.
            with urllib.request.urlopen(httpd.url + "/metrics", timeout=30) as r:
                metrics = r.read().decode()
            assert scrape_metric(
                metrics, "repro_worker_crashes_total", model="patternnet"
            ) == status["crashes"]
            assert scrape_metric(
                metrics, "repro_worker_restarts_total", model="patternnet"
            ) == status["restarts"]
            assert scrape_metric(
                metrics, "repro_workers_alive", model="patternnet"
            ) == 2
            assert scrape_metric(
                metrics, "repro_requests_total", model="patternnet"
            ) >= len(images)
            # Nothing was shed: all 64 requests were admitted and served.
            assert scrape_metric(
                metrics, "repro_shed_total", model="patternnet",
                reason="queue_full",
            ) == 0
        finally:
            httpd.shutdown()
            httpd.server_close()
            server.stop()


class TestOverloadShedding:
    def test_queue_high_water_mark_sheds_with_retry_after(self):
        server = ModelServer(
            max_batch=4, max_latency_ms=20.0, max_queue=8, slo_ms=30000.0,
        )
        server.add_model("patternnet", pruned_patternnet(), (3, 16, 16))
        server.warmup()
        httpd = serve_http(server, port=0)
        try:
            rng = np.random.default_rng(CHAOS_SEED)
            images = rng.standard_normal((64, 3, 16, 16))
            lock = threading.Lock()
            served_latencies = []
            shed = []
            failures = []
            started = threading.Barrier(len(images) + 1)

            def client(index):
                started.wait(timeout=30)
                begin = time.perf_counter()
                try:
                    status, _, _ = post_predict(httpd.url, images[index])
                    assert status == 200
                    with lock:
                        served_latencies.append(time.perf_counter() - begin)
                except urllib.error.HTTPError as error:
                    if error.code == 429:
                        retry_after = error.headers.get("Retry-After")
                        body = json.load(error)
                        with lock:
                            shed.append((retry_after, body))
                    else:
                        with lock:
                            failures.append((index, error.code))
                except Exception as error:  # noqa: BLE001 - collected below
                    with lock:
                        failures.append((index, error))

            threads = [
                threading.Thread(target=client, args=(i,))
                for i in range(len(images))
            ]
            for thread in threads:
                thread.start()
            started.wait(timeout=30)
            for thread in threads:
                thread.join(timeout=120)

            # Every request resolved as 200 or a structured 429 — the
            # overload path never drops or errors an admitted request.
            assert failures == []
            assert len(served_latencies) + len(shed) == len(images)
            assert served_latencies, "shedding must not reject everything"
            for retry_after, body in shed:
                assert retry_after is not None
                assert int(retry_after) >= 1
                assert body["error"]["kind"] == "queue_full"

            # Bounded latency for admitted requests: with the queue
            # capped at 8 and 4-image flushes, no admitted request waits
            # behind an unbounded backlog.
            if shed:  # overload actually happened: check the p99 bound
                p99 = float(np.percentile(served_latencies, 99))
                assert p99 < 30.0

            # Shed bookkeeping agrees across /stats and /metrics.
            with urllib.request.urlopen(httpd.url + "/stats", timeout=30) as r:
                stats = json.load(r)
            assert stats["patternnet"]["shed"].get("queue_full", 0) == len(shed)
            with urllib.request.urlopen(httpd.url + "/metrics", timeout=30) as r:
                metrics = r.read().decode()
            assert scrape_metric(
                metrics, "repro_shed_total", model="patternnet",
                reason="queue_full",
            ) == len(shed)
        finally:
            httpd.shutdown()
            httpd.server_close()
            server.stop()
