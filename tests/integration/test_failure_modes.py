"""Failure-injection tests: the library must fail loudly and precisely."""

import numpy as np
import pytest

from repro import nn
from repro.core import (
    DeploymentBundle,
    PCNNConfig,
    PCNNPruner,
    SPMCodebook,
    bundle_from_pruner,
    encode_layer,
    enumerate_patterns,
)
from repro.data import ArrayDataset, DataLoader
from repro.models import patternnet


def pruned_model(seed=0):
    model = patternnet(channels=(8,), num_classes=4, rng=np.random.default_rng(seed))
    pruner = PCNNPruner(model, PCNNConfig.uniform(2, 1))
    pruner.apply()
    return model, pruner


class TestCorruptedBundles:
    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            DeploymentBundle.load(str(tmp_path / "missing.npz"))

    def test_truncated_archive(self, tmp_path):
        model, pruner = pruned_model()
        bundle = bundle_from_pruner(pruner)
        path = str(tmp_path / "bundle.npz")
        bundle.save(path)
        with open(path, "r+b") as handle:
            handle.truncate(100)
        with pytest.raises(Exception):
            DeploymentBundle.load(path)

    def test_shape_mismatch_on_restore(self, tmp_path):
        model, pruner = pruned_model()
        bundle = bundle_from_pruner(pruner)
        # Corrupt the recorded shape.
        for layer in bundle.layers.values():
            layer.shape = (2, 2, 3, 3)
        with pytest.raises(ValueError):
            bundle.restore_into(model)

    def test_unknown_layer_on_restore(self):
        model, pruner = pruned_model()
        bundle = bundle_from_pruner(pruner)
        bundle.layers["no.such.layer"] = next(iter(bundle.layers.values()))
        other = patternnet(channels=(8,), num_classes=4, rng=np.random.default_rng(1))
        with pytest.raises(KeyError):
            bundle.restore_into(other)


class TestDegenerateWeights:
    def test_pruner_handles_all_zero_layer(self):
        """A zeroed layer still prunes (mask exact, weights stay zero)."""
        model = patternnet(channels=(8,), num_classes=4, rng=np.random.default_rng(0))
        conv = model.conv_layers()[0][1]
        conv.weight.data[...] = 0.0
        pruner = PCNNPruner(model, PCNNConfig.uniform(2, 1))
        pruner.apply()
        pruner.verify_regularity()
        np.testing.assert_array_equal(conv.effective_weight(), 0.0)

    def test_pruner_handles_constant_weights(self):
        model = patternnet(channels=(8,), num_classes=4, rng=np.random.default_rng(0))
        conv = model.conv_layers()[0][1]
        conv.weight.data[...] = 1.0
        pruner = PCNNPruner(model, PCNNConfig.uniform(3, 1))
        info = pruner.apply()
        pruner.verify_regularity()
        # Ties broken deterministically -> a valid 3-pattern per kernel.
        counts = np.count_nonzero(conv.effective_weight().reshape(-1, 9), axis=1)
        assert np.all(counts == 3)

    def test_encode_layer_with_nan_raises_nothing_silent(self):
        """NaNs must not be silently laundered into valid encodings."""
        patterns = enumerate_patterns(2)[:4]
        weight = np.full((1, 1, 3, 3), np.nan)
        encoded = encode_layer(weight, SPMCodebook(patterns))
        assert np.isnan(encoded.values).any()  # NaNs survive, visibly


class TestEmptyAndTinyData:
    def test_empty_loader_epoch(self):
        model = patternnet(channels=(4,), num_classes=2, rng=np.random.default_rng(0))
        data = ArrayDataset(np.zeros((0, 3, 8, 8)), np.zeros(0, dtype=int))
        loader = DataLoader(data, batch_size=4)
        from repro.core import train_epoch

        optimizer = nn.Adam(model.parameters(), lr=0.01)
        assert train_epoch(model, loader, optimizer) == 0.0

    def test_single_sample_batch(self):
        model = patternnet(channels=(4,), num_classes=2, rng=np.random.default_rng(0))
        data = ArrayDataset(np.random.default_rng(0).normal(size=(1, 3, 8, 8)), np.array([1]))
        loader = DataLoader(data, batch_size=4)
        from repro.core import train_epoch

        loss = train_epoch(model, loader, nn.Adam(model.parameters(), lr=0.01))
        assert np.isfinite(loss)


class TestMaskIntegrity:
    def test_mask_survives_save_load_cycle(self, tmp_path):
        """state_dict round-trips must not clobber or carry masks."""
        model, pruner = pruned_model()
        state = model.state_dict()
        assert not any("mask" in key for key in state)
        fresh = patternnet(channels=(8,), num_classes=4, rng=np.random.default_rng(9))
        fresh.load_state_dict(state)
        # Fresh model has the weights but no masks (masks ship via bundles).
        conv = fresh.conv_layers()[0][1]
        assert conv.weight_mask is None

    def test_double_apply_is_idempotent(self):
        model, pruner = pruned_model()
        first = model.conv_layers()[0][1].effective_weight().copy()
        pruner2 = PCNNPruner(model, PCNNConfig.uniform(2, 1))
        pruner2.apply()
        second = model.conv_layers()[0][1].effective_weight()
        np.testing.assert_allclose(first, second)

    def test_regularity_violation_detected(self):
        model, pruner = pruned_model()
        _, conv = pruner.layers[0]
        broken = conv.weight_mask.copy()
        broken[0, 0] = 1.0  # give one kernel 9 non-zeros
        conv.set_weight_mask(broken)
        with pytest.raises(AssertionError):
            pruner.verify_regularity()
