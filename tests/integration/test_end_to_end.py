"""Integration tests spanning the whole stack.

These exercise the real user journeys: train -> prune -> fine-tune ->
bundle -> deploy -> simulate, with cross-module equivalence assertions at
each handoff (software conv == SPM-decoded conv == PE-datapath conv).
"""

import numpy as np
import pytest

import repro.nn as nn
from repro.arch import (
    ArchConfig,
    ConvLayerSimulator,
    KernelRegisterFile,
    SPMDecoder,
    pack_nonzero_sequences,
    simulate_network_analytic,
    unpack_nonzero_sequences,
)
from repro.core import (
    ADMMFineTuner,
    DeploymentBundle,
    PCNNConfig,
    PCNNPruner,
    SPMCodebook,
    bundle_from_pruner,
    evaluate,
    fit,
    irregular_compression,
    magnitude_prune_irregular,
    model_conv_density,
    pcnn_compression,
)
from repro.data import ArrayDataset, DataLoader, make_synthetic_images
from repro.models import patternnet, profile_model
from repro.nn import Tensor
from repro.nn.functional import conv2d


@pytest.fixture(scope="module")
def training_setup():
    x_train, y_train, x_test, y_test = make_synthetic_images(
        n_train=192, n_test=96, num_classes=4, image_size=8, seed=0
    )
    loader = DataLoader(ArrayDataset(x_train, y_train), batch_size=32, shuffle=True, seed=0)
    return loader, (x_test, y_test)


class TestTrainPruneDeployFlow:
    def test_full_pipeline_preserves_predictions_through_bundle(self, training_setup, tmp_path):
        """train -> prune -> ADMM -> bundle -> disk -> restore: the restored
        model must predict identically to the pruned original."""
        loader, (x_test, y_test) = training_setup
        model = patternnet(channels=(8, 16), num_classes=4, rng=np.random.default_rng(0))
        fit(model, loader, epochs=2, lr=0.01)

        pruner = PCNNPruner(model, PCNNConfig.uniform(2, 2, num_patterns=8))
        patterns = {name: r.patterns for name, r in pruner.distill().items()}
        tuner = ADMMFineTuner(model, patterns, rho=0.05)
        tuner.run(loader, epochs=1, optimizer=nn.SGD(model.parameters(), lr=0.05))
        tuner.finalize()
        fit(model, loader, epochs=1, lr=0.01)
        pruned_acc = evaluate(model, x_test, y_test)

        # Re-wrap in a pruner so encode() sees the final weights.
        pruner2 = PCNNPruner(model, PCNNConfig.uniform(2, 2, num_patterns=8))
        pruner2.apply()
        bundle = bundle_from_pruner(pruner2)
        path = str(tmp_path / "deploy.npz")
        bundle.save(path)

        fresh = patternnet(channels=(8, 16), num_classes=4, rng=np.random.default_rng(123))
        # Copy the non-conv parameters (BN, FC) — the bundle carries convs.
        fresh.load_state_dict(model.state_dict())
        DeploymentBundle.load(path).restore_into(fresh)
        restored_acc = evaluate(fresh, x_test, y_test)

        assert restored_acc == pruned_acc
        logits_a = model(Tensor(x_test[:8])).data
        logits_b = fresh(Tensor(x_test[:8])).data
        np.testing.assert_allclose(logits_a, logits_b, atol=1e-10)

    def test_pruned_accuracy_above_chance(self, training_setup):
        loader, (x_test, y_test) = training_setup
        model = patternnet(channels=(8, 16), num_classes=4, rng=np.random.default_rng(1))
        fit(model, loader, epochs=3, lr=0.01)
        PCNNPruner(model, PCNNConfig.uniform(2, 2)).apply()
        fit(model, loader, epochs=2, lr=0.01)
        assert evaluate(model, x_test, y_test) > 0.5


class TestSoftwareHardwareEquivalence:
    def test_conv_equals_spm_decode_equals_pe_datapath(self):
        """Three computations of the same pruned layer agree exactly:
        (1) software conv on masked weights, (2) conv on weights rebuilt
        from SPM storage via register file, (3) the PE-group datapath."""
        rng = np.random.default_rng(2)
        model = patternnet(channels=(4,), num_classes=2, rng=rng)
        pruner = PCNNPruner(model, PCNNConfig.uniform(3, 1, num_patterns=8))
        info = pruner.apply()
        name, conv = pruner.layers[0]
        weight = conv.effective_weight()
        x = np.abs(rng.normal(size=(1, 3, 6, 6)))

        # (1) software reference.
        reference = conv2d(Tensor(x), Tensor(weight), padding=1).data

        # (2) SPM encode -> pack -> unpack -> register file -> rebuild.
        encoded = pruner.encode()[name]
        packed = pack_nonzero_sequences(encoded.values)
        values = unpack_nonzero_sequences(packed)
        decoder = SPMDecoder(encoded.codebook)
        rebuilt = np.zeros_like(weight).reshape(-1, 9)
        register = KernelRegisterFile(60)
        n = encoded.codebook.n_nonzero
        for start in range(0, len(values), register.capacity_kernels(n)):
            chunk = values[start : start + register.capacity_kernels(n)]
            loaded = register.load(chunk)
            for k in range(loaded):
                mask = decoder.decode(int(encoded.codes[start + k])).astype(bool)
                rebuilt[start + k][mask] = register.kernel_sequence(k)
        rebuilt = rebuilt.reshape(weight.shape)
        np.testing.assert_allclose(rebuilt, weight)

        # (3) the PE datapath.
        sim = ConvLayerSimulator(ArchConfig(num_pes=4, macs_per_pe=4))
        result = sim.functional_forward(x, rebuilt, padding=1)
        np.testing.assert_allclose(result.output, reference, rtol=1e-10)

    def test_compression_and_speedup_consistent(self):
        """FLOPs ratio from the compression report equals the simulator's
        cycle ratio (same underlying effectual-work model)."""
        model = patternnet(channels=(8, 16), num_classes=4, rng=np.random.default_rng(3))
        profile = profile_model(model, (3, 8, 8))
        config = PCNNConfig.uniform(3, 2)
        report = pcnn_compression(profile, config)
        sim = simulate_network_analytic(profile, config)
        flops_ratio = report.dense_macs / report.pruned_macs
        assert sim.speedup == pytest.approx(flops_ratio, rel=1e-9)


class TestPCNNvsIrregularEndToEnd:
    def test_equal_density_different_index_cost(self):
        """PCNN and irregular pruning at the same density: equal weight
        compression, but PCNN's index overhead is far smaller and its
        per-kernel counts are uniform."""
        model = patternnet(channels=(8, 16), num_classes=4, rng=np.random.default_rng(4))
        profile = profile_model(model, (3, 8, 8))

        pcnn_model = patternnet(channels=(8, 16), num_classes=4, rng=np.random.default_rng(4))
        pruner = PCNNPruner(pcnn_model, PCNNConfig.uniform(3, 2))
        pruner.apply()
        pcnn_density = model_conv_density(pcnn_model)

        magnitude_prune_irregular(model, density=3 / 9)
        irregular_density = model_conv_density(model)
        assert pcnn_density == pytest.approx(irregular_density, abs=0.01)

        pcnn_report = pcnn_compression(profile, PCNNConfig.uniform(3, 2))
        irr_report = irregular_compression(profile, 3)
        assert pcnn_report.weight_compression == pytest.approx(
            irr_report.weight_compression
        )
        assert pcnn_report.index_bits_total < irr_report.index_bits_total
        assert pcnn_report.weight_idx_compression > irr_report.weight_idx_compression

    def test_pcnn_kernels_uniform_irregular_not(self):
        from repro.core import kernel_nonzeros

        pcnn_model = patternnet(channels=(8, 16), num_classes=4, rng=np.random.default_rng(5))
        pruner = PCNNPruner(pcnn_model, PCNNConfig.uniform(3, 2))
        pruner.apply()
        for _, module in pruner.layers:
            assert len(np.unique(kernel_nonzeros(module.weight_mask))) == 1

        irr_model = patternnet(channels=(8, 16), num_classes=4, rng=np.random.default_rng(5))
        masks = magnitude_prune_irregular(irr_model, density=3 / 9)
        counts = np.concatenate([kernel_nonzeros(m) for m in masks.values()])
        assert len(np.unique(counts)) > 1
