"""Tests for synthetic data generation, datasets, loaders, augmentation."""

import numpy as np
import pytest

from repro.data import (
    ArrayDataset,
    DataLoader,
    SyntheticImages,
    SyntheticSpec,
    compose,
    gaussian_noise,
    make_synthetic_images,
    random_crop,
    random_flip,
)


class TestSyntheticImages:
    def test_shapes_and_label_range(self):
        x_train, y_train, x_test, y_test = make_synthetic_images(
            n_train=64, n_test=32, num_classes=5, image_size=12
        )
        assert x_train.shape == (64, 3, 12, 12)
        assert x_test.shape == (32, 3, 12, 12)
        assert set(np.unique(y_train)).issubset(set(range(5)))

    def test_determinism(self):
        a = make_synthetic_images(n_train=16, n_test=8, seed=7)
        b = make_synthetic_images(n_train=16, n_test=8, seed=7)
        for left, right in zip(a, b):
            np.testing.assert_array_equal(left, right)

    def test_different_seeds_differ(self):
        a, _, _, _ = make_synthetic_images(n_train=16, n_test=8, seed=1)
        b, _, _, _ = make_synthetic_images(n_train=16, n_test=8, seed=2)
        assert not np.array_equal(a, b)

    def test_train_test_disjoint_streams(self):
        gen = SyntheticImages(SyntheticSpec(num_classes=3, image_size=8), seed=0)
        x_train, _, x_test, _ = gen.train_test(32, 32)
        assert not np.array_equal(x_train, x_test)

    def test_classes_are_separable_by_prototype(self):
        """Nearest-prototype classification beats chance by a wide margin."""
        spec = SyntheticSpec(num_classes=4, image_size=12, noise_std=0.2, max_shift=0)
        gen = SyntheticImages(spec, seed=3)
        x, y = gen.sample(200, seed=42)
        protos = gen.prototypes.reshape(4, -1)
        flat = x.reshape(len(x), -1)
        pred = np.argmax(flat @ protos.T, axis=1)
        assert (pred == y).mean() > 0.9

    def test_noise_free_samples_match_prototypes(self):
        spec = SyntheticSpec(
            num_classes=2, image_size=8, noise_std=0.0, max_shift=0, contrast_jitter=0.0
        )
        gen = SyntheticImages(spec, seed=0)
        x, y = gen.sample(10, seed=1)
        for img, label in zip(x, y):
            np.testing.assert_allclose(img, gen.prototypes[label])


class TestArrayDataset:
    def test_len_and_getitem(self):
        data = ArrayDataset(np.zeros((10, 1, 4, 4)), np.arange(10))
        assert len(data) == 10
        img, label = data[3]
        assert label == 3

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((10, 1, 4, 4)), np.arange(9))

    def test_split(self):
        data = ArrayDataset(np.arange(100).reshape(100, 1, 1, 1), np.arange(100))
        first, second = data.split(0.8, seed=0)
        assert len(first) == 80 and len(second) == 20
        combined = np.sort(np.concatenate([first.labels, second.labels]))
        np.testing.assert_array_equal(combined, np.arange(100))

    def test_split_bad_fraction(self):
        data = ArrayDataset(np.zeros((4, 1, 1, 1)), np.zeros(4))
        with pytest.raises(ValueError):
            data.split(1.5)


class TestDataLoader:
    def make_data(self, n=20):
        return ArrayDataset(np.arange(n, dtype=float).reshape(n, 1, 1, 1), np.arange(n))

    def test_batch_count(self):
        loader = DataLoader(self.make_data(20), batch_size=8)
        assert len(loader) == 3
        batches = list(loader)
        assert [len(b[0]) for b in batches] == [8, 8, 4]

    def test_drop_last(self):
        loader = DataLoader(self.make_data(20), batch_size=8, drop_last=True)
        assert len(loader) == 2
        assert all(len(b[0]) == 8 for b in loader)

    def test_covers_all_samples_when_shuffled(self):
        loader = DataLoader(self.make_data(20), batch_size=6, shuffle=True, seed=1)
        labels = np.concatenate([y for _, y in loader])
        np.testing.assert_array_equal(np.sort(labels), np.arange(20))

    def test_shuffle_changes_order_across_epochs(self):
        loader = DataLoader(self.make_data(32), batch_size=32, shuffle=True, seed=0)
        first = next(iter(loader))[1].copy()
        second = next(iter(loader))[1].copy()
        assert not np.array_equal(first, second)

    def test_augment_hook_applied(self):
        def double(images, rng):
            return images * 2

        loader = DataLoader(self.make_data(4), batch_size=4, augment=double)
        images, _ = next(iter(loader))
        np.testing.assert_array_equal(images.reshape(-1), [0, 2, 4, 6])

    def test_bad_batch_size(self):
        with pytest.raises(ValueError):
            DataLoader(self.make_data(4), batch_size=0)


class TestAugment:
    def test_flip_preserves_shape_and_content_set(self):
        rng = np.random.default_rng(0)
        images = np.arange(2 * 1 * 2 * 3, dtype=float).reshape(2, 1, 2, 3)
        out = random_flip(images, rng, p=1.0)
        np.testing.assert_array_equal(out, images[:, :, :, ::-1])

    def test_crop_shape(self):
        rng = np.random.default_rng(0)
        images = np.random.default_rng(1).normal(size=(4, 3, 8, 8))
        out = random_crop(images, rng, padding=2)
        assert out.shape == images.shape

    def test_noise_changes_values(self):
        rng = np.random.default_rng(0)
        images = np.zeros((2, 1, 4, 4))
        out = gaussian_noise(images, rng, std=1.0)
        assert np.abs(out).sum() > 0

    def test_compose(self):
        rng = np.random.default_rng(0)
        pipeline = compose(
            lambda x, r: x + 1,
            lambda x, r: x * 2,
        )
        out = pipeline(np.zeros((1, 1, 2, 2)), rng)
        np.testing.assert_array_equal(out, 2 * np.ones((1, 1, 2, 2)))
