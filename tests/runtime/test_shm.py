"""Tests for the shared-memory primitives behind multi-process serving:
the :class:`SharedModelImage` weight slab, the SPSC :class:`TensorRing`,
and the length-prefixed tensor record format. Every test asserts the
``/dev/shm`` namespace is left clean."""

import glob

import numpy as np
import pytest

from repro import runtime
from repro.models import patternnet
from repro.runtime.shm import (
    KIND_REQUEST,
    RingTimeout,
    SharedModelImage,
    TensorRing,
    pack_tensor,
    unpack_tensor,
)


def repro_segments():
    """Names of live repro-owned shared-memory segments on this host."""
    return sorted(glob.glob("/dev/shm/repro-*"))


@pytest.fixture(autouse=True)
def no_segment_leaks():
    """Every test must leave /dev/shm exactly as it found it."""
    before = repro_segments()
    yield
    assert repro_segments() == before


@pytest.fixture(scope="module")
def compiled():
    model = patternnet(rng=np.random.default_rng(7))
    return runtime.compile_model(model, input_shape=(3, 16, 16))


class TestSharedModelImage:
    def test_attach_round_trip_is_equivalent(self, compiled):
        x = np.random.default_rng(1).standard_normal((4, 3, 16, 16))
        want = compiled(x)
        image = SharedModelImage.export(compiled)
        try:
            attached = SharedModelImage.attach(image.name)
            twin = attached.model()
            np.testing.assert_allclose(twin(x), want, atol=1e-5, rtol=1e-5)
            attached.close()
        finally:
            image.close()
            image.unlink()

    def test_attached_arrays_are_readonly_views(self, compiled):
        image = SharedModelImage.export(compiled)
        try:
            attached = SharedModelImage.attach(image.name)
            views = attached.arrays()
            assert views
            for view in views:
                assert not view.flags.writeable
            with pytest.raises((ValueError, RuntimeError)):
                views[0][...] = 0.0
            del views
            attached.close()
        finally:
            image.close()
            image.unlink()

    def test_attach_stats_count_views_not_copies(self, compiled):
        image = SharedModelImage.export(compiled)
        try:
            attached = SharedModelImage.attach(image.name)
            attached.model()
            stats = attached.attach_stats.snapshot()
            assert stats["arrays"] > 0
            assert stats["attached"] == stats["arrays"]
            assert stats["copied"] == 0
            assert stats["bytes"] > 0
            attached.close()
        finally:
            image.close()
            image.unlink()

    def test_export_rejects_non_compiled(self):
        with pytest.raises(TypeError):
            SharedModelImage.export(object())

    def test_attach_rejects_foreign_segment(self):
        from repro.runtime.shm import create_segment, destroy_segment

        shm = create_segment("pool", 4096)  # no image header
        try:
            with pytest.raises(ValueError, match="not a repro model image"):
                SharedModelImage.attach(shm.name)
        finally:
            destroy_segment(shm)

    def test_unlink_is_idempotent(self, compiled):
        image = SharedModelImage.export(compiled)
        image.close()
        image.unlink()
        image.unlink()  # second unlink must not raise


class TestTensorRing:
    """Rings need no real shared memory — any mutable buffer works."""

    def ring(self, capacity=512):
        return TensorRing(bytearray(TensorRing.footprint(capacity)), 0, capacity)

    def test_write_read_round_trip(self):
        ring = self.ring()
        ring.write(KIND_REQUEST, [b"hello", b"-", b"world"])
        kind, payload, record = ring.try_read()
        assert kind == KIND_REQUEST
        assert bytes(payload) == b"hello-world"
        del payload
        ring.consume(record)
        assert not ring.has_data()

    def test_wraparound_preserves_every_record(self):
        """Far more traffic than capacity: the wrap marker path works."""
        ring = self.ring(capacity=256)
        for i in range(200):
            body = bytes([i % 251]) * (17 + i % 64)
            ring.write(KIND_REQUEST, [body], timeout=1.0)
            kind, payload, record = ring.try_read()
            assert bytes(payload) == body
            del payload
            ring.consume(record)
        assert ring.used_bytes == 0

    def test_backpressure_times_out_when_full(self):
        ring = self.ring(capacity=128)
        ring.write(KIND_REQUEST, [b"x" * 80])
        with pytest.raises(RingTimeout):
            ring.write(KIND_REQUEST, [b"y" * 80], timeout=0.05)
        # Consuming the first record frees the space again.
        _, payload, record = ring.try_read()
        del payload
        ring.consume(record)
        ring.write(KIND_REQUEST, [b"y" * 80], timeout=1.0)

    def test_oversize_record_rejected_outright(self):
        ring = self.ring(capacity=128)
        with pytest.raises(ValueError, match="exceeds ring capacity"):
            ring.write(KIND_REQUEST, [b"z" * 1024])

    def test_empty_ring_reads_none(self):
        assert self.ring().try_read() is None

    def test_used_bytes_tracks_occupancy(self):
        ring = self.ring()
        assert ring.used_bytes == 0
        ring.write(KIND_REQUEST, [b"abcd"])
        assert ring.used_bytes > 0
        _, payload, record = ring.try_read()
        del payload
        ring.consume(record)
        assert ring.used_bytes == 0


class TestTensorRecords:
    def test_pack_unpack_round_trip(self):
        array = np.arange(24, dtype=np.float32).reshape(2, 3, 4)
        header, data = pack_tensor(9, 1.25, 2.5, array)
        payload = memoryview(bytes(header) + bytes(data))
        req_id, t_start, t_done, out = unpack_tensor(payload)
        assert (req_id, t_start, t_done) == (9, 1.25, 2.5)
        assert out.dtype == np.float32
        np.testing.assert_array_equal(out, array)

    def test_non_contiguous_input_is_packed_correctly(self):
        array = np.arange(32, dtype=np.float64).reshape(4, 8)[:, ::2]
        header, data = pack_tensor(1, 0.0, 0.0, array)
        payload = memoryview(bytes(header) + bytes(data))
        _, _, _, out = unpack_tensor(payload)
        np.testing.assert_array_equal(out, array)

    def test_rank_above_header_capacity_rejected(self):
        with pytest.raises(ValueError, match="rank"):
            pack_tensor(1, 0.0, 0.0, np.zeros((1,) * 7))

    def test_ring_transport_of_tensor_records(self):
        ring = TensorRing(bytearray(TensorRing.footprint(4096)), 0, 4096)
        array = np.random.default_rng(3).standard_normal((2, 5))
        header, data = pack_tensor(4, 0.5, 0.75, array)
        ring.write(KIND_REQUEST, [header, data])
        kind, payload, record = ring.try_read()
        req_id, _, _, out = unpack_tensor(payload)
        assert (kind, req_id) == (KIND_REQUEST, 4)
        np.testing.assert_array_equal(np.array(out), array)
        del out, payload
        ring.consume(record)
