"""Tests for the int8 execution path (repro.runtime.quant).

Covers the eager ``"quant"`` engine backend (equivalence to float within
the analytic quantization error bound, exact int32 accumulation), the
compiled quantized pipeline across {per-tensor, per-kernel} x {dense,
SPM} configurations, calibration determinism, per-layer float fallback,
and the serving plumbing (quantized bundle end to end is covered in
tests/serving/test_server.py).
"""

import numpy as np
import pytest

from repro import runtime
from repro.core import PCNNConfig, PCNNPruner, SPMCodebook, encode_layer, enumerate_patterns, project_to_patterns
from repro.models import patternnet, vgg16_cifar
from repro.nn import Tensor
from repro.nn.functional import conv2d, im2col
from repro.runtime import QuantizationConfig
from repro.runtime.quant import (
    DequantizeOp,
    QuantConvOp,
    QuantizedBackend,
    QuantizeOp,
    int8_gemm_int32,
    quantize_activation_codes,
    quantize_encoded_values,
    quantize_weight_codes,
    resolve_quantization,
)


def _quant_error_bound(x, weight, config, stride=1, padding=1):
    """Analytic elementwise bound on |quant conv - float conv|.

    Rounding puts every dequantized operand within half a scale step of
    its float value, so for output window w and filter f:
    ``|err| <= sum_k (|a_k| sw_f/2 + |w_fk| sa/2 + sw_f sa/4)``.
    """
    qmax = config.qmax
    w_mat = weight.reshape(weight.shape[0], -1)
    if config.granularity == "per_kernel":
        peaks = np.abs(w_mat).max(axis=1)
    else:
        peaks = np.full(w_mat.shape[0], np.abs(w_mat).max())
    sw = np.where(peaks > 0, peaks / qmax, 1.0)
    sa = np.abs(x).max() / qmax
    cols, _ = im2col(x, weight.shape[2:], stride, padding)
    k = w_mat.shape[1]
    abs_a = np.abs(cols).sum(axis=1)  # (windows,)
    abs_w = np.abs(w_mat).sum(axis=1)  # (C_out,)
    return (
        abs_a[:, None] * sw[None, :] / 2
        + abs_w[None, :] * sa / 2
        + k * sw[None, :] * sa / 4
    )


class TestQuantizers:
    def test_per_kernel_scales_and_roundtrip(self):
        rng = np.random.default_rng(0)
        w = rng.normal(size=(8, 36))
        config = QuantizationConfig()
        codes, scales, error = quantize_weight_codes(w, config)
        assert codes.dtype == np.int8
        assert scales.shape == (8,)
        assert np.abs(codes).max() <= 127
        # Each row's peak maps exactly onto +-qmax.
        recon = codes.astype(np.float64) * scales[:, None]
        np.testing.assert_allclose(
            np.abs(recon).max(axis=1), np.abs(w).max(axis=1), rtol=1e-12
        )
        assert 0 < error < 0.05

    def test_per_tensor_single_scale(self):
        rng = np.random.default_rng(1)
        w = rng.normal(size=(4, 9))
        codes, scales, _ = quantize_weight_codes(
            w, QuantizationConfig(granularity="per_tensor")
        )
        assert len(set(scales.tolist())) == 1
        assert scales[0] == pytest.approx(np.abs(w).max() / 127)

    def test_zero_rows_quantize_losslessly(self):
        codes, scales, error = quantize_weight_codes(
            np.zeros((3, 9)), QuantizationConfig()
        )
        assert not codes.any() and error == 0.0
        assert (scales == 1.0).all()

    def test_encoded_values_grouped_per_filter(self):
        """SPM quantization scales the (kernels, n) sequences per filter."""
        rng = np.random.default_rng(2)
        patterns = enumerate_patterns(2)[:8]
        weight = project_to_patterns(rng.normal(size=(4, 3, 3, 3)), patterns)
        encoded = encode_layer(weight, SPMCodebook(patterns))
        codes, scales, _ = quantize_encoded_values(encoded, QuantizationConfig())
        assert codes.shape == encoded.values.shape
        assert scales.shape == (4,)
        # The scale of filter f is set by the peak over its C_in kernels.
        per_filter = np.abs(encoded.values).reshape(4, -1).max(axis=1)
        np.testing.assert_allclose(scales, per_filter / 127)

    def test_activation_codes_dynamic_scale(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(2, 3, 5, 5))
        codes, scale = quantize_activation_codes(x, QuantizationConfig())
        assert scale == pytest.approx(np.abs(x).max() / 127)
        assert np.abs(codes).max() == 127

    def test_resolve_quantization_forms(self):
        assert resolve_quantization(None) is None
        assert resolve_quantization(False) is None
        assert resolve_quantization(True).bits == 8
        assert resolve_quantization("int8").bits == 8
        assert resolve_quantization("int6").bits == 6
        assert resolve_quantization(4).bits == 4
        config = QuantizationConfig(mode="dequantize")
        assert resolve_quantization(config) is config
        with pytest.raises(ValueError, match="unknown quantization spec"):
            resolve_quantization("fp8")
        with pytest.raises(ValueError, match="granularity"):
            QuantizationConfig(granularity="per_row")
        with pytest.raises(ValueError, match="mode"):
            QuantizationConfig(mode="clip")


class TestExactAccumulation:
    def test_float_carried_gemm_matches_int32(self):
        """The BLAS float GEMM on codes is bit-identical to int32 MACs."""
        rng = np.random.default_rng(4)
        a = rng.integers(-127, 128, size=(64, 288)).astype(np.int8)
        b = rng.integers(-127, 128, size=(288, 16)).astype(np.int8)
        exact = int8_gemm_int32(a, b)
        carried64 = a.astype(np.float64) @ b.astype(np.float64)
        np.testing.assert_array_equal(carried64, exact.astype(np.float64))
        carried32 = a.astype(np.float32) @ b.astype(np.float32)
        # float32 is exact while accumulators stay within 2^24.
        assert np.abs(exact).max() < 2**24
        np.testing.assert_array_equal(carried32, exact.astype(np.float32))

    def test_backend_accumulation_is_integer_exact(self):
        """Eager quant backend == hand-rolled int32 datapath, bit for bit."""
        rng = np.random.default_rng(5)
        x = rng.normal(size=(1, 4, 8, 8))
        w = rng.normal(size=(6, 4, 3, 3))
        config = QuantizationConfig()
        out = runtime.dispatch(x, w, padding=1, backend="quant")
        w_codes, w_scales, _ = quantize_weight_codes(w.reshape(6, -1), config)
        x_codes, a_scale = quantize_activation_codes(x, config)
        cols, (oh, ow) = im2col(x_codes, (3, 3), 1, 1)
        acc = int8_gemm_int32(cols.astype(np.int8), w_codes.T)
        ref = (acc.astype(np.float64) * (w_scales[None, :] * a_scale)).reshape(
            1, oh, ow, 6
        ).transpose(0, 3, 1, 2)
        np.testing.assert_array_equal(out, ref)


class TestQuantizedBackend:
    @pytest.mark.parametrize("granularity", ["per_kernel", "per_tensor"])
    @pytest.mark.parametrize("encoded", [False, True], ids=["dense", "spm"])
    def test_within_error_bound(self, granularity, encoded):
        """Backend output differs from float by at most the analytic bound."""
        rng = np.random.default_rng(6)
        config = QuantizationConfig(granularity=granularity)
        weight = rng.normal(size=(8, 6, 3, 3))
        spm = None
        if encoded:
            patterns = enumerate_patterns(2)[:8]
            weight = project_to_patterns(weight, patterns)
            spm = encode_layer(weight, SPMCodebook(patterns))
        x = rng.normal(size=(2, 6, 9, 9))
        reference = conv2d(Tensor(x), Tensor(weight), padding=1).data
        out = _dispatch_with(QuantizedBackend(config), x, weight, spm)
        bound = _quant_error_bound(x, weight, config)
        n, c_out, oh, ow = out.shape
        diff = np.abs(out - reference).transpose(0, 2, 3, 1).reshape(-1, c_out)
        assert (diff <= bound + 1e-9).all()

    def test_registered_and_not_auto_selected(self):
        assert "quant" in runtime.available_backends()
        rng = np.random.default_rng(7)
        request = runtime.ConvRequest(
            x=rng.normal(size=(1, 4, 6, 6)), weight=rng.normal(size=(8, 4, 3, 3))
        )
        assert runtime.select_backend(request) != "quant"

    def test_epilogue_bias_relu(self):
        rng = np.random.default_rng(8)
        x = rng.normal(size=(1, 3, 6, 6))
        w = rng.normal(size=(4, 3, 3, 3))
        bias = rng.normal(size=(4,))
        out = runtime.dispatch(x, w, bias=bias, padding=1, backend="quant")
        plain = runtime.dispatch(x, w, padding=1, backend="quant")
        np.testing.assert_allclose(out, plain + bias[None, :, None, None], atol=1e-12)


def _dispatch_with(backend, x, weight, spm):
    """Run a one-off backend instance through the engine registry."""
    runtime.register_backend(backend, overwrite=True)
    try:
        return runtime.dispatch(
            x, None if spm is not None else weight, encoded=spm, padding=1,
            backend="quant",
        )
    finally:
        runtime.register_backend(QuantizedBackend(), overwrite=True)


def _models():
    dense = patternnet(channels=(8, 16), num_classes=4, rng=np.random.default_rng(0))
    spm = patternnet(channels=(8, 16), num_classes=4, rng=np.random.default_rng(0))
    pruner = PCNNPruner(spm, PCNNConfig.uniform(2, 2, num_patterns=8))
    pruner.apply()
    pruner.attach_encodings()
    gather = patternnet(channels=(8, 16), num_classes=4, rng=np.random.default_rng(0))
    pruner = PCNNPruner(gather, PCNNConfig.uniform(1, 2, num_patterns=4))
    pruner.apply()
    pruner.attach_encodings()
    return {"dense": dense, "spm": spm, "spm_gather": gather}


class TestCompiledQuantizedPipeline:
    @pytest.mark.parametrize("granularity", ["per_kernel", "per_tensor"])
    @pytest.mark.parametrize("mode", ["requantize", "dequantize"])
    @pytest.mark.parametrize("kind", ["dense", "spm", "spm_gather"])
    def test_close_to_float_and_top1_agreement(self, granularity, mode, kind):
        model = _models()[kind]
        rng = np.random.default_rng(9)
        x = rng.normal(size=(16, 3, 12, 12))
        reference = runtime.predict(model, x)
        config = QuantizationConfig(granularity=granularity, mode=mode)
        compiled = runtime.compile_model(model, quantize=config, calibration=x[:8])
        assert compiled.quantization is not None
        assert compiled.quantization.quantized_layers == 2
        out = compiled(x)
        rel = np.linalg.norm(out - reference) / np.linalg.norm(reference)
        assert rel < 0.05, (kind, granularity, mode, rel)
        agree = (out.argmax(axis=1) == reference.argmax(axis=1)).mean()
        assert agree == 1.0

    def test_quant_ops_in_pipeline(self):
        """Requantize mode: one entry QuantizeOp, codes flow conv-to-conv."""
        model = _models()["dense"]
        x = np.random.default_rng(10).normal(size=(4, 3, 12, 12))
        compiled = runtime.compile_model(model, quantize="int8", calibration=x)
        kinds = [type(op) for op in compiled.ops]
        assert kinds.count(QuantizeOp) == 1
        assert kinds.count(DequantizeOp) == 0  # last conv dequantizes itself
        qconvs = [op for op in compiled.ops if isinstance(op, QuantConvOp)]
        assert len(qconvs) == 2
        assert qconvs[0].out_scale is not None  # requantizes to codes
        assert qconvs[1].out_scale is None  # region exit: dequantize epilogue
        assert qconvs[0].codes_int8.dtype == np.int8

    def test_spm_weight_codes_stay_sparse(self):
        """SPM quantization stores only the non-zero sequences as codes."""
        model = _models()["spm"]
        x = np.random.default_rng(11).normal(size=(4, 3, 12, 12))
        compiled = runtime.compile_model(model, quantize="int8", calibration=x)
        qconvs = [op for op in compiled.ops if isinstance(op, QuantConvOp)]
        for op in qconvs:
            assert op.encoded is not None
            # The GEMM operand decodes the codes; its zero pattern matches
            # the pruning pattern exactly (zeros never get a code).
            assert op.encoded.values.shape[1] == 2  # n non-zeros per kernel

    def test_calibration_determinism_under_fixed_rng(self):
        model = _models()["spm"]
        x = np.random.default_rng(12).normal(size=(4, 3, 12, 12))

        def build():
            calibration = np.random.default_rng(99).normal(size=(8, 3, 12, 12))
            return runtime.compile_model(model, quantize="int8", calibration=calibration)

        a, b = build(), build()
        np.testing.assert_array_equal(a(x), b(x))
        for row_a, row_b in zip(a.quantization.layers, b.quantization.layers):
            assert row_a == row_b

    def test_calibration_required(self):
        model = _models()["dense"]
        with pytest.raises(ValueError, match="calibration"):
            runtime.compile_model(model, quantize="int8")
        with pytest.raises(ValueError, match="calibration"):
            runtime.compile_model(
                model, quantize="int8", calibration=np.zeros((0, 3, 12, 12))
            )

    def test_per_layer_float_fallback_triggers(self):
        """An outlier-poisoned layer exceeds the per-tensor error bound
        and stays float; per-kernel scales absorb the outlier."""
        model = patternnet(channels=(8, 16), num_classes=4, rng=np.random.default_rng(0))
        convs = [m for m in model.modules() if type(m).__name__ == "Conv2d"]
        convs[1].weight.data[0, 0, 0, 0] = 500.0
        x = np.random.default_rng(13).normal(size=(8, 3, 12, 12))
        reference = runtime.predict(model, x)

        per_tensor = runtime.compile_model(
            model,
            quantize=QuantizationConfig(granularity="per_tensor"),
            calibration=x,
        )
        assert per_tensor.quantization.fallback_layers == 1
        assert per_tensor.quantization.quantized_layers == 1
        row = per_tensor.quantization.layers[1]
        assert not row["quantized"] and "error" in row["reason"]
        # The fallback conv still runs (as float), end to end.
        out = per_tensor(x)
        rel = np.linalg.norm(out - reference) / np.linalg.norm(reference)
        assert rel < 0.05

        per_kernel = runtime.compile_model(model, quantize="int8", calibration=x)
        assert per_kernel.quantization.fallback_layers == 0

    def test_forced_backend_stays_float(self):
        """A conv pinned to an engine backend is never quantized."""
        model = _models()["dense"]
        convs = [m for m in model.modules() if type(m).__name__ == "Conv2d"]
        convs[0].backend = "dense"
        try:
            x = np.random.default_rng(14).normal(size=(4, 3, 12, 12))
            compiled = runtime.compile_model(model, quantize="int8", calibration=x)
            assert compiled.quantization.fallback_layers == 1
            assert compiled.quantization.layers[0]["reason"] == "forced backend"
        finally:
            convs[0].backend = None

    def test_backend_override_rejected_on_quantized_pipeline(self):
        model = _models()["dense"]
        x = np.random.default_rng(15).normal(size=(2, 3, 12, 12))
        compiled = runtime.compile_model(model, quantize="int8", calibration=x)
        with pytest.raises(ValueError, match="backend"):
            compiled(x, backend="tiled")

    def test_predict_quantize_roundtrip(self):
        """predict(quantize=...) compiles, calibrates on x, and serves."""
        model = _models()["spm"]
        x = np.random.default_rng(16).normal(size=(8, 3, 12, 12))
        reference = runtime.predict(model, x)
        stats = runtime.PredictStats()
        out = runtime.predict(model, x, quantize="int8", stats=stats)
        assert stats.compiled
        rel = np.linalg.norm(out - reference) / np.linalg.norm(reference)
        assert rel < 0.05

    def test_predict_quantize_rejects_float_compiled_model(self):
        """quantize= on an already-lowered float pipeline must fail loudly,
        not silently serve float while the caller believes it is int8."""
        model = _models()["dense"]
        x = np.random.default_rng(20).normal(size=(4, 3, 12, 12))
        float_compiled = runtime.compile_model(model)
        with pytest.raises(ValueError, match="already-compiled"):
            runtime.predict(float_compiled, x, quantize="int8")
        # An already-quantized compiled model passes through untouched.
        int8_compiled = runtime.compile_model(model, quantize="int8", calibration=x)
        out = runtime.predict(int8_compiled, x, quantize="int8")
        np.testing.assert_array_equal(out, int8_compiled(x))

    def test_empty_batch_and_workers(self):
        model = _models()["dense"]
        x = np.random.default_rng(17).normal(size=(8, 3, 12, 12))
        compiled = runtime.compile_model(model, quantize="int8", calibration=x)
        empty = runtime.predict(compiled, np.zeros((0, 3, 12, 12)))
        assert empty.shape == (0, 4)
        full = runtime.predict(compiled, x)
        split = runtime.predict(compiled, x, micro_batch=3, workers=2)
        np.testing.assert_allclose(split, full, rtol=1e-5, atol=1e-6)

    def test_vgg16_bn_folding_then_quantization(self):
        """BN-heavy model: fold first, then quantize the folded weights."""
        model = vgg16_cifar(rng=np.random.default_rng(18))
        x = np.random.default_rng(19).normal(size=(4, 3, 32, 32))
        reference = runtime.predict(model, x)
        compiled = runtime.compile_model(model, quantize="int8", calibration=x)
        assert compiled.quantization.quantized_layers == 13
        out = compiled(x)
        rel = np.linalg.norm(out - reference) / np.linalg.norm(reference)
        assert rel < 0.08
        assert (out.argmax(axis=1) == reference.argmax(axis=1)).mean() >= 0.99
