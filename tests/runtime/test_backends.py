"""Backend-equivalence tests: every registered backend must match conv2d."""

import numpy as np
import pytest

from repro import runtime
from repro.core import (
    SPMCodebook,
    encode_layer,
    enumerate_patterns,
    pattern_sparse_conv2d,
    project_to_patterns,
)
from repro.nn import Tensor
from repro.nn.functional import conv2d
from repro.runtime import (
    ConvRequest,
    available_backends,
    dispatch,
    get_backend,
    register_backend,
    select_backend,
)


def make_layer(rng, n=2, shape=(8, 4, 3, 3), num_patterns=4, dtype=np.float64):
    patterns = enumerate_patterns(n)[:num_patterns]
    weight = project_to_patterns(rng.normal(size=shape), patterns).astype(dtype)
    encoded = encode_layer(weight, SPMCodebook(patterns))
    return weight, encoded


class TestBackendEquivalence:
    """Every backend pins to the nn.functional.conv2d reference."""

    @pytest.mark.parametrize("backend", ["dense", "pattern", "tiled"])
    @pytest.mark.parametrize("stride,padding", [(1, 1), (2, 1), (1, 0), (2, 0)])
    @pytest.mark.parametrize("n,num_patterns", [(1, 4), (2, 8), (4, 2)])
    def test_matches_conv2d(self, backend, stride, padding, n, num_patterns):
        backend_id = {"dense": 0, "pattern": 1, "tiled": 2}[backend]
        rng = np.random.default_rng(backend_id * 1000 + stride * 100 + padding * 10 + n)
        weight, encoded = make_layer(rng, n=n, num_patterns=num_patterns)
        x = rng.normal(size=(2, 4, 9, 9))
        reference = conv2d(Tensor(x), Tensor(weight), stride=stride, padding=padding).data
        kwargs = dict(stride=stride, padding=padding, backend=backend)
        if backend == "pattern":
            out = dispatch(x, encoded=encoded, **kwargs)
        else:
            out = dispatch(x, weight, **kwargs)
        np.testing.assert_allclose(out, reference, rtol=1e-9, atol=1e-12)

    @pytest.mark.parametrize("backend", ["dense", "pattern", "tiled"])
    def test_backends_accept_encoded_only(self, backend):
        """dense/tiled decode SPM storage on demand; pattern uses it natively."""
        rng = np.random.default_rng(7)
        weight, encoded = make_layer(rng)
        x = rng.normal(size=(1, 4, 6, 6))
        reference = conv2d(Tensor(x), Tensor(weight), padding=1).data
        out = dispatch(x, encoded=encoded, padding=1, backend=backend)
        np.testing.assert_allclose(out, reference, rtol=1e-9, atol=1e-12)

    @pytest.mark.parametrize("backend", ["dense", "pattern", "tiled"])
    def test_bias(self, backend):
        rng = np.random.default_rng(11)
        weight, encoded = make_layer(rng)
        bias = rng.normal(size=8)
        x = rng.normal(size=(1, 4, 6, 6))
        reference = conv2d(Tensor(x), Tensor(weight), Tensor(bias), padding=1).data
        out = dispatch(x, weight, encoded=encoded, bias=bias, padding=1, backend=backend)
        np.testing.assert_allclose(out, reference, rtol=1e-9, atol=1e-12)

    def test_pattern_grouped_fallback_for_diverse_codebooks(self):
        """|P| * n far above k^2 routes to the decode + GEMM fallback."""
        rng = np.random.default_rng(13)
        # 126 patterns of n=4: expansion 126*4/9 = 56 >> limit.
        weight, encoded = make_layer(rng, n=4, num_patterns=126)
        x = rng.normal(size=(1, 4, 6, 6))
        reference = conv2d(Tensor(x), Tensor(weight), padding=1).data
        out = dispatch(x, encoded=encoded, padding=1, backend="pattern")
        np.testing.assert_allclose(out, reference, rtol=1e-9, atol=1e-12)

    def test_pattern_sparse_conv2d_routes_through_engine(self):
        rng = np.random.default_rng(17)
        weight, encoded = make_layer(rng)
        x = rng.normal(size=(1, 4, 6, 6))
        via_wrapper = pattern_sparse_conv2d(x, encoded, padding=1)
        via_engine = dispatch(x, encoded=encoded, padding=1, backend="pattern")
        np.testing.assert_array_equal(via_wrapper, via_engine)


class TestDtype:
    """float32 inputs stay float32 end-to-end (the seed hardcoded float64)."""

    @pytest.mark.parametrize("backend", ["dense", "pattern", "tiled"])
    def test_float32_stays_float32(self, backend):
        rng = np.random.default_rng(23)
        weight, encoded = make_layer(rng, dtype=np.float32)
        assert encoded.values.dtype == np.float32
        x = rng.normal(size=(1, 4, 6, 6)).astype(np.float32)
        out = dispatch(x, weight.astype(np.float32), encoded=encoded,
                       padding=1, backend=backend)
        assert out.dtype == np.float32

    @pytest.mark.parametrize("backend", ["dense", "pattern", "tiled"])
    def test_float64_bias_does_not_promote_float32(self, backend):
        rng = np.random.default_rng(27)
        weight, encoded = make_layer(rng, dtype=np.float32)
        bias = rng.normal(size=8)  # float64, like nn.init.zeros biases
        x = rng.normal(size=(1, 4, 6, 6)).astype(np.float32)
        out = dispatch(x, weight.astype(np.float32), encoded=encoded,
                       bias=bias, padding=1, backend=backend)
        assert out.dtype == np.float32

    def test_pattern_sparse_conv2d_float32(self):
        rng = np.random.default_rng(29)
        weight, encoded = make_layer(rng, dtype=np.float32)
        x = rng.normal(size=(1, 4, 6, 6)).astype(np.float32)
        out = pattern_sparse_conv2d(x, encoded, padding=1)
        assert out.dtype == np.float32
        reference = conv2d(Tensor(x.astype(np.float64)),
                           Tensor(weight.astype(np.float64)), padding=1).data
        np.testing.assert_allclose(out, reference, rtol=1e-4, atol=1e-5)


class TestSelectionAndRegistry:
    def test_encoded_selects_pattern(self):
        rng = np.random.default_rng(31)
        _, encoded = make_layer(rng)
        request = ConvRequest(x=rng.normal(size=(1, 4, 6, 6)), encoded=encoded, padding=1)
        assert select_backend(request) == "pattern"

    def test_small_dense_selects_dense(self):
        rng = np.random.default_rng(37)
        request = ConvRequest(
            x=rng.normal(size=(1, 4, 6, 6)), weight=rng.normal(size=(8, 4, 3, 3))
        )
        assert select_backend(request) == "dense"

    def test_large_input_selects_tiled(self):
        rng = np.random.default_rng(41)
        request = ConvRequest(
            x=np.zeros((8, 64, 112, 112)), weight=rng.normal(size=(8, 64, 3, 3)),
            padding=1,
        )
        assert select_backend(request) == "tiled"

    def test_builtin_backends_registered(self):
        names = available_backends()
        assert {"dense", "pattern", "tiled"} <= set(names)

    def test_unknown_backend_raises(self):
        with pytest.raises(KeyError, match="unknown conv backend"):
            get_backend("cudnn")

    def test_register_duplicate_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend(runtime.DenseGemmBackend())

    def test_register_custom_backend(self):
        class NegatingBackend:
            """Toy backend: dense result with flipped sign."""

            name = "test-negate"

            def supports(self, request):
                return request.weight is not None

            def execute(self, request, plan, workspace=None):
                return -runtime.DenseGemmBackend().execute(request, plan)

        register_backend(NegatingBackend())
        try:
            rng = np.random.default_rng(43)
            weight = rng.normal(size=(8, 4, 3, 3))
            x = rng.normal(size=(1, 4, 6, 6))
            out = dispatch(x, weight, padding=1, backend="test-negate")
            reference = dispatch(x, weight, padding=1, backend="dense")
            np.testing.assert_allclose(out, -reference)
        finally:
            runtime.backends._REGISTRY.pop("test-negate", None)

    def test_missing_weight_and_encoding_rejected(self):
        with pytest.raises(ValueError, match="weight or an encoded layer"):
            ConvRequest(x=np.zeros((1, 4, 6, 6)))

    def test_channel_mismatch_rejected(self):
        rng = np.random.default_rng(47)
        with pytest.raises(ValueError, match="channel mismatch"):
            dispatch(rng.normal(size=(1, 5, 6, 6)), rng.normal(size=(8, 4, 3, 3)))

    def test_pattern_backend_requires_encoding(self):
        rng = np.random.default_rng(53)
        with pytest.raises(ValueError, match="does not support"):
            dispatch(rng.normal(size=(1, 4, 6, 6)), rng.normal(size=(8, 4, 3, 3)),
                     backend="pattern")


class TestSlabTiling:
    def test_tile_boundaries_exact(self, monkeypatch):
        """Forcing one-row slabs still assembles the exact output."""
        rng = np.random.default_rng(59)
        weight = rng.normal(size=(6, 3, 3, 3))
        x = rng.normal(size=(2, 3, 11, 11))
        reference = dispatch(x, weight, stride=2, padding=1, backend="dense")
        out = dispatch(x, weight, stride=2, padding=1, backend="tiled")
        np.testing.assert_allclose(out, reference, rtol=1e-12)
        # Shrink the workspace bound so every backend slabs row-by-row.
        monkeypatch.setattr(runtime.backends, "TILE_THRESHOLD_ELEMENTS", 1)
        out_tiny = dispatch(x, weight, stride=2, padding=1, backend="tiled")
        np.testing.assert_allclose(out_tiny, reference, rtol=1e-12)

    def test_pattern_backend_slabs_large_inputs(self, monkeypatch):
        """Encoded requests also run in bounded slabs, and exactly."""
        rng = np.random.default_rng(61)
        weight, encoded = make_layer(rng)
        x = rng.normal(size=(2, 4, 9, 9))
        reference = dispatch(x, weight, padding=1, backend="dense")
        monkeypatch.setattr(runtime.backends, "TILE_THRESHOLD_ELEMENTS", 1)
        out = dispatch(x, encoded=encoded, padding=1, backend="pattern")
        np.testing.assert_allclose(out, reference, rtol=1e-9, atol=1e-12)
