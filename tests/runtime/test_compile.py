"""Tests for the compiled inference pipeline (BN folding, fused
epilogues, buffer arenas, parallel micro-batch serving)."""

import threading

import numpy as np
import pytest

from repro import nn, runtime
from repro.core import PCNNConfig, PCNNPruner
from repro.models import patternnet, resnet18_cifar, vgg16_cifar


def _pruned(model, layers):
    pruner = PCNNPruner(model, PCNNConfig.uniform(2, layers))
    pruner.apply()
    pruner.attach_encodings()
    return model


MODELS = {
    "simplecnn": lambda: patternnet(
        channels=(8, 16), num_classes=4, rng=np.random.default_rng(0)
    ),
    "vgg16": lambda: vgg16_cifar(rng=np.random.default_rng(1)),
    "resnet18": lambda: resnet18_cifar(rng=np.random.default_rng(2)),
}
INPUT_SHAPES = {"simplecnn": (3, 12, 12), "vgg16": (3, 32, 32), "resnet18": (3, 32, 32)}
PRUNE_LAYERS = {"simplecnn": 2, "vgg16": 13, "resnet18": 17}


class TestCompiledEquivalence:
    """Compiled output matches eager eval-mode output within 1e-5,
    across models, with/without SPM encodings, float32/float64 inputs."""

    @pytest.mark.parametrize("name", sorted(MODELS))
    @pytest.mark.parametrize("encoded", [False, True], ids=["dense", "spm"])
    @pytest.mark.parametrize("in_dtype", [np.float32, np.float64], ids=["f32", "f64"])
    def test_matches_eager(self, name, encoded, in_dtype):
        model = MODELS[name]()
        if encoded:
            _pruned(model, PRUNE_LAYERS[name])
        x = np.random.default_rng(3).normal(size=(2, *INPUT_SHAPES[name]))
        reference = runtime.predict(model, x)  # float64 eager eval
        compiled = runtime.compile_model(model)
        out = compiled(x.astype(in_dtype))
        assert out.shape == reference.shape
        np.testing.assert_allclose(out, reference, rtol=1e-4, atol=1e-5)

    @pytest.mark.parametrize("name", sorted(MODELS))
    def test_float64_compile_is_exact(self, name):
        """dtype=None keeps training precision: agreement to ~1e-12."""
        model = MODELS[name]()
        x = np.random.default_rng(4).normal(size=(2, *INPUT_SHAPES[name]))
        reference = runtime.predict(model, x)
        out = runtime.compile_model(model, dtype=None)(x)
        np.testing.assert_allclose(out, reference, rtol=1e-9, atol=1e-12)

    def test_repeated_calls_are_deterministic(self):
        """Arena reuse must not leak state between calls."""
        model = MODELS["vgg16"]()
        compiled = runtime.compile_model(model)
        rng = np.random.default_rng(5)
        x1 = rng.normal(size=(2, 3, 32, 32))
        x2 = rng.normal(size=(2, 3, 32, 32))
        first = compiled(x1)
        compiled(x2)  # overwrite every arena buffer with other data
        np.testing.assert_array_equal(compiled(x1), first)

    def test_spm_gather_path_when_narrower_than_dense(self):
        """n=1/|P|=4 keeps the grouped contraction narrower than the
        dense one, so compiled convs serve straight from SPM storage."""
        model = patternnet(
            channels=(8, 16), num_classes=4, rng=np.random.default_rng(21)
        )
        pruner = PCNNPruner(model, PCNNConfig.uniform(1, 2, num_patterns=4))
        pruner.apply()
        pruner.attach_encodings()
        x = np.random.default_rng(22).normal(size=(2, 3, 12, 12))
        reference = runtime.predict(model, x)
        compiled = runtime.compile_model(model)
        spm_ops = [op for op in compiled.ops if getattr(op, "encoded", None) is not None]
        assert spm_ops and all(op.use_gather for op in spm_ops)
        np.testing.assert_allclose(compiled(x), reference, rtol=1e-4, atol=1e-5)

    def test_spm_wide_codebook_lowers_to_decoded_dense(self):
        """n=2/|P|=8 gathers 16 columns/channel vs 9 dense — the compiled
        pipeline decodes at compile time and runs the dense GEMM."""
        model = _pruned(
            patternnet(channels=(8, 16), num_classes=4, rng=np.random.default_rng(23)),
            2,
        )
        compiled = runtime.compile_model(model)
        spm_ops = [op for op in compiled.ops if getattr(op, "encoded", None) is not None]
        assert spm_ops and not any(op.use_gather for op in spm_ops)

    def test_forced_backend_matches(self):
        model = _pruned(MODELS["simplecnn"](), 2)
        x = np.random.default_rng(6).normal(size=(2, 3, 12, 12))
        reference = runtime.predict(model, x)
        compiled = runtime.compile_model(model)
        for backend in ("dense", "tiled", "pattern"):
            np.testing.assert_allclose(
                compiled(x, backend=backend), reference, rtol=1e-4, atol=1e-5
            )

    def test_features_only_model_keeps_nchw_layout(self):
        from repro.models.vgg import VGG16

        model = VGG16(classifier="none", rng=np.random.default_rng(7))
        x = np.random.default_rng(8).normal(size=(1, 3, 32, 32))
        reference = runtime.predict(model, x)
        out = runtime.compile_model(model)(x)
        assert out.shape == reference.shape  # (1, 512, 1, 1) NCHW
        np.testing.assert_allclose(out, reference, rtol=1e-4, atol=1e-5)

    def test_unknown_module_falls_back(self):
        class Odd(nn.Module):
            def forward(self, x):
                return x * nn.Tensor(2.0)

        model = nn.Sequential(
            nn.Conv2d(3, 4, kernel_size=3, padding=1, rng=np.random.default_rng(9)),
            Odd(),
            nn.GlobalAvgPool2d(),
        )
        x = np.random.default_rng(10).normal(size=(2, 3, 8, 8))
        reference = runtime.predict(model, x)
        compiled = runtime.compile_model(model)
        assert any(op.describe().startswith("module:Odd") for op in compiled.ops)
        np.testing.assert_allclose(compiled(x), reference, rtol=1e-4, atol=1e-5)

    def test_bad_input_rejected(self):
        compiled = runtime.compile_model(MODELS["simplecnn"]())
        with pytest.raises(ValueError, match="N, C, H, W"):
            compiled(np.zeros((3, 12, 12)))


class TestBatchNormFolding:
    def test_fold_batchnorm_math(self):
        rng = np.random.default_rng(11)
        bn = nn.BatchNorm2d(6)
        bn.gamma.data[...] = rng.normal(size=6)
        bn.beta.data[...] = rng.normal(size=6)
        bn.running_mean[...] = rng.normal(size=6)
        bn.running_var[...] = rng.uniform(0.5, 2.0, size=6)
        weight = rng.normal(size=(6, 3, 3, 3))
        bias = rng.normal(size=6)
        folded_w, folded_b = runtime.fold_batchnorm(weight, bias, bn)

        conv = nn.Conv2d(3, 6, kernel_size=3, padding=1, rng=rng)
        conv.weight.data[...] = weight
        conv.bias.data[...] = bias
        x = nn.Tensor(rng.normal(size=(2, 3, 8, 8)))
        with nn.no_grad():
            expected = bn.eval()(conv.eval()(x)).data
        got = runtime.dispatch(x.data, folded_w, bias=folded_b, padding=1)
        np.testing.assert_allclose(got, expected, rtol=1e-9, atol=1e-12)

    def test_fold_params_is_affine_map(self):
        bn = nn.BatchNorm2d(4)
        bn.running_mean[...] = [0.5, -1.0, 0.0, 2.0]
        bn.running_var[...] = [1.0, 4.0, 0.25, 9.0]
        scale, shift = bn.fold_params()
        x = np.random.default_rng(12).normal(size=(2, 4, 3, 3))
        with nn.no_grad():
            expected = bn.eval()(nn.Tensor(x)).data
        got = x * scale[None, :, None, None] + shift[None, :, None, None]
        np.testing.assert_allclose(got, expected, rtol=1e-9, atol=1e-12)

    def test_bn_stats_change_requires_recompile(self):
        """Compilation snapshots BN stats: the compiled model keeps the
        old output until compiled again (documented behaviour)."""
        model = MODELS["simplecnn"]()
        x = np.random.default_rng(13).normal(size=(2, 3, 12, 12))
        compiled = runtime.compile_model(model)
        before = compiled(x)
        for module in model.modules():
            if isinstance(module, nn.BatchNorm2d):
                module.running_mean += 1.0
        np.testing.assert_array_equal(compiled(x), before)
        recompiled = runtime.compile_model(model)
        assert np.abs(recompiled(x) - before).max() > 1e-3
        np.testing.assert_allclose(
            recompiled(x), runtime.predict(model, x), rtol=1e-4, atol=1e-5
        )

    def test_folded_ops_fuse_bias_and_relu(self):
        compiled = runtime.compile_model(MODELS["vgg16"]())
        conv_ops = [op for op in compiled.ops if op.describe().startswith("conv")]
        assert len(conv_ops) == 13
        # Every VGG conv is conv→bn→relu: all fold to conv+bias+relu
        # (a winograd schedule annotation may follow the fused label).
        assert all(op.describe().startswith("conv+bias+relu") for op in conv_ops)
        # No standalone BN or ReLU ops survive lowering.
        assert not any("batchnorm" in op.describe() for op in compiled.ops)
        assert not any(op.describe() == "relu" for op in compiled.ops)


class TestEpilogue:
    def test_bias_add_in_place_and_dtype_stable(self):
        mat = np.random.default_rng(14).normal(size=(6, 3)).astype(np.float32)
        before = mat.copy()
        epi = runtime.Epilogue(bias=np.array([1.0, -2.0, 0.5]))  # float64 bias
        out = epi.apply(mat)
        assert out is mat  # in place, no allocation
        assert mat.dtype == np.float32
        np.testing.assert_allclose(mat, before + np.array([1.0, -2.0, 0.5], np.float32))

    def test_relu_applied_after_bias(self):
        mat = np.array([[-1.0, 1.0]])
        runtime.Epilogue(bias=np.array([0.5, -3.0]), relu=True).apply(mat)
        np.testing.assert_array_equal(mat, [[0.0, 0.0]])

    def test_dispatch_bias_and_epilogue_conflict(self):
        x = np.zeros((1, 2, 4, 4))
        w = np.zeros((3, 2, 3, 3))
        with pytest.raises(ValueError, match="not both"):
            runtime.dispatch(
                x, w, bias=np.zeros(3),
                epilogue=runtime.Epilogue(bias=np.zeros(3)),
            )


class TestArena:
    def test_take_reuses_buffers(self):
        arena = runtime.Arena()
        a = arena.take("x", (4, 4), np.float32)
        b = arena.take("x", (4, 4), np.float32)
        assert a is b
        assert arena.stats.allocations == 1 and arena.stats.reuses == 1
        c = arena.take("x", (4, 4), np.float64)  # different dtype, new buffer
        assert c is not a
        assert arena.stats.allocations == 2

    def test_padded_keeps_zero_border_across_reuse(self):
        arena = runtime.Arena()
        x = np.ones((1, 2, 3, 3))
        padded = arena.padded("p", x, 1)
        assert padded.shape == (1, 2, 5, 5)
        assert padded[0, 0, 0].sum() == 0
        padded2 = arena.padded("p", np.full((1, 2, 3, 3), 7.0), 1)
        assert padded2 is padded
        assert padded2[0, 0, 0].sum() == 0  # border still zero after reuse
        assert padded2[0, 0, 1, 1] == 7.0

    def test_compiled_steady_state_allocates_nothing(self):
        model = MODELS["vgg16"]()
        compiled = runtime.compile_model(model)
        x = np.random.default_rng(15).normal(size=(2, 3, 32, 32))
        compiled(x)  # warm-up allocates every buffer
        allocations = compiled.arena.stats.allocations
        compiled(x)
        compiled(x)
        assert compiled.arena.stats.allocations == allocations
        assert compiled.arena.stats.reuses > 0


class TestParallelServing:
    def test_workers_match_sequential(self):
        model = MODELS["vgg16"]()
        compiled = runtime.compile_model(model)
        x = np.random.default_rng(16).normal(size=(8, 3, 32, 32))
        sequential = runtime.predict(compiled, x, micro_batch=2)
        parallel = runtime.predict(compiled, x, micro_batch=2, workers=4)
        np.testing.assert_array_equal(parallel, sequential)

    def test_workers_on_eager_model(self):
        model = MODELS["simplecnn"]()
        x = np.random.default_rng(17).normal(size=(6, 3, 12, 12))
        reference = runtime.predict(model, x)
        out = runtime.predict(model, x, micro_batch=2, workers=3)
        np.testing.assert_allclose(out, reference, rtol=1e-9, atol=1e-12)

    def test_workers_default_chunking(self):
        model = MODELS["simplecnn"]()
        x = np.random.default_rng(18).normal(size=(5, 3, 12, 12))
        stats = runtime.PredictStats()
        runtime.predict(model, x, workers=2, stats=stats)
        assert stats.workers == 2
        assert stats.chunks == 2  # ceil(5/2)=3 -> chunks of 3+2
        assert stats.micro_batch == 3

    def test_thread_local_arenas(self):
        compiled = runtime.compile_model(MODELS["simplecnn"]())
        x = np.random.default_rng(19).normal(size=(2, 3, 12, 12))
        arenas = {}

        def worker(key):
            compiled(x)
            arenas[key] = compiled.arena

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert arenas[0] is not arenas[1]

    def test_predict_compile_flag(self):
        model = MODELS["simplecnn"]()
        x = np.random.default_rng(20).normal(size=(4, 3, 12, 12))
        reference = runtime.predict(model, x)
        stats = runtime.PredictStats()
        out = runtime.predict(model, x, compile=True, stats=stats)
        assert stats.compiled
        np.testing.assert_allclose(out, reference, rtol=1e-4, atol=1e-5)

    def test_worker_pool_persists_across_calls(self):
        """Worker threads (and so their thread-local arenas) survive
        between predict() calls — a fresh pool per call would rebuild
        every arena every call."""
        import sys

        predict_module = sys.modules["repro.runtime.predict"]
        assert predict_module._shared_pool(2) is predict_module._shared_pool(2)
        # Distinct sizes get distinct pools (never shut down mid-flight).
        assert predict_module._shared_pool(3) is not predict_module._shared_pool(2)

    def test_no_grad_is_thread_local(self):
        """One worker's no_grad must not toggle recording for others
        (the ModuleOp fallback enters/exits it per chunk under workers)."""
        from repro.nn.tensor import is_grad_enabled

        seen = {}
        with nn.no_grad():
            t = threading.Thread(
                target=lambda: seen.setdefault("worker", is_grad_enabled())
            )
            t.start()
            t.join()
            seen["main"] = is_grad_enabled()
        assert seen["main"] is False
        assert seen["worker"] is True  # untouched by main thread's context

    def test_module_fallback_with_workers_keeps_grad_off(self):
        """Compiled models with ModuleOp fallbacks serve correctly from a
        thread pool — no worker forward ever records a graph."""

        class Odd(nn.Module):
            def forward(self, x):
                return x * nn.Tensor(0.5)

        model = nn.Sequential(
            nn.Conv2d(3, 4, kernel_size=3, padding=1, rng=np.random.default_rng(27)),
            Odd(),
            nn.GlobalAvgPool2d(),
        )
        x = np.random.default_rng(28).normal(size=(8, 3, 8, 8))
        reference = runtime.predict(model, x)
        compiled = runtime.compile_model(model)
        out = runtime.predict(compiled, x, micro_batch=1, workers=4)
        np.testing.assert_allclose(out, reference, rtol=1e-4, atol=1e-5)
        assert all(p.grad is None for p in model.parameters())

    def test_residual_without_post_relu(self):
        """lowering_branches() can return (body, shortcut, False) for
        blocks whose sum is not ReLU-clamped."""
        rng = np.random.default_rng(25)

        class PreActBlock(nn.Module):
            def __init__(self):
                super().__init__()
                self.conv = nn.Conv2d(4, 4, kernel_size=3, padding=1, rng=rng)

            def forward(self, x):
                return self.conv(x) + x  # no activation after the add

            def lowering_branches(self):
                return [self.conv], [], False

        model = nn.Sequential(
            nn.Conv2d(3, 4, kernel_size=3, padding=1, rng=rng),
            PreActBlock(),
            nn.GlobalAvgPool2d(),
        )
        x = np.random.default_rng(26).normal(size=(2, 3, 8, 8))
        reference = runtime.predict(model, x)
        assert (reference < 0).any()  # the clamp would be observable
        np.testing.assert_allclose(
            runtime.compile_model(model)(x), reference, rtol=1e-4, atol=1e-5
        )

    def test_bad_workers_rejected(self):
        model = MODELS["simplecnn"]()
        with pytest.raises(ValueError, match="workers"):
            runtime.predict(model, np.zeros((2, 3, 12, 12)), workers=0)
