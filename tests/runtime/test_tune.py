"""Tests for the cost-model/autotune pass and the tuning cache."""

import json

import numpy as np
import pytest

from repro import runtime
from repro.core import PCNNConfig, PCNNPruner
from repro.models import patternnet
from repro.runtime import tune as tune_mod
from repro.runtime.compile import ConvOp
from repro.runtime.tune import TuningCache


def pruned_model(n=1, patterns=4, seed=0):
    model = patternnet(channels=(8, 16), num_classes=4, rng=np.random.default_rng(seed))
    pruner = PCNNPruner(model, PCNNConfig.uniform(n, 2, num_patterns=patterns))
    pruner.apply()
    pruner.attach_encodings()
    return model


SHAPE = (3, 16, 16)


def reference_for(model, x):
    return runtime.predict(model, x)


class TestCostTuning:
    def test_cost_mode_measures_nothing_and_stays_correct(self, tmp_path):
        model = pruned_model()
        x = np.random.default_rng(1).normal(size=(4, *SHAPE))
        reference = reference_for(model, x)
        cache = TuningCache(path=str(tmp_path / "tune.json"))
        compiled = runtime.compile_model(
            model, tune="cost", input_shape=SHAPE, tuning_cache=cache
        )
        np.testing.assert_allclose(compiled(x), reference, rtol=1e-4, atol=1e-5)
        assert compiled.tuning.mode == "cost"
        assert all(row["source"] == "cost" for row in compiled.tuning.layers)
        # Zero measurement: the cost model never probes the cache either.
        assert cache.stats.lookups == 0 and len(cache) == 0

    def test_cost_model_overrides_gather_heuristic(self):
        """n=1/|P|=4 passes the static width rule (4 <= 9), but the
        analytic roofline charges the gathered A matrix's traffic and
        picks the dense decode — the documented disagreement."""
        model = pruned_model(n=1, patterns=4)
        static = runtime.compile_model(model)
        static_convs = [op for op in static.ops if isinstance(op, ConvOp)]
        assert all(op.use_gather for op in static_convs)
        tuned = runtime.compile_model(model, tune="cost", input_shape=SHAPE)
        tuned_convs = [op for op in tuned.ops if isinstance(op, ConvOp)]
        assert not any(op.use_gather for op in tuned_convs)
        assert tuned.tuning.changed_layers == len(tuned_convs)

    def test_tune_requires_input_shape(self):
        with pytest.raises(ValueError, match="input_shape"):
            runtime.compile_model(pruned_model(), tune="cost")

    def test_invalid_tune_mode_rejected(self):
        with pytest.raises(ValueError, match="'cost' or 'measure'"):
            runtime.compile_model(pruned_model(), tune="fastest", input_shape=SHAPE)

    def test_forced_backend_convs_are_left_alone(self):
        model = pruned_model()
        for module in model.modules():
            if hasattr(module, "backend") and module.backend is None:
                module.backend = "pattern"
                break
        compiled = runtime.compile_model(model, tune="cost", input_shape=SHAPE)
        assert compiled.tuning.tuned_layers < 2  # the forced conv skipped


class TestMeasuredTuning:
    def test_measure_persists_and_second_compile_hits(self, tmp_path):
        model = pruned_model()
        x = np.random.default_rng(2).normal(size=(4, *SHAPE))
        reference = reference_for(model, x)
        path = str(tmp_path / "tune.json")
        cache = TuningCache(path=path)
        first = runtime.compile_model(
            model, tune="measure", input_shape=SHAPE, tuning_cache=cache
        )
        np.testing.assert_allclose(first(x), reference, rtol=1e-4, atol=1e-5)
        assert first.tuning.cache_hits == 0 and first.tuning.cache_misses > 0
        stores_after_first = cache.stats.stores
        assert stores_after_first > 0

        # The persisted file is valid JSON holding the measured schedules.
        with open(path) as fh:
            payload = json.load(fh)
        from repro.runtime.tune import _CACHE_VERSION

        assert payload["version"] == _CACHE_VERSION and payload["entries"]

        # Second compile of the same model: every schedule comes from the
        # cache, nothing is re-measured or re-stored.
        second = runtime.compile_model(
            model, tune="measure", input_shape=SHAPE, tuning_cache=cache
        )
        assert second.tuning.cache_misses == 0
        assert second.tuning.cache_hits == first.tuning.cache_misses
        assert cache.stats.stores == stores_after_first
        assert all(row["source"] == "cache" for row in second.tuning.layers)
        np.testing.assert_allclose(second(x), reference, rtol=1e-4, atol=1e-5)

    def test_fresh_cache_object_reads_persisted_file(self, tmp_path):
        model = pruned_model()
        path = str(tmp_path / "tune.json")
        runtime.compile_model(
            model, tune="measure", input_shape=SHAPE, tuning_cache=TuningCache(path)
        )
        reread = TuningCache(path)
        compiled = runtime.compile_model(
            model, tune="measure", input_shape=SHAPE, tuning_cache=reread
        )
        assert compiled.tuning.cache_misses == 0

    def test_corrupt_cache_file_behaves_empty(self, tmp_path):
        path = tmp_path / "tune.json"
        path.write_text("{not json")
        cache = TuningCache(str(path))
        assert cache.get("anything") is None
        cache.put("k", {"mode": "dense"})
        assert TuningCache(str(path)).get("k") == {"mode": "dense"}

    def test_predict_tune_end_to_end(self, tmp_path):
        model = pruned_model()
        x = np.random.default_rng(3).normal(size=(6, *SHAPE))
        reference = reference_for(model, x)
        out = runtime.predict(
            model,
            x,
            tune="measure",
            tuning_cache=TuningCache(str(tmp_path / "tune.json")),
        )
        np.testing.assert_allclose(out, reference, rtol=1e-4, atol=1e-5)

    def test_tuned_schedule_carries_onto_quantized_pipeline(self, tmp_path):
        from repro.runtime.quant import QuantConvOp

        model = pruned_model()
        x = np.random.default_rng(4).normal(size=(8, *SHAPE))
        compiled = runtime.compile_model(
            model,
            tune="cost",
            input_shape=SHAPE,
            quantize="int8",
            calibration=x,
        )
        qconvs = [op for op in compiled.ops if isinstance(op, QuantConvOp)]
        assert qconvs and all(op.schedule is not None for op in qconvs)
        assert all(op.use_gather == (op.schedule.mode == "gather") for op in qconvs)


class TestSlabOverride:
    def test_slab_bytes_override_is_numerically_identical(self):
        model = pruned_model(n=2, patterns=4)
        x = np.random.default_rng(5).normal(size=(2, *SHAPE))
        compiled = runtime.compile_model(model)
        baseline = compiled(x)
        conv = next(op for op in compiled.ops if isinstance(op, ConvOp))
        # A tiny budget forces multi-slab tiling at any batch (the
        # budget is batch-adaptive: rows derive from it per call).
        variant = conv.clone_with(slab_bytes=4096)
        from repro.runtime.arena import Arena
        from repro.runtime.compile import _ExecState
        from repro.runtime.plan import PlanCache

        state = _ExecState(arena=Arena(), plans=PlanCache())
        probe = np.random.default_rng(6).normal(size=(2, 16, 16, 3)).astype(np.float32)
        default_out = conv.run(probe, state, None).copy()
        state2 = _ExecState(arena=Arena(), plans=PlanCache())
        slab_out = variant.run(probe, state2, None)
        np.testing.assert_allclose(slab_out, default_out, rtol=1e-5, atol=1e-6)
        assert baseline.shape[0] == 2  # compiled model unaffected


class TestSelectionConsolidation:
    """The gather-eligibility rule lives in tune.py, imported elsewhere."""

    def test_engine_select_backend_delegates(self):
        from repro.runtime.engine import ConvRequest, select_backend

        x = np.zeros((1, 3, 8, 8))
        w = np.zeros((4, 3, 3, 3))
        request = ConvRequest(x=x, weight=w, padding=1)
        assert select_backend(request) == tune_mod.select_backend(request) == "dense"
        big = ConvRequest(x=np.zeros((8, 64, 64, 64)), weight=np.zeros((64, 64, 3, 3)), padding=1)
        assert select_backend(big) == "tiled"

    def test_constants_have_one_home(self):
        from repro.runtime import backends, compile as compile_mod

        assert compile_mod.GATHER_WIDTH_LIMIT is tune_mod.GATHER_WIDTH_LIMIT
        assert backends.GROUPED_EXPANSION_LIMIT is tune_mod.GROUPED_EXPANSION_LIMIT
        assert backends.TILE_THRESHOLD_ELEMENTS is tune_mod.TILE_THRESHOLD_ELEMENTS

    def test_prefer_gather_drives_lowering(self):
        narrow = pruned_model(n=1, patterns=4)  # 4 <= 9 -> gather
        wide = pruned_model(n=2, patterns=8)  # 16 > 9 -> decode
        narrow_ops = [
            op for op in runtime.compile_model(narrow).ops if isinstance(op, ConvOp)
        ]
        wide_ops = [
            op for op in runtime.compile_model(wide).ops if isinstance(op, ConvOp)
        ]
        assert all(op.use_gather for op in narrow_ops)
        assert not any(op.use_gather for op in wide_ops)
        for op in narrow_ops:
            assert tune_mod.prefer_gather(op.encoded, 9)
        for op in wide_ops:
            assert not tune_mod.prefer_gather(op.encoded, 9)


class TestArchPerLayerCost:
    def test_layer_costs_sum_to_network_cost(self):
        from repro.arch import inference_cost, inference_cost_by_layer
        from repro.models import profile_model, vgg16_cifar

        model = vgg16_cifar(rng=np.random.default_rng(0))
        profile = profile_model(model, (3, 32, 32), model_name="vgg")
        config = PCNNConfig.uniform(2, 13)
        whole = inference_cost(profile, config)
        layers = inference_cost_by_layer(profile, config)
        assert len(layers) == 13
        total_ms = sum(c.latency_ms for c in layers.values())
        np.testing.assert_allclose(total_ms, whole.latency_ms, rtol=1e-9)

    def test_conv_layer_cost_roofline(self):
        from repro.arch import conv_layer_cost

        small = conv_layer_cost(out_hw=(4, 4), c_in=8, c_out=8, kernel_size=3)
        assert small.cycles == max(small.compute_cycles, small.memory_cycles)
        wide = conv_layer_cost(
            out_hw=(4, 4), c_in=8, c_out=8, kernel_size=3, contraction_width=8 * 18
        )
        assert wide.macs == 2 * small.macs  # double-width contraction
        assert wide.latency_ms >= small.latency_ms
