"""Property tests for the kernel-level fast paths.

Three claims, each checked over randomly drawn geometries rather than a
handful of fixtures:

- the Winograd F(m,3) schedules agree with the im2col reference across
  the whole eligibility boundary (tiny outputs, partial edge tiles, odd
  sizes, both paddings, dense and SPM-decoded weights, float32/float64);
- the blocked int8 GEMM kernel is *bit-identical* to the reference
  integer GEMM — including ragged K tails around ``INT8_BLOCK_K``,
  ``k == 0`` and empty batches — which is the exactness certificate the
  int8 serving path rests on;
- the trace executor replays exactly what per-op dispatch computes,
  across shape changes mid-stream;
- measured tuning never persists a schedule that did not beat the
  static default by the noise margin.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import runtime
from repro.core import (
    PCNNConfig,
    PCNNPruner,
    SPMCodebook,
    encode_layer,
    enumerate_patterns,
    project_to_patterns,
)
from repro.models import patternnet
from repro.runtime.quant import (
    INT8_BLOCK_K,
    int8_gemm_int32,
    int8_gemm_int32_blocked,
)


class TestWinogradProperty:
    """Winograd vs im2col over the eligibility boundary."""

    @settings(max_examples=40, deadline=None)
    @given(
        h=st.integers(min_value=3, max_value=13),
        w=st.integers(min_value=3, max_value=13),
        c_in=st.sampled_from([1, 3, 4, 16]),
        c_out=st.sampled_from([2, 8]),
        padding=st.integers(min_value=0, max_value=1),
        batch=st.integers(min_value=1, max_value=3),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_dense_matches_im2col(self, h, w, c_in, c_out, padding, batch, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(batch, c_in, h, w))
        weight = rng.normal(size=(c_out, c_in, 3, 3))
        reference = runtime.dispatch(x, weight, padding=padding, backend="dense")
        out = runtime.dispatch(x, weight, padding=padding, backend="winograd")
        # float64 compute: the transforms round at machine epsilon, far
        # inside the repo-wide 1e-4 equivalence budget.
        np.testing.assert_allclose(out, reference, rtol=1e-9, atol=1e-10)

    @settings(max_examples=20, deadline=None)
    @given(
        hw=st.integers(min_value=4, max_value=11),
        n=st.integers(min_value=1, max_value=4),
        num_patterns=st.sampled_from([2, 4, 8]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_spm_decoded_matches_im2col(self, hw, n, num_patterns, seed):
        rng = np.random.default_rng(seed)
        patterns = enumerate_patterns(n)[:num_patterns]
        weight = project_to_patterns(rng.normal(size=(8, 4, 3, 3)), patterns)
        encoded = encode_layer(weight, SPMCodebook(patterns))
        x = rng.normal(size=(2, 4, hw, hw))
        reference = runtime.dispatch(x, encoded=encoded, padding=1, backend="dense")
        out = runtime.dispatch(x, encoded=encoded, padding=1, backend="winograd")
        np.testing.assert_allclose(out, reference, rtol=1e-9, atol=1e-10)

    @settings(max_examples=15, deadline=None)
    @given(
        hw=st.sampled_from([4, 6, 9, 16]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_float32_within_equivalence_budget(self, hw, seed):
        """float32 Winograd stays inside the repo-wide 1e-4 budget."""
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(2, 16, hw, hw)).astype(np.float32)
        weight = rng.normal(size=(8, 16, 3, 3)).astype(np.float32)
        reference = runtime.dispatch(x, weight, padding=1, backend="dense")
        out = runtime.dispatch(x, weight, padding=1, backend="winograd")
        assert out.dtype == np.float32
        scale = max(1.0, float(np.abs(reference).max()))
        assert float(np.abs(out - reference).max()) / scale <= 1e-4

    @pytest.mark.parametrize("pruned", [False, True])
    def test_compiled_pipeline_winograd_vs_im2col(self, pruned):
        """compile_model(winograd=True) vs winograd=False, end to end."""
        model = patternnet(rng=np.random.default_rng(3))
        if pruned:
            pruner = PCNNPruner(model, PCNNConfig.uniform(2, 3, num_patterns=8))
            pruner.apply()
            pruner.attach_encodings()
        x = np.random.default_rng(4).normal(size=(3, 3, 16, 16))
        wino = runtime.compile_model(model)
        gemm = runtime.compile_model(model, winograd=False)
        assert float(np.abs(wino(x) - gemm(x)).max()) <= 1e-4

    def test_ineligible_geometry_rejected(self):
        rng = np.random.default_rng(5)
        with pytest.raises(ValueError, match="does not support"):
            runtime.dispatch(
                rng.normal(size=(1, 4, 8, 8)),
                rng.normal(size=(8, 4, 3, 3)),
                stride=2,
                backend="winograd",
            )
        with pytest.raises(ValueError, match="does not support"):
            runtime.dispatch(
                rng.normal(size=(1, 4, 8, 8)),
                rng.normal(size=(8, 4, 5, 5)),
                backend="winograd",
            )


class TestInt8KernelExactness:
    """The blocked kernel's bit-identity certificate, property-checked."""

    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(min_value=0, max_value=40),
        k=st.integers(min_value=0, max_value=2 * INT8_BLOCK_K + 37),
        m=st.integers(min_value=1, max_value=24),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_blocked_bit_identical_to_reference(self, n, k, m, seed):
        """Every realisable code GEMM — ragged K tails, k == 0, empty
        batches — accumulates to exactly the int32 reference values."""
        rng = np.random.default_rng(seed)
        a = rng.integers(-127, 128, size=(n, k)).astype(np.int8)
        b = rng.integers(-127, 128, size=(k, m)).astype(np.int8)
        out = int8_gemm_int32_blocked(a, b)
        reference = int8_gemm_int32(a, b)
        assert out.dtype == np.float64
        assert np.array_equal(out, reference.astype(np.float64))

    @settings(max_examples=15, deadline=None)
    @given(
        k=st.sampled_from(
            [1, INT8_BLOCK_K - 1, INT8_BLOCK_K, INT8_BLOCK_K + 1, 3 * INT8_BLOCK_K]
        ),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_float32_columns_accumulate_exactly(self, k, seed):
        """The pipeline hands in float32 columns cast off int8 buffers;
        the kernel must stay exact on them too."""
        rng = np.random.default_rng(seed)
        a8 = rng.integers(-127, 128, size=(17, k)).astype(np.int8)
        b = rng.integers(-127, 128, size=(k, 9)).astype(np.int8)
        out = int8_gemm_int32_blocked(a8.astype(np.float32), b)
        assert np.array_equal(out, int8_gemm_int32(a8, b).astype(np.float64))

    def test_worst_case_saturated_codes(self):
        """All-(+127) x all-(-127) at a K past the block bound — the
        largest-magnitude accumulation the certificate covers."""
        k = 2 * INT8_BLOCK_K + 1
        a = np.full((3, k), 127, dtype=np.int8)
        b = np.full((k, 2), -127, dtype=np.int8)
        out = int8_gemm_int32_blocked(a, b)
        assert np.all(out == -(127 * 127) * k)

    def test_single_block_float32_out_fast_path(self):
        """k <= INT8_BLOCK_K with a float32 out skips staging, exactly."""
        rng = np.random.default_rng(11)
        a = rng.integers(-127, 128, size=(13, INT8_BLOCK_K)).astype(np.int8)
        b = rng.integers(-127, 128, size=(INT8_BLOCK_K, 7)).astype(np.int8)
        out = np.empty((13, 7), dtype=np.float32)
        int8_gemm_int32_blocked(a, b, out=out)
        assert np.array_equal(out.astype(np.int64), int8_gemm_int32(a, b))


class TestTraceExecutor:
    """Thunk replay computes exactly what per-op dispatch computes."""

    def _model(self, pruned=True):
        model = patternnet(rng=np.random.default_rng(7))
        if pruned:
            pruner = PCNNPruner(model, PCNNConfig.uniform(2, 3, num_patterns=4))
            pruner.apply()
            pruner.attach_encodings()
        return model

    def test_trace_matches_dispatch_across_shapes(self, monkeypatch):
        model = self._model()
        compiled = runtime.compile_model(model)
        rng = np.random.default_rng(8)
        for batch in (1, 3, 1, 2):  # shape changes mid-stream re-trace
            x = rng.normal(size=(batch, 3, 16, 16))
            monkeypatch.setenv("REPRO_TRACE", "0")
            dispatched = compiled(x)
            monkeypatch.setenv("REPRO_TRACE", "1")
            first = compiled(x)  # records the trace
            replay = compiled(x)  # replays it
            np.testing.assert_array_equal(first, replay)
            np.testing.assert_allclose(replay, dispatched, rtol=1e-5, atol=1e-6)

    def test_trace_matches_dispatch_quantized(self, monkeypatch):
        model = self._model()
        x = np.random.default_rng(9).normal(size=(4, 3, 16, 16))
        compiled = runtime.compile_model(model, quantize="int8", calibration=x)
        monkeypatch.setenv("REPRO_TRACE", "0")
        dispatched = compiled(x)
        monkeypatch.setenv("REPRO_TRACE", "1")
        compiled(x)
        replay = compiled(x)
        np.testing.assert_allclose(replay, dispatched, rtol=1e-5, atol=1e-6)

    def test_executor_kind_reports_mode(self, monkeypatch):
        compiled = runtime.compile_model(self._model(pruned=False))
        monkeypatch.setenv("REPRO_TRACE", "1")
        assert compiled.executor_kind() == "trace"
        monkeypatch.setenv("REPRO_TRACE", "0")
        assert compiled.executor_kind() == "dispatch"

    def test_schedule_summary_names_kernel_schedules(self):
        model = self._model()
        x = np.random.default_rng(10).normal(size=(2, 3, 16, 16))
        compiled = runtime.compile_model(model, quantize="int8", calibration=x)
        compiled(x)  # resolve winograd-auto markers
        rows = compiled.schedule_summary()
        assert rows and all({"tag", "op", "kind"} <= set(row) for row in rows)
        qrows = [row for row in rows if row["op"] == "QuantConvOp"]
        # Quantized convs always disclose their int8 kernel resolution in
        # the kind string ("+int8:<kernel>", "float" when float-carried);
        # dense-GEMM quant layers additionally expose row["int8_kernel"].
        assert qrows and all("int8:" in row["kind"] for row in qrows)


class TestNeverPersistSlower:
    """Measured tuning must not cache a schedule that only won on noise."""

    def test_equal_measurements_keep_the_default(self, tmp_path, monkeypatch):
        """When every candidate measures identically, no alternative
        beats the default by the margin, so the default persists."""
        from repro.runtime import tune as tune_mod
        from repro.runtime.tune import TuningCache

        monkeypatch.setattr(
            tune_mod, "_measure_layer_ips", lambda *a, **kw: 100.0
        )
        model = patternnet(
            channels=(8, 16), num_classes=4, rng=np.random.default_rng(12)
        )
        pruner = PCNNPruner(model, PCNNConfig.uniform(1, 2, num_patterns=4))
        pruner.apply()
        pruner.attach_encodings()
        static = runtime.compile_model(model, winograd=False)
        from repro.runtime.compile import ConvOp

        heuristic = {
            op.tag: ("gather" if op.use_gather else "dense")
            for op in static.ops
            if isinstance(op, ConvOp)
        }
        cache = TuningCache(path=str(tmp_path / "tune.json"))
        tuned = runtime.compile_model(
            model,
            tune="measure",
            input_shape=(3, 16, 16),
            tuning_cache=cache,
            winograd=False,
        )
        for op in tuned.ops:
            if isinstance(op, ConvOp):
                assert op.schedule.mode == heuristic[op.tag], op.tag
        assert len(cache) > 0  # the defaults were persisted, not skipped
