"""Tests for the process-pool executor: numerical equivalence through
the shared-memory rings, crash recovery, clean shutdown (no ``/dev/shm``
leaks), and the ``predict(executor=)`` seam."""

import glob
import os
import signal
import time

import numpy as np
import pytest

from repro import runtime
from repro.models import patternnet
from repro.runtime import BrokenWorkerPool, WorkerPool


def repro_segments():
    return sorted(glob.glob("/dev/shm/repro-*"))


@pytest.fixture(scope="module", autouse=True)
def no_module_leaks():
    """The whole module — shared pool included — must unlink everything."""
    before = repro_segments()
    yield
    assert repro_segments() == before


@pytest.fixture(scope="module")
def compiled():
    model = patternnet(rng=np.random.default_rng(11))
    return runtime.compile_model(model, input_shape=(3, 16, 16))


@pytest.fixture(scope="module")
def pool(compiled):
    with WorkerPool(compiled, 2, ring_bytes=1 << 21) as pool:
        pool.warmup([(4, 3, 16, 16)])
        yield pool


@pytest.fixture()
def batch():
    return np.random.default_rng(5).standard_normal((8, 3, 16, 16))


class TestEquivalence:
    def test_run_chunks_matches_in_process(self, compiled, pool, batch):
        want = compiled(batch)
        got = pool.run_chunks([batch])
        np.testing.assert_allclose(got[0], want, atol=1e-5, rtol=1e-5)

    def test_multi_chunk_order_is_submission_order(self, compiled, pool, batch):
        chunks = [batch[:4], batch[4:]]
        got = pool.run_chunks(chunks)
        for chunk, out in zip(chunks, got):
            np.testing.assert_allclose(out, compiled(chunk), atol=1e-5, rtol=1e-5)

    def test_chunk_seconds_filled_with_ring_rtt(self, pool, batch):
        seconds = [0.0]
        pool.run_chunks([batch], seconds)
        assert seconds[0] > 0.0

    def test_predict_executor_seam(self, compiled, pool, batch):
        want = runtime.predict(compiled, batch)
        got = runtime.predict(compiled, batch, executor=pool)
        np.testing.assert_allclose(got, want, atol=1e-5, rtol=1e-5)

    def test_submit_chunk_future_resolves_to_output(self, compiled, pool, batch):
        future = pool.submit_chunk(batch[:4])
        np.testing.assert_allclose(
            future.result(timeout=30), compiled(batch[:4]), atol=1e-5, rtol=1e-5
        )

    def test_traffic_spreads_across_workers(self, pool, batch):
        for _ in range(4):
            pool.run_chunks([batch[:2], batch[2:4], batch[4:6], batch[6:]])
        snap = pool.stats_snapshot()
        busy_workers = [
            w for w in snap["per_worker"].values() if w["chunks"] > 0
        ]
        assert len(busy_workers) == pool.procs


class TestObservability:
    def test_stats_snapshot_structure(self, pool, batch):
        pool.run_chunks([batch])
        snap = pool.stats_snapshot()
        assert snap["procs"] == 2
        assert snap["alive"] == 2
        image = snap["image"]
        assert image["copied_total"] == 0
        assert image["attached_total"] == 2 * image["arrays"]
        for worker in snap["per_worker"].values():
            assert worker["alive"]
            assert worker["ring"]["capacity"] == pool.ring_bytes
            assert worker["attach"]["copied"] == 0

    def test_image_shared_once_not_per_worker(self, pool):
        """The weight slab exists once; both workers map the same bytes."""
        snap = pool.stats_snapshot()
        image_segments = [s for s in repro_segments() if "-image-" in s]
        assert len(image_segments) == 1
        assert snap["image"]["segment"] in image_segments[0]


class TestCrashRecovery:
    """Each test builds its own pool — killing the shared one would
    poison every later test."""

    def test_sigkill_survivor_keeps_serving(self, compiled, batch):
        before = repro_segments()
        with WorkerPool(compiled, 2, ring_bytes=1 << 21) as pool:
            pool.warmup([(8, 3, 16, 16)])
            victim = pool._workers[0].process
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(5.0)
            deadline = time.monotonic() + 5.0
            while pool.stats_snapshot()["alive"] > 1:
                assert time.monotonic() < deadline, "death never detected"
                time.sleep(0.02)
            got = pool.run_chunks([batch])
            np.testing.assert_allclose(got[0], compiled(batch), atol=1e-5, rtol=1e-5)
        assert repro_segments() == before

    def test_sigterm_mid_burst_redispatches_in_flight(self, compiled, batch):
        """Chunks queued on a SIGTERM'd worker finish on the survivor."""
        before = repro_segments()
        with WorkerPool(compiled, 2, ring_bytes=1 << 21) as pool:
            pool.warmup([(2, 3, 16, 16)])
            futures = [pool.submit_chunk(batch[i : i + 2]) for i in range(0, 8, 2)]
            os.kill(pool._workers[1].process.pid, signal.SIGTERM)
            for i, future in enumerate(futures):
                out = future.result(timeout=30)
                np.testing.assert_allclose(
                    out, compiled(batch[2 * i : 2 * i + 2]), atol=1e-5, rtol=1e-5
                )
        assert repro_segments() == before

    def test_all_workers_dead_breaks_pool(self, compiled, batch):
        before = repro_segments()
        with WorkerPool(compiled, 1, ring_bytes=1 << 21) as pool:
            pool.warmup([(8, 3, 16, 16)])
            os.kill(pool._workers[0].process.pid, signal.SIGKILL)
            pool._workers[0].process.join(5.0)
            with pytest.raises((BrokenWorkerPool, RuntimeError)):
                # Death may surface during submit or via the resolved
                # future, depending on when the collector notices.
                for future in [pool.submit_chunk(batch)]:
                    future.result(timeout=30)
        assert repro_segments() == before


class TestLifecycle:
    def test_shutdown_unlinks_segments_and_is_idempotent(self, compiled):
        before = repro_segments()
        pool = WorkerPool(compiled, 2, ring_bytes=1 << 21)
        assert len(repro_segments()) == len(before) + 2  # image + rings
        pool.shutdown()
        assert repro_segments() == before
        pool.shutdown()  # second call is a no-op

    def test_submit_after_shutdown_raises(self, compiled, batch):
        pool = WorkerPool(compiled, 1, ring_bytes=1 << 21)
        pool.shutdown()
        with pytest.raises(BrokenWorkerPool):
            pool.submit_chunk(batch)

    def test_stats_snapshot_safe_after_shutdown(self, compiled):
        pool = WorkerPool(compiled, 1, ring_bytes=1 << 21)
        pool.shutdown()
        snap = pool.stats_snapshot()
        assert snap["alive"] == 0
        for worker in snap["per_worker"].values():
            assert worker["ring"]["request_used"] == 0

    def test_invalid_proc_count_rejected(self, compiled):
        with pytest.raises(ValueError):
            WorkerPool(compiled, 0)


class TestEffectiveCpuCount:
    """The tuning-cache key workers inherit from the router."""

    def test_env_override_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_TUNE_CPUS", "3")
        assert runtime.effective_cpu_count() == 3

    def test_invalid_override_falls_back_to_affinity(self, monkeypatch):
        monkeypatch.setenv("REPRO_TUNE_CPUS", "zero")
        assert runtime.effective_cpu_count() >= 1
        monkeypatch.setenv("REPRO_TUNE_CPUS", "-2")
        assert runtime.effective_cpu_count() >= 1

    def test_pool_pins_worker_key_to_router_view(self, compiled, monkeypatch):
        """The pool passes the router's *resolved* CPU count into each
        worker's REPRO_TUNE_CPUS, so a worker re-running
        effective_cpu_count() can never key a different tuning-cache
        entry than the router that spawned it."""
        monkeypatch.setenv("REPRO_TUNE_CPUS", "5")
        with WorkerPool(compiled, 1, ring_bytes=1 << 21) as pool:
            pool.warmup([(1, 3, 16, 16)])
            # The router resolved 5; the worker was handed that literal.
            assert runtime.effective_cpu_count() == 5
            assert pool._workers[0].process.is_alive()
