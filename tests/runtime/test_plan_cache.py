"""Plan-cache hit/invalidation and EncodedLayer gather-plan caching tests."""

import numpy as np
import pytest

from repro.core import SPMCodebook, encode_layer, enumerate_patterns, project_to_patterns
from repro.runtime import ExecutionPlan, PlanCache, dispatch


def make_encoded(rng, n=2, shape=(8, 4, 3, 3), num_patterns=4):
    patterns = enumerate_patterns(n)[:num_patterns]
    weight = project_to_patterns(rng.normal(size=shape), patterns)
    return weight, encode_layer(weight, SPMCodebook(patterns))


class TestPlanCache:
    def test_repeated_dispatch_hits(self):
        rng = np.random.default_rng(0)
        weight = rng.normal(size=(8, 4, 3, 3))
        cache = PlanCache()
        for _ in range(5):
            dispatch(rng.normal(size=(2, 4, 8, 8)), weight, padding=1, cache=cache)
        assert cache.stats.misses == 1
        assert cache.stats.hits == 4
        assert len(cache) == 1

    def test_distinct_geometry_distinct_plans(self):
        rng = np.random.default_rng(1)
        weight = rng.normal(size=(8, 4, 3, 3))
        cache = PlanCache()
        dispatch(rng.normal(size=(1, 4, 8, 8)), weight, padding=1, cache=cache)
        dispatch(rng.normal(size=(1, 4, 8, 8)), weight, padding=0, cache=cache)
        dispatch(rng.normal(size=(1, 4, 10, 10)), weight, padding=1, cache=cache)
        dispatch(rng.normal(size=(2, 4, 8, 8)), weight, padding=1, cache=cache)
        assert cache.stats.misses == 4
        assert cache.stats.hits == 0

    def test_backend_is_part_of_the_key(self):
        rng = np.random.default_rng(2)
        weight = rng.normal(size=(8, 4, 3, 3))
        x = rng.normal(size=(1, 4, 8, 8))
        cache = PlanCache()
        dispatch(x, weight, padding=1, backend="dense", cache=cache)
        dispatch(x, weight, padding=1, backend="tiled", cache=cache)
        assert cache.stats.misses == 2

    def test_invalidate_and_clear(self):
        rng = np.random.default_rng(3)
        weight = rng.normal(size=(8, 4, 3, 3))
        x = rng.normal(size=(1, 4, 8, 8))
        cache = PlanCache()
        dispatch(x, weight, padding=1, cache=cache)
        (key,) = list(cache._plans)
        assert cache.invalidate(key)
        assert not cache.invalidate(key)  # already gone
        dispatch(x, weight, padding=1, cache=cache)
        assert cache.stats.misses == 2
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.lookups == 0

    def test_lru_eviction(self):
        rng = np.random.default_rng(4)
        weight = rng.normal(size=(4, 2, 3, 3))
        cache = PlanCache(maxsize=2)
        for h in (6, 7, 8):
            dispatch(rng.normal(size=(1, 2, h, h)), weight, padding=1, cache=cache)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        # Oldest geometry (h=6) was evicted: dispatching it misses again.
        dispatch(rng.normal(size=(1, 2, 6, 6)), weight, padding=1, cache=cache)
        assert cache.stats.misses == 4

    def test_bytes_tracked_on_add_invalidate_clear(self):
        rng = np.random.default_rng(5)
        weight = rng.normal(size=(8, 4, 3, 3))
        cache = PlanCache()
        assert cache.nbytes == 0
        dispatch(rng.normal(size=(1, 4, 8, 8)), weight, padding=1, cache=cache)
        (key,) = list(cache._plans)
        per_plan = cache._plans[key].nbytes
        assert per_plan > 0
        assert cache.nbytes == per_plan
        dispatch(rng.normal(size=(1, 4, 10, 10)), weight, padding=1, cache=cache)
        assert cache.nbytes > per_plan
        cache.invalidate(key)
        assert cache.nbytes == cache.stats.bytes > 0
        freed = cache.clear()
        assert freed > 0
        assert cache.nbytes == 0

    def test_byte_budget_evicts_lru(self):
        rng = np.random.default_rng(6)
        weight = rng.normal(size=(4, 2, 3, 3))
        probe = PlanCache()
        dispatch(rng.normal(size=(1, 2, 8, 8)), weight, padding=1, cache=probe)
        one_plan = probe.nbytes
        # Budget for ~1.5 plans: every second distinct geometry must
        # evict the previous one, but the MRU plan always survives.
        cache = PlanCache(max_bytes=int(one_plan * 1.5))
        for h in (8, 9, 10):
            dispatch(rng.normal(size=(1, 2, h, h)), weight, padding=1, cache=cache)
        assert len(cache) == 1
        assert cache.stats.evictions == 2
        assert 0 < cache.nbytes <= int(one_plan * 1.5) + one_plan

    def test_plan_geometry(self):
        plan = ExecutionPlan.build(
            key=("k",), x_shape=(2, 3, 8, 8), weight_shape=(4, 3, 3, 3),
            stride=2, padding=1,
        )
        assert plan.out_hw == (4, 4)
        assert plan.windows == 2 * 4 * 4
        assert plan.im2col_elements == plan.windows * 3 * 9

    def test_collapsed_geometry_rejected(self):
        with pytest.raises(ValueError, match="collapses"):
            ExecutionPlan.build(
                key=("k",), x_shape=(1, 3, 2, 2), weight_shape=(4, 3, 3, 3),
                stride=1, padding=0,
            )


class TestEncodedLayerCaches:
    def test_gather_plan_computed_once(self):
        rng = np.random.default_rng(5)
        _, encoded = make_encoded(rng)
        plan_a = encoded.gather_plan()
        plan_b = encoded.gather_plan()
        assert plan_a is plan_b
        assert plan_a.col_idx().shape == (encoded.num_kernels, encoded.values.shape[1])

    def test_gather_plan_matches_codes(self):
        rng = np.random.default_rng(6)
        _, encoded = make_encoded(rng)
        plan = encoded.gather_plan()
        c_out, c_in, kh, kw = encoded.shape
        col_idx = plan.col_idx()
        for k in (0, encoded.num_kernels // 2, encoded.num_kernels - 1):
            positions = plan.positions_by_code[encoded.codes[k]]
            np.testing.assert_array_equal(
                col_idx[k], (k % c_in) * kh * kw + positions
            )

    def test_grouped_weight_matrix_cached_and_shaped(self):
        rng = np.random.default_rng(7)
        _, encoded = make_encoded(rng, num_patterns=4)
        grouped = encoded.grouped_weight_matrix()
        c_out, c_in, _, _ = encoded.shape
        assert grouped.shape == (4 * c_in * encoded.values.shape[1], c_out)
        assert encoded.grouped_weight_matrix() is grouped

    def test_decoded_weight_cached(self):
        rng = np.random.default_rng(10)
        weight, encoded = make_encoded(rng)
        decoded = encoded.decoded_weight()
        assert encoded.decoded_weight() is decoded
        np.testing.assert_array_equal(decoded, weight)

    def test_invalidate_caches(self):
        rng = np.random.default_rng(8)
        _, encoded = make_encoded(rng)
        plan = encoded.gather_plan()
        grouped = encoded.grouped_weight_matrix()
        decoded = encoded.decoded_weight()
        encoded.invalidate_caches()
        assert encoded.gather_plan() is not plan
        assert encoded.grouped_weight_matrix() is not grouped
        assert encoded.decoded_weight() is not decoded

    def test_stale_cache_detected_by_invalidation(self):
        """Mutating values + invalidating re-derives the grouped matrix."""
        rng = np.random.default_rng(9)
        _, encoded = make_encoded(rng)
        before = encoded.grouped_weight_matrix().copy()
        encoded.values[...] *= 2.0
        encoded.invalidate_caches()
        np.testing.assert_allclose(encoded.grouped_weight_matrix(), before * 2.0)
