"""Tests for the batched runtime.predict() inference API."""

import numpy as np
import pytest

from repro import nn, runtime
from repro.core import PCNNConfig, PCNNPruner
from repro.models import patternnet


@pytest.fixture(scope="module")
def model():
    return patternnet(channels=(8, 16), num_classes=4, rng=np.random.default_rng(0))


@pytest.fixture(scope="module")
def batch():
    return np.random.default_rng(1).normal(size=(6, 3, 12, 12))


class TestPredict:
    def test_matches_direct_forward(self, model, batch):
        direct = model.eval()(nn.Tensor(batch)).data
        out = runtime.predict(model, batch)
        np.testing.assert_allclose(out, direct, rtol=1e-9, atol=1e-12)

    @pytest.mark.parametrize("micro_batch", [1, 2, 4, 6, 100])
    def test_micro_batching_is_equivalent(self, model, batch, micro_batch):
        full = runtime.predict(model, batch)
        split = runtime.predict(model, batch, micro_batch=micro_batch)
        np.testing.assert_allclose(split, full, rtol=1e-9, atol=1e-12)

    def test_backend_override_is_equivalent_and_restored(self, model, batch):
        full = runtime.predict(model, batch)
        tiled = runtime.predict(model, batch, backend="tiled")
        np.testing.assert_allclose(tiled, full, rtol=1e-9, atol=1e-10)
        assert all(
            conv.backend is None
            for conv in model.modules()
            if isinstance(conv, nn.Conv2d)
        )

    def test_training_mode_restored(self, model, batch):
        model.train()
        runtime.predict(model, batch[:2])
        assert model.training
        model.eval()
        runtime.predict(model, batch[:2])
        assert not model.training

    def test_stats_populated(self, model, batch):
        stats = runtime.PredictStats()
        runtime.predict(model, batch, micro_batch=2, stats=stats)
        assert stats.batch == 6
        assert stats.chunks == 3
        assert len(stats.chunk_seconds) == 3
        assert stats.seconds > 0
        assert stats.images_per_second > 0

    def test_pruned_model(self, batch):
        pruned = patternnet(channels=(8, 16), num_classes=4, rng=np.random.default_rng(2))
        PCNNPruner(pruned, PCNNConfig.uniform(2, 2)).apply()
        direct = pruned.eval()(nn.Tensor(batch)).data
        out = runtime.predict(pruned, batch, micro_batch=3)
        np.testing.assert_allclose(out, direct, rtol=1e-9, atol=1e-12)

    def test_pruned_model_with_attached_encodings(self, batch):
        """attach_encodings() routes pruned convs through the pattern
        backend on the fast path — and forcing it explicitly works too."""
        pruned = patternnet(channels=(8, 16), num_classes=4, rng=np.random.default_rng(3))
        pruner = PCNNPruner(pruned, PCNNConfig.uniform(2, 2))
        pruner.apply()
        reference = runtime.predict(pruned, batch)  # dense weights, no encoding
        encoded = pruner.attach_encodings()
        assert set(encoded) == {name for name, _ in pruner.layers}
        auto = runtime.predict(pruned, batch)
        forced = runtime.predict(pruned, batch, backend="pattern")
        np.testing.assert_allclose(auto, reference, rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(forced, reference, rtol=1e-9, atol=1e-12)

    def test_attach_encoding_validates_and_clears(self):
        conv = nn.Conv2d(3, 4, kernel_size=3, rng=np.random.default_rng(4))
        with pytest.raises(ValueError, match="encoding shape"):
            from repro.core import SPMCodebook, encode_layer, enumerate_patterns

            wrong = encode_layer(
                np.zeros((4, 2, 3, 3)), SPMCodebook(enumerate_patterns(2)[:2])
            )
            conv.attach_encoding(wrong)
        pruned = patternnet(channels=(8,), num_classes=2, rng=np.random.default_rng(5))
        pruner = PCNNPruner(pruned, PCNNConfig.uniform(2, 1))
        pruner.apply()
        pruner.attach_encodings()
        name, module = pruner.layers[0]
        assert module.encoded is not None
        # Re-masking invalidates the attached encoding.
        module.set_weight_mask(module.weight_mask)
        assert module.encoded is None

    def test_load_state_dict_drops_encoding(self, batch):
        pruned = patternnet(channels=(8,), num_classes=2, rng=np.random.default_rng(7))
        pruner = PCNNPruner(pruned, PCNNConfig.uniform(2, 1))
        pruner.apply()
        pruner.attach_encodings()
        name, module = pruner.layers[0]
        assert module.encoded is not None
        pruned.load_state_dict(pruned.state_dict())
        assert module.encoded is None

    def test_grad_mode_forward_drops_encoding(self, batch):
        """Training forwards clear the deployment encoding, so a later
        no-grad eval never computes from stale SPM values."""
        pruned = patternnet(channels=(8,), num_classes=2, rng=np.random.default_rng(6))
        pruner = PCNNPruner(pruned, PCNNConfig.uniform(2, 1))
        pruner.apply()
        pruner.attach_encodings()
        name, module = pruner.layers[0]
        pruned.train()(nn.Tensor(batch))  # gradient-mode forward
        assert module.encoded is None
        # Simulated fine-tune step: predict must see the new weights.
        module.weight.data[...] *= 2.0
        direct = pruned.eval()(nn.Tensor(batch)).data
        out = runtime.predict(pruned, batch)
        np.testing.assert_allclose(out, direct, rtol=1e-9, atol=1e-12)

    def test_plan_cache_reused_across_chunks(self, model, batch):
        runtime.default_cache.clear()
        runtime.predict(model, batch, micro_batch=2)
        stats = runtime.default_cache.stats
        # 3 equal chunks x 2 conv layers: first chunk plans, rest hit.
        assert stats.misses == 2
        assert stats.hits == 4

    def test_bad_inputs_rejected(self, model):
        with pytest.raises(ValueError, match="micro_batch"):
            runtime.predict(model, np.zeros((2, 3, 12, 12)), micro_batch=0)
        with pytest.raises(ValueError, match="N, C, H, W"):
            runtime.predict(model, np.zeros((3, 12, 12)))


class TestEmptyBatch:
    """A batcher flush / drained queue legitimately produces N=0."""

    def test_eager_empty_batch_shape_and_dtype(self, model):
        out = runtime.predict(model, np.zeros((0, 3, 12, 12)))
        assert out.shape == (0, 4)
        assert out.dtype == np.float64

    def test_compiled_empty_batch_shape_and_dtype(self, model):
        compiled = runtime.compile_model(model)
        out = runtime.predict(compiled, np.zeros((0, 3, 12, 12)))
        assert out.shape == (0, 4)
        assert out.dtype == np.float32

    def test_empty_batch_concatenates_with_real_outputs(self, model, batch):
        """The (0, ...) result is shape-compatible with real outputs."""
        empty = runtime.predict(model, batch[:0])
        full = runtime.predict(model, batch)
        merged = np.concatenate([empty, full])
        np.testing.assert_array_equal(merged, full)

    def test_empty_batch_stats(self, model):
        stats = runtime.PredictStats()
        out = runtime.predict(model, np.zeros((0, 3, 12, 12)), stats=stats)
        assert out.shape[0] == 0
        assert stats.batch == 0
        assert stats.chunks == 0
        assert stats.chunk_seconds == []

    def test_empty_batch_restores_training_mode(self, model):
        model.train()
        runtime.predict(model, np.zeros((0, 3, 12, 12)))
        assert model.training
        model.eval()

    def test_empty_batch_probe_is_memoized(self):
        """Repeated empty calls answer from the cached geometry instead
        of re-running the one-image probe forward."""
        m = patternnet(channels=(8,), num_classes=2, rng=np.random.default_rng(42))
        runtime.predict(m, np.zeros((0, 3, 12, 12)))  # probe forward runs once
        runtime.default_cache.clear()
        out = runtime.predict(m, np.zeros((0, 3, 12, 12)))
        assert out.shape == (0, 2)
        # An eager forward would have gone through the engine (and the
        # default plan cache); zero lookups means no forward ran.
        assert runtime.default_cache.stats.lookups == 0

    def test_empty_batch_compile_flag_keeps_compiled_dtype(self):
        m = patternnet(channels=(8,), num_classes=2, rng=np.random.default_rng(43))
        out = runtime.predict(m, np.zeros((0, 3, 12, 12)), compile=True)
        assert out.shape == (0, 2)
        assert out.dtype == np.float32

    def test_empty_batch_compiled_answers_from_metadata(self, monkeypatch):
        """A CompiledModel that has seen the geometry derives the empty
        result from recorded metadata — no probe forward at all."""
        import importlib

        predict_mod = importlib.import_module("repro.runtime.predict")
        m = patternnet(channels=(8,), num_classes=2, rng=np.random.default_rng(44))
        compiled = runtime.compile_model(m)
        compiled(np.zeros((1, 3, 12, 12)))  # record output geometry
        monkeypatch.setattr(
            predict_mod,
            "_probe_output",
            lambda *a, **k: pytest.fail("probe forward ran for an empty batch"),
        )
        out = runtime.predict(compiled, np.zeros((0, 3, 12, 12)))
        assert out.shape == (0, 2)
        assert out.dtype == np.float32


class TestRaggedChunks:
    def test_compiled_ragged_tail_is_equivalent(self, model, batch):
        compiled = runtime.compile_model(model)
        full = runtime.predict(compiled, batch)
        ragged = runtime.predict(compiled, batch, micro_batch=4)  # 4 + 2
        np.testing.assert_allclose(ragged, full, rtol=1e-6, atol=1e-7)

    def test_compiled_ragged_tail_reuses_chunk_geometry(self, model, batch):
        """The padded tail runs through the same plans/arena buffers as
        the full chunks — no second geometry set for the tail size."""
        compiled = runtime.compile_model(model)
        runtime.predict(compiled, batch, micro_batch=4)
        batch_sizes = {
            key[1][0]
            for key in compiled.plans._plans
            if isinstance(key[1], tuple)
        }
        assert batch_sizes == {4}

    def test_eager_ragged_tail_stays_exact(self, model, batch):
        full = runtime.predict(model, batch)
        ragged = runtime.predict(model, batch, micro_batch=4)
        np.testing.assert_allclose(ragged, full, rtol=1e-12, atol=0)

    def test_ragged_tail_with_workers(self, model, batch):
        compiled = runtime.compile_model(model)
        full = runtime.predict(compiled, batch)
        out = runtime.predict(compiled, batch, micro_batch=4, workers=2)
        np.testing.assert_allclose(out, full, rtol=1e-6, atol=1e-7)


class TestExecutorSeam:
    """predict(executor=) uses the caller's pool instead of the shared one."""

    def test_external_executor_is_used_and_not_shut_down(self, model, batch):
        from concurrent.futures import ThreadPoolExecutor

        reference = runtime.predict(model, batch)
        ran_on = set()

        class RecordingPool(ThreadPoolExecutor):
            def map(self, fn, *iterables):
                ran_on.add("external")
                return super().map(fn, *iterables)

        with RecordingPool(max_workers=2) as pool:
            out = runtime.predict(
                model, batch, micro_batch=2, workers=2, executor=pool
            )
            np.testing.assert_allclose(out, reference, rtol=1e-9, atol=1e-12)
            assert ran_on == {"external"}
            # The pool stays usable for the caller afterwards.
            assert list(pool.map(lambda v: v + 1, [1])) == [2]

    def test_sequential_path_ignores_executor(self, model, batch):
        # workers<=1 never touches the executor at all.
        sentinel = object()
        out = runtime.predict(model, batch, executor=sentinel)
        np.testing.assert_allclose(
            out, runtime.predict(model, batch), rtol=1e-12, atol=1e-12
        )
