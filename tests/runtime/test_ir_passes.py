"""Tests for the compile graph IR and the pass manager.

Covers the PR-5 restructuring: ``compile_model`` output must be produced
by the PassManager (per-pass effects independently observable), the
graph must verify its structural invariants (and fail loudly on
malformed graphs), pass-ordering constraints must be enforced at
manager construction, and ResNet18's residual paths must lower through
the pass pipeline with per-pass golden ``describe()`` output.
"""

import numpy as np
import pytest

from repro import nn, runtime
from repro.runtime.compile import (
    BatchNormOp,
    ConvOp,
    FlattenOp,
    MaxPoolOp,
    ReluOp,
    ResidualOp,
    ToNCHW,
)
from repro.runtime.ir import Graph, GraphError, TensorMeta
from repro.runtime.passes import PASS_REGISTRY, CompileContext, PassManager
from repro.models import resnet18_cifar


def small_model(rng_seed=0):
    rng = np.random.default_rng(rng_seed)
    return nn.Sequential(
        nn.Conv2d(3, 4, kernel_size=3, padding=1, rng=rng),
        nn.BatchNorm2d(4),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Flatten(),
        nn.Linear(4 * 4 * 4, 3, rng=rng),
        nn.ReLU(),
    )


def run_passes(model, names):
    """Run a prefix of the standard pipeline, returning (graph, ctx)."""
    ctx = CompileContext(model=model, dtype=np.dtype(np.float32))
    graph = Graph(TensorMeta("nchw"), name=type(model).__name__)
    PassManager([PASS_REGISTRY[n] for n in names]).run(graph, ctx)
    return graph, ctx


class TestGraphVerify:
    def test_duplicate_tags_rejected(self):
        graph = Graph(TensorMeta("nhwc"))
        graph.append(ReluOp(tag="x"))
        graph.append(ReluOp(tag="x"))
        with pytest.raises(GraphError, match="duplicate arena tag"):
            graph.verify()

    def test_spatial_op_after_flat_edge_rejected(self):
        graph = Graph(TensorMeta("nhwc"))
        graph.append(FlattenOp(tag="f"))
        graph.append(MaxPoolOp(kernel=2, stride=2, padding=0, tag="p"))
        with pytest.raises(GraphError, match="expects 'nhwc'"):
            graph.verify()

    def test_wrong_entry_layout_rejected(self):
        graph = Graph(TensorMeta("nhwc"))
        graph.append(ToNCHW(tag="c"))
        graph.append(MaxPoolOp(kernel=2, stride=2, padding=0, tag="p"))
        with pytest.raises(GraphError, match="nchw"):
            graph.verify()

    def test_broken_producer_links_rejected(self):
        graph = Graph(TensorMeta("nhwc"))
        graph.append(ReluOp(tag="a"))
        node = graph.append(ReluOp(tag="b"))
        node.inputs = []  # sever the chain behind the graph's back
        with pytest.raises(GraphError, match="broken"):
            graph.verify()

    def test_subgraph_failures_are_attributed(self):
        body = Graph(TensorMeta("nhwc"), name="body")
        body.append(ReluOp(tag="dup"))
        shortcut = Graph(TensorMeta("nhwc"), name="shortcut")
        graph = Graph(TensorMeta("nhwc"))
        node = graph.append(
            ResidualOp(body_graph=body, shortcut_graph=shortcut, relu=True, tag="dup")
        )
        node.subgraphs.update(body=body, shortcut=shortcut)
        with pytest.raises(GraphError, match="duplicate arena tag"):
            graph.verify()

    def test_mutators_keep_links_consistent(self):
        graph = Graph(TensorMeta("nhwc"))
        a = graph.append(ReluOp(tag="a"))
        c = graph.append(ReluOp(tag="c"))
        b = graph.insert_after(a, ReluOp(tag="b"))
        assert [n.tag for n in graph.nodes] == ["a", "b", "c"]
        assert c.inputs == [b] and a.consumers == [b]
        graph.remove(b)
        assert c.inputs == [a] and a.consumers == [c]
        graph.verify()

    def test_op_list_cache_invalidated_on_mutation(self):
        graph = Graph(TensorMeta("nhwc"))
        graph.append(ReluOp(tag="a"))
        first = graph.op_list()
        assert graph.op_list() is first  # cached
        graph.append(ReluOp(tag="b"))
        assert len(graph.op_list()) == 2


class TestPassOrdering:
    """The manager rejects pipelines that violate pass constraints."""

    def test_quantize_before_fold_bn_rejected(self):
        with pytest.raises(ValueError, match="after 'fold_bn'"):
            PassManager(["lower", "quantize", "fold_bn", "finalize"])

    def test_link_halos_before_fuse_epilogues_rejected(self):
        with pytest.raises(ValueError, match="link_halos"):
            PassManager(["lower", "link_halos", "fuse_epilogues", "finalize"])

    def test_tune_after_quantize_rejected(self):
        with pytest.raises(ValueError, match="pass ordering violation"):
            PassManager(
                ["lower", "fold_bn", "fuse_epilogues", "quantize", "tune", "finalize"]
            )

    def test_lower_must_run_first(self):
        with pytest.raises(ValueError, match="pass ordering violation"):
            PassManager(["fold_bn", "lower", "finalize"])
        with pytest.raises(ValueError, match="'lower' must run first"):
            PassManager(["assign_arenas", "lower", "finalize"])

    def test_finalize_must_run_last(self):
        from repro.runtime.passes import Pass

        with pytest.raises(ValueError, match="pass ordering violation"):
            PassManager(["lower", "finalize", "fold_bn"])
        noop = Pass(name="noop", fn=lambda graph, ctx: None)
        with pytest.raises(ValueError, match="'finalize' must run last"):
            PassManager([PASS_REGISTRY["lower"], PASS_REGISTRY["finalize"], noop])

    def test_unknown_and_duplicate_passes_rejected(self):
        with pytest.raises(ValueError, match="unknown pass"):
            PassManager(["lower", "does_not_exist"])
        with pytest.raises(ValueError, match="duplicate pass"):
            PassManager(["lower", "fold_bn", "fold_bn"])

    def test_default_pipeline_is_valid_and_ordered(self):
        from repro.runtime.passes import default_passes

        ctx = CompileContext(model=None, tune="cost", quantize=object())
        names = [p.name for p in default_passes(ctx)]
        assert names == [
            "lower",
            "fold_bn",
            "fuse_epilogues",
            "winograd",
            "tune",
            "quantize",
            "link_halos",
            "assign_arenas",
            "finalize",
        ]
        PassManager(default_passes(ctx))  # construction validates
        ctx_plain = CompileContext(model=None, winograd=False)
        assert [p.name for p in default_passes(ctx_plain)] == [
            "lower",
            "fold_bn",
            "fuse_epilogues",
            "link_halos",
            "assign_arenas",
            "finalize",
        ]


class TestPerPassEffects:
    """Each pass's effect is observable in isolation (golden output)."""

    def test_lower_emits_unfused_nodes(self):
        graph, _ = run_passes(small_model(), ["lower"])
        described = [op.describe() for op in graph.op_list()]
        assert described == [
            "to-nhwc",
            "conv+bias",
            "batchnorm",
            "relu",
            "maxpool2",
            "flatten",
            "linear",
            "relu",
        ]

    def test_fold_bn_removes_bn_and_keeps_bias(self):
        graph, _ = run_passes(small_model(), ["lower", "fold_bn"])
        described = [op.describe() for op in graph.op_list()]
        assert "batchnorm" not in described
        assert described[1] == "conv+bias"

    def test_fold_bn_matches_eager_math(self):
        model = small_model()
        x = np.random.default_rng(1).normal(size=(2, 3, 8, 8))
        reference = runtime.predict(model, x)
        graph, _ = run_passes(
            model,
            ["lower", "fold_bn", "fuse_epilogues", "link_halos", "assign_arenas",
             "finalize"],
        )
        compiled = runtime.CompiledModel(graph, dtype=np.float32)
        np.testing.assert_allclose(compiled(x), reference, rtol=1e-4, atol=1e-5)

    def test_fuse_epilogues_absorbs_relus(self):
        graph, _ = run_passes(small_model(), ["lower", "fold_bn", "fuse_epilogues"])
        described = [op.describe() for op in graph.op_list()]
        assert described == [
            "to-nhwc",
            "conv+bias+relu",
            "maxpool2",
            "flatten",
            "linear+relu",
        ]

    def test_link_halos_connects_producers(self):
        rng = np.random.default_rng(2)
        model = nn.Sequential(
            nn.Conv2d(3, 4, kernel_size=3, padding=1, rng=rng),
            nn.Conv2d(4, 4, kernel_size=3, padding=1, rng=rng),
        )
        graph, _ = run_passes(
            model, ["lower", "fold_bn", "fuse_epilogues", "link_halos"]
        )
        convs = [op for op in graph.op_list() if isinstance(op, ConvOp)]
        assert convs[0].halo == (convs[1].tag, 1)
        assert convs[1].halo is None

    def test_finalize_prepares_and_appends_exit_conversion(self):
        graph, ctx = run_passes(
            small_model(),
            ["lower", "fold_bn", "fuse_epilogues", "link_halos", "assign_arenas",
             "finalize"],
        )
        conv = next(op for op in graph.op_list() if isinstance(op, ConvOp))
        assert conv.weight_t is not None and conv.bias_rows == 1
        # Head is flat, so no ToNCHW exit; a features-only model gets one.
        assert graph.out_meta.layout == "flat"
        features = nn.Sequential(
            nn.Conv2d(3, 4, kernel_size=3, padding=1, rng=np.random.default_rng(3))
        )
        fgraph, _ = run_passes(
            features,
            ["lower", "fold_bn", "fuse_epilogues", "link_halos", "assign_arenas",
             "finalize"],
        )
        assert isinstance(fgraph.op_list()[-1], ToNCHW)
        assert fgraph.out_meta.layout == "nchw"


class TestResNetResidualPipeline:
    """ResNet18 residual paths under the pass pipeline."""

    @pytest.fixture(scope="class")
    def compiled(self):
        return runtime.compile_model(resnet18_cifar(rng=np.random.default_rng(4)))

    def test_residual_nodes_carry_subgraphs(self, compiled):
        residual_nodes = [
            node for node in compiled.graph
            if isinstance(node.op, ResidualOp)
        ]
        assert len(residual_nodes) == 8
        for node in residual_nodes:
            assert set(node.subgraphs) == {"body", "shortcut"}
            node.subgraphs["body"].verify()
            node.subgraphs["shortcut"].verify()

    def test_all_batchnorms_fold_inside_residuals(self, compiled):
        # 1 stem + 16 block + 3 downsample BNs all fold into their convs.
        fold_record = next(r for r in compiled.passes if r.name == "fold_bn")
        assert fold_record.note == "folded 20 batchnorm(s)"
        assert not any(
            isinstance(node.op, BatchNormOp) for node in compiled.graph.walk()
        )

    def test_residual_describe_golden(self, compiled):
        blocks = [op for op in compiled.ops if isinstance(op, ResidualOp)]
        # Identity block: two folded convs on the body, empty shortcut.
        assert blocks[0].describe() == "residual[conv+bias+relu conv+bias | identity]"
        # Downsample block: 1x1 projection conv (+folded BN) shortcut.
        assert blocks[2].describe() == (
            "residual[conv+bias+relu conv+bias | conv+bias]"
        )

    def test_pass_trace_in_describe(self, compiled):
        text = compiled.describe()
        assert "passes: lower -> fold_bn -> fuse_epilogues" in text
        assert "fold_bn: folded 20 batchnorm(s)" in text

    def test_residual_equivalence_still_holds(self, compiled):
        model = resnet18_cifar(rng=np.random.default_rng(4))
        x = np.random.default_rng(5).normal(size=(2, 3, 32, 32))
        reference = runtime.predict(model, x)
        np.testing.assert_allclose(compiled(x), reference, rtol=1e-4, atol=1e-5)

    def test_halos_link_inside_residual_bodies(self, compiled):
        block = next(op for op in compiled.ops if isinstance(op, ResidualOp))
        body_convs = [op for op in block.body if isinstance(op, ConvOp)]
        assert body_convs[0].halo == (body_convs[1].tag, 1)


class TestCompiledModelSurface:
    def test_compile_model_output_is_pass_managed(self):
        compiled = runtime.compile_model(small_model())
        assert compiled.graph is not None
        assert [r.name for r in compiled.passes] == [
            "lower",
            "fold_bn",
            "fuse_epilogues",
            "winograd",
            "link_halos",
            "assign_arenas",
            "finalize",
        ]
        compiled.graph.verify()
        assert compiled.ops == compiled.graph.op_list()

    def test_custom_pass_list_respected(self):
        # Skipping fuse_epilogues leaves standalone ReLU ops behind.
        compiled_ops = runtime.compile_model(
            small_model(),
            passes=["lower", "fold_bn", "link_halos", "assign_arenas", "finalize"],
        ).ops
        assert any(op.describe() == "relu" for op in compiled_ops)
