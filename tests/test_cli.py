"""Tests for the pcnn-repro command-line interface."""

import pytest

from repro.cli import main
from repro.core import DeploymentBundle


class TestCLI:
    def test_report(self, capsys):
        assert main(["report", "--model", "patternnet", "--n", "2"]) == 0
        out = capsys.readouterr().out
        assert "Compr (weight)" in out
        assert "4.5x" in out

    def test_report_layers_string(self, capsys):
        assert main(["report", "--model", "patternnet", "--layers", "2-1-1"]) == 0
        out = capsys.readouterr().out
        assert "n=2-1-1" in out

    def test_sweep(self, capsys):
        assert main(["sweep", "--model", "patternnet"]) == 0
        out = capsys.readouterr().out
        assert "n = 4" in out and "n = 1" in out

    def test_speedup(self, capsys):
        assert main(["speedup", "--model", "patternnet", "--n", "1"]) == 0
        out = capsys.readouterr().out
        assert "9.00x" in out
        assert "TOPS/W" in out

    def test_prune_writes_bundle(self, tmp_path, capsys):
        out_path = str(tmp_path / "bundle.npz")
        assert main(
            ["prune", "--model", "patternnet", "--n", "2", "--out", out_path,
             "--quantize", "8"]
        ) == 0
        bundle = DeploymentBundle.load(out_path)
        assert len(bundle.layers) == 3
        assert all(layer.quantized for layer in bundle.layers.values())
        assert "bundle written" in capsys.readouterr().out

    def test_predict_dense(self, capsys):
        assert main(["predict", "--model", "patternnet", "--batch", "4",
                     "--micro-batch", "2", "--repeat", "1"]) == 0
        out = capsys.readouterr().out
        assert "runtime.predict" in out
        assert "output shape: (4, 10)" in out
        assert "hits" in out

    def test_predict_pruned_with_backend(self, capsys):
        assert main(["predict", "--model", "patternnet", "--n", "2",
                     "--batch", "2", "--repeat", "1", "--backend", "dense"]) == 0
        out = capsys.readouterr().out
        assert "n=2-2-2" in out
        assert "dense" in out

    def test_predict_pruned_pattern_backend(self, capsys):
        """Pruned models carry SPM encodings, so forcing the pattern
        backend executes straight from sparse storage."""
        assert main(["predict", "--model", "patternnet", "--n", "2",
                     "--batch", "2", "--repeat", "1", "--backend", "pattern"]) == 0
        out = capsys.readouterr().out
        assert "pattern" in out
        assert "output shape: (2, 10)" in out

    def test_predict_bad_args_exit_cleanly(self, capsys):
        assert main(["predict", "--model", "patternnet", "--batch", "2",
                     "--repeat", "0"]) == 2
        assert main(["predict", "--model", "patternnet", "--batch", "2",
                     "--repeat", "1", "--backend", "nope"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err

    def test_serve_builds_warm_server(self, tmp_path):
        """The serve subcommand's builder stands up a warm, batched
        server (the blocking accept loop itself is exercised in
        tests/serving/test_http.py)."""
        import json
        import urllib.request

        import numpy as np

        from repro.cli import build_model_server, build_parser
        from repro.serving import ServingHTTPServer

        bundle_path = str(tmp_path / "bundle.npz")
        assert main(["prune", "--model", "patternnet", "--n", "2",
                     "--patterns", "4", "--out", bundle_path]) == 0
        args = build_parser().parse_args(
            ["serve", "--model", "patternnet", "--bundle", bundle_path,
             "--max-batch", "4", "--max-latency-ms", "5", "--port", "0"]
        )
        server, served = build_model_server(args)
        assert served.source == "bundle"
        assert served.compiled is not None
        server.start()
        httpd = ServingHTTPServer(server, args.host, 0)
        httpd.serve_in_background()
        try:
            image = np.zeros((3, 16, 16)).tolist()
            request = urllib.request.Request(
                httpd.url + "/predict", data=json.dumps({"input": image}).encode()
            )
            with urllib.request.urlopen(request, timeout=30) as response:
                body = json.load(response)
            assert np.array(body["outputs"]).shape == (1, 10)
        finally:
            httpd.shutdown()
            httpd.server_close()
            server.stop()

    def test_serve_bad_args_exit_cleanly(self, capsys):
        assert main(["serve", "--model", "patternnet", "--max-batch", "0"]) == 2
        assert main(["serve", "--model", "patternnet", "--workers", "0"]) == 2
        assert main(["serve", "--model", "patternnet",
                     "--bundle", "/nonexistent/bundle.npz"]) == 2
        assert main(["serve", "--model", "patternnet", "--patterns", "8"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_serve_port_out_of_range_exits_cleanly(self, capsys):
        assert main(["serve", "--model", "patternnet", "--port", "70000"]) == 2
        assert "cannot bind" in capsys.readouterr().err

    def test_serve_list_models(self, capsys):
        assert main(["serve", "--list-models"]) == 0
        out = capsys.readouterr().out
        assert "patternnet" in out and "vgg16_cifar" in out and "3x32x32" in out

    def test_serve_port_in_use_exits_cleanly(self, capsys):
        import socket

        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        port = blocker.getsockname()[1]
        try:
            assert main(["serve", "--model", "patternnet",
                         "--port", str(port)]) == 2
            assert "cannot bind" in capsys.readouterr().err
        finally:
            blocker.close()

    def test_chip(self, capsys):
        assert main(["chip"]) == 0
        out = capsys.readouterr().out
        assert "Pattern SRAM" in out
        assert "8.00" in out

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            main(["report", "--model", "alexnet"])

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])
