"""Tests for shared utilities (RNG, timing)."""

import numpy as np

from repro.utils import Timer, seeded_rng, spawn_rngs


class TestRng:
    def test_seeded_rng_deterministic(self):
        a = seeded_rng(42).normal(size=5)
        b = seeded_rng(42).normal(size=5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = seeded_rng(1).normal(size=5)
        b = seeded_rng(2).normal(size=5)
        assert not np.array_equal(a, b)

    def test_spawn_rngs_independent(self):
        rngs = spawn_rngs(0, 3)
        assert len(rngs) == 3
        draws = [rng.normal(size=4) for rng in rngs]
        assert not np.array_equal(draws[0], draws[1])
        assert not np.array_equal(draws[1], draws[2])

    def test_spawn_deterministic(self):
        a = [rng.normal() for rng in spawn_rngs(7, 2)]
        b = [rng.normal() for rng in spawn_rngs(7, 2)]
        assert a == b


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            sum(range(10000))
        assert t.elapsed > 0.0

    def test_reusable(self):
        t = Timer()
        with t:
            pass
        first = t.elapsed
        with t:
            sum(range(100000))
        assert t.elapsed >= 0.0 and t.elapsed != first or t.elapsed >= first
