"""Tests for the bit-accurate int8 MAC datapath."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import accumulate_width_bits, int8_conv2d, int8_mac, requantize
from repro.core import quantize_per_kernel, quantize_symmetric
from repro.nn import Tensor
from repro.nn.functional import conv2d


class TestAccumulatorWidth:
    def test_paper_worst_case_fits_32_bits(self):
        """9 positions x 512 channels of int8 products fit in 32 bits."""
        assert accumulate_width_bits(9 * 512) <= 32

    def test_width_grows_with_products(self):
        assert accumulate_width_bits(2) < accumulate_width_bits(1 << 20)

    def test_minimum_width(self):
        assert accumulate_width_bits(1) == 16


class TestInt8Mac:
    def test_exact_integer_dot(self):
        w = np.array([127, -128, 5], dtype=np.int8)
        a = np.array([127, 127, -3], dtype=np.int8)
        result = int8_mac(w, a)
        assert result == 127 * 127 - 128 * 127 - 15

    def test_no_overflow_at_scale(self):
        rng = np.random.default_rng(0)
        w = rng.integers(-127, 128, size=9 * 512)
        a = rng.integers(-127, 128, size=9 * 512)
        exact = int(np.sum(w.astype(object) * a.astype(object)))
        assert int8_mac(w, a) == exact

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=25)
    def test_property_batched_rows(self, seed):
        rng = np.random.default_rng(seed)
        w = rng.integers(-127, 128, size=(5, 16))
        a = rng.integers(-127, 128, size=(5, 16))
        out = int8_mac(w, a)
        np.testing.assert_array_equal(out, (w.astype(np.int64) * a).sum(axis=1))


class TestRequantize:
    def test_scale_folding(self):
        acc = np.array([100, -50])
        out = requantize(acc, scale_product=0.01)
        np.testing.assert_allclose(out, [1.0, -0.5])

    def test_output_requantization_bounds_error(self):
        rng = np.random.default_rng(1)
        acc = rng.integers(-1000, 1000, size=100)
        out = requantize(acc, 0.01, out_bits=8)
        exact = acc * 0.01
        step = np.abs(exact).max() / 127
        assert np.abs(out - exact).max() <= step / 2 + 1e-12


class TestInt8Conv:
    def test_equals_float_conv_of_dequantized_operands(self):
        """The integer path introduces zero additional error."""
        rng = np.random.default_rng(2)
        x = rng.normal(size=(1, 3, 6, 6))
        w = rng.normal(size=(4, 3, 3, 3))
        x_q = quantize_symmetric(x, bits=8)
        w_q = quantize_symmetric(w, bits=8)
        integer_out = int8_conv2d(x_q, w_q, x.shape, w.shape, padding=1)
        float_out = conv2d(
            Tensor(x_q.dequantize()), Tensor(w_q.dequantize()), padding=1
        ).data
        np.testing.assert_allclose(integer_out, float_out, rtol=1e-12, atol=1e-12)

    def test_close_to_full_precision(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(1, 2, 5, 5))
        w = rng.normal(size=(2, 2, 3, 3))
        out = int8_conv2d(
            quantize_symmetric(x), quantize_symmetric(w), x.shape, w.shape, padding=1
        )
        exact = conv2d(Tensor(x), Tensor(w), padding=1).data
        rel = np.linalg.norm(out - exact) / np.linalg.norm(exact)
        assert rel < 0.05

    def test_rejects_per_kernel_scales(self):
        rng = np.random.default_rng(4)
        w = rng.normal(size=(2, 2, 3, 3))
        w_q = quantize_per_kernel(w.reshape(4, 9))
        x = rng.normal(size=(1, 2, 5, 5))
        with pytest.raises(ValueError):
            int8_conv2d(quantize_symmetric(x), w_q, x.shape, w.shape)

    def test_channel_mismatch(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=(1, 3, 5, 5))
        w = rng.normal(size=(2, 4, 3, 3))
        with pytest.raises(ValueError):
            int8_conv2d(
                quantize_symmetric(x), quantize_symmetric(w), x.shape, w.shape
            )
