"""Tests for the memory system (Fig. 3) and the SPM decoder."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import (
    ArchConfig,
    KernelRegisterFile,
    SPMDecoder,
    fetch_geometry,
    pack_nonzero_sequences,
    sram_overheads,
    unpack_nonzero_sequences,
)
from repro.core import SPMCodebook, enumerate_patterns


class TestArchConfig:
    def test_paper_defaults(self):
        arch = ArchConfig()
        assert arch.total_macs == 256
        assert arch.peak_ops_per_second == pytest.approx(2 * 256 * 300e6)
        assert arch.kernel_area == 9

    def test_weight_sram_capacity_paper(self):
        """Sec. IV-E: 128 KB holds 32768 kernels of 4 non-zeros at 8 bit."""
        arch = ArchConfig()
        assert arch.kernels_in_weight_sram(4) == 32768

    def test_validation(self):
        with pytest.raises(ValueError):
            ArchConfig(num_pes=0)
        with pytest.raises(ValueError):
            ArchConfig(activation_density=0.0)


class TestFetchGeometry:
    def test_paper_annotations(self):
        """Fig. 3b: n=2 -> 4 filters/fetch; n=3 -> 8 filters / 3 fetches;
        n=4 -> 2 filters/fetch."""
        assert fetch_geometry(2) == (4, 1)
        assert fetch_geometry(3) == (8, 3)
        assert fetch_geometry(4) == (2, 1)

    def test_other_sparsities(self):
        assert fetch_geometry(1) == (8, 1)
        assert fetch_geometry(8) == (1, 1)
        assert fetch_geometry(5) == (8, 5)

    def test_invalid(self):
        with pytest.raises(ValueError):
            fetch_geometry(0)


class TestPacking:
    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=(10, 3))
        packed = pack_nonzero_sequences(values)
        np.testing.assert_array_equal(unpack_nonzero_sequences(packed), values)

    def test_row_geometry(self):
        values = np.arange(8.0).reshape(4, 2)  # 4 kernels, n=2
        packed = pack_nonzero_sequences(values, fetch_width=8)
        assert packed.num_fetches == 1  # 4 filters per fetch (Fig. 3b case 1)
        np.testing.assert_array_equal(packed.rows[0], np.arange(8.0))

    def test_padding_accounting(self):
        values = np.ones((3, 3))  # 9 payload words -> 2 fetches of 8
        packed = pack_nonzero_sequences(values)
        assert packed.num_fetches == 2
        assert packed.payload_words == 9
        assert packed.padding_words == 7

    def test_kernel_locatable_by_arithmetic(self):
        """Equal-length sequences: kernel k starts at word k*n."""
        values = np.arange(12.0).reshape(4, 3)
        packed = pack_nonzero_sequences(values)
        flat = packed.rows.reshape(-1)
        for k in range(4):
            np.testing.assert_array_equal(flat[k * 3 : (k + 1) * 3], values[k])

    def test_bad_shape(self):
        with pytest.raises(ValueError):
            pack_nonzero_sequences(np.zeros(5))

    @given(
        st.integers(min_value=1, max_value=9),
        st.integers(min_value=1, max_value=40),
    )
    @settings(max_examples=30)
    def test_property_roundtrip(self, n, kernels):
        rng = np.random.default_rng(n * 100 + kernels)
        values = rng.normal(size=(kernels, n))
        packed = pack_nonzero_sequences(values)
        np.testing.assert_array_equal(unpack_nonzero_sequences(packed), values)


class TestKernelRegisterFile:
    def test_integral_storage_for_1_to_6(self):
        """Sec. III-A: 60 words integrally store kernels with 1..6 non-zeros."""
        rf = KernelRegisterFile(60)
        for n in range(1, 7):
            assert rf.padding_words(n) == 0
            assert rf.capacity_kernels(n) == 60 // n

    def test_padding_for_larger_n(self):
        rf = KernelRegisterFile(60)
        assert rf.padding_words(7) == 60 - 8 * 7  # 4 padded words
        assert rf.padding_words(9) == 60 - 6 * 9  # 6 padded words

    def test_load_and_fetch(self):
        rf = KernelRegisterFile(60)
        values = np.arange(20.0).reshape(5, 4)
        loaded = rf.load(values)
        assert loaded == 5
        np.testing.assert_array_equal(rf.kernel_sequence(2), values[2])
        assert rf.fetch(3, 1) == values[3, 1]

    def test_load_truncates_to_capacity(self):
        rf = KernelRegisterFile(12)
        values = np.ones((10, 4))
        assert rf.load(values) == 3

    def test_fetch_out_of_range(self):
        rf = KernelRegisterFile(60)
        rf.load(np.ones((2, 4)))
        with pytest.raises(IndexError):
            rf.kernel_sequence(2)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            KernelRegisterFile(0)


class TestSramOverheads:
    def test_paper_overhead_3_percent(self):
        """Sec. IV-E: 4 KB pattern SRAM / 128 KB weight SRAM = 3.1%."""
        info = sram_overheads(ArchConfig())
        assert info["index_overhead_fraction"] == pytest.approx(0.03125)

    def test_eie_comparison(self):
        """Paper: EIE needs 64 KB index SRAM to denote 128 K weights."""
        info = sram_overheads(ArchConfig(), n_nonzero=4)
        assert info["weights_capacity"] == 128 * 1024
        assert info["eie_index_bytes_required"] == 64 * 1024

    def test_spm_bits(self):
        info = sram_overheads(ArchConfig(), num_patterns=16)
        assert info["spm_bits_per_kernel"] == 4


class TestSPMDecoder:
    def make_decoder(self, n=4, count=16):
        return SPMDecoder(SPMCodebook(enumerate_patterns(n)[:count]))

    def test_decode_is_9bit_mask(self):
        decoder = self.make_decoder()
        mask = decoder.decode(3)
        assert mask.shape == (9,)
        assert set(np.unique(mask)).issubset({0, 1})
        assert mask.sum() == 4

    def test_decode_matches_codebook(self):
        decoder = self.make_decoder()
        for code in range(16):
            pattern = decoder.codebook.pattern(code)
            expected = [(pattern >> p) & 1 for p in range(9)]
            np.testing.assert_array_equal(decoder.decode(code), expected)

    def test_decode_batch(self):
        decoder = self.make_decoder()
        codes = np.array([0, 5, 5, 2])
        batch = decoder.decode_batch(codes)
        assert batch.shape == (4, 9)
        np.testing.assert_array_equal(batch[1], batch[2])

    def test_out_of_range(self):
        decoder = self.make_decoder(count=8)
        with pytest.raises(ValueError):
            decoder.decode(8)
        with pytest.raises(ValueError):
            decoder.decode_batch(np.array([0, 9]))

    def test_table_bits(self):
        decoder = self.make_decoder(count=16)
        assert decoder.table_bits == 16 * 9
