"""Tests for the layer/network simulators, energy model, EIE baseline, layout."""

import numpy as np
import pytest

from repro.arch import (
    PAPER_TECH,
    ArchConfig,
    ComponentBudget,
    ConvLayerSimulator,
    IrregularCycleModel,
    TechnologyProfile,
    area_bar_chart,
    efficiency_sweep,
    eie_index_sram_bytes,
    floorplan_ascii,
    simulate_network_analytic,
    tops_per_watt,
)
from repro.core import PCNNConfig, PCNNPruner, project_topn
from repro.models import patternnet, profile_model, resnet18_cifar, vgg16_cifar
from repro.nn import Tensor
from repro.nn.functional import conv2d


@pytest.fixture(scope="module")
def vgg_profile():
    return profile_model(vgg16_cifar(rng=np.random.default_rng(0)), (3, 32, 32))


class TestFunctionalEquivalence:
    """The simulator's datapath must compute real convolutions."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_sparse_conv_matches_nn(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(1, 3, 6, 6))
        x[x < 0] = 0.0  # post-ReLU activations (gives activation sparsity)
        weight = project_topn(rng.normal(size=(4, 3, 3, 3)), 4)
        sim = ConvLayerSimulator(ArchConfig(num_pes=4, macs_per_pe=4))
        result = sim.functional_forward(x, weight, stride=1, padding=1)
        reference = conv2d(Tensor(x), Tensor(weight), padding=1).data
        np.testing.assert_allclose(result.output, reference, rtol=1e-10, atol=1e-12)

    def test_dense_conv_matches_nn(self):
        rng = np.random.default_rng(3)
        x = np.abs(rng.normal(size=(1, 2, 5, 5)))
        weight = rng.normal(size=(2, 2, 3, 3))
        sim = ConvLayerSimulator(ArchConfig(num_pes=2, macs_per_pe=4))
        result = sim.functional_forward(x, weight, padding=1)
        reference = conv2d(Tensor(x), Tensor(weight), padding=1).data
        np.testing.assert_allclose(result.output, reference, rtol=1e-10)

    def test_strided_conv(self):
        rng = np.random.default_rng(4)
        x = np.abs(rng.normal(size=(1, 2, 8, 8)))
        weight = project_topn(rng.normal(size=(2, 2, 3, 3)), 2)
        sim = ConvLayerSimulator(ArchConfig(num_pes=2, macs_per_pe=4))
        result = sim.functional_forward(x, weight, stride=2, padding=1)
        reference = conv2d(Tensor(x), Tensor(weight), stride=2, padding=1).data
        np.testing.assert_allclose(result.output, reference, rtol=1e-10)

    def test_datapath_forward_matches_engine(self):
        """The explicit SPM-decode -> pointer -> PE path stays value-exact
        and cycle-identical to the vectorised functional_forward."""
        rng = np.random.default_rng(10)
        x = np.abs(rng.normal(size=(1, 2, 5, 5)))
        x[rng.random(x.shape) < 0.3] = 0.0
        weight = project_topn(rng.normal(size=(4, 2, 3, 3)), 3)
        sim = ConvLayerSimulator(ArchConfig(num_pes=4, macs_per_pe=4))
        datapath = sim.datapath_forward(x, weight, padding=1)
        functional = sim.functional_forward(x, weight, padding=1)
        np.testing.assert_allclose(datapath.output, functional.output, rtol=1e-10)
        assert datapath.stats.cycles == functional.stats.cycles
        assert datapath.stats.effectual_macs == functional.stats.effectual_macs

    def test_pruned_model_layer_through_simulator(self):
        """End-to-end: PCNN-pruned PatternNet layer == simulator output."""
        model = patternnet(channels=(4,), num_classes=2, rng=np.random.default_rng(5))
        PCNNPruner(model, PCNNConfig.uniform(2, 1)).apply()
        conv = model.conv_layers()[0][1]
        x = np.abs(np.random.default_rng(6).normal(size=(1, 3, 6, 6)))
        sim = ConvLayerSimulator(ArchConfig(num_pes=4, macs_per_pe=4))
        result = sim.functional_forward(x, conv.effective_weight(), padding=1)
        reference = conv2d(Tensor(x), Tensor(conv.effective_weight()), padding=1).data
        np.testing.assert_allclose(result.output, reference, rtol=1e-10)


class TestCycleModel:
    def test_cycle_count_agrees_with_functional(self):
        rng = np.random.default_rng(7)
        x = np.abs(rng.normal(size=(1, 2, 5, 5)))
        x[rng.random(x.shape) < 0.3] = 0.0
        weight = project_topn(rng.normal(size=(4, 2, 3, 3)), 3)
        arch = ArchConfig(num_pes=4, macs_per_pe=4)
        sim = ConvLayerSimulator(arch)
        functional = sim.functional_forward(x, weight, padding=1)
        counted = sim.cycle_count(x, (weight != 0).astype(float), padding=1)
        assert counted.stats.cycles == functional.stats.cycles
        assert counted.stats.effectual_macs == functional.stats.effectual_macs

    def test_fewer_nonzeros_fewer_cycles(self):
        rng = np.random.default_rng(8)
        x = np.abs(rng.normal(size=(1, 4, 8, 8)))
        arch = ArchConfig(num_pes=8, macs_per_pe=4)
        sim = ConvLayerSimulator(arch)
        cycles = []
        for n in (9, 4, 2, 1):
            weight = project_topn(rng.normal(size=(8, 4, 3, 3)), n)
            cycles.append(sim.cycle_count(x, (weight != 0).astype(float), padding=1).cycles)
        assert cycles[0] > cycles[1] > cycles[2] > cycles[3]

    def test_activation_sparsity_reduces_cycles(self):
        rng = np.random.default_rng(9)
        weight = project_topn(rng.normal(size=(8, 4, 3, 3)), 4)
        mask = (weight != 0).astype(float)
        arch = ArchConfig(num_pes=8, macs_per_pe=4)
        sim = ConvLayerSimulator(arch)
        dense_x = np.abs(rng.normal(size=(1, 4, 8, 8))) + 0.1
        sparse_x = dense_x.copy()
        sparse_x[rng.random(sparse_x.shape) < 0.5] = 0.0
        assert (
            sim.cycle_count(sparse_x, mask, padding=1).cycles
            < sim.cycle_count(dense_x, mask, padding=1).cycles
        )


class TestNetworkAnalytic:
    @pytest.mark.parametrize("n,paper", [(4, 2.3), (3, 3.1), (2, 4.5), (1, 9.0)])
    def test_vgg_speedups_section4e(self, vgg_profile, n, paper):
        """Sec. IV-E: 2.3x / 3.1x / 4.5x / 9.0x for n=4..1."""
        result = simulate_network_analytic(vgg_profile, PCNNConfig.uniform(n, 13))
        assert result.speedup == pytest.approx(9.0 / n, rel=1e-9)
        assert result.speedup == pytest.approx(paper, rel=0.05)

    def test_resnet_speedup_diluted_by_1x1(self):
        profile = profile_model(resnet18_cifar(rng=np.random.default_rng(0)), (3, 32, 32))
        result = simulate_network_analytic(profile, PCNNConfig.uniform(1, 17))
        assert 6.0 < result.speedup < 9.0

    def test_activation_density_cancels_in_speedup(self, vgg_profile):
        cfg = PCNNConfig.uniform(2, 13)
        a = simulate_network_analytic(vgg_profile, cfg, activation_density=1.0)
        b = simulate_network_analytic(vgg_profile, cfg, activation_density=0.5)
        assert a.speedup == pytest.approx(b.speedup)
        assert b.total_cycles == pytest.approx(a.total_cycles * 0.5)

    def test_per_layer_cycles_recorded(self, vgg_profile):
        result = simulate_network_analytic(vgg_profile, PCNNConfig.uniform(4, 13))
        assert len(result.layer_cycles) == 13
        assert all(c > 0 for c in result.layer_cycles.values())


class TestEnergyModel:
    def test_table9_totals(self):
        """Table IX: 8.00 mm^2, 48.7 mW overall."""
        assert PAPER_TECH.total_area_mm2 == pytest.approx(8.00)
        assert PAPER_TECH.total_power_mw == pytest.approx(48.7)

    @pytest.mark.parametrize(
        "name,area_share,power_share",
        [
            ("Data SRAM", 0.406, 0.282),
            ("Weight SRAM", 0.310, 0.321),
            ("Pattern SRAM", 0.024, 0.019),
            ("Register File", 0.198, 0.274),
            ("PE group", 0.062, 0.100),
        ],
    )
    def test_table9_shares(self, name, area_share, power_share):
        # abs=0.006 absorbs the paper's own rounding (its Register File row
        # prints 27.4% although 13.6/48.7 = 27.9%).
        assert PAPER_TECH.area_share(name) == pytest.approx(area_share, abs=0.002)
        assert PAPER_TECH.power_share(name) == pytest.approx(power_share, abs=0.006)

    def test_dense_tops_per_watt(self):
        """Sec. IV-E: 3.15 TOPS/W with no sparsity."""
        assert tops_per_watt() == pytest.approx(3.15, abs=0.01)

    def test_peak_tops_per_watt(self):
        """Sec. IV-E: 28.39 TOPS/W at 88.9% sparsity (9x effectual)."""
        assert tops_per_watt(effective_speedup=9.0) == pytest.approx(28.39, abs=0.05)

    def test_efficiency_sweep(self):
        sweep = efficiency_sweep()
        assert sweep[9] < sweep[4] < sweep[3] < sweep[2] < sweep[1]
        assert sweep[1] == pytest.approx(28.39, abs=0.05)

    def test_power_scaling(self):
        scaled = PAPER_TECH.scaled(frequency_hz=600e6, voltage_v=1.0)
        assert scaled.total_power_mw == pytest.approx(2 * 48.7)
        assert scaled.total_area_mm2 == pytest.approx(8.00)

    def test_unknown_component(self):
        with pytest.raises(KeyError):
            PAPER_TECH.by_name("NPU")

    def test_table_rows(self):
        rows = PAPER_TECH.table_rows()
        assert rows[0]["component"] == "Overall"
        assert len(rows) == 6


class TestEIEBaseline:
    def test_index_sram_paper_quote(self):
        """Paper: 64 KB index SRAM to denote 128 K weights."""
        assert eie_index_sram_bytes(128 * 1024) == 64 * 1024

    def test_irregular_pays_imbalance_penalty(self):
        model = IrregularCycleModel(ArchConfig(num_pes=16, macs_per_pe=4))
        result = model.compare(
            num_filters=64, num_channels=16, num_windows=32, n_average=4,
            rng=np.random.default_rng(0),
        )
        assert result.imbalance_penalty > 1.0
        assert result.irregular_utilization < result.regular_utilization

    def test_regular_workload_high_utilization(self):
        model = IrregularCycleModel(ArchConfig(num_pes=16, macs_per_pe=4))
        result = model.compare(
            num_filters=64, num_channels=16, num_windows=8, n_average=4,
            rng=np.random.default_rng(1),
        )
        assert result.regular_utilization == pytest.approx(1.0)

    def test_activation_thinning(self):
        model = IrregularCycleModel(ArchConfig(num_pes=8, macs_per_pe=4))
        dense = model.compare(32, 8, 8, 4, rng=np.random.default_rng(2))
        thin = model.compare(
            32, 8, 8, 4, rng=np.random.default_rng(2), activation_density=0.5
        )
        assert thin.regular_cycles < dense.regular_cycles


class TestLayout:
    def test_bar_chart_contains_all_components(self):
        chart = area_bar_chart()
        for component in PAPER_TECH.components:
            assert component.name in chart

    def test_floorplan_renders(self):
        plan = floorplan_ascii()
        assert "Data SRAM" in plan
        assert plan.startswith("+")
        widths = {len(line) for line in plan.splitlines()}
        assert len(widths) == 1  # rectangular drawing

    def test_custom_profile(self):
        tech = TechnologyProfile([ComponentBudget("A", 1.0, 1.0), ComponentBudget("B", 3.0, 1.0)])
        chart = area_bar_chart(tech)
        assert chart.index("B") < chart.index("A")  # sorted by area
