"""Tests for per-inference latency/energy derivation."""

import numpy as np
import pytest

from repro.arch import ArchConfig, inference_cost, inference_cost_sweep
from repro.core import PCNNConfig
from repro.models import profile_model, vgg16_cifar


@pytest.fixture(scope="module")
def vgg_profile():
    return profile_model(vgg16_cifar(rng=np.random.default_rng(0)), (3, 32, 32))


class TestInferenceCost:
    def test_latency_arithmetic(self, vgg_profile):
        cost = inference_cost(vgg_profile, PCNNConfig.uniform(1, 13))
        # cycles = effectual MACs / 256; latency = cycles / 300 MHz.
        expected_cycles = vgg_profile.conv_macs * 0.8 / 9.0 / 256
        assert cost.cycles == pytest.approx(expected_cycles, rel=1e-9)
        assert cost.latency_ms == pytest.approx(expected_cycles / 300e6 * 1e3, rel=1e-9)

    def test_energy_scales_with_latency(self, vgg_profile):
        a = inference_cost(vgg_profile, PCNNConfig.uniform(4, 13))
        b = inference_cost(vgg_profile, PCNNConfig.uniform(1, 13))
        assert a.energy_mj / b.energy_mj == pytest.approx(a.latency_ms / b.latency_ms)

    def test_sweep_ordering(self, vgg_profile):
        sweep = inference_cost_sweep(vgg_profile)
        latencies = [sweep[n].latency_ms for n in (4, 3, 2, 1)]
        assert latencies[0] > latencies[1] > latencies[2] > latencies[3]
        assert sweep[1].speedup_vs_dense == pytest.approx(9.0)

    def test_images_per_second(self, vgg_profile):
        cost = inference_cost(vgg_profile, PCNNConfig.uniform(2, 13))
        assert cost.images_per_second == pytest.approx(1000.0 / cost.latency_ms)

    def test_faster_clock_lower_latency_same_energy_ratio(self, vgg_profile):
        from repro.arch import PAPER_TECH

        base = inference_cost(vgg_profile, PCNNConfig.uniform(2, 13))
        fast_arch = ArchConfig(frequency_hz=600e6)
        fast_tech = PAPER_TECH.scaled(frequency_hz=600e6, voltage_v=1.0)
        fast = inference_cost(vgg_profile, PCNNConfig.uniform(2, 13), fast_arch, fast_tech)
        assert fast.latency_ms == pytest.approx(base.latency_ms / 2)
        # Energy/image unchanged to first order (P ~ f at fixed V).
        assert fast.energy_mj == pytest.approx(base.energy_mj)
