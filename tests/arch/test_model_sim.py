"""Tests for whole-model cycle-accurate simulation."""

import numpy as np
import pytest

from repro.arch import (
    ArchConfig,
    capture_conv_workloads,
    simulate_model_cycles,
)
from repro.core import PCNNConfig, PCNNPruner
from repro.models import patternnet


def make_model(seed=0, n=None):
    model = patternnet(channels=(8, 16), num_classes=4, rng=np.random.default_rng(seed))
    if n is not None:
        PCNNPruner(model, PCNNConfig.uniform(n, 2)).apply()
    return model


class TestCapture:
    def test_captures_every_conv(self):
        model = make_model()
        x = np.random.default_rng(0).normal(size=(1, 3, 8, 8))
        workloads = capture_conv_workloads(model, x)
        assert [w.name for w in workloads] == ["features.0", "features.4"]

    def test_capture_restores_forward(self):
        from repro import nn

        model = make_model()
        x = np.random.default_rng(0).normal(size=(1, 3, 8, 8))
        capture_conv_workloads(model, x)
        out = model(nn.Tensor(x))
        assert out.shape == (1, 4)

    def test_captured_weights_are_effective(self):
        model = make_model(n=2)
        x = np.random.default_rng(1).normal(size=(1, 3, 8, 8))
        workloads = capture_conv_workloads(model, x)
        for w in workloads:
            counts = np.count_nonzero(w.weight.reshape(-1, 9), axis=1)
            assert counts.max() <= 2

    def test_second_layer_sees_post_relu_sparsity(self):
        model = make_model()
        x = np.random.default_rng(2).normal(size=(1, 3, 8, 8))
        workloads = capture_conv_workloads(model, x)
        # After BN+ReLU+pool roughly half the activations are zero.
        assert workloads[1].activation_density < 0.95


class TestModelCycles:
    def test_pruned_model_speedup(self):
        model = make_model(seed=3, n=2)
        x = np.abs(np.random.default_rng(3).normal(size=(1, 3, 8, 8)))
        report = simulate_model_cycles(model, x, ArchConfig(num_pes=8, macs_per_pe=4))
        # n=2 should approach 9/2 = 4.5x, within granularity effects.
        assert report.speedup == pytest.approx(4.5, rel=0.35)
        assert report.total_cycles < report.dense_total_cycles

    def test_unpruned_model_no_speedup(self):
        model = make_model(seed=4)
        x = np.abs(np.random.default_rng(4).normal(size=(1, 3, 8, 8)))
        report = simulate_model_cycles(model, x, ArchConfig(num_pes=8, macs_per_pe=4))
        assert report.speedup == pytest.approx(1.0)

    def test_report_structure(self):
        model = make_model(seed=5, n=4)
        x = np.abs(np.random.default_rng(5).normal(size=(1, 3, 8, 8)))
        report = simulate_model_cycles(model, x, ArchConfig(num_pes=8, macs_per_pe=4))
        assert set(report.layer_stats) == {"features.0", "features.4"}
        assert set(report.activation_densities) == set(report.layer_stats)
        assert 0.0 < report.mean_utilization <= 1.0
