"""Tests for the DRAM traffic model."""

import numpy as np
import pytest

from repro.arch import dram_traffic
from repro.core import PCNNConfig
from repro.models import profile_model, resnet18_cifar, vgg16_cifar


@pytest.fixture(scope="module")
def vgg_profile():
    return profile_model(vgg16_cifar(rng=np.random.default_rng(0)), (3, 32, 32))


class TestDramTraffic:
    def test_pcnn_beats_csc_beats_dense(self, vgg_profile):
        report = dram_traffic(vgg_profile, PCNNConfig.uniform(4, 13))
        assert report.pcnn_weight_bytes < report.csc_weight_bytes < report.dense_weight_bytes

    def test_weight_saving_tracks_compression(self, vgg_profile):
        """At 8-bit weights, n=4 / |P|=32: 72 / (32 + 5) = 1.95x."""
        report = dram_traffic(vgg_profile, PCNNConfig.uniform(4, 13), weight_bits=8)
        assert report.pcnn_weight_saving == pytest.approx(72 / 37, rel=0.01)

    def test_csc_saving(self, vgg_profile):
        """CSC at 8-bit: 72 / (4 x 12) = 1.5x (the EIE regime)."""
        report = dram_traffic(vgg_profile, PCNNConfig.uniform(4, 13), weight_bits=8)
        assert report.csc_weight_saving == pytest.approx(1.5, rel=0.01)

    def test_dense_weight_bytes(self, vgg_profile):
        report = dram_traffic(vgg_profile, PCNNConfig.uniform(4, 13), weight_bits=8)
        assert report.dense_weight_bytes == pytest.approx(vgg_profile.conv_params, rel=1e-6)

    def test_activation_traffic_pruning_invariant(self, vgg_profile):
        a = dram_traffic(vgg_profile, PCNNConfig.uniform(4, 13))
        b = dram_traffic(vgg_profile, PCNNConfig.uniform(1, 13))
        assert a.activation_bytes == b.activation_bytes

    def test_total_saving_below_weight_saving(self, vgg_profile):
        """Activations bound the end-to-end saving (honesty check)."""
        report = dram_traffic(vgg_profile, PCNNConfig.uniform(1, 13))
        assert 1.0 < report.pcnn_total_saving < report.pcnn_weight_saving

    def test_resnet_1x1_layers_carried_dense(self):
        profile = profile_model(resnet18_cifar(rng=np.random.default_rng(0)), (3, 32, 32))
        report = dram_traffic(profile, PCNNConfig.uniform(1, 17), weight_bits=8)
        # 1x1 weights cap the saving below the pure 3x3 rate.
        assert report.pcnn_weight_saving < 72 / (8 + 3)

    def test_energy_ordering(self, vgg_profile):
        report = dram_traffic(vgg_profile, PCNNConfig.uniform(2, 13))
        assert report.energy_mj("pcnn") < report.energy_mj("csc") < report.energy_mj("dense")
        assert report.energy_mj("pcnn") > 0
