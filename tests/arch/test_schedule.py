"""Tests for the SRAM tiling scheduler."""

import numpy as np
import pytest

from repro.arch import ArchConfig, schedule_network
from repro.core import PCNNConfig
from repro.models import profile_model, vgg16_cifar


@pytest.fixture(scope="module")
def vgg_profile():
    return profile_model(vgg16_cifar(rng=np.random.default_rng(0)), (3, 32, 32))


class TestLayerSchedule:
    def test_dense_schedule(self, vgg_profile):
        schedule = schedule_network(vgg_profile, None)
        assert len(schedule.layers) == 13
        for layer in schedule.layers:
            assert layer.weight_tiles >= 1
            assert layer.kernels_per_tile <= layer.kernels or layer.weight_tiles == 1

    def test_pcnn_fits_more_kernels_per_tile(self, vgg_profile):
        dense = schedule_network(vgg_profile, None).by_name()
        pcnn = schedule_network(vgg_profile, PCNNConfig.uniform(4, 13)).by_name()
        for name in dense:
            assert pcnn[name].kernels_per_tile >= dense[name].kernels_per_tile

    def test_pcnn_fewer_tiles_than_dense_on_big_layers(self, vgg_profile):
        dense = schedule_network(vgg_profile, None)
        pcnn = schedule_network(vgg_profile, PCNNConfig.uniform(2, 13))
        assert pcnn.total_weight_tiles < dense.total_weight_tiles

    def test_spm_beats_csc_tiling(self, vgg_profile):
        cfg = PCNNConfig.uniform(4, 13)
        spm = schedule_network(vgg_profile, cfg, index_format="spm")
        csc = schedule_network(vgg_profile, cfg, index_format="csc")
        assert spm.total_dram_bytes < csc.total_dram_bytes
        assert spm.total_weight_tiles <= csc.total_weight_tiles

    def test_unknown_index_format(self, vgg_profile):
        with pytest.raises(ValueError):
            schedule_network(vgg_profile, PCNNConfig.uniform(4, 13), index_format="coo")

    def test_tile_capacity_paper_arithmetic(self, vgg_profile):
        """n=4 at 8-bit + 4-bit SPM: 36 bits/kernel -> 29127 kernels/tile."""
        cfg = PCNNConfig.uniform(4, 13, num_patterns=16)
        schedule = schedule_network(vgg_profile, cfg).by_name()
        expected = (128 * 1024 * 8) // 36
        big_layer = schedule["features.37"]  # 512x512 kernels = 262144
        assert big_layer.kernels_per_tile == expected
        assert big_layer.weight_tiles == int(np.ceil(262144 / expected))

    def test_activation_rereads_scale_with_tiles(self, vgg_profile):
        schedule = schedule_network(vgg_profile, PCNNConfig.uniform(4, 13))
        for layer in schedule.layers:
            assert layer.activation_read_bytes == pytest.approx(
                layer.weight_tiles * layer.input_bytes
            )

    def test_dram_traffic_totals_positive(self, vgg_profile):
        schedule = schedule_network(vgg_profile, PCNNConfig.uniform(1, 13))
        assert schedule.total_dram_bytes > 0
        assert schedule.total_dram_bytes == pytest.approx(
            sum(l.dram_bytes for l in schedule.layers)
        )

    def test_small_sram_forces_more_tiles(self, vgg_profile):
        big = schedule_network(
            vgg_profile, PCNNConfig.uniform(4, 13), arch=ArchConfig(weight_sram_bytes=128 * 1024)
        )
        small = schedule_network(
            vgg_profile, PCNNConfig.uniform(4, 13), arch=ArchConfig(weight_sram_bytes=16 * 1024)
        )
        assert small.total_weight_tiles > big.total_weight_tiles
        assert small.total_dram_bytes > big.total_dram_bytes
