"""Tests for sparsity pointer generation (Fig. 4) and the PE group."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import (
    ArchConfig,
    MACStats,
    PatternAwarePE,
    PEGroup,
    PipelineModel,
    compaction_pointers,
    gather_plan,
    pointers_from_offsets,
    sparsity_mask,
    zero_gap_offsets,
)

mask9 = st.lists(st.integers(min_value=0, max_value=1), min_size=9, max_size=9)


class TestSparsityMask:
    def test_and_of_masks(self):
        weight = [1, 1, 1, 1, 0, 1, 0, 0, 0]
        activation = [0, 1, 0, 1, 1, 1, 1, 1, 1]
        np.testing.assert_array_equal(
            sparsity_mask(weight, activation), [0, 1, 0, 1, 0, 1, 0, 0, 0]
        )

    def test_fig4b_example(self):
        """The worked example of Fig. 4b."""
        weight = [1, 1, 1, 1, 0, 1, 0, 0, 0]
        activation = [0, 1, 0, 1, 1, 1, 1, 1, 1]
        s = sparsity_mask(weight, activation)
        assert s.sum() == 3

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            sparsity_mask([1, 0], [1, 0, 1])


class TestPointers:
    def test_compaction_pointers(self):
        mask = np.array([1, 0, 1, 1, 0, 0, 1, 0, 0])
        ptr = compaction_pointers(mask)
        # Ones at positions 0,2,3,6 -> ranks 0,1,2,3.
        assert ptr[0] == 0 and ptr[2] == 1 and ptr[3] == 2 and ptr[6] == 3

    def test_zero_gap_offsets_example(self):
        offsets = zero_gap_offsets([0, 1, 0, 1, 0, 1, 0, 0, 0])
        np.testing.assert_array_equal(offsets, [1, 1, 1])

    def test_head_offset(self):
        """Fig. 4c's "head offset": zeros before the first non-zero."""
        assert zero_gap_offsets([0, 0, 0, 1, 0, 0, 0, 0, 0])[0] == 3

    def test_empty_mask(self):
        assert len(zero_gap_offsets([0] * 9)) == 0

    def test_pointers_from_offsets_reconstruct_positions(self):
        mask = np.array([0, 1, 0, 1, 0, 1, 0, 0, 0])
        offsets = zero_gap_offsets(mask)
        positions = pointers_from_offsets(offsets)
        np.testing.assert_array_equal(positions, np.flatnonzero(mask))

    @given(mask9)
    def test_property_offsets_reconstruct_any_mask(self, bits):
        mask = np.array(bits)
        positions = pointers_from_offsets(zero_gap_offsets(mask))
        np.testing.assert_array_equal(positions, np.flatnonzero(mask))

    @given(mask9)
    def test_property_compaction_pointer_is_rank(self, bits):
        mask = np.array(bits)
        ptr = compaction_pointers(mask)
        for rank, position in enumerate(np.flatnonzero(mask)):
            assert ptr[position] == rank


class TestGatherPlan:
    def test_plan_selects_effectual_positions(self):
        weight = np.array([1, 1, 0, 0, 1, 0, 0, 1, 0])
        activation = np.array([1, 0, 1, 0, 1, 0, 0, 1, 1])
        plan = gather_plan(weight, activation)
        np.testing.assert_array_equal(plan.activation_positions, [0, 4, 7])
        # Weight storage ranks of positions 0, 4, 7 within the weight mask.
        np.testing.assert_array_equal(plan.weight_pointers, [0, 2, 3])
        assert plan.num_macs == 3

    @given(mask9, mask9)
    @settings(max_examples=50)
    def test_property_plan_equals_masked_dot(self, w_bits, a_bits):
        """The pointer path computes exactly the masked dot product."""
        rng = np.random.default_rng(42)
        weight_mask = np.array(w_bits)
        values = rng.normal(size=9) * weight_mask
        activations = rng.normal(size=9) * np.array(a_bits)
        compact = values[weight_mask.astype(bool)]
        plan = gather_plan(weight_mask, (activations != 0).astype(int))
        pe = PatternAwarePE()
        result = pe.compute(compact, activations, plan)
        assert result == pytest.approx(float(np.dot(values, activations)))


class TestPE:
    def test_cycles_for(self):
        pe = PatternAwarePE(macs_per_pe=4)
        assert pe.cycles_for(0) == 0
        assert pe.cycles_for(4) == 1
        assert pe.cycles_for(5) == 2
        assert pe.cycles_for(9) == 3

    def test_invalid_macs(self):
        with pytest.raises(ValueError):
            PatternAwarePE(0)

    def test_empty_plan(self):
        pe = PatternAwarePE()
        plan = gather_plan(np.zeros(9), np.ones(9))
        assert pe.compute(np.zeros(0), np.ones(9), plan) == 0.0


class TestPEGroup:
    def test_filter_assignment_round_robin(self):
        group = PEGroup(ArchConfig(num_pes=4, macs_per_pe=2))
        assignments = group.assign_filters(10)
        np.testing.assert_array_equal(assignments[0], [0, 4, 8])
        np.testing.assert_array_equal(assignments[3], [3, 7])

    def test_balanced_workload_full_utilization(self):
        """PCNN's core hardware claim: equal per-kernel work -> max util."""
        arch = ArchConfig(num_pes=4, macs_per_pe=4)
        group = PEGroup(arch)
        stats = group.window_cycles(np.full(4, 4))  # 4 filters, 4 MACs each
        assert stats.cycles == 1
        assert stats.utilization == 1.0

    def test_imbalanced_workload_poor_utilization(self):
        arch = ArchConfig(num_pes=4, macs_per_pe=4)
        group = PEGroup(arch)
        stats = group.window_cycles(np.array([16, 1, 1, 1]))
        assert stats.cycles == 4  # bound by the heavy PE
        assert stats.utilization < 0.5

    def test_zero_work(self):
        group = PEGroup(ArchConfig(num_pes=2, macs_per_pe=2))
        stats = group.window_cycles(np.zeros(2))
        assert stats.cycles == 0
        assert stats.utilization == 1.0

    def test_compute_window_matches_numpy(self):
        rng = np.random.default_rng(1)
        group = PEGroup(ArchConfig(num_pes=8, macs_per_pe=4))
        acts = rng.normal(size=9)
        acts[rng.random(9) < 0.3] = 0.0
        weights = []
        masks = []
        expected = []
        for _ in range(8):
            mask = (rng.random(9) < 0.5).astype(np.int64)
            values = rng.normal(size=9) * mask
            weights.append(values[mask.astype(bool)])
            masks.append(mask)
            expected.append(float(np.dot(values, acts)))
        out = group.compute_window(weights, masks, acts)
        np.testing.assert_allclose(out, expected)


class TestPipeline:
    def test_four_stages(self):
        model = PipelineModel()
        assert model.num_stages == 4
        assert model.fill_cycles == 3

    def test_total_cycles(self):
        model = PipelineModel()
        assert model.total_cycles([1, 1, 1, 1]) == 3 + 4
        assert model.total_cycles([2, 3]) == 3 + 5

    def test_throughput(self):
        model = PipelineModel()
        assert model.throughput_items_per_cycle([1] * 97) == pytest.approx(0.97)


class TestMACStats:
    def test_merge(self):
        a = MACStats(cycles=2, effectual_macs=8, issued_mac_slots=16)
        b = MACStats(cycles=3, effectual_macs=12, issued_mac_slots=24)
        a.merge(b)
        assert a.cycles == 5 and a.effectual_macs == 20 and a.issued_mac_slots == 40
        assert a.utilization == pytest.approx(0.5)

    def test_empty_utilization(self):
        assert MACStats().utilization == 1.0
