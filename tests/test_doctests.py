"""Run the doctest examples embedded in module docstrings."""

import doctest

import pytest

import repro.arch.memory
import repro.arch.pointer
import repro.core.config
import repro.core.patterns
import repro.utils.timing

MODULES = [
    repro.core.patterns,
    repro.core.config,
    repro.arch.memory,
    repro.arch.pointer,
    repro.utils.timing,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.attempted > 0, f"{module.__name__} has no doctests to run"
    assert result.failed == 0
