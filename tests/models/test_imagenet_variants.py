"""Tests for the ImageNet-resolution model variants."""

import numpy as np
import pytest

from repro import nn
from repro.models import profile_model, resnet18_imagenet, vgg16_imagenet


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(0)


class TestVGG16ImageNet:
    def test_full_classifier_head_structure(self, rng):
        model = vgg16_imagenet(full_classifier=True, rng=rng)
        # The original 4096-4096-1000 stack.
        linears = [m for m in model.modules() if isinstance(m, nn.Linear)]
        assert [l.out_features for l in linears] == [4096, 4096, 1000]
        assert linears[0].in_features == 512 * 7 * 7

    def test_light_head_parameter_savings(self, rng):
        light = vgg16_imagenet(rng=rng)
        linears = [m for m in light.modules() if isinstance(m, nn.Linear)]
        assert len(linears) == 1  # single head: the conv-focused variant

    def test_imagenet_macs_standard_value(self, rng):
        profile = profile_model(vgg16_imagenet(rng=rng), (3, 224, 224))
        # Standard VGG-16 conv MACs at 224x224 is ~15.3e9. (The paper's
        # printed 6.82e9 baseline is inconsistent with its own layer plan;
        # see EXPERIMENTS.md.)
        assert profile.conv_macs == pytest.approx(1.53e10, rel=0.01)

    def test_spatial_plan(self, rng):
        profile = profile_model(vgg16_imagenet(rng=rng), (3, 224, 224))
        assert profile.convs[0].output_hw == (224, 224)
        assert profile.convs[-1].output_hw == (14, 14)


class TestResNet18ImageNet:
    def test_stem_downsampling(self, rng):
        profile = profile_model(resnet18_imagenet(rng=rng), (3, 224, 224))
        by_name = profile.by_name()
        assert by_name["conv1"].kernel_size == 7
        assert by_name["conv1"].output_hw == (112, 112)
        # Padded 3x3/2 max pool -> stage 1 at 56x56 (torchvision layout).
        assert by_name["layer1.0.conv1"].input_hw == (56, 56)

    def test_standard_macs(self, rng):
        profile = profile_model(resnet18_imagenet(rng=rng), (3, 224, 224))
        assert profile.conv_macs == pytest.approx(1.81e9, rel=0.01)
        assert profile.conv_params == pytest.approx(1.12e7, rel=0.01)

    def test_forward_shape(self, rng):
        model = resnet18_imagenet(num_classes=1000, rng=rng)
        out = model(nn.Tensor(np.zeros((1, 3, 64, 64))))  # small input, same graph
        assert out.shape == (1, 1000)

    def test_prunable_excludes_stem_7x7(self, rng):
        model = resnet18_imagenet(rng=rng)
        prunable = model.prunable_conv_layers()
        assert all(m.kernel_size == 3 for _, m in prunable)
        assert len(prunable) == 16  # 7x7 stem and 1x1 projections excluded
