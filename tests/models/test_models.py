"""Tests for the model zoo: shapes, layer inventories, paper baselines."""

import numpy as np
import pytest

from repro import nn
from repro.models import (
    MODEL_REGISTRY,
    create_model,
    model_input_shape,
    patternnet,
    profile_model,
    resnet18_cifar,
    vgg16_cifar,
    vgg16_imagenet,
)
from repro.models.resnet import BasicBlock


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(0)


class TestVGG16:
    def test_cifar_forward_shape(self, rng):
        model = vgg16_cifar(rng=rng)
        out = model(nn.Tensor(np.zeros((2, 3, 32, 32))))
        assert out.shape == (2, 10)

    def test_thirteen_conv_layers(self, rng):
        model = vgg16_cifar(rng=rng)
        convs = model.conv_layers()
        assert len(convs) == 13
        assert all(m.kernel_size == 3 for _, m in convs)

    def test_conv_channel_plan(self, rng):
        model = vgg16_cifar(rng=rng)
        widths = [m.out_channels for _, m in model.conv_layers()]
        assert widths == [64, 64, 128, 128, 256, 256, 256, 512, 512, 512, 512, 512, 512]

    def test_paper_baseline_params_and_macs(self, rng):
        """Table I baseline: 1.47e7 conv params, 3.13e8 conv MACs."""
        profile = profile_model(vgg16_cifar(rng=rng), (3, 32, 32))
        assert profile.conv_params == pytest.approx(1.47e7, rel=0.01)
        assert profile.conv_macs == pytest.approx(3.13e8, rel=0.01)

    def test_imagenet_light_head(self, rng):
        model = vgg16_imagenet(rng=rng)
        profile = profile_model(model, (3, 224, 224))
        assert profile.conv_params == pytest.approx(1.47e7, rel=0.01)
        assert len(profile.convs) == 13

    def test_invalid_classifier_kind(self, rng):
        from repro.models.vgg import VGG16

        with pytest.raises(ValueError):
            VGG16(classifier="bogus", rng=rng)


class TestResNet18:
    def test_forward_shape(self, rng):
        model = resnet18_cifar(rng=rng)
        out = model(nn.Tensor(np.zeros((2, 3, 32, 32))))
        assert out.shape == (2, 10)

    def test_conv_inventory(self, rng):
        model = resnet18_cifar(rng=rng)
        all_convs = model.conv_layers()
        prunable = model.prunable_conv_layers()
        assert len(all_convs) == 20  # stem + 16 block convs + 3 projections
        assert len(prunable) == 17  # 1x1 projections excluded
        assert all(m.kernel_size == 3 for _, m in prunable)

    def test_paper_baseline_params_and_macs(self, rng):
        """Table II baseline: 1.12e7 conv params, 5.55e8 conv MACs."""
        profile = profile_model(resnet18_cifar(rng=rng), (3, 32, 32))
        assert profile.conv_params == pytest.approx(1.12e7, rel=0.01)
        assert profile.conv_macs == pytest.approx(5.55e8, rel=0.01)

    def test_residual_identity_path(self, rng):
        block = BasicBlock(8, 8, stride=1, rng=rng)
        assert isinstance(block.downsample, nn.Identity)

    def test_residual_projection_path(self, rng):
        block = BasicBlock(8, 16, stride=2, rng=rng)
        out = block(nn.Tensor(np.zeros((1, 8, 8, 8))))
        assert out.shape == (1, 16, 4, 4)

    def test_stage_downsampling(self, rng):
        model = resnet18_cifar(rng=rng)
        profile = profile_model(model, (3, 32, 32))
        by_name = profile.by_name()
        assert by_name["layer2.0.conv1"].output_hw == (16, 16)
        assert by_name["layer4.1.conv2"].output_hw == (4, 4)


class TestPatternNet:
    def test_forward_shape(self, rng):
        model = patternnet(rng=rng)
        out = model(nn.Tensor(np.zeros((4, 3, 16, 16))))
        assert out.shape == (4, 10)

    def test_all_convs_3x3(self, rng):
        model = patternnet(channels=(8, 16), rng=rng)
        assert all(m.kernel_size == 3 for _, m in model.conv_layers())

    def test_custom_channels(self, rng):
        model = patternnet(channels=(4, 8, 12), rng=rng)
        assert [m.out_channels for _, m in model.conv_layers()] == [4, 8, 12]


class TestProfiler:
    def test_macs_formula(self, rng):
        model = patternnet(channels=(8,), rng=rng)
        profile = profile_model(model, (3, 16, 16))
        conv = profile.convs[0]
        # 8 out x 3 in x 9 positions x 16x16 output
        assert conv.macs == 8 * 3 * 9 * 16 * 16
        assert conv.params == 8 * 3 * 9
        assert conv.kernels == 24

    def test_profiler_restores_forward(self, rng):
        model = patternnet(channels=(4,), rng=rng)
        profile_model(model, (3, 16, 16))
        # The real forward must work again after profiling.
        out = model(nn.Tensor(np.zeros((1, 3, 16, 16))))
        assert out.shape == (1, 10)

    def test_prunable_excludes_1x1(self, rng):
        profile = profile_model(resnet18_cifar(rng=rng), (3, 32, 32))
        assert len(profile.prunable()) == 17
        assert all(c.is_3x3 for c in profile.prunable())


class TestRegistry:
    def test_all_entries_constructible(self):
        for name in ("vgg16_cifar", "resnet18_cifar", "patternnet"):
            model = create_model(name, rng=np.random.default_rng(0))
            assert isinstance(model, nn.Module)

    def test_input_shapes(self):
        assert model_input_shape("vgg16_cifar") == (3, 32, 32)
        assert model_input_shape("vgg16_imagenet") == (3, 224, 224)

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            create_model("alexnet")

    def test_registry_descriptions(self):
        for spec in MODEL_REGISTRY.values():
            assert spec.description
