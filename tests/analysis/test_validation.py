"""Tests for the PCNN invariant validator."""

import numpy as np
import pytest

from repro.analysis import assert_valid, validate_model
from repro.core import PCNNConfig, PCNNPruner
from repro.models import patternnet


def pruned_model(seed=0, n=2, patterns=8):
    model = patternnet(channels=(8, 16), num_classes=4, rng=np.random.default_rng(seed))
    PCNNPruner(model, PCNNConfig.uniform(n, 2, num_patterns=patterns)).apply()
    return model


class TestValidateModel:
    def test_valid_pruned_model(self):
        model = pruned_model()
        report = validate_model(model, max_patterns=8)
        assert report.ok
        for layer in report.layers:
            assert layer.pruned
            assert layer.n_nonzero == 2
            assert layer.distinct_patterns <= 8

    def test_dense_model_reported_dense(self):
        model = patternnet(channels=(8,), num_classes=4, rng=np.random.default_rng(0))
        report = validate_model(model)
        assert report.ok
        assert not report.layers[0].pruned
        assert "dense" in report.summary()

    def test_unequal_kernels_flagged(self):
        model = pruned_model(seed=1)
        conv = model.conv_layers()[0][1]
        broken = conv.weight_mask.copy()
        broken[0, 0] = 1.0
        conv.set_weight_mask(broken)
        report = validate_model(model)
        assert not report.ok
        assert any("unequal" in p for p in report.problems)

    def test_off_mask_weights_flagged(self):
        model = pruned_model(seed=2)
        conv = model.conv_layers()[0][1]
        # Sneak a weight outside the mask.
        mask = conv.weight_mask
        zero_positions = np.argwhere(mask == 0)
        i = tuple(zero_positions[0])
        conv.weight.data[i] = 5.0
        report = validate_model(model)
        assert any("outside the mask" in p for p in report.problems)

    def test_nan_weights_flagged(self):
        model = pruned_model(seed=3)
        conv = model.conv_layers()[0][1]
        on = np.argwhere(conv.weight_mask == 1)
        conv.weight.data[tuple(on[0])] = np.nan
        report = validate_model(model)
        assert any("non-finite" in p for p in report.problems)

    def test_pattern_budget_flagged(self):
        # Full-candidate pruning on a wide layer uses many patterns.
        model = patternnet(channels=(16, 32), num_classes=4, rng=np.random.default_rng(4))
        PCNNPruner(model, PCNNConfig.uniform(4, 2, num_patterns=126)).apply()
        report = validate_model(model, max_patterns=4)
        assert not report.ok
        assert any("exceed the SPM budget" in p for p in report.problems)

    def test_assert_valid_raises_with_details(self):
        model = pruned_model(seed=5)
        conv = model.conv_layers()[0][1]
        broken = conv.weight_mask.copy()
        broken[0, 0] = 1.0
        conv.set_weight_mask(broken)
        with pytest.raises(AssertionError, match="unequal"):
            assert_valid(model)

    def test_assert_valid_passes(self):
        assert_valid(pruned_model(seed=6), max_patterns=8)

    def test_summary_format(self):
        report = validate_model(pruned_model(seed=7), max_patterns=8)
        text = report.summary()
        assert "n=2" in text and "OK" in text
