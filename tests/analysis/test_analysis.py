"""Tests for table/figure rendering and experiment logging."""

import numpy as np
import pytest

from repro.analysis import (
    ExperimentLog,
    ExperimentRecord,
    Measurement,
    format_compression_table,
    format_markdown_table,
    format_table,
    histogram_ascii,
    pattern_frequency_figure,
    series_ascii,
)
from repro.core import PCNNConfig, pcnn_compression
from repro.models import patternnet, profile_model


class TestFormatTable:
    def test_basic_alignment(self):
        table = format_table(["name", "value"], [["a", 1], ["long-name", 2]])
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert len({len(l) for l in lines[0:1] + lines[2:]}) <= 2

    def test_title(self):
        table = format_table(["x"], [[1]], title="My Table")
        assert table.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        table = format_table(["v"], [[3.14159]])
        assert "3.14" in table

    def test_scientific_for_large(self):
        table = format_table(["v"], [[1.23e8]])
        assert "e+08" in table

    def test_empty_rows(self):
        table = format_table(["a", "b"], [])
        assert "a" in table and "b" in table


class TestMarkdownTable:
    def test_structure(self):
        md = format_markdown_table(["a", "b"], [[1, 2], [3, 4]])
        lines = md.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert len(lines) == 4

    def test_compression_table(self):
        model = patternnet(channels=(4,), rng=np.random.default_rng(0))
        profile = profile_model(model, (3, 8, 8))
        report = pcnn_compression(profile, PCNNConfig.uniform(3, 1))
        text = format_compression_table([report])
        assert "Compr (weight)" in text
        assert "3.0x" in text


class TestFigures:
    def test_histogram(self):
        art = histogram_ascii([1, 5, 3], labels=["a", "b", "c"])
        lines = art.splitlines()
        assert lines[0].strip().startswith("b")  # tallest first
        assert "#" in lines[0]

    def test_histogram_max_rows(self):
        art = histogram_ascii(list(range(10)), max_rows=3)
        assert len(art.splitlines()) == 3

    def test_pattern_frequency_figure(self):
        freq = np.zeros(126, dtype=int)
        freq[:5] = [100, 80, 60, 40, 20]
        freq[5:20] = 2
        art = pattern_frequency_figure(freq, top=5)
        assert "126 candidate patterns" in art
        assert "trivial tail" in art

    def test_series(self):
        art = series_ascii({"speedup": {1: 9.0, 2: 4.5}})
        assert "speedup" in art
        assert "9.00" in art


class TestExperimentLog:
    def test_measurement_relative_error(self):
        m = Measurement("compression", paper=2.2, measured=2.17)
        assert m.relative_error == pytest.approx(abs(2.17 - 2.2) / 2.2)

    def test_relative_error_non_numeric(self):
        assert Measurement("acc", paper="-", measured=1.0).relative_error is None

    def test_relative_error_zero_paper(self):
        assert Measurement("x", paper=0.0, measured=1.0).relative_error is None

    def test_record_markdown(self):
        record = ExperimentRecord("Table I", "VGG-16 compression")
        record.add("weight compression n=4", 2.3, 2.25)
        md = record.to_markdown()
        assert md.startswith("### Table I")
        assert "2.25" in md and "2.3" in md

    def test_log_collects_records(self):
        log = ExperimentLog()
        rec = log.record("Fig. 2", "pattern distribution")
        rec.add("candidates", 126, 126)
        md = log.to_markdown()
        assert "# Experiments" in md
        assert "Fig. 2" in md
        assert len(log.records) == 1
