"""Sensitivity-driven configs and on-device deployment (end-to-end).

Shows the workflow a deployment engineer would run:

1. train a model;
2. scan per-layer pruning sensitivity and auto-derive a "various" config
   (the paper's Table I/II footnote style: milder n where it hurts);
3. prune + retrain with that config, evaluating through the runtime
   engine (``runtime.predict`` — the batched serving entry point, not a
   hand-rolled eval loop);
4. quantize to the accelerator's 8-bit format, write a deployment
   bundle, and report latency/energy on the pattern-aware architecture;
5. serve the bundle with the dynamic-batching ``ModelServer`` on the
   compiled int8 pipeline (see docs/SERVING.md) and verify the served
   outputs.

Run:  python examples/sensitivity_and_deployment.py
(REPRO_EXAMPLES_SCALE=small shrinks the run for CI.)
"""

import os

import numpy as np

from repro import runtime
from repro.analysis import format_table
from repro.arch import inference_cost
from repro.core import (
    PCNNPruner,
    bundle_from_pruner,
    fit,
    pcnn_compression,
    sensitivity_scan,
    suggest_config,
)
from repro.data import ArrayDataset, DataLoader, make_synthetic_images
from repro.models import patternnet, profile_model
from repro.serving import ModelServer

SMALL = os.environ.get("REPRO_EXAMPLES_SCALE") == "small"


def accuracy(model, images: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy via the runtime engine's batched predict."""
    logits = runtime.predict(model, images, micro_batch=64)
    return float((logits.argmax(axis=1) == labels).mean())


def main() -> None:
    seed = 0
    n_train, n_test = (256, 128) if SMALL else (512, 256)
    epochs = 3 if SMALL else 6
    x_train, y_train, x_test, y_test = make_synthetic_images(
        n_train=n_train, n_test=n_test, num_classes=10, image_size=12, seed=seed,
        noise_std=0.5,
    )
    loader = DataLoader(ArrayDataset(x_train, y_train), batch_size=32, shuffle=True, seed=seed)
    model = patternnet(channels=(12, 24, 24), num_classes=10, rng=np.random.default_rng(seed))

    print("[1] training ...")
    fit(model, loader, epochs=epochs, lr=0.01)
    dense_acc = accuracy(model, x_test, y_test)
    print(f"    dense accuracy {dense_acc:.3f}")

    print("[2] per-layer sensitivity scan ...")
    scan = sensitivity_scan(model, x_test, y_test, ns=(1, 2, 4))
    print(format_table(
        ["layer", "drop @ n=1", "drop @ n=2", "drop @ n=4"],
        [[s.name, f"{s.accuracy_drop[1]:.3f}", f"{s.accuracy_drop[2]:.3f}",
          f"{s.accuracy_drop[4]:.3f}"] for s in scan],
    ))
    config = suggest_config(scan, budget=0.06, candidates=(1, 2, 4))
    print(f"    suggested config: {config.describe()}")

    print("[3] pruning + masked retraining ...")
    pruner = PCNNPruner(model, config)
    pruner.apply()
    fit(model, loader, epochs=max(2, epochs // 2), lr=0.01)
    pruned_acc = accuracy(model, x_test, y_test)
    print(f"    pruned accuracy {pruned_acc:.3f} (dense {dense_acc:.3f})")

    print("[4] deployment bundle + accelerator cost ...")
    # Re-wrap so encode() sees the retrained weights.
    pruner = PCNNPruner(model, config)
    pruner.apply()
    bundle = bundle_from_pruner(pruner, quantize_bits=8)
    bundle.save("/tmp/pcnn_bundle.npz")
    profile = profile_model(model, (3, 12, 12), model_name="PatternNet")
    report = pcnn_compression(profile, config)
    cost = inference_cost(profile, config)
    print(f"    bundle: /tmp/pcnn_bundle.npz ({bundle.storage_bits() / 8 / 1024:.1f} KiB, "
          f"8-bit quantized: {bundle.quantized})")
    print(f"    compression: {report.weight_compression:.1f}x weight, "
          f"{report.weight_idx_compression:.1f}x weight+idx")
    print(f"    accelerator: {cost.latency_ms * 1e3:.3f} us/image, "
          f"{cost.energy_mj * 1e3:.4f} uJ/image, "
          f"{cost.speedup_vs_dense:.2f}x vs dense")

    print("[5] serving the bundle (compiled int8 pipeline) ...")
    # The served model is rebuilt from the bundle alone — weights, masks
    # and SPM encodings all come from the .npz; quantize="int8" compiles
    # it to the int8 execution path, calibrated on test images.
    from repro.core.deploy import DeploymentBundle

    fresh = patternnet(
        channels=(12, 24, 24), num_classes=10, rng=np.random.default_rng(seed)
    )
    DeploymentBundle.load("/tmp/pcnn_bundle.npz").restore_into(fresh)
    server = ModelServer(max_batch=16, max_latency_ms=5.0, quantize="int8")
    served = server.add_model(
        "patternnet-int8", fresh, (3, 12, 12),
        source="bundle", calibration=x_test[:8],
        meta={"bundle": "/tmp/pcnn_bundle.npz"},
    )
    server.warmup()
    with server:
        # Submit everything first so the batcher can coalesce the burst.
        futures = [server.submit(image) for image in x_test[:32]]
        outputs = np.stack([f.result(timeout=30) for f in futures])
    served_acc = float((outputs.argmax(axis=1) == y_test[:32]).mean())
    print(f"    served: {served.meta['quantized_layers']} int8 convs, "
          f"accuracy on 32 test images {served_acc:.3f}")
    print(f"    {server.render_stats()}")


if __name__ == "__main__":
    main()
