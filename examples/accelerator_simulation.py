"""Drive the pattern-aware accelerator model end to end (Sec. III).

Takes a PCNN-pruned layer through the full hardware path:

1. SPM-encode the layer and pack the equal-length non-zero sequences into
   data-fetch rows (Fig. 3b);
2. decode SPM codes to weight masks and generate sparsity pointers
   (Fig. 4);
3. run the cycle-level PE-group simulation and check the output against
   the software convolution;
4. compare utilisation with an irregular (EIE-like) workload and print
   the Table IX floorplan.

Run:  python examples/accelerator_simulation.py
"""

import numpy as np

from repro.arch import (
    ArchConfig,
    ConvLayerSimulator,
    IrregularCycleModel,
    SPMDecoder,
    fetch_geometry,
    floorplan_ascii,
    gather_plan,
    pack_nonzero_sequences,
    sram_overheads,
)
from repro.core import PCNNConfig, PCNNPruner, SPMCodebook, encode_layer
from repro.models import patternnet
from repro.nn import Tensor
from repro.nn.functional import conv2d


def main() -> None:
    rng = np.random.default_rng(0)
    arch = ArchConfig(num_pes=8, macs_per_pe=4)  # scaled-down for the demo

    # Prune a small layer with PCNN (n=4, 8 patterns).
    model = patternnet(channels=(8,), num_classes=4, rng=rng)
    pruner = PCNNPruner(model, PCNNConfig.uniform(4, 1, num_patterns=8))
    info = pruner.apply()
    layer_name, conv = pruner.layers[0]
    weight = conv.effective_weight()
    patterns = info[layer_name].patterns

    # --- Memory path (Fig. 3) ------------------------------------------
    codebook = SPMCodebook(patterns)
    encoded = encode_layer(weight, codebook)
    packed = pack_nonzero_sequences(encoded.values, fetch_width=arch.fetch_width_weights)
    filters_per, fetches = fetch_geometry(codebook.n_nonzero, arch.fetch_width_weights)
    print("memory path (Fig. 3)")
    print(f"  {encoded.num_kernels} kernels x n={codebook.n_nonzero} non-zeros")
    print(f"  SPM code width: {codebook.index_bits} bits, codebook |P| = {len(codebook)}")
    print(f"  packing: {filters_per} filters per {fetches} data fetch(es), "
          f"{packed.num_fetches} fetch rows, {packed.padding_words} padded words")

    # --- Decoder + pointers (Fig. 4) -----------------------------------
    decoder = SPMDecoder(codebook)
    example_code = int(encoded.codes[0])
    weight_mask = decoder.decode(example_code)
    activations = np.where(rng.random(9) < 0.8, rng.normal(size=9), 0.0)
    plan = gather_plan(weight_mask, (activations != 0).astype(int))
    print("\nsparsity IO (Fig. 4)")
    print(f"  SPM code {example_code} -> weight mask {weight_mask.tolist()}")
    print(f"  activation mask        -> {(activations != 0).astype(int).tolist()}")
    print(f"  effectual MACs: {plan.num_macs}, weight pointers {plan.weight_pointers.tolist()}")

    # --- Cycle-level simulation ----------------------------------------
    x = np.abs(rng.normal(size=(1, 3, 8, 8)))
    x[rng.random(x.shape) < 0.2] = 0.0  # activation sparsity ~ 0.8 density
    sim = ConvLayerSimulator(arch)
    result = sim.functional_forward(x, weight, padding=1)
    reference = conv2d(Tensor(x), Tensor(weight), padding=1).data
    assert np.allclose(result.output, reference), "datapath must equal conv2d"
    dense_result = sim.cycle_count(x, np.ones_like(weight), padding=1)
    print("\ncycle-level simulation")
    print(f"  functional output equals nn.functional.conv2d: True")
    print(f"  pruned: {result.cycles} cycles, utilization {result.stats.utilization:.2f}")
    print(f"  dense : {dense_result.cycles} cycles -> speedup "
          f"{dense_result.cycles / result.cycles:.2f}x")

    # --- Regular vs irregular utilisation ------------------------------
    model_cmp = IrregularCycleModel(arch)
    cmp = model_cmp.compare(num_filters=32, num_channels=8, num_windows=36, n_average=4,
                            rng=np.random.default_rng(1))
    print("\nworkload balance (PCNN vs irregular at equal density)")
    print(f"  regular   : {cmp.regular_cycles} cycles, util {cmp.regular_utilization:.2f}")
    print(f"  irregular : {cmp.irregular_cycles} cycles, util {cmp.irregular_utilization:.2f}")
    print(f"  imbalance penalty: {cmp.imbalance_penalty:.2f}x")

    # --- Memory overhead + floorplan -----------------------------------
    overheads = sram_overheads(ArchConfig(), num_patterns=16, n_nonzero=4)
    print("\nmemory overhead (Sec. IV-E)")
    print(f"  pattern SRAM / weight SRAM = {overheads['index_overhead_fraction']:.1%}")
    print(f"  EIE-style CSC index for the same weights: "
          f"{overheads['eie_index_bytes_required'] // 1024} KB")
    print("\nfloorplan (Fig. 6, area-proportional)")
    print(floorplan_ascii())


if __name__ == "__main__":
    main()
