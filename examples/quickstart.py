"""Quickstart: PCNN in five minutes.

Walks the paper's Fig. 1 end to end on a real (small) model:

1. enumerate sparsity patterns and encode a kernel with an SPM index;
2. prune a CNN with PCNN (distillation + projection + masks);
3. report the compression rates the paper's tables are built from;
4. estimate the accelerator speedup and energy efficiency;
5. serve the pruned model through the runtime engine — batched
   ``runtime.predict``, the compiled pipeline, and the int8 execution
   path (see docs/ARCHITECTURE.md for how these layers fit together).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import runtime
from repro.analysis import format_compression_table
from repro.arch import simulate_network_analytic, tops_per_watt
from repro.core import (
    PCNNConfig,
    PCNNPruner,
    SPMCodebook,
    decode_layer,
    encode_layer,
    enumerate_patterns,
    format_pattern,
    pcnn_compression,
)
from repro.models import patternnet, profile_model


def figure1_demo() -> None:
    """Fig. 1: a kernel, its pattern, and its SPM representation."""
    print("=" * 64)
    print("Fig. 1 demo: Sparsity Pattern Mask (SPM) encoding")
    print("=" * 64)
    kernel = np.array(
        [
            [0.0, 2.09, 1.45],
            [0.0, 0.0, 1.15],
            [-0.89, 2.12, -0.58],
        ]
    )
    print("original kernel:\n", kernel)

    # The kernel's non-zeros form one of the C(9,6) = 84 patterns with n=6.
    patterns = enumerate_patterns(6)
    codebook = SPMCodebook(patterns)
    encoded = encode_layer(kernel.reshape(1, 1, 3, 3), codebook)
    code = int(encoded.codes[0])
    print(f"\nSPM code: {code} (one {codebook.index_bits}-bit index per kernel)")
    print("pattern mask:")
    print(format_pattern(codebook.pattern(code)))
    print("non-zero sequence (equal length n=6):", encoded.values[0])

    decoded = decode_layer(encoded)[0, 0]
    assert np.allclose(decoded, kernel), "SPM round-trip must be lossless"
    print("\ndecoded kernel matches the original — round-trip is lossless.")


def prune_demo() -> None:
    """PCNN pruning of a small all-3x3 CNN."""
    print("\n" + "=" * 64)
    print("PCNN pruning: PatternNet, n=2 per kernel, 8 patterns per layer")
    print("=" * 64)
    model = patternnet(channels=(16, 32, 64), rng=np.random.default_rng(0))
    profile = profile_model(model, (3, 16, 16))
    config = PCNNConfig.uniform(2, len(profile.prunable()), num_patterns=8)

    pruner = PCNNPruner(model, config)
    info = pruner.apply()
    pruner.verify_regularity()
    for name, layer in info.items():
        print(
            f"  {name}: sparsity {layer.sparsity:.1%}, "
            f"{len(layer.patterns)} patterns, "
            f"top pattern used by {layer.distillation.frequencies[0]} kernels"
        )

    report = pcnn_compression(profile, config)
    print()
    print(format_compression_table([report], title="Compression accounting"))


def accelerator_demo() -> None:
    """Speedup and TOPS/W on the pattern-aware architecture."""
    print("\n" + "=" * 64)
    print("Pattern-aware accelerator estimate (paper Sec. IV-E)")
    print("=" * 64)
    model = patternnet(channels=(16, 32, 64), rng=np.random.default_rng(0))
    profile = profile_model(model, (3, 16, 16))
    for n in (4, 2, 1):
        config = PCNNConfig.uniform(n, len(profile.prunable()))
        sim = simulate_network_analytic(profile, config)
        eff = tops_per_watt(effective_speedup=sim.speedup)
        print(f"  n={n}: speedup {sim.speedup:.2f}x, efficiency {eff:.2f} TOPS/W")


def serving_demo() -> None:
    """Batched + compiled + int8 inference through the runtime engine."""
    print("\n" + "=" * 64)
    print("Serving the pruned model (repro.runtime)")
    print("=" * 64)
    model = patternnet(channels=(16, 32, 64), rng=np.random.default_rng(0))
    profile = profile_model(model, (3, 16, 16))
    pruner = PCNNPruner(model, PCNNConfig.uniform(2, len(profile.prunable()), num_patterns=8))
    pruner.apply()
    pruner.attach_encodings()  # convs now execute straight from SPM storage

    images = np.random.default_rng(1).normal(size=(32, 3, 16, 16))
    stats = runtime.PredictStats()
    eager = runtime.predict(model, images, micro_batch=8, stats=stats)
    print(f"eager predict: {eager.shape} at {stats.images_per_second:.0f} images/s")

    compiled = runtime.compile_model(model)  # BN folding, fused epilogues, arenas
    stats = runtime.PredictStats()
    fused = runtime.predict(compiled, images, stats=stats)
    drift = np.abs(fused - eager).max()
    print(
        f"compiled pipeline: {stats.images_per_second:.0f} images/s "
        f"(max |diff| vs eager {drift:.2e})"
    )

    int8 = runtime.compile_model(model, quantize="int8", calibration=images[:8])
    out8 = int8(images)
    agree = (out8.argmax(axis=1) == eager.argmax(axis=1)).mean()
    print(
        f"int8 pipeline: {int8.quantization.quantized_layers} quantized convs, "
        f"top-1 agreement {agree:.0%} vs eager float"
    )


if __name__ == "__main__":
    figure1_demo()
    prune_demo()
    accelerator_demo()
    serving_demo()
