"""Table I workload: sweep PCNN settings over the real VGG-16 graph.

Reproduces the deterministic columns of the paper's Table I (VGG-16 on
CIFAR-10) plus the Sec. IV-E architecture numbers, for the unified
settings n = 4, 3, 2, 1 and the footnote "various" setting
2-1-1-1-1-1-1-1-1-1-1-1-1.

Run:  python examples/vgg16_compression_sweep.py
"""

import numpy as np

from repro.analysis import format_compression_table, format_table
from repro.arch import simulate_network_analytic, tops_per_watt
from repro.core import PCNNConfig, irregular_compression, pcnn_compression
from repro.models import profile_model, vgg16_cifar

PAPER_TABLE1 = {
    4: {"weight": 2.3, "weight_idx": 2.2, "flops_pruned": 56.5},
    3: {"weight": 3.0, "weight_idx": 2.9, "flops_pruned": 66.7},
    2: {"weight": 4.5, "weight_idx": 4.1, "flops_pruned": 77.8},
    1: {"weight": 9.0, "weight_idx": 8.4, "flops_pruned": 88.9},
}


def main() -> None:
    model = vgg16_cifar(rng=np.random.default_rng(0))
    profile = profile_model(model, (3, 32, 32), model_name="VGG-16")
    print(
        f"VGG-16 / CIFAR-10 baseline: {profile.conv_params:.3e} conv params, "
        f"{profile.conv_macs:.3e} conv MACs (paper: 1.47e7 / 3.13e8)\n"
    )

    reports = []
    arch_rows = []
    for n in (4, 3, 2, 1):
        config = PCNNConfig.uniform(n, 13)
        reports.append(pcnn_compression(profile, config, setting=f"n = {n}"))
        sim = simulate_network_analytic(profile, config)
        arch_rows.append(
            [
                f"n = {n}",
                f"{sim.speedup:.2f}x",
                f"{tops_per_watt(effective_speedup=sim.speedup):.2f}",
                f"{PAPER_TABLE1[n]['weight']}x / {PAPER_TABLE1[n]['weight_idx']}x",
            ]
        )

    various = PCNNConfig.from_string("2-1-1-1-1-1-1-1-1-1-1-1-1")
    reports.append(pcnn_compression(profile, various, setting="various 2-1-...-1"))

    print(format_compression_table(reports, title="Table I reproduction"))
    print()
    print(
        format_table(
            ["setting", "speedup", "TOPS/W", "paper compr (w / w+idx)"],
            arch_rows,
            title="Architecture estimates (Sec. IV-E)",
        )
    )

    irregular = irregular_compression(profile, 4)
    print(
        f"\nIrregular (CSC) strawman at the n=4 density: "
        f"{irregular.weight_idx_compression:.1f}x weight+idx compression "
        f"(paper quotes 2.0x, 'three times as low as ours')."
    )


if __name__ == "__main__":
    main()
