"""Fusing PCNN with coarse-grained pruning (paper Sec. IV-D).

Reproduces the Table VII/VIII workloads: PCNN composed with kernel-level
pruning (VGG-16/ImageNet accounting) and with channel-level pruning
(VGG-16/CIFAR-10 accounting), plus a mask-level demonstration on a real
model showing the structural composition (surviving kernels hold exactly
n weights).

Run:  python examples/orthogonal_fusion.py
"""

import numpy as np

from repro.analysis import format_table
from repro.core import (
    PCNNConfig,
    PCNNPruner,
    apply_channel_pruning,
    apply_kernel_pruning,
    channel_keep_for_rate,
    fused_channel_report,
    fused_kernel_report,
    pcnn_compression,
)
from repro.models import patternnet, profile_model, vgg16_cifar, vgg16_imagenet


def table7_accounting() -> None:
    print("Table VII: PCNN n=5 + kernel pruning (VGG-16 / ImageNet)")
    profile = profile_model(
        vgg16_imagenet(rng=np.random.default_rng(0)), (3, 224, 224), model_name="VGG-16/ImageNet"
    )
    cfg = PCNNConfig.uniform(5, 13)
    base = pcnn_compression(profile, cfg)
    rows = [["PCNN n=5 alone", "-", f"{base.weight_compression:.1f}x", "1.8x"]]
    for label, rate, paper in (("A", 2.4, 4.4), ("B", 4.1, 7.3)):
        fused = fused_kernel_report(profile, cfg, kernel_keep_fraction=1 / rate)
        rows.append(
            [f"+ kernel pruning {label}", f"{rate}x", f"{fused.weight_compression:.1f}x",
             f"{paper}x"]
        )
    print(format_table(["setting", "kernel rate", "measured", "paper"], rows))


def table8_accounting() -> None:
    print("\nTable VIII: PCNN + channel pruning (VGG-16 / CIFAR-10)")
    profile = profile_model(
        vgg16_cifar(rng=np.random.default_rng(0)), (3, 32, 32), model_name="VGG-16"
    )
    cfg = PCNNConfig.uniform(2, 13)
    rows = []
    for label, channel_rate, paper in (("A", 9.0, 34.4), ("B", 12.5, 50.3)):
        fused = fused_channel_report(
            profile, cfg, channel_keep_fraction=channel_keep_for_rate(channel_rate)
        )
        rows.append(
            [f"PCNN + channel pruning {label}", f"{channel_rate}x",
             f"{fused.weight_compression:.1f}x", f"{paper}x"]
        )
    print(format_table(["setting", "channel rate", "measured", "paper"], rows))


def mask_level_demo() -> None:
    print("\nMask-level fusion on a real model (PatternNet)")
    model = patternnet(channels=(16, 32), num_classes=4, rng=np.random.default_rng(0))
    pruner = PCNNPruner(model, PCNNConfig.uniform(4, 2))
    pruner.apply()
    apply_kernel_pruning(model, keep_fraction=0.5)
    for name, module in pruner.layers:
        per_kernel = module.weight_mask.reshape(-1, 9).sum(axis=1)
        kept = (per_kernel > 0).mean()
        print(
            f"  {name}: kernels kept {kept:.0%}; surviving kernels hold "
            f"{sorted(set(per_kernel[per_kernel > 0].tolist()))} weights each"
        )

    model2 = patternnet(channels=(16, 32), num_classes=4, rng=np.random.default_rng(0))
    pruner2 = PCNNPruner(model2, PCNNConfig.uniform(2, 2))
    pruner2.apply()
    apply_channel_pruning(model2, keep_fraction=1 / 3)
    for name, module in pruner2.layers:
        per_channel = module.weight_mask.reshape(module.weight_mask.shape[0], -1).sum(axis=1)
        print(
            f"  {name}: {int((per_channel > 0).sum())}/{len(per_channel)} channels "
            f"survive channel pruning on top of n=2 patterns"
        )


if __name__ == "__main__":
    table7_accounting()
    table8_accounting()
    mask_level_demo()
