"""The full PCNN learning pipeline on a trainable model (Sec. IV-A).

pretrain -> pattern distillation (Algorithm 1) -> ADMM fine-tuning ->
hard prune -> masked retraining, on the PatternNet proxy model and the
synthetic dataset (CIFAR-10 substitute — see DESIGN.md). Prints test
accuracy at every stage and the dense-vs-pruned accounting.

Run:  python examples/train_prune_retrain.py  [--quick]
(REPRO_EXAMPLES_SCALE=small also selects the quick run — CI uses this.)
"""

import argparse
import os

import numpy as np

from repro import nn
from repro.core import (
    ADMMFineTuner,
    PCNNConfig,
    PCNNPruner,
    evaluate,
    fit,
    pcnn_compression,
)
from repro.data import ArrayDataset, DataLoader, make_synthetic_images
from repro.models import patternnet, profile_model


def main(quick: bool = False) -> None:
    seed = 0
    n_train, n_test = (256, 128) if quick else (768, 256)
    epochs = 3 if quick else 8

    x_train, y_train, x_test, y_test = make_synthetic_images(
        n_train=n_train, n_test=n_test, num_classes=10, image_size=16, seed=seed
    )
    loader = DataLoader(
        ArrayDataset(x_train, y_train), batch_size=32, shuffle=True, seed=seed
    )

    model = patternnet(channels=(16, 32, 64), rng=np.random.default_rng(seed))
    profile = profile_model(model, (3, 16, 16), model_name="PatternNet")
    config = PCNNConfig.uniform(2, len(profile.prunable()), num_patterns=8)

    # Stage 1: pre-training (the paper starts from a pre-trained model).
    print("[1/5] pre-training ...")
    fit(model, loader, epochs=epochs, lr=0.01)
    dense_acc = evaluate(model, x_test, y_test)
    print(f"      dense accuracy: {dense_acc:.3f}")

    # Stage 2: KP-based pattern distillation (Algorithm 1).
    print("[2/5] distilling patterns (Algorithm 1) ...")
    pruner = PCNNPruner(model, config)
    distilled = pruner.distill()
    patterns = {name: result.patterns for name, result in distilled.items()}
    for name, result in distilled.items():
        print(
            f"      {name}: kept {len(result.patterns)}/{result.candidate_count} "
            f"patterns, residual {result.residual:.2f}"
        )

    # Stage 3: ADMM fine-tuning under the pattern constraint.
    print("[3/5] ADMM fine-tuning ...")
    tuner = ADMMFineTuner(model, patterns, rho=0.05)
    optimizer = nn.SGD(model.parameters(), lr=0.05, momentum=0.9)
    tuner.run(loader, epochs=max(2, epochs // 2), optimizer=optimizer)
    print(f"      primal residual after ADMM: {tuner.primal_residual():.3f}")

    # Stage 4: hard prune (exact projection) + install masks.
    print("[4/5] hard pruning onto patterns ...")
    tuner.finalize()
    hard_acc = evaluate(model, x_test, y_test)
    print(f"      accuracy right after hard prune: {hard_acc:.3f}")

    # Stage 5: masked retraining.
    print("[5/5] masked retraining ...")
    fit(model, loader, epochs=max(2, epochs // 2), lr=0.01)
    final_acc = evaluate(model, x_test, y_test)

    report = pcnn_compression(profile, config)
    print("\nresults")
    print(f"  dense accuracy    : {dense_acc:.3f}")
    print(f"  PCNN accuracy     : {final_acc:.3f}  (loss {dense_acc - final_acc:+.3f})")
    print(f"  weight compression: {report.weight_compression:.1f}x")
    print(f"  weight+idx        : {report.weight_idx_compression:.1f}x")
    print(f"  FLOPs pruned      : {report.flops_pruned_fraction:.1%}")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="smaller/faster run")
    args = parser.parse_args()
    main(args.quick or os.environ.get("REPRO_EXAMPLES_SCALE") == "small")
