"""Benchmark-regression guard for CI.

Compares freshly generated benchmark records (``benchmarks/common.py
--smoke`` writes ``BENCH_runtime.json`` / ``BENCH_serving.json`` /
``BENCH_quant.json`` into the working tree) against the baselines
committed in git, and fails when a tracked throughput figure drops more
than the allowed fraction.

Policy:

- ``BENCH_runtime.json`` — **hard fail** when any config's compiled
  (or tuned/static-compiled) images/sec drops > 25% below baseline.
  This is the repo's headline serving number; CI-runner noise is
  absorbed by the slack, a structural regression is not. Absolute
  images/sec only transfer between like machines, so when the records'
  ``cpu_count`` fields differ the absolute metrics downgrade to
  warnings and the machine-invariant *ratio* metrics (compiled/eager,
  tuned/static speedups — same-run, same-host by construction) carry
  the hard-fail alone.
- ``BENCH_serving.json`` / ``BENCH_quant.json`` — **warn only**: the
  dynamic-batching and int8 records depend on thread scheduling and are
  noisier; a drop prints a loud warning without failing the build.
- ``BENCH_serving.json`` worker-pool check — **hard fail**, within-run
  and therefore machine-invariant (no baseline needed): the
  ``pcnn_n2_p4_procs2`` row's interleaved paired ratio must hold
  ``procs2 >= 0.9x`` single-process on a 1-core host (ring overhead
  bounded) and ``>= 1.5x`` with 2 or more cores (the past-the-GIL
  scaling actually materialises). The paired metric times both servers
  back-to-back per round and takes the round-ratio median, so host load
  spikes cannot produce a false failure. The row's shared-image attach
  counters must also show every worker attached (``image_copied == 0``).
- ``BENCH_serving.json`` chaos check — **hard fail**, within-run: the
  ``pcnn_n2_p4_chaos`` row SIGKILLs one of two workers mid-burst, so
  zero admitted requests may be dropped (``dropped == 0``,
  ``completed == admitted``), every answer must match ``predict``
  exactly, and the supervisor must heal the pool back to both workers
  without exhausting its restart budget.
- ``BENCH_serving.json`` fleet check — **hard fail**, within-run: the
  ``fleet_3models_budget`` row saturates three tenants at 2:1:1
  weights under a memory budget below their combined working set; no
  admitted request may fail, at least one demotion must occur, the
  byte ledger must end non-negative, and no tenant may be starved
  below half its weight share.
- ``BENCH_runtime.json`` kernel check (``--runtime-only`` runs just
  this) — **hard fail**, within-run: the ``winograd`` row's schedules
  must agree with the im2col reference within 1e-4 and cover at least
  8 flagship layers; the ``int8_int32`` row's blocked integer kernel
  must be bit-identical to the reference integer GEMM and its pipeline
  within 2% of the float-carried one; the ``trace_executor`` row must
  beat per-op dispatch by 1.1x at batch 1. A flagship
  ``speedup_tuned_vs_compiled`` below 0.95 additionally **warns** that
  measured tuning went slower than the static default beyond probe
  noise.
- ``BENCH_serving.json`` load-scenario check — **hard fail**, within-run:
  the trace-driven ``scenario_*`` rows (``benchmarks/loadgen.py``) must
  show zero dropped admitted frames, transport answers matching
  ``predict`` (stream within 1e-5 — raw float64 tensor bytes leave no
  excuse; HTTP within 1e-4), and a nonzero delta-cache hit rate in the
  near-duplicate stream scenario. The steady/burst/near-duplicate rows
  are required; other scenario rows are checked when present.

Usage::

    cp BENCH_*.json /tmp/bench-baseline/      # before regenerating
    python benchmarks/common.py --smoke       # writes fresh records
    python scripts/bench_guard.py --baseline-dir /tmp/bench-baseline
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, Iterator, List, Tuple

#: Allowed fractional drop before a tracked metric counts as regressed.
DEFAULT_TOLERANCE = 0.25

#: Per-file policy: metric paths to compare and whether a drop fails CI.
#: Paths are dotted, with ``*`` matching every key at that level.
#: ``same_machine_only`` metrics are absolute throughputs — they hard-
#: fail only when baseline and fresh record agree on ``cpu_count``
#: (otherwise they downgrade to warnings); ``metrics`` entries are
#: within-run ratios and compare across machines.
TRACKED = {
    "BENCH_runtime.json": {
        "hard_fail": True,
        "metrics": [
            "configs.*.speedup_compiled_vs_eager",
            "configs.*.speedup_tuned_vs_static",
            "configs.*.speedup_winograd_vs_im2col",
            "configs.*.speedup_int_vs_float_gemm",
            "configs.*.speedup_trace_vs_dispatch",
        ],
        "same_machine_only": [
            "configs.*.compiled_images_per_sec",
            "configs.*.tuned_images_per_sec",
            "configs.*.static_images_per_sec",
            "configs.*.winograd_images_per_sec",
            "configs.*.int_gemm_images_per_sec",
            "configs.*.trace_images_per_sec",
        ],
    },
    "BENCH_serving.json": {
        "hard_fail": False,
        "metrics": ["configs.*.requests_per_sec"],
    },
    "BENCH_quant.json": {
        "hard_fail": False,
        "metrics": [
            "float32_images_per_sec",
            "int8_images_per_sec",
            "speedup_int8_vs_float32",
        ],
    },
}


def _resolve(record: dict, path: str) -> Iterator[Tuple[str, float]]:
    """Yield ``(concrete_path, value)`` for a dotted path with ``*``."""
    parts = path.split(".")

    def walk(node, parts: List[str], trail: List[str]):
        if not parts:
            if isinstance(node, (int, float)):
                yield ".".join(trail), float(node)
            return
        head, rest = parts[0], parts[1:]
        if head == "*":
            if isinstance(node, dict):
                for key, child in node.items():
                    yield from walk(child, rest, trail + [key])
        elif isinstance(node, dict) and head in node:
            yield from walk(node[head], rest, trail + [head])

    yield from walk(record, parts, [])


def compare(
    baseline: dict, fresh: dict, metrics: List[str], tolerance: float
) -> Tuple[List[str], List[str]]:
    """Return (regressions, notes) comparing tracked metrics."""
    regressions, notes = [], []
    fresh_values: Dict[str, float] = {}
    for metric in metrics:
        fresh_values.update(dict(_resolve(fresh, metric)))
    for metric in metrics:
        for path, base_value in _resolve(baseline, metric):
            new_value = fresh_values.get(path)
            if new_value is None:
                notes.append(f"{path}: present in baseline, missing fresh")
                continue
            if base_value <= 0:
                continue
            ratio = new_value / base_value
            line = f"{path}: {base_value:.2f} -> {new_value:.2f} ({ratio:.2f}x)"
            if ratio < 1.0 - tolerance:
                regressions.append(line)
            else:
                notes.append(line)
    return regressions, notes


#: Paired-ratio floors for the worker-pool serving row, keyed by "does
#: the host have real parallelism to exploit".
PROCS_RATIO_FLOOR_1CORE = 0.9
PROCS_RATIO_FLOOR_MULTICORE = 1.5


def check_worker_pool(fresh: dict) -> Tuple[List[str], List[str]]:
    """Within-run worker-pool checks on a fresh BENCH_serving.json.

    Machine-invariant by construction — every number compared here was
    produced in one run on one host — so these hard-fail even when no
    baseline record exists or the hardware changed.
    """
    failures: List[str] = []
    notes: List[str] = []
    row = fresh.get("configs", {}).get("pcnn_n2_p4_procs2")
    if row is None:
        failures.append("pcnn_n2_p4_procs2: row missing from fresh record")
        return failures, notes

    copied = row.get("image_copied")
    attached = row.get("image_attached")
    if copied != 0:
        failures.append(
            f"pcnn_n2_p4_procs2: workers copied the weight image "
            f"(copied={copied}, attached={attached}) — shared mapping broken"
        )
    else:
        notes.append(
            f"pcnn_n2_p4_procs2: image attached {attached} arrays, copied 0"
        )
    alive, procs = row.get("workers_alive"), row.get("worker_procs")
    if alive != procs:
        failures.append(
            f"pcnn_n2_p4_procs2: only {alive}/{procs} workers alive at "
            f"end of run"
        )

    paired = row.get("paired", {})
    ratio = paired.get("throughput_ratio_p50")
    if ratio is None:
        failures.append("pcnn_n2_p4_procs2: paired ratio missing from fresh record")
        return failures, notes
    cpus = fresh.get("effective_cpus") or fresh.get("cpu_count") or 1
    floor = PROCS_RATIO_FLOOR_1CORE if cpus < 2 else PROCS_RATIO_FLOOR_MULTICORE
    line = (
        f"pcnn_n2_p4_procs2: paired ratio {ratio:.3f}x vs single-process "
        f"(floor {floor}x on {cpus} cpu{'s' if cpus != 1 else ''}, "
        f"single {paired.get('single_ms_p50')} ms / "
        f"procs {paired.get('procs_ms_p50')} ms per flush)"
    )
    if ratio < floor:
        failures.append(line)
    else:
        notes.append(line)
    return failures, notes


def check_chaos(fresh: dict) -> Tuple[List[str], List[str]]:
    """Within-run chaos invariants on a fresh BENCH_serving.json.

    The chaos row already injected the fault (one of two workers
    SIGKILLed mid-burst); this check asserts what production cares
    about — no admitted request was dropped, answers stayed exact, and
    the pool healed — all from a single run, no baseline needed.
    """
    failures: List[str] = []
    notes: List[str] = []
    row = fresh.get("configs", {}).get("pcnn_n2_p4_chaos")
    if row is None:
        failures.append("pcnn_n2_p4_chaos: row missing from fresh record")
        return failures, notes

    admitted = row.get("admitted")
    completed = row.get("completed")
    dropped = row.get("dropped")
    if dropped != 0 or completed != admitted:
        failures.append(
            f"pcnn_n2_p4_chaos: {dropped} of {admitted} admitted requests "
            f"dropped under a worker kill ({completed} completed) — "
            f"admitted traffic must always be served"
        )
    else:
        notes.append(
            f"pcnn_n2_p4_chaos: all {admitted} admitted requests served "
            f"through a worker SIGKILL (0 dropped)"
        )
    diff = row.get("max_abs_diff_vs_predict")
    if diff is None or diff > 1e-5:
        failures.append(
            f"pcnn_n2_p4_chaos: replayed answers diverged from predict "
            f"(max_abs_diff={diff})"
        )
    alive = row.get("workers_alive_end")
    if alive != 2:
        failures.append(
            f"pcnn_n2_p4_chaos: pool did not heal back to 2 workers "
            f"(alive={alive}, restarts={row.get('restarts')})"
        )
    else:
        notes.append(
            f"pcnn_n2_p4_chaos: pool healed to {alive}/2 workers "
            f"({row.get('restarts')} restart(s), degraded={row.get('degraded')})"
        )
    if row.get("degraded"):
        failures.append(
            "pcnn_n2_p4_chaos: a single kill exhausted the restart budget "
            "(pool marked degraded)"
        )
    return failures, notes


def check_fleet(fresh: dict) -> Tuple[List[str], List[str]]:
    """Within-run multi-tenant fleet invariants on BENCH_serving.json.

    The ``fleet_3models_budget`` row saturates three tenants at 2:1:1
    weights under a memory budget below their combined working set.
    Hard-fails (no baseline needed):

    - any admitted request failed (residency must be invisible to
      admitted traffic);
    - the budget never bit (``demotions_total`` 0 — the row would not be
      testing anything);
    - the ledger went negative (double discharge — a leak in reverse);
    - a tenant starved: observed share below **0.5x** its weight share
      (weighted fairness collapsed, not just jittered).
    """
    failures: List[str] = []
    notes: List[str] = []
    row = fresh.get("configs", {}).get("fleet_3models_budget")
    if row is None:
        failures.append("fleet_3models_budget: row missing from fresh record")
        return failures, notes

    failed_requests = row.get("failed_requests", 0)
    late = row.get("late_failures") or []
    if failed_requests or late:
        failures.append(
            f"fleet_3models_budget: {failed_requests} admitted requests "
            f"failed under budget pressure ({len(late)} at drain) — "
            f"demotion/eviction must never fail admitted traffic"
        )
    demotions = row.get("demotions_total", 0)
    if demotions < 1:
        failures.append(
            "fleet_3models_budget: budget never forced a demotion — the "
            "row is not exercising residency"
        )
    charged = row.get("charged_bytes_end")
    if charged is None or charged < 0:
        failures.append(
            f"fleet_3models_budget: ledger ended negative "
            f"(charged_bytes_end={charged}) — double discharge"
        )
    starved = []
    for name, tenant in (row.get("tenants") or {}).items():
        weight_share = tenant.get("weight_share") or 0.0
        observed = tenant.get("observed_share") or 0.0
        if observed < 0.5 * weight_share:
            starved.append(
                f"{name} (observed {observed:.3f} < 0.5 x weight share "
                f"{weight_share:.3f}, {tenant.get('requests')} reqs)"
            )
    if starved:
        failures.append(
            "fleet_3models_budget: tenant starved under weighted-fair "
            "scheduling: " + "; ".join(starved)
        )
    if not failures:
        shares = ", ".join(
            f"{name}={tenant['observed_share']:.3f}/{tenant['weight_share']:.3f}"
            for name, tenant in sorted((row.get("tenants") or {}).items())
        )
        notes.append(
            f"fleet_3models_budget: 0 failed requests, {demotions} "
            f"demotion(s), ledger {charged} B >= 0, shares obs/weight "
            f"[{shares}]"
        )
    return failures, notes


#: Scenario rows every fresh BENCH_serving.json must carry (the CI
#: load-scenarios job may add more; extras are checked when present).
REQUIRED_SCENARIOS = (
    "scenario_steady_http",
    "scenario_steady_stream",
    "scenario_burst_http",
    "scenario_burst_stream",
    "scenario_near_duplicate_stream",
)

#: Transport-vs-predict divergence ceilings. The stream transport moves
#: raw float64 tensor bytes, so it is held to the tighter bound; HTTP
#: round-trips through JSON number formatting.
SCENARIO_DIFF_CEILING = {"stream": 1e-5, "http": 1e-4}


def check_load_scenarios(fresh: dict) -> Tuple[List[str], List[str]]:
    """Within-run trace-replay invariants on a fresh BENCH_serving.json.

    Every ``scenario_*`` row is open-loop traffic from a committed
    arrival trace, so the checks are machine-invariant: counts and
    divergences from one run on one host. Hard-fails:

    - a required scenario row is missing (the harness stopped covering a
      claimed workload);
    - admitted frames dropped (``completed != admitted``) — shedding is
      reported, silent loss is not tolerated on either transport;
    - answers diverged from ``predict`` past the transport's ceiling;
    - the near-duplicate stream scenario produced zero delta-cache hits
      (the cache stopped doing its one job).
    """
    failures: List[str] = []
    notes: List[str] = []
    configs = fresh.get("configs", {})
    rows = {
        key: row for key, row in configs.items()
        if key.startswith("scenario_")
    }
    for key in REQUIRED_SCENARIOS:
        if key not in rows:
            failures.append(f"{key}: required scenario row missing from fresh record")
    for key, row in sorted(rows.items()):
        admitted = row.get("admitted")
        completed = row.get("completed")
        dropped = row.get("dropped")
        if dropped != 0 or completed != admitted:
            failures.append(
                f"{key}: {dropped} of {admitted} admitted frames dropped "
                f"({completed} completed) — admitted traffic must always "
                f"be answered"
            )
        ceiling = SCENARIO_DIFF_CEILING.get(row.get("transport"), 1e-5)
        diff = row.get("max_abs_diff_vs_predict")
        if diff is None or diff > ceiling:
            failures.append(
                f"{key}: answers diverged from predict "
                f"(max_abs_diff={diff}, ceiling {ceiling:g})"
            )
        if row.get("scenario") == "near_duplicate":
            hits = row.get("cache_hits", 0)
            if not hits:
                failures.append(
                    f"{key}: zero delta-cache hits on the near-duplicate "
                    f"workload — the per-stream cache is not engaging"
                )
            else:
                notes.append(
                    f"{key}: {hits} delta-cache hits "
                    f"({row.get('cache_hit_rate', 0):.0%} of completed)"
                )
    if rows and not failures:
        summary = ", ".join(
            f"{key.removeprefix('scenario_')} p99 {row.get('p99_ms')} ms"
            f"/shed {row.get('shed_total')}"
            for key, row in sorted(rows.items())
        )
        notes.append(f"scenario rows: 0 dropped, within tolerance [{summary}]")
    return failures, notes


#: Floor for the within-run trace-executor paired ratio: thunk replay
#: must beat per-op dispatch by at least this much at batch 1, where
#: dispatch overhead is the largest fraction of a forward.
TRACE_SPEEDUP_FLOOR = 1.1

#: Ceiling on the relative output difference between the integer int8
#: GEMM pipeline and the float-carried one. The GEMM accumulations are
#: both exact; only the requantize epilogue's rounding precision
#: differs, so the outputs must stay within a sliver of the
#: quantization error itself.
INT8_KERNEL_REL_DIFF_CEILING = 0.02

#: Tuned-vs-compiled ratio below which the guard warns that measured
#: tuning made the flagship pipeline slower than the static default
#: (the tuner's candidate set includes the default, so parity minus
#: probe noise is the expectation).
TUNED_VS_COMPILED_NOISE_FLOOR = 0.95


def check_runtime_kernels(fresh: dict) -> Tuple[List[str], List[str]]:
    """Within-run kernel invariants on a fresh BENCH_runtime.json.

    Machine-invariant (every number comes from one run on one host), so
    these hard-fail without any baseline:

    - ``winograd`` row: the fast-convolution schedules must agree with
      the im2col reference within the repo-wide 1e-4 budget, and the
      flagship model must actually run enough layers on them
      (``winograd_layers >= 8``) for the row to mean anything;
    - ``int8_int32`` row: the blocked integer kernel must be
      bit-identical to the reference integer GEMM
      (``kernel_bit_exact_vs_reference``), and the integer pipeline's
      outputs must stay within ``INT8_KERNEL_REL_DIFF_CEILING`` of the
      float-carried pipeline (same scales, same codes — only the
      epilogue's rounding precision differs);
    - ``trace_executor`` row: thunk replay must beat per-op dispatch by
      ``TRACE_SPEEDUP_FLOOR`` at batch 1 and match it numerically.

    Plus one warning: flagship ``speedup_tuned_vs_compiled`` below
    ``TUNED_VS_COMPILED_NOISE_FLOOR`` means measured tuning picked
    schedules slower than the static default beyond probe noise.
    """
    failures: List[str] = []
    notes: List[str] = []
    configs = fresh.get("configs", {})

    wino = configs.get("winograd")
    if wino is None:
        failures.append("winograd: row missing from fresh record")
    else:
        diff = wino.get("max_abs_diff_winograd_vs_im2col")
        if diff is None or diff > 1e-4:
            failures.append(
                f"winograd: schedules diverged from the im2col reference "
                f"(max_abs_diff={diff}, ceiling 1e-4)"
            )
        layers = wino.get("winograd_layers", 0)
        if layers < 8:
            failures.append(
                f"winograd: only {layers} layers on a Winograd schedule "
                f"(floor 8) — the pass stopped covering the flagship model"
            )
        if not failures:
            notes.append(
                f"winograd: {layers} layers, "
                f"{wino.get('speedup_winograd_vs_im2col')}x vs im2col, "
                f"diff {diff:.1e}"
            )

    int8_row = configs.get("int8_int32")
    if int8_row is None:
        failures.append("int8_int32: row missing from fresh record")
    else:
        if not int8_row.get("kernel_bit_exact_vs_reference"):
            failures.append(
                "int8_int32: blocked integer kernel is not bit-identical "
                "to the reference integer GEMM — the exactness "
                "certificate is broken"
            )
        rel = int8_row.get("rel_diff_int_vs_float_gemm")
        if rel is None or rel > INT8_KERNEL_REL_DIFF_CEILING:
            failures.append(
                f"int8_int32: integer pipeline diverged from the "
                f"float-carried reference (rel_diff={rel}, ceiling "
                f"{INT8_KERNEL_REL_DIFF_CEILING})"
            )
        if int8_row.get("kernel_bit_exact_vs_reference") and rel is not None:
            notes.append(
                f"int8_int32: kernel '{int8_row.get('int8_kernel')}' "
                f"bit-exact, pipeline rel diff {rel:.1e}, "
                f"{int8_row.get('speedup_int_vs_float_gemm')}x vs "
                f"float-carried GEMM"
            )

    trace = configs.get("trace_executor")
    if trace is None:
        failures.append("trace_executor: row missing from fresh record")
    else:
        diff = trace.get("max_abs_diff_trace_vs_dispatch")
        if diff is None or diff > 1e-4:
            failures.append(
                f"trace_executor: trace replay diverged from per-op "
                f"dispatch (max_abs_diff={diff})"
            )
        speedup = trace.get("speedup_trace_vs_dispatch")
        line = (
            f"trace_executor: {speedup}x vs dispatch at batch 1 "
            f"(floor {TRACE_SPEEDUP_FLOOR}x)"
        )
        if speedup is None or speedup < TRACE_SPEEDUP_FLOOR:
            failures.append(line)
        else:
            notes.append(line)

    flagship = configs.get("pcnn_n2_p8", {})
    tuned_ratio = flagship.get("speedup_tuned_vs_compiled")
    if tuned_ratio is not None and tuned_ratio < TUNED_VS_COMPILED_NOISE_FLOOR:
        notes.append(
            f"WARN tuned pipeline slower than static compiled beyond "
            f"probe noise ({tuned_ratio}x < "
            f"{TUNED_VS_COMPILED_NOISE_FLOOR}x) — the tuning cache may "
            f"hold stale schedules for this host"
        )
    return failures, notes


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline-dir", help="directory holding the committed records"
    )
    parser.add_argument(
        "--fresh-dir", default=".", help="directory holding the regenerated records"
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help="allowed fractional drop (default 0.25)",
    )
    parser.add_argument(
        "--serving-only", action="store_true",
        help="skip baseline comparisons; run only the within-run "
        "BENCH_serving.json invariant checks (machine-independent)",
    )
    parser.add_argument(
        "--runtime-only", action="store_true",
        help="skip baseline comparisons; run only the within-run "
        "BENCH_runtime.json kernel invariant checks — winograd-vs-im2col "
        "divergence, int8 kernel exactness, trace-executor floor "
        "(machine-independent)",
    )
    args = parser.parse_args(argv)
    skip_baselines = args.serving_only or args.runtime_only
    if args.baseline_dir is None and not skip_baselines:
        parser.error(
            "--baseline-dir is required unless --serving-only/--runtime-only"
        )

    failed = False
    for name, policy in () if skip_baselines else TRACKED.items():
        base_path = os.path.join(args.baseline_dir, name)
        fresh_path = os.path.join(args.fresh_dir, name)
        if not os.path.exists(base_path):
            print(f"[bench-guard] {name}: no baseline, skipping")
            continue
        if not os.path.exists(fresh_path):
            print(f"[bench-guard] {name}: no fresh record, skipping")
            continue
        with open(base_path) as fh:
            baseline = json.load(fh)
        with open(fresh_path) as fh:
            fresh = json.load(fh)
        same_machine = baseline.get("cpu_count") == fresh.get("cpu_count")
        metrics = list(policy["metrics"])
        absolute = list(policy.get("same_machine_only", ()))
        if same_machine:
            metrics += absolute
            absolute = []
        regressions, notes = compare(baseline, fresh, metrics, args.tolerance)
        if absolute:
            # Different hardware: absolute throughput does not transfer,
            # so these drops warn instead of failing.
            abs_regressions, abs_notes = compare(
                baseline, fresh, absolute, args.tolerance
            )
            notes += abs_notes
            for line in abs_regressions:
                print(
                    f"[bench-guard] {name}: WARN regression (cpu_count "
                    f"differs, absolute ips not comparable) {line}"
                )
        for line in notes:
            print(f"[bench-guard] {name}: {line}")
        severity = "FAIL" if policy["hard_fail"] else "WARN"
        for line in regressions:
            print(f"[bench-guard] {name}: {severity} regression {line}")
        if regressions and policy["hard_fail"]:
            failed = True
    # Within-run worker-pool invariants need only the fresh record.
    if not args.runtime_only:
        serving_fresh = os.path.join(args.fresh_dir, "BENCH_serving.json")
        if os.path.exists(serving_fresh):
            with open(serving_fresh) as fh:
                fresh = json.load(fh)
            for check in (
                check_worker_pool, check_chaos, check_fleet, check_load_scenarios
            ):
                check_failures, check_notes = check(fresh)
                for line in check_notes:
                    print(f"[bench-guard] BENCH_serving.json: {line}")
                for line in check_failures:
                    print(f"[bench-guard] BENCH_serving.json: FAIL {line}")
                    failed = True
        else:
            print(
                "[bench-guard] BENCH_serving.json: no fresh record, "
                "worker-pool check skipped"
            )
    # Within-run kernel invariants on the fresh runtime record.
    if not args.serving_only:
        runtime_fresh = os.path.join(args.fresh_dir, "BENCH_runtime.json")
        if os.path.exists(runtime_fresh):
            with open(runtime_fresh) as fh:
                fresh = json.load(fh)
            check_failures, check_notes = check_runtime_kernels(fresh)
            for line in check_notes:
                print(f"[bench-guard] BENCH_runtime.json: {line}")
            for line in check_failures:
                print(f"[bench-guard] BENCH_runtime.json: FAIL {line}")
                failed = True
        else:
            print(
                "[bench-guard] BENCH_runtime.json: no fresh record, "
                "kernel check skipped"
            )
    if failed:
        print(
            f"[bench-guard] hard-fail: compiled throughput dropped more "
            f"than {args.tolerance:.0%} below the committed baseline, or "
            f"a within-run invariant (worker pool, kernel equivalence, "
            f"trace-executor floor) broke"
        )
        return 1
    print("[bench-guard] OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
