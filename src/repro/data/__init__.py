"""repro.data — synthetic datasets, loaders and augmentation.

Substitutes for CIFAR-10/ImageNet, which are unavailable offline; see
DESIGN.md for why the substitution preserves the paper's accuracy-trend
claims.
"""

from .augment import compose, gaussian_noise, random_crop, random_flip
from .datasets import ArrayDataset, DataLoader
from .synthetic import SyntheticImages, SyntheticSpec, make_synthetic_images

__all__ = [
    "ArrayDataset",
    "DataLoader",
    "SyntheticImages",
    "SyntheticSpec",
    "make_synthetic_images",
    "random_flip",
    "random_crop",
    "gaussian_noise",
    "compose",
]
