"""Synthetic image-classification datasets (CIFAR-10 substitute).

CIFAR-10/ImageNet are unavailable offline, so accuracy experiments run on a
deterministic, procedurally generated dataset (see DESIGN.md substitution
table). Each class is defined by a smooth spectral *prototype* (random
low-frequency Fourier coefficients per channel); samples are prototypes
distorted by random translation, contrast jitter and additive noise. The
task is learnable by a small CNN yet non-trivial: class evidence is spatial
structure, so convolutions (and therefore pruned kernels) matter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

__all__ = ["SyntheticSpec", "SyntheticImages", "make_synthetic_images"]


@dataclass(frozen=True)
class SyntheticSpec:
    """Generation parameters for a synthetic image set."""

    num_classes: int = 10
    image_size: int = 16
    channels: int = 3
    frequency_cutoff: int = 4
    noise_std: float = 0.35
    max_shift: int = 2
    contrast_jitter: float = 0.25


class SyntheticImages:
    """Deterministic generator of class-conditional images.

    Parameters
    ----------
    spec:
        Generation parameters.
    seed:
        Seed controlling both the class prototypes and the sampling noise.
        The same seed always yields the same prototypes, so train and test
        sets drawn from one instance share the class definitions.
    """

    def __init__(self, spec: SyntheticSpec = SyntheticSpec(), seed: int = 0) -> None:
        self.spec = spec
        self._proto_rng = np.random.default_rng(np.random.SeedSequence(seed).spawn(1)[0])
        self._sample_seed = seed + 1
        self.prototypes = self._build_prototypes()

    def _build_prototypes(self) -> np.ndarray:
        """Smooth per-class prototypes via low-frequency inverse FFT."""
        s = self.spec
        size, cut = s.image_size, s.frequency_cutoff
        prototypes = np.zeros((s.num_classes, s.channels, size, size))
        for c in range(s.num_classes):
            for ch in range(s.channels):
                spectrum = np.zeros((size, size), dtype=complex)
                coeffs = self._proto_rng.normal(size=(cut, cut)) + 1j * self._proto_rng.normal(
                    size=(cut, cut)
                )
                spectrum[:cut, :cut] = coeffs
                image = np.real(np.fft.ifft2(spectrum))
                image = (image - image.mean()) / (image.std() + 1e-8)
                prototypes[c, ch] = image
        return prototypes

    def sample(self, n_samples: int, seed: Optional[int] = None) -> Tuple[np.ndarray, np.ndarray]:
        """Draw ``n_samples`` labelled images.

        Returns
        -------
        images:
            Array of shape ``(n, channels, size, size)``, roughly unit scale.
        labels:
            Integer array of shape ``(n,)`` in ``[0, num_classes)``.
        """
        s = self.spec
        rng = np.random.default_rng(self._sample_seed if seed is None else seed)
        labels = rng.integers(0, s.num_classes, size=n_samples)
        images = self.prototypes[labels].copy()

        # Random cyclic shifts (translation invariance pressure).
        if s.max_shift > 0:
            shifts = rng.integers(-s.max_shift, s.max_shift + 1, size=(n_samples, 2))
            for i in range(n_samples):
                images[i] = np.roll(images[i], shift=tuple(shifts[i]), axis=(1, 2))

        # Contrast jitter and additive noise.
        if s.contrast_jitter > 0:
            contrast = 1.0 + rng.uniform(-s.contrast_jitter, s.contrast_jitter, size=(n_samples, 1, 1, 1))
            images *= contrast
        if s.noise_std > 0:
            images += rng.normal(0.0, s.noise_std, size=images.shape)
        return images, labels

    def train_test(
        self, n_train: int, n_test: int, seed: int = 0
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Draw disjoint-stream train and test splits."""
        x_train, y_train = self.sample(n_train, seed=self._sample_seed + 1000 + seed)
        x_test, y_test = self.sample(n_test, seed=self._sample_seed + 2000 + seed)
        return x_train, y_train, x_test, y_test


def make_synthetic_images(
    n_train: int = 512,
    n_test: int = 256,
    num_classes: int = 10,
    image_size: int = 16,
    channels: int = 3,
    seed: int = 0,
    noise_std: float = 0.35,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """One-call helper: build a generator and return train/test splits."""
    spec = SyntheticSpec(
        num_classes=num_classes, image_size=image_size, channels=channels, noise_std=noise_std
    )
    generator = SyntheticImages(spec, seed=seed)
    return generator.train_test(n_train, n_test)
