"""Batch-level data augmentation (numpy, channels-first)."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

__all__ = ["random_flip", "random_crop", "gaussian_noise", "compose"]


def random_flip(images: np.ndarray, rng: np.random.Generator, p: float = 0.5) -> np.ndarray:
    """Horizontally flip each image independently with probability ``p``."""
    flip = rng.random(len(images)) < p
    out = images.copy()
    out[flip] = out[flip, :, :, ::-1]
    return out


def random_crop(images: np.ndarray, rng: np.random.Generator, padding: int = 2) -> np.ndarray:
    """Pad by ``padding`` then crop back at a random offset (CIFAR-style)."""
    n, c, h, w = images.shape
    padded = np.pad(images, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out = np.empty_like(images)
    offsets = rng.integers(0, 2 * padding + 1, size=(n, 2))
    for i, (dy, dx) in enumerate(offsets):
        out[i] = padded[i, :, dy : dy + h, dx : dx + w]
    return out


def gaussian_noise(images: np.ndarray, rng: np.random.Generator, std: float = 0.05) -> np.ndarray:
    """Add zero-mean Gaussian noise."""
    return images + rng.normal(0.0, std, size=images.shape)


def compose(*transforms: Callable) -> Callable:
    """Chain augmentations into a single ``(images, rng) -> images``."""

    def apply(images: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        for transform in transforms:
            images = transform(images, rng)
        return images

    return apply
