"""Dataset and DataLoader abstractions for training loops."""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

__all__ = ["ArrayDataset", "DataLoader"]


class ArrayDataset:
    """In-memory dataset of (images, labels) arrays."""

    def __init__(self, images: np.ndarray, labels: np.ndarray) -> None:
        if len(images) != len(labels):
            raise ValueError(
                f"images ({len(images)}) and labels ({len(labels)}) lengths differ"
            )
        self.images = np.asarray(images, dtype=np.float64)
        self.labels = np.asarray(labels, dtype=np.int64)

    def __len__(self) -> int:
        return len(self.images)

    def __getitem__(self, index) -> Tuple[np.ndarray, np.ndarray]:
        return self.images[index], self.labels[index]

    def split(self, fraction: float, seed: int = 0) -> Tuple["ArrayDataset", "ArrayDataset"]:
        """Random split into (first, second) with ``fraction`` in the first."""
        if not 0.0 < fraction < 1.0:
            raise ValueError("fraction must be in (0, 1)")
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(self))
        cut = int(len(self) * fraction)
        first, second = order[:cut], order[cut:]
        return (
            ArrayDataset(self.images[first], self.labels[first]),
            ArrayDataset(self.images[second], self.labels[second]),
        )


class DataLoader:
    """Mini-batch iterator with optional shuffling and augmentation.

    Parameters
    ----------
    dataset:
        Source :class:`ArrayDataset`.
    batch_size:
        Samples per batch; the last batch may be smaller unless
        ``drop_last`` is set.
    shuffle:
        Reshuffle indices at the start of every epoch.
    augment:
        Optional callable ``(images, rng) -> images`` applied per batch
        (see :mod:`repro.data.augment`).
    seed:
        Seed for the shuffle/augment stream.
    """

    def __init__(
        self,
        dataset: ArrayDataset,
        batch_size: int = 32,
        shuffle: bool = False,
        drop_last: bool = False,
        augment=None,
        seed: int = 0,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self.augment = augment
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        order = self._rng.permutation(n) if self.shuffle else np.arange(n)
        end = n - n % self.batch_size if self.drop_last else n
        for start in range(0, end, self.batch_size):
            idx = order[start : start + self.batch_size]
            images = self.dataset.images[idx]
            labels = self.dataset.labels[idx]
            if self.augment is not None:
                images = self.augment(images, self._rng)
            yield images, labels
