"""Optimisers and learning-rate schedules for :mod:`repro.nn`.

The PCNN training pipeline uses SGD with momentum for pre-training and the
ADMM ``W``-update, exactly as the paper's PyTorch setup; Adam is provided
for the fast synthetic-data experiments.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from .layers import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "StepLR", "CosineLR"]


class Optimizer:
    """Base optimiser over a list of parameters."""

    def __init__(self, params: Iterable[Parameter], lr: float) -> None:
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with momentum and weight decay."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ) -> None:
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, velocity in zip(self.params, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = grad + self.momentum * velocity if self.nesterov else velocity
            else:
                update = grad
            param.data -= self.lr * update


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba) with bias correction."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for param, m, v in zip(self.params, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class StepLR:
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        self.epoch += 1
        drops = self.epoch // self.step_size
        self.optimizer.lr = self.base_lr * (self.gamma**drops)


class CosineLR:
    """Cosine annealing from the base LR to ``eta_min`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0) -> None:
        self.optimizer = optimizer
        self.t_max = t_max
        self.eta_min = eta_min
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        self.epoch += 1
        t = min(self.epoch, self.t_max)
        self.optimizer.lr = self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (
            1.0 + np.cos(np.pi * t / self.t_max)
        )
