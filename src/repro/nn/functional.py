"""Functional neural-network operations for :mod:`repro.nn`.

Implements the convolution / pooling / normalisation primitives used by the
PCNN models. Convolution is the operation whose sparsity structure the whole
paper is about, so it is written as an explicit im2col + GEMM primitive with
a hand-derived backward pass (col2im); the accelerator simulator in
:mod:`repro.arch` is validated against :func:`conv2d` in the test suite.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .tensor import Tensor

__all__ = [
    "im2col",
    "im2col_nhwc",
    "col2im",
    "conv2d",
    "conv_output_size",
    "pool_windows",
    "pool_windows_nhwc",
    "max_pool2d",
    "avg_pool2d",
    "global_avg_pool2d",
    "linear",
    "batch_norm2d",
    "relu",
    "softmax",
    "log_softmax",
    "dropout",
]


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution/pooling along one dimension."""
    return (size + 2 * padding - kernel) // stride + 1


def im2col(
    x: np.ndarray,
    kernel: Tuple[int, int],
    stride: int,
    padding: int,
    out: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Unfold ``x`` (N, C, H, W) into convolution columns.

    Returns an array of shape ``(N * OH * OW, C * KH * KW)`` and the output
    spatial size ``(OH, OW)``. Column ordering matches the row-major kernel
    position convention used throughout the PCNN pattern code (position
    ``p = row * KW + col``).

    ``out``, when given, must be a C-contiguous ``(N * OH * OW, C * KH * KW)``
    buffer of ``x``'s dtype; the columns are materialised directly into it so
    steady-state callers (the runtime arenas) never allocate. Note that
    ``padding > 0`` still allocates a padded copy of ``x``; allocation-free
    callers pre-pad into their own buffer and pass ``padding=0``.
    (The NHWC variant additionally accepts strided ``out`` sub-views for
    bias-augmented column buffers; this NCHW reference path keeps the
    strict contiguity contract.)
    """
    n, c, h, w = x.shape
    kh, kw = kernel
    oh = conv_output_size(h, kh, stride, padding)
    ow = conv_output_size(w, kw, stride, padding)
    if padding > 0:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))

    # Strided sliding-window view: (N, C, OH, OW, KH, KW).
    sn, sc, sh, sw = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, oh, ow, kh, kw),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )
    if out is not None:
        if out.shape != (n * oh * ow, c * kh * kw) or not out.flags.c_contiguous:
            raise ValueError(
                f"im2col out buffer must be C-contiguous with shape "
                f"{(n * oh * ow, c * kh * kw)}, got {out.shape}"
            )
        # Copy straight into the caller's buffer through a 6-D view of it.
        out.reshape(n, oh, ow, c, kh, kw)[...] = windows.transpose(0, 2, 3, 1, 4, 5)
        return out, (oh, ow)
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(n * oh * ow, c * kh * kw)
    if not cols.flags.c_contiguous:
        cols = np.ascontiguousarray(cols)
    return cols, (oh, ow)


def im2col_nhwc(
    x: np.ndarray,
    kernel: Tuple[int, int],
    stride: int,
    out: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Unfold channels-last ``x`` (N, H, W, C) into convolution columns.

    Returns ``(N * OH * OW, KH * KW * C)`` columns in *kernel-position
    major* order (position ``p = row * KW + col``, then channel) — the
    layout the compiled pipeline's NHWC weight matrices expect. Because
    the channel axis is innermost and contiguous, the window copy runs as
    long contiguous block moves instead of the per-element gathers the
    NCHW unfold degenerates into; this is why the compiled executor keeps
    activations channels-last end to end. Padding is the caller's job
    (pre-pad into an arena buffer) — callers on this path never want the
    per-call ``np.pad``.
    """
    n, h, w, c = x.shape
    kh, kw = kernel
    oh = conv_output_size(h, kh, stride, 0)
    ow = conv_output_size(w, kw, stride, 0)
    sn, sh, sw, sc = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, oh, ow, kh, kw, c),
        strides=(sn, sh * stride, sw * stride, sh, sw, sc),
        writeable=False,
    )
    if out is not None:
        if out.shape != (n * oh * ow, kh * kw * c):
            raise ValueError(
                f"im2col_nhwc out buffer must have shape "
                f"{(n * oh * ow, kh * kw * c)}, got {out.shape}"
            )
        # A strided 6-D view of `out` (works for contiguous buffers and
        # for column sub-views of a bias-augmented (M, K+1) buffer alike).
        so_row, so_el = out.strides
        out_view = np.lib.stride_tricks.as_strided(
            out,
            shape=(n, oh, ow, kh, kw, c),
            strides=(oh * ow * so_row, ow * so_row, so_row, kw * c * so_el, c * so_el, so_el),
        )
        out_view[...] = windows
        return out, (oh, ow)
    cols = windows.reshape(n * oh * ow, kh * kw * c)
    if not cols.flags.c_contiguous:
        cols = np.ascontiguousarray(cols)
    return cols, (oh, ow)


def col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kernel: Tuple[int, int],
    stride: int,
    padding: int,
) -> np.ndarray:
    """Adjoint of :func:`im2col`: scatter-add columns back to image shape."""
    n, c, h, w = x_shape
    kh, kw = kernel
    oh = conv_output_size(h, kh, stride, padding)
    ow = conv_output_size(w, kw, stride, padding)
    hp, wp = h + 2 * padding, w + 2 * padding
    x_padded = np.zeros((n, c, hp, wp), dtype=cols.dtype)
    cols6 = cols.reshape(n, oh, ow, c, kh, kw).transpose(0, 3, 1, 2, 4, 5)
    for i in range(kh):
        for j in range(kw):
            x_padded[:, :, i : i + oh * stride : stride, j : j + ow * stride : stride] += cols6[
                :, :, :, :, i, j
            ]
    if padding > 0:
        return x_padded[:, :, padding:-padding, padding:-padding]
    return x_padded


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2-D convolution (cross-correlation) with autograd.

    Parameters
    ----------
    x:
        Input of shape ``(N, C_in, H, W)``.
    weight:
        Filters of shape ``(C_out, C_in, KH, KW)``. PCNN pruning zeroes
        elements of each ``(KH, KW)`` kernel according to a pattern.
    bias:
        Optional per-output-channel bias of shape ``(C_out,)``.
    """
    n, c_in, h, w = x.shape
    c_out, c_in_w, kh, kw = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"channel mismatch: input has {c_in}, weight expects {c_in_w}")

    # The forward computation runs through the runtime engine's dense
    # backend (identical im2col + GEMM math); the workspace hands back the
    # column matrix the backward pass needs. Imported lazily because the
    # runtime package itself builds on this module.
    from ..runtime import engine as _engine

    workspace: dict = {}
    out = _engine.dispatch(
        x.data,
        weight.data,
        bias=bias.data if bias is not None else None,
        stride=stride,
        padding=padding,
        backend="dense",
        workspace=workspace,
    )
    cols = workspace["cols"]
    w_mat = workspace["w_mat"]

    parents = [x, weight] + ([bias] if bias is not None else [])

    def backward_fn(g: np.ndarray):
        g_mat = g.transpose(0, 2, 3, 1).reshape(-1, c_out)  # (N*OH*OW, C_out)
        grad_weight = (g_mat.T @ cols).reshape(weight.shape)
        grad_cols = g_mat @ w_mat
        grad_x = col2im(grad_cols, x.shape, (kh, kw), stride, padding)
        grads = [grad_x, grad_weight]
        if bias is not None:
            grads.append(g_mat.sum(axis=0))
        return tuple(grads)

    return Tensor._make(out, parents, backward_fn)


def pool_windows(
    x: np.ndarray, kernel: int, stride: int, writeable: bool = False
) -> np.ndarray:
    """Strided ``(N, C, OH, OW, kernel, kernel)`` pooling-window view of ``x``.

    Shared by max/avg pooling (forward and backward) and the runtime's
    compiled pool ops. ``writeable=True`` returns a writable view for
    scatter-style backward passes — only safe when the windows do not
    overlap (``stride >= kernel``), because overlapping windows alias.
    """
    n, c, h, w = x.shape
    oh = conv_output_size(h, kernel, stride, 0)
    ow = conv_output_size(w, kernel, stride, 0)
    sn, sc, sh, sw = x.strides
    return np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, oh, ow, kernel, kernel),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=writeable,
    )


def pool_windows_nhwc(x: np.ndarray, kernel: int, stride: int) -> np.ndarray:
    """Channels-last ``(N, OH, OW, kernel, kernel, C)`` pooling windows.

    The NHWC counterpart of :func:`pool_windows` for the compiled
    pipeline: reductions over the two kernel axes leave the contiguous
    channel axis innermost, so they vectorise.
    """
    n, h, w, c = x.shape
    oh = conv_output_size(h, kernel, stride, 0)
    ow = conv_output_size(w, kernel, stride, 0)
    sn, sh, sw, sc = x.strides
    return np.lib.stride_tricks.as_strided(
        x,
        shape=(n, oh, ow, kernel, kernel, c),
        strides=(sn, sh * stride, sw * stride, sh, sw, sc),
        writeable=False,
    )


def max_pool2d(
    x: Tensor, kernel: int = 2, stride: Optional[int] = None, padding: int = 0
) -> Tensor:
    """Max pooling over strided windows with optional -inf padding."""
    stride = stride or kernel
    if padding > 0:
        # Pad with -inf so padded cells never win the max; gradients to
        # them are dropped by the pad2d backward slice.
        n0, c0, h0, w0 = x.shape
        neg = np.full((n0, c0, h0 + 2 * padding, w0 + 2 * padding), -np.inf)
        neg[:, :, padding:-padding, padding:-padding] = 0.0
        x = x.pad2d(padding) + Tensor(neg)
    n, c, h, w = x.shape
    oh = conv_output_size(h, kernel, stride, 0)
    ow = conv_output_size(w, kernel, stride, 0)

    windows = pool_windows(x.data, kernel, stride)
    flat = windows.reshape(n, c, oh, ow, kernel * kernel)
    argmax = flat.argmax(axis=-1)
    out = np.take_along_axis(flat, argmax[..., None], axis=-1)[..., 0]

    def backward_fn(g: np.ndarray):
        grad_x = np.zeros_like(x.data)
        ki, kj = np.divmod(argmax, kernel)
        n_idx, c_idx, i_idx, j_idx = np.indices((n, c, oh, ow))
        rows = i_idx * stride + ki
        cols_ = j_idx * stride + kj
        np.add.at(grad_x, (n_idx, c_idx, rows, cols_), g)
        return (grad_x,)

    return Tensor._make(out, (x,), backward_fn)


def avg_pool2d(x: Tensor, kernel: int = 2, stride: Optional[int] = None) -> Tensor:
    """Average pooling over windows."""
    stride = stride or kernel
    n, c, h, w = x.shape
    oh = conv_output_size(h, kernel, stride, 0)
    ow = conv_output_size(w, kernel, stride, 0)

    windows = pool_windows(x.data, kernel, stride)
    out = windows.mean(axis=(-1, -2))
    scale = 1.0 / (kernel * kernel)

    def backward_fn(g: np.ndarray):
        grad_x = np.zeros_like(x.data)
        g_scaled = g * scale
        if stride >= kernel:
            # Non-overlapping windows: every input cell appears in at most
            # one window, so the scatter is a single broadcast assignment
            # into the writable window view.
            gw = pool_windows(grad_x, kernel, stride, writeable=True)
            gw[...] = g_scaled[..., None, None]
        else:
            # Overlapping windows alias, so accumulate with one unbuffered
            # scatter-add over broadcast window indices.
            n_idx = np.arange(n)[:, None, None, None, None, None]
            c_idx = np.arange(c)[None, :, None, None, None, None]
            rows = (
                (np.arange(oh) * stride)[None, None, :, None, None, None]
                + np.arange(kernel)[None, None, None, None, :, None]
            )
            cols_ = (
                (np.arange(ow) * stride)[None, None, None, :, None, None]
                + np.arange(kernel)[None, None, None, None, None, :]
            )
            np.add.at(grad_x, (n_idx, c_idx, rows, cols_), g_scaled[..., None, None])
        return (grad_x,)

    return Tensor._make(out, (x,), backward_fn)


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Average over the full spatial extent, returning (N, C)."""
    return x.mean(axis=(2, 3))


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` with ``weight`` of shape (out, in)."""
    out = x @ weight.transpose()
    if bias is not None:
        out = out + bias
    return out


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    return x.relu()


def batch_norm2d(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    training: bool,
    momentum: float = 0.1,
    eps: float = 1e-5,
) -> Tensor:
    """Batch normalisation over (N, H, W) per channel.

    ``running_mean`` / ``running_var`` are plain arrays updated in place when
    ``training`` is true (PyTorch semantics with unbiased running variance).
    """
    c = x.shape[1]
    gamma4 = gamma.reshape(1, c, 1, 1)
    beta4 = beta.reshape(1, c, 1, 1)
    if training:
        mu = x.mean(axis=(0, 2, 3), keepdims=True)
        var = x.var(axis=(0, 2, 3), keepdims=True)
        count = x.size / c
        unbiased = var.data * count / max(count - 1.0, 1.0)
        running_mean *= 1.0 - momentum
        running_mean += momentum * mu.data.reshape(-1)
        running_var *= 1.0 - momentum
        running_var += momentum * unbiased.reshape(-1)
        x_hat = (x - mu) * ((var + eps) ** -0.5)
    else:
        mu = Tensor(running_mean.reshape(1, c, 1, 1))
        var = Tensor(running_var.reshape(1, c, 1, 1))
        x_hat = (x - mu) * ((var + eps) ** -0.5)
    return x_hat * gamma4 + beta4


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def dropout(x: Tensor, p: float, training: bool, rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout; identity when not training or ``p == 0``."""
    if not training or p <= 0.0:
        return x
    rng = rng or np.random.default_rng()
    keep = 1.0 - p
    mask = (rng.random(x.shape) < keep).astype(x.dtype) / keep
    return x * Tensor(mask)
