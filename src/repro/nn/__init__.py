"""repro.nn — from-scratch numpy neural network framework.

This package substitutes for PyTorch in the PCNN reproduction (DESIGN.md):
reverse-mode autograd (:mod:`repro.nn.tensor`), convolution and friends
(:mod:`repro.nn.functional`), a module/layer system, optimisers, losses and
checkpointing.
"""

from . import functional, init
from .layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    Module,
    Parameter,
    ReLU,
    Sequential,
)
from .loss import accuracy, cross_entropy, mse_loss
from .optim import SGD, Adam, CosineLR, Optimizer, StepLR
from .serialization import load_model, load_state, save_model, save_state
from .tensor import Tensor, as_tensor, concatenate, no_grad, stack

__all__ = [
    "Tensor",
    "as_tensor",
    "concatenate",
    "stack",
    "no_grad",
    "functional",
    "init",
    "Module",
    "Parameter",
    "Conv2d",
    "Linear",
    "BatchNorm2d",
    "ReLU",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Dropout",
    "Identity",
    "Sequential",
    "Optimizer",
    "SGD",
    "Adam",
    "StepLR",
    "CosineLR",
    "cross_entropy",
    "mse_loss",
    "accuracy",
    "save_state",
    "load_state",
    "save_model",
    "load_model",
]
