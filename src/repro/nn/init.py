"""Weight initialisation schemes for :mod:`repro.nn` layers.

Kaiming initialisation matches what torchvision's VGG/ResNet use, which
matters for reproducing the pre-training stage of the PCNN pipeline.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["kaiming_normal", "kaiming_uniform", "xavier_uniform", "zeros", "ones"]


def _fan_in_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) == 2:  # Linear: (out, in)
        fan_out, fan_in = shape
    elif len(shape) == 4:  # Conv: (out, in, kh, kw)
        receptive = shape[2] * shape[3]
        fan_in = shape[1] * receptive
        fan_out = shape[0] * receptive
    else:
        raise ValueError(f"unsupported weight shape {shape}")
    return fan_in, fan_out


def kaiming_normal(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He-normal initialisation (gain for ReLU)."""
    fan_in, _ = _fan_in_out(shape)
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He-uniform initialisation (gain for ReLU)."""
    fan_in, _ = _fan_in_out(shape)
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def xavier_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot-uniform initialisation."""
    fan_in, fan_out = _fan_in_out(shape)
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    """All-zero initialisation (biases, BN beta)."""
    return np.zeros(shape)


def ones(shape: Tuple[int, ...]) -> np.ndarray:
    """All-one initialisation (BN gamma)."""
    return np.ones(shape)
