"""Layer/module system for :mod:`repro.nn`.

Provides a ``Module`` base class with parameter registration, train/eval
modes and state-dict (de)serialisation, plus the concrete layers needed by
VGG-16, ResNet-18 and the PatternNet proxy model.

Pruning support: :class:`Conv2d` (and :class:`Linear`) accept a *weight
mask* — a {0,1} array of the weight's shape applied multiplicatively inside
``forward``. Because the mask participates in the autograd graph, masked
weights receive zero gradient and stay zero during retraining, which is
exactly the "hard prune + masked fine-tune" stage of the PCNN flow.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from . import functional as F
from . import init
from .tensor import Tensor

__all__ = [
    "Parameter",
    "Module",
    "Conv2d",
    "Linear",
    "BatchNorm2d",
    "ReLU",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Dropout",
    "Identity",
    "Sequential",
]


class Parameter(Tensor):
    """A trainable tensor; ``requires_grad`` defaults to True."""

    def __init__(self, data, name: Optional[str] = None) -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all layers and models.

    Subclasses assign :class:`Parameter`, :class:`Module` or buffer
    (``numpy.ndarray``) attributes; registration is automatic via
    ``__setattr__``, mirroring PyTorch's ergonomics.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "training", True)

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        elif isinstance(value, np.ndarray):
            self._buffers[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for name, buf in self._buffers.items():
            yield (f"{prefix}{name}", buf)
        for name, module in self._modules.items():
            yield from module.named_buffers(prefix=f"{prefix}{name}.")

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield (prefix.rstrip("."), self)
        for name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{name}.")

    def modules(self) -> Iterator["Module"]:
        for _, module in self.named_modules():
            yield module

    # ------------------------------------------------------------------
    # Modes / gradients
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", mode)
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        state: Dict[str, np.ndarray] = {}
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for name, buf in self.named_buffers():
            state[name] = buf.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        params = dict(self.named_parameters())
        buffers = dict(self.named_buffers())
        for name, value in state.items():
            if name in params:
                if params[name].data.shape != value.shape:
                    raise ValueError(
                        f"shape mismatch for {name}: "
                        f"{params[name].data.shape} vs {value.shape}"
                    )
                params[name].data[...] = value
            elif name in buffers:
                buffers[name][...] = value
            else:
                raise KeyError(f"unexpected key in state dict: {name}")
        # Restored weights invalidate any attached SPM encodings.
        for module in self.modules():
            if isinstance(module, Conv2d) and module.encoded is not None:
                module.attach_encoding(None)

    # ------------------------------------------------------------------
    def forward(self, x: Tensor) -> Tensor:  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs) -> Tensor:
        return self.forward(*args, **kwargs)


class Conv2d(Module):
    """2-D convolution layer with optional pruning mask.

    Weight shape is ``(out_channels, in_channels, kh, kw)``. When a weight
    mask is set via :meth:`set_weight_mask`, ``forward`` computes
    ``conv2d(x, weight * mask)`` so masked positions are pinned at zero for
    both the value and the gradient.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 3,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
        backend: Optional[str] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        # Runtime-engine backend override for inference ("dense", "tiled",
        # ...); None lets repro.runtime.dispatch auto-select per input.
        self.backend = backend
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(init.kaiming_normal(shape, rng), name="conv.weight")
        self.bias = Parameter(init.zeros((out_channels,)), name="conv.bias") if bias else None
        self._weight_mask: Optional[np.ndarray] = None
        self._encoded = None

    @property
    def weight_mask(self) -> Optional[np.ndarray]:
        return self._weight_mask

    def set_weight_mask(self, mask: Optional[np.ndarray]) -> None:
        """Install (or clear with ``None``) a {0,1} pruning mask.

        The mask is deliberately NOT a buffer: it is pruning state, not
        model state (deployment bundles carry it), so it must not leak
        into ``state_dict``.
        """
        if mask is not None:
            mask = np.asarray(mask, dtype=self.weight.data.dtype)
            if mask.shape != self.weight.data.shape:
                raise ValueError(
                    f"mask shape {mask.shape} != weight shape {self.weight.data.shape}"
                )
        object.__setattr__(self, "_weight_mask", mask)
        self._buffers.pop("_weight_mask", None)
        # A new mask invalidates any attached SPM encoding.
        object.__setattr__(self, "_encoded", None)

    @property
    def encoded(self):
        return self._encoded

    def attach_encoding(self, encoded) -> None:
        """Attach (or clear with ``None``) an SPM encoding of this layer.

        Inference-time state for the runtime engine: with an encoding
        attached, the no-grad fast path hands it to
        ``repro.runtime.dispatch`` so the pattern-sparse backend can
        compute straight from SPM storage. The encoding clears
        automatically on the events the framework can see: installing a
        new weight mask, a gradient-mode forward (training updates the
        dense weights the snapshot came from), and ``load_state_dict``.
        Direct in-place surgery on ``weight.data`` is invisible to the
        layer — clear or re-attach manually after it.
        """
        if encoded is not None and tuple(encoded.shape) != self.weight.data.shape:
            raise ValueError(
                f"encoding shape {tuple(encoded.shape)} != weight shape "
                f"{self.weight.data.shape}"
            )
        object.__setattr__(self, "_encoded", encoded)

    def effective_weight(self) -> np.ndarray:
        """Weight array as used in forward (mask applied)."""
        if self._weight_mask is None:
            return self.weight.data
        return self.weight.data * self._weight_mask

    def inference_params(self) -> dict:
        """Fold-ready snapshot of this conv for the compiled pipeline.

        Returns a dict with ``weight`` (mask applied), ``bias``,
        ``encoded``, ``stride``, ``padding`` and ``backend`` — everything
        :func:`repro.runtime.compile_model` needs to lower the layer
        without reaching into private attributes.
        """
        return {
            "weight": self.effective_weight(),
            "bias": self.bias.data if self.bias is not None else None,
            "encoded": self._encoded,
            "stride": self.stride,
            "padding": self.padding,
            "backend": self.backend,
        }

    def forward(self, x: Tensor) -> Tensor:
        from .tensor import is_grad_enabled

        if not is_grad_enabled():
            # Inference fast path: no autograd graph to build, so go
            # straight through the runtime engine (which may pick a
            # sparse or tiled backend) instead of the training conv.
            # With an encoding attached the dense weight is never read,
            # so skip materialising it.
            from ..runtime import engine as _engine

            out = _engine.dispatch(
                x.data,
                self.effective_weight() if self._encoded is None else None,
                encoded=self._encoded,
                bias=self.bias.data if self.bias is not None else None,
                stride=self.stride,
                padding=self.padding,
                backend=self.backend,
            )
            # dtype=None keeps a float32 engine result float32 instead of
            # re-promoting to the training default of float64.
            return Tensor(out, dtype=None)
        if self._encoded is not None:
            # A gradient-mode forward means the weights are about to be
            # (or may already have been) updated; drop the deployment
            # encoding rather than risk stale SPM inference later.
            object.__setattr__(self, "_encoded", None)
        weight = self.weight
        if self._weight_mask is not None:
            weight = weight * Tensor(self._weight_mask)
        return F.conv2d(x, weight, self.bias, stride=self.stride, padding=self.padding)

    def __repr__(self) -> str:
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, "
            f"kernel_size={self.kernel_size}, stride={self.stride}, "
            f"padding={self.padding})"
        )


class Linear(Module):
    """Fully-connected layer ``y = x W^T + b`` with optional pruning mask."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.kaiming_uniform((out_features, in_features), rng), name="linear.weight"
        )
        self.bias = Parameter(init.zeros((out_features,)), name="linear.bias") if bias else None
        self._weight_mask: Optional[np.ndarray] = None

    def set_weight_mask(self, mask: Optional[np.ndarray]) -> None:
        if mask is not None:
            mask = np.asarray(mask, dtype=self.weight.data.dtype)
            if mask.shape != self.weight.data.shape:
                raise ValueError("mask shape mismatch")
        object.__setattr__(self, "_weight_mask", mask)
        self._buffers.pop("_weight_mask", None)

    def forward(self, x: Tensor) -> Tensor:
        weight = self.weight
        if self._weight_mask is not None:
            weight = weight * Tensor(self._weight_mask)
        return F.linear(x, weight, self.bias)

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features})"


class BatchNorm2d(Module):
    """Per-channel batch normalisation with running statistics."""

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5) -> None:
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(init.ones((num_features,)), name="bn.gamma")
        self.beta = Parameter(init.zeros((num_features,)), name="bn.beta")
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)

    def forward(self, x: Tensor) -> Tensor:
        return F.batch_norm2d(
            x,
            self.gamma,
            self.beta,
            self.running_mean,
            self.running_var,
            training=self.training,
            momentum=self.momentum,
            eps=self.eps,
        )

    def fold_params(self) -> Tuple[np.ndarray, np.ndarray]:
        """Per-channel ``(scale, shift)`` of eval-mode BN as an affine map.

        ``BN(x) == x * scale + shift`` with the current running statistics,
        which is exactly what BN folding multiplies into the preceding
        conv's weights and bias (:func:`repro.runtime.compile_model`).
        """
        scale = self.gamma.data / np.sqrt(self.running_var + self.eps)
        shift = self.beta.data - self.running_mean * scale
        return scale, shift

    def __repr__(self) -> str:
        return f"BatchNorm2d({self.num_features})"


class ReLU(Module):
    """ReLU activation module."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class MaxPool2d(Module):
    """Max pooling module."""

    def __init__(
        self, kernel_size: int = 2, stride: Optional[int] = None, padding: int = 0
    ) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size
        self.padding = padding

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride, self.padding)


class AvgPool2d(Module):
    """Average pooling module."""

    def __init__(self, kernel_size: int = 2, stride: Optional[int] = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride)


class GlobalAvgPool2d(Module):
    """Global average pooling, (N, C, H, W) -> (N, C)."""

    def forward(self, x: Tensor) -> Tensor:
        return F.global_avg_pool2d(x)


class Flatten(Module):
    """Flatten trailing dimensions, (N, ...) -> (N, -1)."""

    def forward(self, x: Tensor) -> Tensor:
        return x.flatten(start_dim=1)


class Dropout(Module):
    """Inverted dropout; inactive in eval mode."""

    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.p = p
        self._rng = rng or np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, training=self.training, rng=self._rng)


class Identity(Module):
    """No-op module (used for absent downsample paths in ResNet)."""

    def forward(self, x: Tensor) -> Tensor:
        return x


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._ordered: List[Module] = []
        for i, module in enumerate(modules):
            setattr(self, str(i), module)
            self._ordered.append(module)

    def append(self, module: Module) -> "Sequential":
        index = len(self._ordered)
        setattr(self, str(index), module)
        self._ordered.append(module)
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._ordered)

    def __getitem__(self, index: int) -> Module:
        return self._ordered[index]

    def __len__(self) -> int:
        return len(self._ordered)

    def forward(self, x: Tensor) -> Tensor:
        for module in self._ordered:
            x = module(x)
        return x
