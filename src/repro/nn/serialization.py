"""Model checkpoint save/load for :mod:`repro.nn` (``.npz`` based)."""

from __future__ import annotations

import os
from typing import Dict

import numpy as np

from .layers import Module

__all__ = ["save_state", "load_state", "save_model", "load_model"]


def save_state(state: Dict[str, np.ndarray], path: str) -> None:
    """Write a state dict to ``path`` as a compressed ``.npz`` archive."""
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    # npz keys cannot contain '/', but '.' is fine; keep names verbatim.
    np.savez_compressed(path, **state)


def load_state(path: str) -> Dict[str, np.ndarray]:
    """Read a state dict previously written by :func:`save_state`."""
    with np.load(path) as archive:
        return {key: archive[key] for key in archive.files}


def save_model(model: Module, path: str) -> None:
    """Save a model's parameters and buffers."""
    save_state(model.state_dict(), path)


def load_model(model: Module, path: str) -> Module:
    """Load parameters and buffers into ``model`` in place and return it."""
    model.load_state_dict(load_state(path))
    return model
