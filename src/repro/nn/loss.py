"""Loss functions for :mod:`repro.nn`."""

from __future__ import annotations

import numpy as np

from . import functional as F
from .tensor import Tensor

__all__ = ["cross_entropy", "mse_loss", "accuracy"]


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy between ``logits`` (N, C) and integer ``targets``.

    Uses log-softmax for numerical stability; the gradient is the familiar
    ``softmax(logits) - one_hot(targets)`` scaled by 1/N.
    """
    targets = np.asarray(targets)
    n = logits.shape[0]
    log_probs = F.log_softmax(logits, axis=1)
    picked = log_probs[np.arange(n), targets]
    return -picked.mean()


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error."""
    diff = prediction - target
    return (diff * diff).mean()


def accuracy(logits: Tensor, targets: np.ndarray) -> float:
    """Top-1 classification accuracy in [0, 1]."""
    predictions = logits.data.argmax(axis=1)
    return float((predictions == np.asarray(targets)).mean())
