"""Reverse-mode automatic differentiation over numpy arrays.

This module is the foundation of :mod:`repro.nn`, the from-scratch neural
network framework that substitutes for PyTorch in this reproduction (see
DESIGN.md, substitution table). It provides a :class:`Tensor` wrapping an
``numpy.ndarray`` together with a dynamically built computation graph, and a
``backward`` pass that accumulates gradients via topological traversal.

Only the operations needed by the PCNN training pipeline are implemented,
but they are implemented completely: broadcasting-aware arithmetic, matrix
multiplication, reductions, shape manipulation, indexing and the usual
pointwise nonlinearities. Convolution and pooling live in
:mod:`repro.nn.functional` and register their own backward closures through
the same mechanism.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

Arrayable = Union["Tensor", np.ndarray, float, int, list, tuple]


class _GradMode(threading.local):
    """Per-thread autograd switch (default: recording enabled).

    Thread-local (as in PyTorch) so concurrent inference workers —
    ``runtime.predict(..., workers=N)`` and compiled-pipeline fallbacks —
    can enter/exit ``no_grad`` independently; a process-global flag would
    let one worker's ``__exit__`` re-enable recording in the middle of
    another worker's forward pass.
    """

    enabled = True


_grad_mode = _GradMode()


class no_grad:
    """Context manager that disables graph construction.

    Mirrors ``torch.no_grad``: inside the block every produced tensor has
    ``requires_grad=False`` and no parents, which keeps evaluation cheap.
    The switch is per-thread; entering it on one thread does not affect
    forwards running on others.
    """

    def __enter__(self) -> "no_grad":
        self._prev = _grad_mode.enabled
        _grad_mode.enabled = False
        return self

    def __exit__(self, *exc) -> None:
        _grad_mode.enabled = self._prev


def is_grad_enabled() -> bool:
    """Return whether new operations will be recorded on the graph."""
    return _grad_mode.enabled


def _as_array(value: Arrayable, dtype=np.float64) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    if dtype is None:
        # Dtype-preserving path (inference): keep whatever float precision
        # the caller computed in (float32 stays float32) instead of the
        # training default of promoting everything to float64.
        array = np.asarray(value)
        if not np.issubdtype(array.dtype, np.floating):
            array = array.astype(np.float64)
        return array
    return np.asarray(value, dtype=dtype)


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` after numpy broadcasting.

    Broadcasting may have added leading axes and/or stretched size-1 axes;
    the adjoint of broadcasting is summation over those axes.
    """
    if grad.shape == shape:
        return grad
    # Sum away extra leading dimensions.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were 1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor with reverse-mode autodiff.

    Parameters
    ----------
    data:
        Anything convertible to ``numpy.ndarray``.
    requires_grad:
        Whether gradients should be accumulated into ``self.grad`` during
        :meth:`backward`.
    parents:
        Graph predecessors (internal; set by operations).
    backward_fn:
        Closure mapping the output gradient to a tuple of parent gradients
        (internal; set by operations).
    name:
        Optional debug label.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward_fn", "name")

    def __init__(
        self,
        data: Arrayable,
        requires_grad: bool = False,
        parents: Sequence["Tensor"] = (),
        backward_fn: Optional[Callable[[np.ndarray], Tuple[Optional[np.ndarray], ...]]] = None,
        name: Optional[str] = None,
        dtype=np.float64,
    ) -> None:
        self.data = _as_array(data, dtype)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad) and _grad_mode.enabled
        self._parents: Tuple[Tensor, ...] = tuple(parents) if self.requires_grad else ()
        self._backward_fn = backward_fn if self.requires_grad else None
        self.name = name

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        label = f", name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}{grad_flag}{label})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward_fn: Callable[[np.ndarray], Tuple[Optional[np.ndarray], ...]],
    ) -> "Tensor":
        requires = _grad_mode.enabled and any(p.requires_grad for p in parents)
        # Op results already carry the numerically correct dtype (float64
        # throughout training, float32 on the no-grad float32 fast path);
        # preserve it rather than re-promoting to the float64 default.
        out = Tensor(data, requires_grad=requires, dtype=None)
        if requires:
            out._parents = tuple(parents)
            out._backward_fn = backward_fn
        return out

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        Parameters
        ----------
        grad:
            Gradient of the final objective w.r.t. this tensor. Defaults to
            1 for scalars (the usual loss case).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be supplied for non-scalar backward()")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node._backward_fn is None or not node._parents:
                # Leaf: accumulate.
                if node.grad is None:
                    node.grad = node_grad.copy()
                else:
                    node.grad = node.grad + node_grad
                continue
            parent_grads = node._backward_fn(node_grad)
            for parent, pgrad in zip(node._parents, parent_grads):
                if pgrad is None or not parent.requires_grad:
                    continue
                key = id(parent)
                if key in grads:
                    grads[key] = grads[key] + pgrad
                else:
                    grads[key] = pgrad

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: Arrayable) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data + other.data

        def backward_fn(g: np.ndarray):
            return unbroadcast(g, self.shape), unbroadcast(g, other.shape)

        return Tensor._make(data, (self, other), backward_fn)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward_fn(g: np.ndarray):
            return (-g,)

        return Tensor._make(-self.data, (self,), backward_fn)

    def __sub__(self, other: Arrayable) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data - other.data

        def backward_fn(g: np.ndarray):
            return unbroadcast(g, self.shape), unbroadcast(-g, other.shape)

        return Tensor._make(data, (self, other), backward_fn)

    def __rsub__(self, other: Arrayable) -> "Tensor":
        return Tensor(other) - self

    def __mul__(self, other: Arrayable) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data * other.data

        def backward_fn(g: np.ndarray):
            return (
                unbroadcast(g * other.data, self.shape),
                unbroadcast(g * self.data, other.shape),
            )

        return Tensor._make(data, (self, other), backward_fn)

    __rmul__ = __mul__

    def __truediv__(self, other: Arrayable) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data / other.data

        def backward_fn(g: np.ndarray):
            return (
                unbroadcast(g / other.data, self.shape),
                unbroadcast(-g * self.data / (other.data**2), other.shape),
            )

        return Tensor._make(data, (self, other), backward_fn)

    def __rtruediv__(self, other: Arrayable) -> "Tensor":
        return Tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        data = self.data**exponent

        def backward_fn(g: np.ndarray):
            return (g * exponent * self.data ** (exponent - 1),)

        return Tensor._make(data, (self,), backward_fn)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data @ other.data

        def backward_fn(g: np.ndarray):
            a, b = self.data, other.data
            if a.ndim == 2 and b.ndim == 2:
                return g @ b.T, a.T @ g
            # General batched case.
            ga = g @ np.swapaxes(b, -1, -2)
            gb = np.swapaxes(a, -1, -2) @ g
            return unbroadcast(ga, a.shape), unbroadcast(gb, b.shape)

        return Tensor._make(data, (self, other), backward_fn)

    # ------------------------------------------------------------------
    # Pointwise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward_fn(g: np.ndarray):
            return (g * data,)

        return Tensor._make(data, (self,), backward_fn)

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward_fn(g: np.ndarray):
            return (g / self.data,)

        return Tensor._make(data, (self,), backward_fn)

    def sqrt(self) -> "Tensor":
        return self**0.5

    def relu(self) -> "Tensor":
        mask = self.data > 0
        data = self.data * mask

        def backward_fn(g: np.ndarray):
            return (g * mask,)

        return Tensor._make(data, (self,), backward_fn)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward_fn(g: np.ndarray):
            return (g * (1.0 - data**2),)

        return Tensor._make(data, (self,), backward_fn)

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))

        def backward_fn(g: np.ndarray):
            return (g * data * (1.0 - data),)

        return Tensor._make(data, (self,), backward_fn)

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        data = np.abs(self.data)

        def backward_fn(g: np.ndarray):
            return (g * sign,)

        return Tensor._make(data, (self,), backward_fn)

    def clip(self, low: float, high: float) -> "Tensor":
        mask = (self.data >= low) & (self.data <= high)
        data = np.clip(self.data, low, high)

        def backward_fn(g: np.ndarray):
            return (g * mask,)

        return Tensor._make(data, (self,), backward_fn)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward_fn(g: np.ndarray):
            if axis is None:
                return (np.broadcast_to(g, self.shape).copy(),)
            g_expanded = g
            if not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % self.ndim for a in axes)
                for a in sorted(axes):
                    g_expanded = np.expand_dims(g_expanded, a)
            return (np.broadcast_to(g_expanded, self.shape).copy(),)

        return Tensor._make(data, (self,), backward_fn)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = 1
            for a in axes:
                count *= self.shape[a % self.ndim]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        mu = self.mean(axis=axis, keepdims=True)
        centred = self - mu
        return (centred * centred).mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward_fn(g: np.ndarray):
            full = self.data.max(axis=axis, keepdims=True)
            mask = (self.data == full).astype(self.data.dtype)
            mask /= mask.sum(axis=axis, keepdims=True)
            g_expanded = g
            if not keepdims and axis is not None:
                axes = axis if isinstance(axis, tuple) else (axis,)
                for a in sorted(a % self.ndim for a in axes):
                    g_expanded = np.expand_dims(g_expanded, a)
            elif not keepdims and axis is None:
                g_expanded = np.broadcast_to(g, ())
            return (mask * g_expanded,)

        return Tensor._make(data, (self,), backward_fn)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.shape
        data = self.data.reshape(shape)

        def backward_fn(g: np.ndarray):
            return (g.reshape(original),)

        return Tensor._make(data, (self,), backward_fn)

    def flatten(self, start_dim: int = 1) -> "Tensor":
        lead = self.shape[:start_dim]
        tail = int(np.prod(self.shape[start_dim:])) if self.ndim > start_dim else 1
        return self.reshape(*lead, tail)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward_fn(g: np.ndarray):
            return (g.transpose(inverse),)

        return Tensor._make(data, (self,), backward_fn)

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]

        def backward_fn(g: np.ndarray):
            out = np.zeros_like(self.data)
            np.add.at(out, index, g)
            return (out,)

        return Tensor._make(data, (self,), backward_fn)

    def pad2d(self, padding: int) -> "Tensor":
        """Zero-pad the trailing two (spatial) dimensions symmetrically."""
        if padding == 0:
            return self
        pad_width = [(0, 0)] * (self.ndim - 2) + [(padding, padding), (padding, padding)]
        data = np.pad(self.data, pad_width)

        def backward_fn(g: np.ndarray):
            slices = tuple(
                [slice(None)] * (self.ndim - 2)
                + [slice(padding, -padding), slice(padding, -padding)]
            )
            return (g[slices],)

        return Tensor._make(data, (self,), backward_fn)


def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensors = list(tensors)
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward_fn(g: np.ndarray):
        grads = []
        for i in range(len(tensors)):
            index = [slice(None)] * g.ndim
            index[axis] = slice(offsets[i], offsets[i + 1])
            grads.append(g[tuple(index)])
        return tuple(grads)

    return Tensor._make(data, tensors, backward_fn)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient support."""
    tensors = list(tensors)
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward_fn(g: np.ndarray):
        return tuple(np.take(g, i, axis=axis) for i in range(len(tensors)))

    return Tensor._make(data, tensors, backward_fn)


def as_tensor(value: Arrayable, requires_grad: bool = False) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` (no copy when already one)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, requires_grad=requires_grad)
