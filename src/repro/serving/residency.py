"""Memory-budgeted residency for a multi-tenant model fleet.

A dozen resident PCNN variants each pin compiled plans, arena scratch
and derived GEMM operands — the working set that makes steady-state
serving fast and that, unmanaged, blows the box's memory long before
the weights do. :class:`ResidencyManager` owns that trade. Every tenant
is in one of three states:

- ``resident`` — fully warm: plans, arenas and derived GEMM state live.
- ``demoted`` — workspaces dropped (plan cache + every thread's arena);
  weights and derived operands stay, so the next request re-plans and
  re-allocates but never re-prepares. A warm miss, not a cold start.
- ``evicted`` — derived op state dropped too (GEMM operands, memoized
  SPM gathers). The lowered IR, pass trace and source parameters stay;
  re-admission is a warm ``finalize`` (:meth:`CompiledModel.prepare_ops`)
  + lazy warmup — **never a recompile**.

The *ledger* charges each tenant its reclaimable resident bytes
(derived + plans + arenas, plus any auxiliary charge such as a worker
pool's shared image). When the fleet's total charge exceeds
``budget_bytes``, the manager demotes the least-recently-used resident
tenants, then evicts the least-recently-used demoted ones, until under
budget. Weights themselves are never dropped — a registered tenant can
always serve.

Atomicity against in-flight requests uses per-tenant locks, not a
global pause: the serving layer wraps each tenant's flush in
:meth:`guard`, which holds the tenant's lock for the duration — so a
demotion (which takes the same lock) can never yank an arena out from
under a running GEMM, and a request that lands on a demoted/evicted
tenant promotes it *inside* the guard before running. Victim locks are
only ever acquired non-blocking from the budget enforcer, so a busy
tenant is simply skipped (the fleet rides briefly over budget rather
than deadlocking or failing requests).
"""

from __future__ import annotations

import logging
import threading
import time
from contextlib import contextmanager
from typing import Callable, Dict, List, Optional

__all__ = ["ResidencyManager", "RESIDENT", "DEMOTED", "EVICTED"]

logger = logging.getLogger("repro.serving")

RESIDENT = "resident"
DEMOTED = "demoted"
EVICTED = "evicted"


class _Tenant:
    """One model's residency state (lock serialises flush vs demote)."""

    __slots__ = (
        "name", "compiled", "aux_bytes", "pinned", "state", "charged",
        "last_used", "lock", "demotions", "promotions", "evictions",
    )

    def __init__(
        self,
        name: str,
        compiled,
        aux_bytes: Optional[Callable[[], int]],
        pinned: bool,
    ) -> None:
        self.name = name
        self.compiled = compiled
        self.aux_bytes = aux_bytes
        self.pinned = pinned
        self.state = RESIDENT
        self.charged = 0
        self.last_used = time.monotonic()
        self.lock = threading.RLock()
        self.demotions = 0
        self.promotions = 0
        self.evictions = 0


class ResidencyManager:
    """LRU residency + byte ledger over a fleet's compiled models.

    Parameters
    ----------
    budget_bytes:
        Total reclaimable-byte budget across all tenants; ``None``
        disables enforcement (accounting still runs, so /stats and
        /models report real bytes either way).
    on_event:
        Optional callback ``(kind, model, **detail)`` for demotion /
        promotion / eviction / over-budget events — the server wires
        this into the supervisor's incident log.
    """

    def __init__(
        self,
        budget_bytes: Optional[int] = None,
        *,
        on_event: Optional[Callable[..., None]] = None,
    ) -> None:
        if budget_bytes is not None and budget_bytes < 1:
            raise ValueError("budget_bytes must be >= 1 (or None to disable)")
        self.budget_bytes = budget_bytes
        self._on_event = on_event
        # RLock: _settle (tenant lock held) takes it, and the enforcer
        # inside takes victim tenant locks only non-blocking — so the
        # only blocking order is tenant.lock -> manager lock, never the
        # reverse.
        self._lock = threading.RLock()
        self._tenants: Dict[str, _Tenant] = {}
        self._over_reported = False

    # -- events --------------------------------------------------------
    def _event(self, kind: str, model: str, **detail) -> None:
        if self._on_event is not None:
            try:
                self._on_event(kind, model, **detail)
            except Exception:  # noqa: BLE001 - observability must not wedge serving
                logger.exception("residency event sink failed for %r", model)

    # -- registration --------------------------------------------------
    def admit(
        self,
        name: str,
        compiled,
        *,
        aux_bytes: Optional[Callable[[], int]] = None,
        pinned: bool = False,
    ) -> None:
        """Register a tenant as resident and charge it to the ledger.

        ``compiled`` may be ``None`` (an uncompiled model has no managed
        working set; it is tracked with a zero-ish charge so /models
        still reports it). ``aux_bytes`` adds an auxiliary charge — a
        worker pool's shared-memory image, for instance. ``pinned``
        tenants are counted but never demoted (a multi-process tenant's
        hot state lives in its worker processes; reclaiming it means
        tearing down the pool, which is the supervisor's call, not the
        ledger's).
        """
        tenant = _Tenant(name, compiled, aux_bytes, pinned)
        with self._lock:
            self._tenants[name] = tenant
        self._settle(tenant)

    def forget(self, name: str) -> int:
        """Drop a tenant and release its ledger charge immediately.

        Returns the remaining fleet charge — by construction the sum of
        the surviving tenants' charges, so it can never go negative; the
        bench guard still asserts that invariant end to end.
        """
        with self._lock:
            self._tenants.pop(name, None)
            return self.total_charged()

    def tenant_names(self) -> List[str]:
        """Names of every tracked tenant, in admission order."""
        with self._lock:
            return list(self._tenants)

    # -- the flush-path guard ------------------------------------------
    @contextmanager
    def guard(self, name: str):
        """Serialise one request burst against demotion/eviction.

        Holds the tenant's lock for the duration: promotes first if a
        demotion/eviction landed between requests (so admitted traffic
        never fails on residency), and settles the ledger afterwards.
        Unknown tenants pass through untouched.
        """
        with self._lock:
            tenant = self._tenants.get(name)
        if tenant is None:
            yield
            return
        with tenant.lock:
            self._promote_locked(tenant)
            try:
                yield
            finally:
                self._settle(tenant)

    def touch(self, name: str) -> None:
        """Promote + settle without running anything (warmup path)."""
        with self.guard(name):
            pass

    # -- state transitions (tenant lock held) --------------------------
    def _promote_locked(self, tenant: _Tenant) -> None:
        if tenant.state == RESIDENT:
            return
        was = tenant.state
        if tenant.state == EVICTED and tenant.compiled is not None:
            # Warm finalize: rebuild derived GEMM operands from the
            # retained IR + parameters. No recompile — the pass trace
            # on tenant.compiled.passes is untouched.
            tenant.compiled.prepare_ops()
        tenant.state = RESIDENT
        tenant.promotions += 1
        self._event("tenant_promoted", tenant.name, from_state=was)

    def _demote_locked(self, tenant: _Tenant) -> int:
        freed = 0
        if tenant.compiled is not None:
            freed = tenant.compiled.release_workspaces()
        tenant.state = DEMOTED
        tenant.demotions += 1
        self._event("tenant_demoted", tenant.name, freed_bytes=freed)
        return freed

    def _evict_locked(self, tenant: _Tenant) -> int:
        freed = 0
        if tenant.compiled is not None:
            if tenant.state == RESIDENT:
                freed += tenant.compiled.release_workspaces()
            freed += tenant.compiled.release_derived()
        tenant.state = EVICTED
        tenant.evictions += 1
        self._event("tenant_evicted", tenant.name, freed_bytes=freed)
        return freed

    # -- manual controls (tests, operator endpoints) -------------------
    def demote(self, name: str) -> bool:
        """Demote ``name`` now (blocking on its in-flight requests).
        Returns False for unknown/pinned tenants."""
        with self._lock:
            tenant = self._tenants.get(name)
        if tenant is None or tenant.pinned:
            return False
        with tenant.lock:
            if tenant.state == RESIDENT:
                self._demote_locked(tenant)
                self._recharge(tenant)
        return True

    def evict(self, name: str) -> bool:
        """Fully evict ``name`` now (blocking). False if unknown/pinned."""
        with self._lock:
            tenant = self._tenants.get(name)
        if tenant is None or tenant.pinned:
            return False
        with tenant.lock:
            if tenant.state != EVICTED:
                self._evict_locked(tenant)
                self._recharge(tenant)
        return True

    # -- ledger --------------------------------------------------------
    def _measure(self, tenant: _Tenant) -> int:
        total = 0
        if tenant.compiled is not None:
            total += tenant.compiled.resident_nbytes()
        if tenant.aux_bytes is not None:
            try:
                total += int(tenant.aux_bytes())
            except Exception:  # noqa: BLE001 - a dead pool charges nothing
                pass
        return total

    def _recharge(self, tenant: _Tenant) -> None:
        charge = self._measure(tenant)
        with self._lock:
            tenant.charged = charge

    def _settle(self, tenant: _Tenant) -> None:
        """Post-use accounting: stamp LRU, recharge, enforce budget."""
        tenant.last_used = time.monotonic()
        self._recharge(tenant)
        self._enforce_budget(exclude=tenant)

    def total_charged(self) -> int:
        """The fleet ledger: summed tenant charges (always >= 0)."""
        with self._lock:
            return sum(t.charged for t in self._tenants.values())

    def headroom(self) -> Optional[int]:
        """Budget minus charge (negative while briefly over), or None."""
        if self.budget_bytes is None:
            return None
        return self.budget_bytes - self.total_charged()

    # -- budget enforcement --------------------------------------------
    def _victims(self, state: str, exclude: _Tenant) -> List[_Tenant]:
        with self._lock:
            candidates = [
                t for t in self._tenants.values()
                if t is not exclude and not t.pinned and t.state == state
            ]
        return sorted(candidates, key=lambda t: t.last_used)

    def _reclaim_one(self, state: str, exclude: _Tenant, action) -> bool:
        """Try the LRU victim in ``state``; skip busy tenants (their
        lock is held by an in-flight flush — never block on it here)."""
        for victim in self._victims(state, exclude):
            if not victim.lock.acquire(blocking=False):
                continue
            try:
                action(victim)
                self._recharge(victim)
            finally:
                victim.lock.release()
            return True
        return False

    def _enforce_budget(self, exclude: _Tenant) -> None:
        if self.budget_bytes is None:
            return
        # Phase 1: demote cold resident tenants; phase 2: evict cold
        # demoted tenants. Each reclaim recomputes the ledger, so the
        # fleet stops reclaiming the moment it fits.
        while self.total_charged() > self.budget_bytes:
            if self._reclaim_one(RESIDENT, exclude, self._demote_locked):
                continue
            if self._reclaim_one(DEMOTED, exclude, self._evict_locked):
                continue
            # Nothing left to reclaim (everything else is busy, pinned,
            # or already evicted): ride over budget, say so once.
            if not self._over_reported:
                self._over_reported = True
                self._event(
                    "fleet_over_budget", "",
                    charged_bytes=self.total_charged(),
                    budget_bytes=self.budget_bytes,
                )
            return
        self._over_reported = False

    # -- observability -------------------------------------------------
    def describe_tenant(self, name: str) -> Optional[dict]:
        """JSON-ready residency block for one tenant (/models)."""
        with self._lock:
            tenant = self._tenants.get(name)
        if tenant is None:
            return None
        row = {
            "state": tenant.state,
            "resident": tenant.state == RESIDENT,
            "bytes": tenant.charged,
            "pinned": tenant.pinned,
            "demotions": tenant.demotions,
            "promotions": tenant.promotions,
            "evictions": tenant.evictions,
            "idle_s": round(time.monotonic() - tenant.last_used, 3),
        }
        if tenant.compiled is not None:
            row["memory"] = tenant.compiled.memory_report()
        return row

    def snapshot(self) -> dict:
        """The /stats residency block: ledger + per-tenant states."""
        with self._lock:
            names = list(self._tenants)
        tenants = {}
        for name in names:
            row = self.describe_tenant(name)
            if row is not None:
                row.pop("memory", None)  # /stats stays compact
                tenants[name] = row
        charged = self.total_charged()
        return {
            "budget_bytes": self.budget_bytes,
            "charged_bytes": charged,
            "headroom_bytes": (
                None if self.budget_bytes is None else self.budget_bytes - charged
            ),
            "tenants": tenants,
        }

    def __repr__(self) -> str:
        with self._lock:
            n = len(self._tenants)
        return (
            f"ResidencyManager(tenants={n}, budget={self.budget_bytes}, "
            f"charged={self.total_charged()})"
        )
