"""repro.serving — dynamic-batching model serving on the compiled pipeline.

The layer that turns ``runtime.predict`` into a service:

- :class:`Batcher` — queues single-image requests and coalesces them
  into micro-batches under a ``max_batch`` / ``max_latency_ms`` policy
  (power-of-two flush buckets keep the compiled pipeline's plan/arena
  geometry set small and warmable).
- :class:`ModelServer` — multi-model registry: load by model-registry
  name (optionally PCNN-pruned) or from a ``DeploymentBundle`` ``.npz``
  (restore attaches SPM encodings, so pruned convs serve through the
  pattern path), compile once, warm every bucket at startup.
- :class:`ServerStats` — p50/p95/p99 latency, queue depth, coalesced
  batch-size histogram and throughput, exposed at ``/stats``.
- :class:`ServingHTTPServer` / :func:`serve_http` — stdlib JSON
  endpoint; ``pcnn-repro serve`` is the CLI wrapper.
"""

from .batcher import Batcher, bucket_sizes
from .http import ServingHTTPServer, serve_http
from .server import ModelServer, ServedModel
from .stats import ServerStats

__all__ = [
    "Batcher",
    "bucket_sizes",
    "ModelServer",
    "ServedModel",
    "ServerStats",
    "ServingHTTPServer",
    "serve_http",
]
