"""repro.serving — dynamic-batching model serving on the compiled pipeline.

The layer that turns ``runtime.predict`` into a service:

- :class:`Batcher` — queues single-image requests and coalesces them
  into micro-batches under a ``max_batch`` / ``max_latency_ms`` policy
  (power-of-two flush buckets keep the compiled pipeline's plan/arena
  geometry set small and warmable). Bounded queues shed overload with
  :class:`QueueFull` (HTTP 429 + ``Retry-After``), SLO deadlines shed
  stale requests with :class:`SLOExpired` (HTTP 503), and a stopped
  batcher rejects submits with :class:`BatcherClosed`.
- :class:`ModelServer` — multi-model registry: load by model-registry
  name (optionally PCNN-pruned) or from a ``DeploymentBundle`` ``.npz``
  (restore attaches SPM encodings, so pruned convs serve through the
  pattern path), compile once, warm every bucket at startup. Entries
  hot-swap (``add_model(replace=True)`` / ``remove_model``) without
  dropping accepted requests.
- :class:`Supervisor` — heals worker-process pools: heartbeat/liveness
  monitoring, crashed/wedged-worker respawn within a restart budget,
  and the incident log behind ``GET /incidents`` (residency transitions
  land there too).
- :class:`FlushScheduler` — central deficit-weighted round-robin
  dispatcher over every tenant's batcher (per-model ``weight=``), SLO
  deadlines first; under saturation throughput tracks the weights.
- :class:`ResidencyManager` — LRU demotion/eviction of cold tenants'
  reclaimable working sets under ``ModelServer(memory_budget_mb=)``,
  with a byte ledger on ``/stats``/``/models``/``/metrics``; requests
  landing on a cold tenant re-promote it warm (never a recompile).
  Per-tenant ``rate=`` quotas shed over-contract traffic with
  :class:`QuotaExceeded` (HTTP 429 kind ``quota_exceeded``).
- :class:`ServerStats` — p50/p95/p99 latency, queue depth, coalesced
  batch-size histogram and throughput, exposed at ``/stats``;
  :func:`render_metrics` renders the same counters (plus supervision
  state) in Prometheus text format for ``GET /metrics``.
- :class:`ServingHTTPServer` / :func:`serve_http` — stdlib JSON
  endpoint; ``pcnn-repro serve`` is the CLI wrapper.
- :class:`StreamServer` / :class:`StreamClient` — persistent-connection
  binary protocol (:mod:`repro.serving.wire`): length-prefixed tensor
  frames with CRC32, out-of-order completion by request id, typed ERROR
  frames on the same :func:`classify_error` contract as HTTP, and a
  per-stream delta cache answering near-duplicate frames without
  touching the batcher; ``pcnn-repro serve --stream-port`` exposes it.
"""

from .batcher import (
    Batcher,
    BatcherClosed,
    QueueFull,
    QuotaExceeded,
    SLOExpired,
    bucket_sizes,
)
from .errors import ServingError, classify_error, retry_after_seconds
from .http import ServingHTTPServer, serve_http
from .metrics import render_metrics
from .residency import DEMOTED, EVICTED, RESIDENT, ResidencyManager
from .scheduler import FlushScheduler
from .server import ModelServer, ServedModel
from .stats import LATENCY_BUCKETS, ServerStats
from .stream import (
    DEFAULT_DELTA_THRESHOLD,
    StreamClient,
    StreamResult,
    StreamServer,
)
from .supervisor import Incident, RestartBudget, Supervisor
from .wire import Frame, FrameError, FrameReader, WireError

__all__ = [
    "Batcher",
    "BatcherClosed",
    "QueueFull",
    "QuotaExceeded",
    "SLOExpired",
    "bucket_sizes",
    "ModelServer",
    "ServedModel",
    "ServerStats",
    "LATENCY_BUCKETS",
    "FlushScheduler",
    "ResidencyManager",
    "RESIDENT",
    "DEMOTED",
    "EVICTED",
    "Incident",
    "RestartBudget",
    "Supervisor",
    "render_metrics",
    "ServingHTTPServer",
    "serve_http",
    "ServingError",
    "classify_error",
    "retry_after_seconds",
    "StreamServer",
    "StreamClient",
    "StreamResult",
    "DEFAULT_DELTA_THRESHOLD",
    "Frame",
    "FrameError",
    "FrameReader",
    "WireError",
]
