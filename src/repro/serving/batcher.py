"""Dynamic request batching: coalesce single images into micro-batches.

Single-image requests are the unit of traffic a model server receives;
micro-batches are the unit the compiled pipeline is fast at (one GEMM
amortises im2col, plan lookup and Python dispatch over every image in
the chunk — the batching discipline accelerator papers assume at
deployment). :class:`Batcher` bridges the two: requests enqueue, a
worker thread coalesces them under a ``max_batch`` / ``max_latency_ms``
policy, and one runner call serves the whole flush.

Two details matter for the compiled pipeline underneath:

- **Bucketed flush sizes.** Arena buffers and execution plans are keyed
  by batch geometry, so every distinct flush size a serving loop
  produces would keep its own full buffer set alive. The batcher
  therefore pads each flush up to the next power-of-two bucket (capped
  at ``max_batch``) and slices the result — a handful of geometries
  total, all of which :meth:`warmup` can prebuild before traffic
  arrives.
- **Latency is bounded by the first request.** The flush deadline
  starts when the *first* request of a batch arrives; a lone request
  never waits longer than ``max_latency_ms`` for company.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from .stats import ServerStats

__all__ = ["Batcher", "bucket_sizes"]

#: Sentinel pushed on the queue to wake the worker up for shutdown.
_STOP = object()


def bucket_sizes(max_batch: int) -> List[int]:
    """Power-of-two flush buckets up to and including ``max_batch``."""
    if max_batch < 1:
        raise ValueError("max_batch must be >= 1")
    sizes = []
    b = 1
    while b < max_batch:
        sizes.append(b)
        b *= 2
    sizes.append(max_batch)
    return sizes


@dataclass
class _Request:
    """One queued image plus its completion future."""

    x: np.ndarray
    future: "Future[np.ndarray]" = field(default_factory=Future)
    submitted: float = field(default_factory=time.perf_counter)


class Batcher:
    """Queue single-image requests and serve them in coalesced batches.

    Parameters
    ----------
    runner:
        Callable taking a stacked ``(B, ...)`` batch and returning the
        ``(B, ...)`` outputs — typically
        ``lambda x: runtime.predict(compiled, x, workers=N)``.
    max_batch:
        Largest coalesced batch; also the largest bucket geometry.
    max_latency_ms:
        How long the worker waits for more requests after the first one
        of a batch arrives.
    stats:
        Optional shared :class:`ServerStats`; one is created otherwise.
    bucket:
        Pad flushes to power-of-two buckets (see module docstring).
        Disable only when the runner is geometry-insensitive.
    """

    def __init__(
        self,
        runner: Callable[[np.ndarray], np.ndarray],
        *,
        max_batch: int = 32,
        max_latency_ms: float = 2.0,
        stats: Optional[ServerStats] = None,
        bucket: bool = True,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_latency_ms < 0:
            raise ValueError("max_latency_ms must be >= 0")
        self.runner = runner
        self.max_batch = max_batch
        self.max_latency = max_latency_ms / 1e3
        self.stats = stats if stats is not None else ServerStats()
        self.bucket = bucket
        self._queue: "queue.Queue" = queue.Queue()
        self._worker: Optional[threading.Thread] = None
        self._stopping = False
        self._lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------
    @property
    def running(self) -> bool:
        """Whether the coalescing worker thread is alive."""
        return self._worker is not None and self._worker.is_alive()

    def start(self) -> "Batcher":
        """Start the coalescing worker (idempotent); returns self."""
        with self._lock:
            if self.running:
                return self
            self._stopping = False
            self._worker = threading.Thread(
                target=self._loop, name="repro-batcher", daemon=True
            )
            self._worker.start()
        return self

    def stop(self, drain: bool = True) -> None:
        """Stop the worker; by default serve everything already queued."""
        with self._lock:
            worker = self._worker
            if worker is None:
                return
            self._stopping = True
            self._queue.put(_STOP)
        worker.join()
        with self._lock:
            self._worker = None
        if drain:
            self._drain_pending()
        else:
            self._fail_pending(RuntimeError("batcher stopped"))

    def __enter__(self) -> "Batcher":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- client API ----------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Requests currently waiting for a flush (approximate)."""
        return self._queue.qsize()

    def submit(self, x: np.ndarray) -> "Future[np.ndarray]":
        """Enqueue one image; resolves to its single output row."""
        # The check and the put happen under the same lock stop() takes,
        # so a request can never slip onto the queue after stop() has
        # drained it (which would leave its future unresolved forever).
        with self._lock:
            if self._stopping or not self.running:
                raise RuntimeError("batcher is not running (call start())")
            request = _Request(x=np.asarray(x))
            self._queue.put(request)
        return request.future

    def __call__(self, x: np.ndarray, timeout: Optional[float] = None) -> np.ndarray:
        """Synchronous convenience: submit and wait for the result."""
        return self.submit(x).result(timeout=timeout)

    # -- worker --------------------------------------------------------
    def _bucket_size(self, size: int) -> int:
        if not self.bucket or size >= self.max_batch:
            return size
        # Single source of truth with warmup: the smallest bucket from
        # bucket_sizes() that fits, so every flush geometry is one the
        # server prebuilt.
        return min(b for b in bucket_sizes(self.max_batch) if b >= size)

    def _collect(self, first: _Request) -> List[_Request]:
        """Coalesce: wait up to the deadline for up to max_batch peers.

        The deadline is anchored to when the first request was
        *submitted*, not dequeued — a request that already waited out
        its latency budget behind a slow flush is served immediately
        (plus whatever is already queued, which rides along for free).
        """
        batch = [first]
        deadline = first.submitted + self.max_latency
        while len(batch) < self.max_batch:
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                # Deadline passed, but anything already queued rides
                # along for free (no wait).
                try:
                    item = self._queue.get_nowait()
                except queue.Empty:
                    break
            else:
                try:
                    item = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
            if item is _STOP:
                # Re-queue the sentinel so the worker loop still sees it
                # after this flush (and serves anything queued before it).
                self._queue.put(_STOP)
                break
            batch.append(item)
        return batch

    def _flush(self, batch: List[_Request]) -> None:
        # Transition every future to RUNNING first: a future cancelled
        # while queued is dropped here, and the rest can no longer be
        # cancelled — so the set_result/set_exception calls below can
        # never raise InvalidStateError and kill the worker thread.
        batch = [r for r in batch if r.future.set_running_or_notify_cancel()]
        if not batch:
            return
        size = len(batch)
        try:
            x = np.stack([r.x for r in batch])
            target = self._bucket_size(size)
            if target > size:
                pad = np.zeros((target - size,) + x.shape[1:], dtype=x.dtype)
                x = np.concatenate([x, pad])
            start = time.perf_counter()
            for request in batch:
                self.stats.record_queue_wait(start - request.submitted)
            out = self.runner(x)
            seconds = time.perf_counter() - start
            if out.shape[0] != x.shape[0]:
                raise RuntimeError(
                    f"runner returned {out.shape[0]} rows for a "
                    f"{x.shape[0]}-image batch"
                )
        except BaseException as error:  # noqa: BLE001 - forwarded to callers
            self.stats.record_error(size)
            for request in batch:
                request.future.set_exception(error)
            return
        self.stats.record_batch(size, seconds)
        done = time.perf_counter()
        for index, request in enumerate(batch):
            request.future.set_result(out[index])
            self.stats.record_request(done - request.submitted)

    def _loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            self._flush(self._collect(item))

    def _drain_pending(self) -> None:
        """Serve whatever is still queued after the worker exited."""
        pending: List[_Request] = []
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is not _STOP:
                pending.append(item)
        for lo in range(0, len(pending), self.max_batch):
            self._flush(pending[lo : lo + self.max_batch])

    def _fail_pending(self, error: BaseException) -> None:
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return
            if item is not _STOP and item.future.set_running_or_notify_cancel():
                self.stats.record_error()
                item.future.set_exception(error)
