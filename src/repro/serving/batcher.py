"""Dynamic request batching: coalesce single images into micro-batches.

Single-image requests are the unit of traffic a model server receives;
micro-batches are the unit the compiled pipeline is fast at (one GEMM
amortises im2col, plan lookup and Python dispatch over every image in
the chunk — the batching discipline accelerator papers assume at
deployment). :class:`Batcher` bridges the two: requests enqueue, a
worker thread coalesces them under a ``max_batch`` / ``max_latency_ms``
policy, and one runner call serves the whole flush.

Two details matter for the compiled pipeline underneath:

- **Bucketed flush sizes.** Arena buffers and execution plans are keyed
  by batch geometry, so every distinct flush size a serving loop
  produces would keep its own full buffer set alive. The batcher
  therefore pads each flush up to the next power-of-two bucket (capped
  at ``max_batch``) and slices the result — a handful of geometries
  total, all of which :meth:`warmup` can prebuild before traffic
  arrives.
- **Latency is bounded by the first request.** The flush deadline
  starts when the *first* request of a batch arrives; a lone request
  never waits longer than ``max_latency_ms`` for company.

Production robustness lives here too:

- **Admission control** (``max_queue``): an unbounded queue turns
  overload into unbounded latency — every request is eventually served,
  long after its caller gave up. A bounded queue turns it into fast
  rejection instead: past the high-water mark :meth:`submit` raises
  :class:`QueueFull` carrying a ``retry_after`` hint derived from the
  current drain rate, which HTTP maps to ``429 + Retry-After``.
- **SLO deadlines** (``slo_ms``): each request carries an admission
  timestamp; the coalescing deadline tightens so a flush fires before
  the *oldest* request's deadline (minus the recent flush cost), and
  requests that already blew their SLO while queued are failed with
  :class:`SLOExpired` (HTTP 503) at flush assembly instead of wasting a
  batch slot on an answer nobody is waiting for.
- **Degraded fallback** (``fallback_runner``): when the primary runner
  fails with a worker-pool error (every worker dead mid-flush), the
  batch is re-served through the fallback — in-process ``predict`` —
  so accepted requests complete while the supervisor heals the pool.
"""

from __future__ import annotations

import logging
import math
import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple, Type

import numpy as np

from .stats import ServerStats

__all__ = [
    "Batcher",
    "BatcherClosed",
    "QueueFull",
    "SLOExpired",
    "bucket_sizes",
]

logger = logging.getLogger("repro.serving")


class BatcherClosed(RuntimeError):
    """Submit on a stopped (or stopping) batcher — nothing will flush it."""


class QueueFull(RuntimeError):
    """Admission control shed the request: queue past its high-water mark.

    ``retry_after`` is the estimated seconds until the queue drains back
    below the mark at the current service rate — the value behind the
    HTTP ``Retry-After`` header.
    """

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = float(retry_after)


class SLOExpired(RuntimeError):
    """The request's latency SLO expired while it waited in the queue."""

#: Sentinel pushed on the queue to wake the worker up for shutdown.
_STOP = object()


def bucket_sizes(max_batch: int) -> List[int]:
    """Power-of-two flush buckets up to and including ``max_batch``."""
    if max_batch < 1:
        raise ValueError("max_batch must be >= 1")
    sizes = []
    b = 1
    while b < max_batch:
        sizes.append(b)
        b *= 2
    sizes.append(max_batch)
    return sizes


@dataclass
class _Request:
    """One queued image plus its completion future.

    ``deadline`` is the absolute SLO deadline on the ``perf_counter``
    clock (``inf`` when the batcher has no SLO), fixed at admission.
    """

    x: np.ndarray
    future: "Future[np.ndarray]" = field(default_factory=Future)
    submitted: float = field(default_factory=time.perf_counter)
    deadline: float = math.inf


class Batcher:
    """Queue single-image requests and serve them in coalesced batches.

    Parameters
    ----------
    runner:
        Callable taking a stacked ``(B, ...)`` batch and returning the
        ``(B, ...)`` outputs — typically
        ``lambda x: runtime.predict(compiled, x, workers=N)``.
    max_batch:
        Largest coalesced batch; also the largest bucket geometry.
    max_latency_ms:
        How long the worker waits for more requests after the first one
        of a batch arrives.
    stats:
        Optional shared :class:`ServerStats`; one is created otherwise.
    bucket:
        Pad flushes to power-of-two buckets (see module docstring).
        Disable only when the runner is geometry-insensitive.
    max_queue:
        Admission-control high-water mark: :meth:`submit` raises
        :class:`QueueFull` (HTTP 429) once this many requests are
        already waiting. ``None`` (default) keeps the queue unbounded.
    slo_ms:
        Per-request latency SLO. Flushes fire early so the oldest queued
        request still makes its deadline, and requests that blew the SLO
        while queued are failed with :class:`SLOExpired` (HTTP 503) at
        flush assembly. ``None`` disables deadline handling.
    fallback_runner:
        Degraded-mode runner (typically in-process ``predict``) used
        when ``runner`` raises one of ``fallback_on``; the fallback's
        flushes are counted in ``stats.degraded_flushes``.
    fallback_on:
        Exception types that trigger the fallback (worker-pool errors —
        the serving layer passes ``BrokenWorkerPool``/``WorkerCrashed``/
        ``RingTimeout``). Other runner errors still fail the batch.
    """

    def __init__(
        self,
        runner: Callable[[np.ndarray], np.ndarray],
        *,
        max_batch: int = 32,
        max_latency_ms: float = 2.0,
        stats: Optional[ServerStats] = None,
        bucket: bool = True,
        max_queue: Optional[int] = None,
        slo_ms: Optional[float] = None,
        fallback_runner: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        fallback_on: Tuple[Type[BaseException], ...] = (),
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_latency_ms < 0:
            raise ValueError("max_latency_ms must be >= 0")
        if max_queue is not None and max_queue < 1:
            raise ValueError("max_queue must be >= 1 (or None for unbounded)")
        if slo_ms is not None and slo_ms <= 0:
            raise ValueError("slo_ms must be > 0 (or None to disable)")
        self.runner = runner
        self.max_batch = max_batch
        self.max_latency = max_latency_ms / 1e3
        self.stats = stats if stats is not None else ServerStats()
        self.bucket = bucket
        self.max_queue = max_queue
        self.slo = None if slo_ms is None else slo_ms / 1e3
        self.fallback_runner = fallback_runner
        self.fallback_on = tuple(fallback_on)
        self._queue: "queue.Queue" = queue.Queue()
        self._worker: Optional[threading.Thread] = None
        self._stopping = False
        self._lock = threading.Lock()
        #: EMA of recent flush wall time, used to fire SLO flushes early
        #: enough that the flush itself still fits inside the deadline.
        self._flush_cost = 0.0

    # -- lifecycle -----------------------------------------------------
    @property
    def running(self) -> bool:
        """Whether the coalescing worker thread is alive."""
        return self._worker is not None and self._worker.is_alive()

    def start(self) -> "Batcher":
        """Start the coalescing worker (idempotent); returns self."""
        with self._lock:
            if self.running:
                return self
            self._stopping = False
            self._worker = threading.Thread(
                target=self._loop, name="repro-batcher", daemon=True
            )
            self._worker.start()
        return self

    def stop(self, drain: bool = True) -> None:
        """Stop the worker; by default serve everything already queued."""
        with self._lock:
            worker = self._worker
            if worker is None:
                return
            self._stopping = True
            self._queue.put(_STOP)
        worker.join()
        with self._lock:
            self._worker = None
        if drain:
            self._drain_pending()
        else:
            self._fail_pending(BatcherClosed("batcher stopped"))

    def __enter__(self) -> "Batcher":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- client API ----------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Requests currently waiting for a flush (approximate)."""
        return self._queue.qsize()

    def retry_after_estimate(self) -> float:
        """Seconds until the queue drains below the high-water mark.

        Derived from the recent completion-rate window: ``depth / rate``
        is how long the backlog takes to serve at the current pace. With
        no observed rate yet (cold server) the coalescing latency bound
        is the only honest guess.
        """
        depth = self._queue.qsize()
        rate = self.stats.requests_per_second
        if rate > 0:
            estimate = depth / rate
        else:
            estimate = max(self.max_latency * 2, 0.05)
        return min(30.0, max(0.05, estimate))

    def submit(self, x: np.ndarray) -> "Future[np.ndarray]":
        """Enqueue one image; resolves to its single output row.

        Raises :class:`BatcherClosed` on a stopped/stopping batcher
        (nothing would ever flush the request) and :class:`QueueFull`
        when admission control sheds it (queue past ``max_queue``).
        """
        # The check and the put happen under the same lock stop() takes,
        # so a request can never slip onto the queue after stop() has
        # drained it (which would leave its future unresolved forever).
        with self._lock:
            if self._stopping or not self.running:
                raise BatcherClosed("batcher is not running (call start())")
            if self.max_queue is not None and self._queue.qsize() >= self.max_queue:
                self.stats.record_shed("queue_full")
                raise QueueFull(
                    f"queue at high-water mark ({self.max_queue} waiting)",
                    retry_after=self.retry_after_estimate(),
                )
            request = _Request(x=np.asarray(x))
            if self.slo is not None:
                request.deadline = request.submitted + self.slo
            self._queue.put(request)
        return request.future

    def __call__(self, x: np.ndarray, timeout: Optional[float] = None) -> np.ndarray:
        """Synchronous convenience: submit and wait for the result."""
        return self.submit(x).result(timeout=timeout)

    # -- worker --------------------------------------------------------
    def _bucket_size(self, size: int) -> int:
        if not self.bucket or size >= self.max_batch:
            return size
        # Single source of truth with warmup: the smallest bucket from
        # bucket_sizes() that fits, so every flush geometry is one the
        # server prebuilt.
        return min(b for b in bucket_sizes(self.max_batch) if b >= size)

    def _collect(self, first: _Request) -> List[_Request]:
        """Coalesce: wait up to the deadline for up to max_batch peers.

        The deadline is anchored to when the first request was
        *submitted*, not dequeued — a request that already waited out
        its latency budget behind a slow flush is served immediately
        (plus whatever is already queued, which rides along for free).
        """
        batch = [first]
        deadline = first.submitted + self.max_latency
        if self.slo is not None:
            # Fire early enough that the flush itself (recent-cost EMA)
            # still lands inside the oldest request's SLO. ``first`` is
            # the oldest — the queue is FIFO.
            deadline = min(deadline, first.deadline - self._flush_cost)
        while len(batch) < self.max_batch:
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                # Deadline passed, but anything already queued rides
                # along for free (no wait).
                try:
                    item = self._queue.get_nowait()
                except queue.Empty:
                    break
            else:
                try:
                    item = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
            if item is _STOP:
                # Re-queue the sentinel so the worker loop still sees it
                # after this flush (and serves anything queued before it).
                self._queue.put(_STOP)
                break
            batch.append(item)
        return batch

    def _shed_expired(self, batch: List[_Request]) -> List[_Request]:
        """Fail SLO-blown requests with 503 before they cost a batch slot.

        A request whose deadline passed while it queued has a caller
        that (per the SLO contract) already gave up — serving it wastes
        a slot a live request could use. Runs at flush assembly, so the
        shed happens *before* the stack/pad/GEMM work.
        """
        if self.slo is None:
            return batch
        now = time.perf_counter()
        live = []
        for request in batch:
            if request.deadline < now:
                self.stats.record_shed("slo")
                request.future.set_exception(
                    SLOExpired(
                        f"request exceeded its {self.slo * 1e3:.0f} ms SLO "
                        f"after {(now - request.submitted) * 1e3:.0f} ms queued"
                    )
                )
            else:
                live.append(request)
        return live

    def _run_batch(self, x: np.ndarray, size: int) -> np.ndarray:
        """Primary runner, falling back in-process on pool errors.

        A dead worker pool must fail *closed*: the requests were already
        admitted, so they are re-served through ``fallback_runner``
        (degraded mode — slower, but correct) rather than surfaced as
        errors while the supervisor heals the pool.
        """
        try:
            return self.runner(x)
        except self.fallback_on as error:
            if self.fallback_runner is None:
                raise
            logger.warning(
                "worker pool failed a %d-image flush (%s: %s); "
                "re-serving in-process (degraded mode)",
                size, type(error).__name__, error,
            )
            out = self.fallback_runner(x)
            self.stats.record_degraded(size)
            return out

    def _flush(self, batch: List[_Request]) -> None:
        # Transition every future to RUNNING first: a future cancelled
        # while queued is dropped here, and the rest can no longer be
        # cancelled — so the set_result/set_exception calls below can
        # never raise InvalidStateError and kill the worker thread.
        batch = [r for r in batch if r.future.set_running_or_notify_cancel()]
        batch = self._shed_expired(batch)
        if not batch:
            return
        size = len(batch)
        try:
            x = np.stack([r.x for r in batch])
            target = self._bucket_size(size)
            if target > size:
                pad = np.zeros((target - size,) + x.shape[1:], dtype=x.dtype)
                x = np.concatenate([x, pad])
            start = time.perf_counter()
            for request in batch:
                self.stats.record_queue_wait(start - request.submitted)
            out = self._run_batch(x, size)
            seconds = time.perf_counter() - start
            if out.shape[0] != x.shape[0]:
                raise RuntimeError(
                    f"runner returned {out.shape[0]} rows for a "
                    f"{x.shape[0]}-image batch"
                )
        except BaseException as error:  # noqa: BLE001 - forwarded to callers
            self.stats.record_error(size)
            for request in batch:
                request.future.set_exception(error)
            return
        self.stats.record_batch(size, seconds)
        self._flush_cost = (
            seconds if self._flush_cost == 0.0
            else 0.8 * self._flush_cost + 0.2 * seconds
        )
        done = time.perf_counter()
        for index, request in enumerate(batch):
            request.future.set_result(out[index])
            self.stats.record_request(done - request.submitted)

    def _loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            self._flush(self._collect(item))

    def _drain_pending(self) -> None:
        """Serve whatever is still queued after the worker exited."""
        pending: List[_Request] = []
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is not _STOP:
                pending.append(item)
        for lo in range(0, len(pending), self.max_batch):
            self._flush(pending[lo : lo + self.max_batch])

    def _fail_pending(self, error: BaseException) -> None:
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return
            if item is not _STOP and item.future.set_running_or_notify_cancel():
                self.stats.record_error()
                item.future.set_exception(error)
