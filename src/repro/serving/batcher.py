"""Dynamic request batching: coalesce single images into micro-batches.

Single-image requests are the unit of traffic a model server receives;
micro-batches are the unit the compiled pipeline is fast at (one GEMM
amortises im2col, plan lookup and Python dispatch over every image in
the chunk — the batching discipline accelerator papers assume at
deployment). :class:`Batcher` bridges the two: requests enqueue, a
flush driver coalesces them under a ``max_batch`` / ``max_latency_ms``
policy, and one runner call serves the whole flush.

A batcher can be driven two ways:

- **Standalone** (``start()`` with no scheduler attached): a private
  worker thread coalesces and flushes, exactly the pre-fleet behaviour.
- **Scheduled** (registered with a
  :class:`~repro.serving.scheduler.FlushScheduler`): the batcher only
  *queues*; the central scheduler decides when its flush fires relative
  to every other tenant's, weighted by :attr:`weight`. The queue/due
  bookkeeping (:meth:`next_due`, :meth:`flush_once`) is the contract
  between the two.

Two details matter for the compiled pipeline underneath:

- **Bucketed flush sizes.** Arena buffers and execution plans are keyed
  by batch geometry, so every distinct flush size a serving loop
  produces would keep its own full buffer set alive. The batcher
  therefore pads each flush up to the next power-of-two bucket (capped
  at ``max_batch``) and slices the result — a handful of geometries
  total, all of which :meth:`warmup` can prebuild before traffic
  arrives.
- **Latency is bounded by the first request.** The flush deadline
  starts when the *first* request of a batch arrives; a lone request
  never waits longer than ``max_latency_ms`` for company.

Production robustness lives here too:

- **Admission control** (``max_queue``): an unbounded queue turns
  overload into unbounded latency — every request is eventually served,
  long after its caller gave up. A bounded queue turns it into fast
  rejection instead: past the high-water mark :meth:`submit` raises
  :class:`QueueFull` carrying a ``retry_after`` hint derived from the
  current drain rate, which HTTP maps to ``429 + Retry-After``.
- **Rate quotas** (``rate``): a per-tenant token bucket at admission.
  A tenant pushing past its contracted requests/second gets
  :class:`QuotaExceeded` (HTTP 429, kind ``quota_exceeded``) before its
  traffic can queue at all — overload from one tenant never reaches
  the shared scheduler as backlog.
- **SLO deadlines** (``slo_ms``): each request carries an admission
  timestamp; the coalescing deadline tightens so a flush fires before
  the *oldest* request's deadline (minus the recent flush cost), and
  requests that already blew their SLO while queued are failed with
  :class:`SLOExpired` (HTTP 503) at flush assembly instead of wasting a
  batch slot on an answer nobody is waiting for.
- **Degraded fallback** (``fallback_runner``): when the primary runner
  fails with a worker-pool error (every worker dead mid-flush), the
  batch is re-served through the fallback — in-process ``predict`` —
  so accepted requests complete while the supervisor heals the pool.
"""

from __future__ import annotations

import logging
import math
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, Deque, List, Optional, Tuple, Type

import numpy as np

from .stats import ServerStats

__all__ = [
    "Batcher",
    "BatcherClosed",
    "QueueFull",
    "QuotaExceeded",
    "SLOExpired",
    "bucket_sizes",
]

logger = logging.getLogger("repro.serving")


class BatcherClosed(RuntimeError):
    """Submit on a stopped (or stopping) batcher — nothing will flush it."""


class QueueFull(RuntimeError):
    """Admission control shed the request: queue past its high-water mark.

    ``retry_after`` is the estimated seconds until the queue drains back
    below the mark at the current service rate — the value behind the
    HTTP ``Retry-After`` header.
    """

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = float(retry_after)


class QuotaExceeded(RuntimeError):
    """The tenant's rate quota shed the request at admission.

    Distinct from :class:`QueueFull` so operators (and the HTTP error
    body, kind ``quota_exceeded``) can tell "the server is busy" apart
    from "this tenant is over its contract". ``retry_after`` is when
    the token bucket earns the next token back.
    """

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = float(retry_after)


class SLOExpired(RuntimeError):
    """The request's latency SLO expired while it waited in the queue."""


def bucket_sizes(max_batch: int) -> List[int]:
    """Power-of-two flush buckets up to and including ``max_batch``."""
    if max_batch < 1:
        raise ValueError("max_batch must be >= 1")
    sizes = []
    b = 1
    while b < max_batch:
        sizes.append(b)
        b *= 2
    sizes.append(max_batch)
    return sizes


@dataclass
class _Request:
    """One queued image plus its completion future.

    ``deadline`` is the absolute SLO deadline on the ``perf_counter``
    clock (``inf`` when the batcher has no SLO), fixed at admission.
    """

    x: np.ndarray
    future: "Future[np.ndarray]" = field(default_factory=Future)
    submitted: float = field(default_factory=time.perf_counter)
    deadline: float = math.inf


class Batcher:
    """Queue single-image requests and serve them in coalesced batches.

    Parameters
    ----------
    runner:
        Callable taking a stacked ``(B, ...)`` batch and returning the
        ``(B, ...)`` outputs — typically
        ``lambda x: runtime.predict(compiled, x, workers=N)``.
    max_batch:
        Largest coalesced batch; also the largest bucket geometry.
    max_latency_ms:
        How long the flush driver waits for more requests after the
        first one of a batch arrives.
    stats:
        Optional shared :class:`ServerStats`; one is created otherwise.
    bucket:
        Pad flushes to power-of-two buckets (see module docstring).
        Disable only when the runner is geometry-insensitive.
    max_queue:
        Admission-control high-water mark: :meth:`submit` raises
        :class:`QueueFull` (HTTP 429) once this many requests are
        already waiting. ``None`` (default) keeps the queue unbounded.
    slo_ms:
        Per-request latency SLO. Flushes fire early so the oldest queued
        request still makes its deadline, and requests that blew the SLO
        while queued are failed with :class:`SLOExpired` (HTTP 503) at
        flush assembly. ``None`` disables deadline handling.
    weight:
        Fair-share weight under a :class:`FlushScheduler`: tenants
        receive throughput proportional to their weights when
        saturated. Ignored in standalone mode.
    rate:
        Per-tenant rate quota in requests/second (token bucket with a
        one-second burst allowance); over-quota submits raise
        :class:`QuotaExceeded`. ``None`` disables the quota.
    fallback_runner:
        Degraded-mode runner (typically in-process ``predict``) used
        when ``runner`` raises one of ``fallback_on``; the fallback's
        flushes are counted in ``stats.degraded_flushes``.
    fallback_on:
        Exception types that trigger the fallback (worker-pool errors —
        the serving layer passes ``BrokenWorkerPool``/``WorkerCrashed``/
        ``RingTimeout``). Other runner errors still fail the batch.
    """

    def __init__(
        self,
        runner: Callable[[np.ndarray], np.ndarray],
        *,
        max_batch: int = 32,
        max_latency_ms: float = 2.0,
        stats: Optional[ServerStats] = None,
        bucket: bool = True,
        max_queue: Optional[int] = None,
        slo_ms: Optional[float] = None,
        weight: float = 1.0,
        rate: Optional[float] = None,
        fallback_runner: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        fallback_on: Tuple[Type[BaseException], ...] = (),
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_latency_ms < 0:
            raise ValueError("max_latency_ms must be >= 0")
        if max_queue is not None and max_queue < 1:
            raise ValueError("max_queue must be >= 1 (or None for unbounded)")
        if slo_ms is not None and slo_ms <= 0:
            raise ValueError("slo_ms must be > 0 (or None to disable)")
        if weight <= 0:
            raise ValueError("weight must be > 0")
        if rate is not None and rate <= 0:
            raise ValueError("rate must be > 0 requests/second (or None)")
        self.runner = runner
        self.max_batch = max_batch
        self.max_latency = max_latency_ms / 1e3
        self.stats = stats if stats is not None else ServerStats()
        self.bucket = bucket
        self.max_queue = max_queue
        self.slo = None if slo_ms is None else slo_ms / 1e3
        self.weight = float(weight)
        self.rate = None if rate is None else float(rate)
        self.fallback_runner = fallback_runner
        self.fallback_on = tuple(fallback_on)
        self._items: Deque[_Request] = deque()
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._worker: Optional[threading.Thread] = None
        self._started = False  # scheduled mode's "running" latch
        self._stopping = False
        #: Set by FlushScheduler.register(); a registered batcher's
        #: start() arms the scheduler instead of spawning a thread.
        self._scheduler = None
        # Token bucket for the rate quota: one second of burst, floored
        # at one token so sub-1/s quotas can ever admit a request.
        self._burst = max(1.0, self.rate) if self.rate is not None else 0.0
        self._tokens = self._burst
        self._token_stamp = time.perf_counter()
        #: EMA of recent flush wall time, used to fire SLO flushes early
        #: enough that the flush itself still fits inside the deadline.
        self._flush_cost = 0.0

    # -- lifecycle -----------------------------------------------------
    @property
    def running(self) -> bool:
        """Whether submits will be flushed (thread alive, or armed on a
        running scheduler)."""
        if self._scheduler is not None:
            return self._started and not self._stopping
        return self._worker is not None and self._worker.is_alive()

    def start(self) -> "Batcher":
        """Arm the batcher (idempotent); returns self.

        Standalone: starts the private coalescing thread. Scheduled:
        marks the batcher live so the scheduler may dispatch its
        flushes.
        """
        scheduler = self._scheduler
        with self._lock:
            if self.running:
                return self
            self._stopping = False
            if scheduler is not None:
                self._started = True
            else:
                self._worker = threading.Thread(
                    target=self._loop, name="repro-batcher", daemon=True
                )
                self._worker.start()
        if scheduler is not None:
            scheduler.wake()
        return self

    def stop(self, drain: bool = True) -> None:
        """Stop flushing; by default serve everything already queued.

        Works in every mode: standalone (joins the private thread),
        scheduled (quiesces the in-flight dispatch; ``next_due()``
        returns ``None`` while stopping so no new one starts), and
        *detached* — a batcher whose scheduler registration was taken
        over by a hot-reload replacement still drains its queue inline.
        """
        scheduler = self._scheduler
        with self._lock:
            if (
                scheduler is None
                and self._worker is None
                and not self._started
                and not self._items
            ):
                return  # never armed, nothing queued
            self._stopping = True
            self._started = False
            worker = self._worker
            self._cond.notify_all()
        if worker is not None:
            worker.join()
            with self._lock:
                self._worker = None
        if scheduler is not None:
            scheduler.quiesce(self)
        if drain:
            self._drain_pending()
        else:
            self._fail_pending(BatcherClosed("batcher stopped"))

    def __enter__(self) -> "Batcher":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- client API ----------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Requests currently waiting for a flush (approximate)."""
        return len(self._items)

    def retry_after_estimate(self) -> float:
        """Seconds until the queue drains below the high-water mark.

        Derived from the recent completion-rate window: ``depth / rate``
        is how long the backlog takes to serve at the current pace. With
        no observed rate yet (cold server) the coalescing latency bound
        is the only honest guess.
        """
        depth = len(self._items)
        rate = self.stats.requests_per_second
        if rate > 0:
            estimate = depth / rate
        else:
            estimate = max(self.max_latency * 2, 0.05)
        return min(30.0, max(0.05, estimate))

    def _take_token(self) -> None:
        """Charge the rate-quota token bucket (lock held); raises
        :class:`QuotaExceeded` when the tenant is over its contract."""
        now = time.perf_counter()
        self._tokens = min(
            self._burst, self._tokens + (now - self._token_stamp) * self.rate
        )
        self._token_stamp = now
        if self._tokens < 1.0:
            self.stats.record_shed("quota")
            raise QuotaExceeded(
                f"tenant over its {self.rate:g} req/s rate quota",
                retry_after=(1.0 - self._tokens) / self.rate,
            )
        self._tokens -= 1.0

    def submit(self, x: np.ndarray) -> "Future[np.ndarray]":
        """Enqueue one image; resolves to its single output row.

        Raises :class:`BatcherClosed` on a stopped/stopping batcher
        (nothing would ever flush the request), :class:`QuotaExceeded`
        when the tenant's rate quota sheds it, and :class:`QueueFull`
        when admission control sheds it (queue past ``max_queue``).
        """
        # The check and the append happen under the same lock stop()
        # takes, so a request can never slip onto the queue after stop()
        # has drained it (which would leave its future unresolved
        # forever).
        with self._lock:
            if self._stopping or not self.running:
                raise BatcherClosed("batcher is not running (call start())")
            if self.rate is not None:
                self._take_token()
            if self.max_queue is not None and len(self._items) >= self.max_queue:
                self.stats.record_shed("queue_full")
                raise QueueFull(
                    f"queue at high-water mark ({self.max_queue} waiting)",
                    retry_after=self.retry_after_estimate(),
                )
            request = _Request(x=np.asarray(x))
            if self.slo is not None:
                request.deadline = request.submitted + self.slo
            self._items.append(request)
            self._cond.notify_all()
        scheduler = self._scheduler
        if scheduler is not None:
            scheduler.wake()
        return request.future

    def __call__(self, x: np.ndarray, timeout: Optional[float] = None) -> np.ndarray:
        """Synchronous convenience: submit and wait for the result."""
        return self.submit(x).result(timeout=timeout)

    # -- scheduler contract --------------------------------------------
    def next_due(self) -> Optional[float]:
        """When the queued work should flush, on the perf_counter clock.

        ``None`` means "nothing to schedule" (empty, or stopping). A
        full batch is due immediately (0.0); otherwise the due time is
        the first request's coalescing deadline, tightened by the SLO
        margin exactly like the standalone collect loop.
        """
        with self._lock:
            if not self._items or self._stopping or not self._started:
                return None
            if len(self._items) >= self.max_batch:
                return 0.0
            first = self._items[0]
            due = first.submitted + self.max_latency
            if self.slo is not None:
                due = min(due, first.deadline - self._flush_cost)
            return due

    def oldest_deadline(self) -> float:
        """Absolute SLO deadline of the oldest queued request (``inf``
        without an SLO or queued work) — the scheduler's EDF key."""
        with self._lock:
            if self.slo is None or not self._items:
                return math.inf
            return self._items[0].deadline

    def slo_urgent(self, now: Optional[float] = None) -> bool:
        """Whether the oldest request is at risk of blowing its SLO —
        the scheduler serves urgent tenants before fair-share order."""
        deadline = self.oldest_deadline()
        if deadline is math.inf:
            return False
        if now is None:
            now = time.perf_counter()
        return deadline - now <= max(2.0 * self._flush_cost, 1e-3)

    def flush_once(self) -> int:
        """Collect whatever is queued (never waiting) and flush it.

        The scheduler's dispatch primitive. Returns the number of
        requests the flush actually dispatched (its fairness charge);
        0 when the queue was empty or every request was cancelled/shed.
        """
        with self._lock:
            batch: List[_Request] = []
            while self._items and len(batch) < self.max_batch:
                batch.append(self._items.popleft())
        if not batch:
            return 0
        return self._flush(batch)

    # -- worker --------------------------------------------------------
    def _bucket_size(self, size: int) -> int:
        if not self.bucket or size >= self.max_batch:
            return size
        # Single source of truth with warmup: the smallest bucket from
        # bucket_sizes() that fits, so every flush geometry is one the
        # server prebuilt.
        return min(b for b in bucket_sizes(self.max_batch) if b >= size)

    def _collect(self, first: _Request) -> List[_Request]:
        """Coalesce: wait up to the deadline for up to max_batch peers.

        The deadline is anchored to when the first request was
        *submitted*, not dequeued — a request that already waited out
        its latency budget behind a slow flush is served immediately
        (plus whatever is already queued, which rides along for free).
        """
        batch = [first]
        deadline = first.submitted + self.max_latency
        if self.slo is not None:
            # Fire early enough that the flush itself (recent-cost EMA)
            # still lands inside the oldest request's SLO. ``first`` is
            # the oldest — the queue is FIFO.
            deadline = min(deadline, first.deadline - self._flush_cost)
        with self._cond:
            while len(batch) < self.max_batch:
                if self._items:
                    # Already queued work rides along for free, past the
                    # deadline included.
                    batch.append(self._items.popleft())
                    continue
                if self._stopping:
                    break
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    break
                self._cond.wait(remaining)
        return batch

    def _shed_expired(self, batch: List[_Request]) -> List[_Request]:
        """Fail SLO-blown requests with 503 before they cost a batch slot.

        A request whose deadline passed while it queued has a caller
        that (per the SLO contract) already gave up — serving it wastes
        a slot a live request could use. Runs at flush assembly, so the
        shed happens *before* the stack/pad/GEMM work.
        """
        if self.slo is None:
            return batch
        now = time.perf_counter()
        live = []
        for request in batch:
            if request.deadline < now:
                self.stats.record_shed("slo")
                request.future.set_exception(
                    SLOExpired(
                        f"request exceeded its {self.slo * 1e3:.0f} ms SLO "
                        f"after {(now - request.submitted) * 1e3:.0f} ms queued"
                    )
                )
            else:
                live.append(request)
        return live

    def _run_batch(self, x: np.ndarray, size: int) -> np.ndarray:
        """Primary runner, falling back in-process on pool errors.

        A dead worker pool must fail *closed*: the requests were already
        admitted, so they are re-served through ``fallback_runner``
        (degraded mode — slower, but correct) rather than surfaced as
        errors while the supervisor heals the pool.
        """
        try:
            return self.runner(x)
        except self.fallback_on as error:
            if self.fallback_runner is None:
                raise
            logger.warning(
                "worker pool failed a %d-image flush (%s: %s); "
                "re-serving in-process (degraded mode)",
                size, type(error).__name__, error,
            )
            out = self.fallback_runner(x)
            self.stats.record_degraded(size)
            return out

    def _flush(self, batch: List[_Request]) -> int:
        """Serve one coalesced batch; returns the requests dispatched."""
        # Transition every future to RUNNING first: a future cancelled
        # while queued is dropped here, and the rest can no longer be
        # cancelled — so the set_result/set_exception calls below can
        # never raise InvalidStateError and kill the flush driver.
        batch = [r for r in batch if r.future.set_running_or_notify_cancel()]
        batch = self._shed_expired(batch)
        if not batch:
            return 0
        size = len(batch)
        try:
            x = np.stack([r.x for r in batch])
            target = self._bucket_size(size)
            if target > size:
                pad = np.zeros((target - size,) + x.shape[1:], dtype=x.dtype)
                x = np.concatenate([x, pad])
            start = time.perf_counter()
            for request in batch:
                self.stats.record_queue_wait(start - request.submitted)
            out = self._run_batch(x, size)
            seconds = time.perf_counter() - start
            if out.shape[0] != x.shape[0]:
                raise RuntimeError(
                    f"runner returned {out.shape[0]} rows for a "
                    f"{x.shape[0]}-image batch"
                )
        except BaseException as error:  # noqa: BLE001 - forwarded to callers
            self.stats.record_error(size)
            for request in batch:
                request.future.set_exception(error)
            return size
        self.stats.record_batch(size, seconds)
        self._flush_cost = (
            seconds if self._flush_cost == 0.0
            else 0.8 * self._flush_cost + 0.2 * seconds
        )
        done = time.perf_counter()
        for index, request in enumerate(batch):
            request.future.set_result(out[index])
            self.stats.record_request(done - request.submitted)
        return size

    def _loop(self) -> None:
        while True:
            with self._cond:
                while not self._items and not self._stopping:
                    self._cond.wait()
                if self._stopping:
                    # Leftovers are drained inline by stop().
                    return
                first = self._items.popleft()
            self._flush(self._collect(first))

    def _drain_pending(self) -> None:
        """Serve whatever is still queued after the flush driver exited."""
        with self._lock:
            pending = list(self._items)
            self._items.clear()
        for lo in range(0, len(pending), self.max_batch):
            self._flush(pending[lo : lo + self.max_batch])

    def _fail_pending(self, error: BaseException) -> None:
        with self._lock:
            pending = list(self._items)
            self._items.clear()
        for item in pending:
            if item.future.set_running_or_notify_cancel():
                self.stats.record_error()
                item.future.set_exception(error)
