"""Multi-model serving registry on top of the compiled pipeline.

:class:`ModelServer` owns everything between "a model artifact exists"
and "requests get answers": it loads models by registry name (optionally
PCNN-pruning them first) or from a :class:`~repro.core.deploy.DeploymentBundle`
``.npz`` (whose :meth:`restore_into` installs weights, masks *and* SPM
encodings, so pruned convs serve through the pattern path), compiles each
model once (:func:`~repro.runtime.compile_model`, optionally to the int8
execution path via ``quantize=``), warms plans and arena buffers for
every batch bucket before traffic arrives, and runs one dynamic
:class:`~repro.serving.batcher.Batcher` per model that flushes into
``runtime.predict(compiled, workers=N)``.

With ``worker_procs=N`` the flush fans out over a
:class:`~repro.runtime.WorkerPool` of inference *processes* instead of
threads: the compiled model is exported once into a shared-memory
weight image every worker maps read-only, and each flush bucket travels
to a worker over a shared-memory tensor ring (no pickling of image
payloads on the hot path). That is the configuration that scales past
the GIL on multi-core hosts; ``GET /stats`` grows a ``workers`` block
whose attach counters prove the workers attached rather than copied.

The server is also the supervision root: every pool is registered with
a :class:`~repro.serving.supervisor.Supervisor` that respawns crashed
or wedged workers within a restart budget, each batcher gets the
server-wide admission policy (``max_queue`` → 429, ``slo_ms`` → 503)
plus an in-process degraded-mode fallback for pool failures, and the
model registry is *hot*: :meth:`add_model` with ``replace=True`` (and
:meth:`remove_model`) compile/warm off the serving path, atomically
swap the registry entry, and drain the old batcher without dropping a
single accepted request.

Multi-tenant fleets add two more coordinators, both owned here:

- A :class:`~repro.serving.scheduler.FlushScheduler` dispatches every
  tenant's flushes centrally (deficit-weighted round-robin over
  per-model ``weight=``, SLO deadlines first), so under saturation
  throughput tracks the configured weights instead of thread-scheduler
  luck. Per-model ``max_queue``/``slo_ms``/``rate`` overrides give each
  tenant its own admission contract (``rate`` sheds over-quota traffic
  with HTTP 429 kind ``quota_exceeded``).
- A :class:`~repro.serving.residency.ResidencyManager` keeps the
  fleet's reclaimable working set (plans, arenas, derived GEMM
  operands) under ``memory_budget_mb``: cold tenants are demoted, then
  evicted, LRU-first; a request landing on a demoted/evicted tenant
  re-promotes it inside the flush guard (warm re-prepare — never a
  recompile) so admitted traffic never fails on residency. Transitions
  land in the supervisor's incident log and on ``/models``,
  ``/stats`` and ``/metrics``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from .. import runtime
from ..core.deploy import DeploymentBundle
from ..models import create_model, model_input_shape
from ..runtime.shm import RingTimeout
from .batcher import Batcher, bucket_sizes
from .residency import ResidencyManager
from .scheduler import FlushScheduler
from .stats import ServerStats
from .supervisor import Supervisor

__all__ = ["ServedModel", "ModelServer"]

#: Sentinel distinguishing "not passed" from an explicit ``None`` (which
#: means *unbounded*/*disabled*) in per-model admission overrides.
_DEFAULT = object()


@dataclass
class ServedModel:
    """One endpoint: eager source model, compiled pipeline, batcher."""

    name: str
    model: object  # the eager nn.Module (encodings attached when pruned)
    compiled: Optional[runtime.CompiledModel]
    input_shape: Tuple[int, int, int]  # (C, H, W)
    batcher: Batcher
    stats: ServerStats
    source: str = "registry"
    meta: dict = field(default_factory=dict)
    pool: Optional[runtime.WorkerPool] = None

    @property
    def target(self) -> object:
        """What predict() serves: the compiled pipeline when available."""
        return self.compiled if self.compiled is not None else self.model

    def validate(self, x: np.ndarray) -> np.ndarray:
        """Coerce one image to float64 and check it matches input_shape."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != self.input_shape:
            raise ValueError(
                f"model {self.name!r} expects one {self.input_shape} image, "
                f"got shape {x.shape}"
            )
        return x

    def describe(self) -> dict:
        """JSON-ready row for the /models endpoint."""
        row = {
            "input_shape": list(self.input_shape),
            "compiled": self.compiled is not None,
            "source": self.source,
            "weight": self.batcher.weight,
            **self.meta,
        }
        if self.compiled is not None:
            # Computed per request, not at load time: executor mode can
            # flip live (REPRO_TRACE) and winograd-auto tiles resolve on
            # the first real flush — so /models answers "which fast
            # paths is this tenant actually on" with current state.
            row["executor"] = self.compiled.executor_kind()
            row["schedules"] = self.compiled.schedule_summary()
        return row


class ModelServer:
    """Registry of served models with per-model dynamic batching.

    Parameters
    ----------
    workers:
        Thread-pool width each flush fans out over
        (``runtime.predict(compiled, workers=N)``); ``None``/1 keeps
        flushes single-threaded. Ignored for models served through a
        worker-process pool (``worker_procs``).
    worker_procs:
        Serve flushes through a :class:`~repro.runtime.WorkerPool` of
        this many inference *processes* over shared-memory rings, with
        the compiled weights mapped once into a shared image every
        worker attaches read-only. ``None`` (default) keeps in-process
        serving. Requires ``compile``; each loaded model gets its own
        pool, shut down by :meth:`stop`.
    max_batch / max_latency_ms:
        Default coalescing policy for every model's batcher.
    compile:
        Lower each model with :func:`runtime.compile_model` at load time
        (``False`` serves the eager module graph — mainly for tests and
        bit-exact float64 comparisons).
    quantize:
        Compile every loaded model to the int8 execution path
        (:mod:`repro.runtime.quant`): ``"int8"``, a bit width, or a
        :class:`~repro.runtime.QuantizationConfig`. Activation scales
        calibrate on a deterministic synthetic batch unless the loader
        is given a real ``calibration=`` batch. Requires ``compile``.
    tune:
        Compile every loaded model with per-layer schedule tuning
        (``"cost"`` — analytic, zero measurement; ``"measure"`` — timed
        schedules persisted in the
        :class:`~repro.runtime.TuningCache`, so a server restart with a
        warm cache applies the winners without re-measuring and
        :meth:`warmup` stays fast). Requires ``compile``.
    max_queue:
        Admission-control high-water mark for every model's batcher:
        past this many queued requests, :meth:`submit` raises
        :class:`~repro.serving.batcher.QueueFull` (HTTP 429 with a
        ``Retry-After`` derived from the drain rate). ``None`` keeps
        queues unbounded.
    slo_ms:
        Per-request latency SLO for every model's batcher: flushes fire
        early to make the oldest request's deadline, and requests that
        blew the SLO while queued are shed with
        :class:`~repro.serving.batcher.SLOExpired` (HTTP 503).
    supervisor:
        The healing :class:`~repro.serving.supervisor.Supervisor` pools
        register with (respawn budget, wedge detection, incident log).
        A default one is built when not given; pass a custom instance
        to tune ``heartbeat_timeout`` or the restart budget.
    memory_budget_mb:
        Fleet-wide budget (MiB) for reclaimable resident bytes — plan
        caches, arena scratch and derived GEMM operands across every
        tenant. Over budget, the
        :class:`~repro.serving.residency.ResidencyManager` demotes the
        least-recently-used tenants (drop workspaces), then evicts them
        (drop derived op state too); weights and the lowered IR always
        stay, so the next request re-promotes with a warm ``prepare`` —
        never a recompile. ``None`` (default) disables enforcement but
        keeps the byte accounting on /stats and /models live.
    scheduler_threads:
        Dispatch threads of the central
        :class:`~repro.serving.scheduler.FlushScheduler`. One (default)
        strictly serialises flushes in weighted-fair order; more let
        flushes of different tenants overlap.
    """

    def __init__(
        self,
        *,
        workers: Optional[int] = None,
        worker_procs: Optional[int] = None,
        max_batch: int = 32,
        max_latency_ms: float = 2.0,
        compile: bool = True,
        quantize=None,
        tune: Optional[str] = None,
        max_queue: Optional[int] = None,
        slo_ms: Optional[float] = None,
        supervisor: Optional[Supervisor] = None,
        memory_budget_mb: Optional[float] = None,
        scheduler_threads: int = 1,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_queue is not None and max_queue < 1:
            raise ValueError("max_queue must be >= 1 (or None for unbounded)")
        if slo_ms is not None and slo_ms <= 0:
            raise ValueError("slo_ms must be > 0 (or None to disable)")
        if quantize is not None and not compile:
            raise ValueError("quantize= requires the compiled pipeline (compile=True)")
        if tune is not None and not compile:
            raise ValueError("tune= requires the compiled pipeline (compile=True)")
        if worker_procs is not None:
            if worker_procs < 1:
                raise ValueError("worker_procs must be >= 1")
            if not compile:
                raise ValueError(
                    "worker_procs= requires the compiled pipeline (compile=True): "
                    "workers serve a shared-memory image of the compiled model"
                )
        self.workers = workers
        self.worker_procs = worker_procs
        self.max_batch = max_batch
        self.max_latency_ms = max_latency_ms
        self.compile = compile
        self.quantize = quantize
        self.tune = tune
        if memory_budget_mb is not None and memory_budget_mb <= 0:
            raise ValueError("memory_budget_mb must be > 0 (or None to disable)")
        self.max_queue = max_queue
        self.slo_ms = slo_ms
        self.supervisor = supervisor if supervisor is not None else Supervisor()
        self.memory_budget_mb = memory_budget_mb
        self.residency = ResidencyManager(
            None if memory_budget_mb is None else int(memory_budget_mb * 2**20),
            on_event=self._residency_event,
        )
        self.scheduler = FlushScheduler(threads=scheduler_threads)
        #: The binary streaming front end, when one is attached
        #: (:class:`~repro.serving.stream.StreamServer` registers itself
        #: here so ``/stats`` and ``/metrics`` can report stream state).
        self.stream_server = None
        self.models: Dict[str, ServedModel] = {}
        self._lock = threading.Lock()
        self._started = False

    def _residency_event(self, kind: str, model: str, **detail) -> None:
        """Residency transitions land in the supervisor's incident log,
        so ``GET /incidents`` tells the whole healing *and* memory story."""
        self.supervisor.record(kind, model, **detail)

    # -- loading -------------------------------------------------------
    def _calibration_batch(self, input_shape: Tuple[int, int, int]) -> np.ndarray:
        """Deterministic synthetic batch for int8 activation calibration.

        Serving real traffic, pass a real ``calibration=`` batch to the
        loader instead — synthetic normal images bound activation ranges
        well enough for randomly-initialised reproduction models, but
        say nothing about a trained model's real input distribution.
        """
        rng = np.random.default_rng(0)
        return rng.normal(size=(8,) + tuple(input_shape))

    def _chunk_rows(self) -> int:
        """Largest chunk a flush sends one worker (predict's split).

        Mirrors predict's process-pool chunking: flushes split across
        ``min(worker_procs, effective cpus)`` — on a 1-core host the
        whole bucket travels as one chunk.
        """
        ways = max(1, min(self.worker_procs or 1, runtime.effective_cpu_count()))
        return -(-self.max_batch // ways)

    def _pool_ring_bytes(self, input_shape: Tuple[int, int, int]) -> int:
        """Size each worker's rings for this model's largest chunk.

        A request record is one float64 chunk of ``_chunk_rows`` images
        plus fixed headers; four of those (rounded up to 1 MiB) leave a
        queued chunk in flight while another is being served without the
        router ever blocking on ring backpressure in steady state.
        """
        image_bytes = 8 * int(np.prod(input_shape))
        record = self._chunk_rows() * image_bytes + 256
        return max(1 << 20, 4 * record)

    def _guarded(self, name: str, runner):
        """Wrap a runner in the tenant's residency guard.

        The guard holds the tenant's lock for the flush (demotion can
        never race a running GEMM), promotes a demoted/evicted tenant
        first (admitted traffic never fails on residency) and settles
        the byte ledger afterwards. Before the tenant is admitted
        (warmup runs pre-install) the guard is a pass-through.
        """
        def run(x):
            with self.residency.guard(name):
                return runner(x)
        return run

    def _build_served(
        self,
        name: str,
        model,
        input_shape: Tuple[int, int, int],
        *,
        source: str,
        meta: Optional[dict],
        calibration: Optional[np.ndarray],
        weight: float = 1.0,
        rate: Optional[float] = None,
        max_queue=_DEFAULT,
        slo_ms=_DEFAULT,
    ) -> ServedModel:
        """Compile/quantize/tune and assemble a :class:`ServedModel`.

        Deliberately runs *outside* the registry lock so a hot reload's
        compile+warm never stalls traffic on already-served models; the
        atomic swap happens later in :meth:`_install`.
        """
        if max_queue is _DEFAULT:
            max_queue = self.max_queue
        if slo_ms is _DEFAULT:
            slo_ms = self.slo_ms
        compiled = None
        if self.compile:
            if self.quantize is not None and calibration is None:
                calibration = self._calibration_batch(input_shape)
            compiled = runtime.compile_model(
                model,
                quantize=self.quantize,
                calibration=calibration,
                tune=self.tune,
                input_shape=input_shape,
            )
        stats = ServerStats()
        target = compiled if compiled is not None else model
        pool = None
        fallback_runner = None
        fallback_on: tuple = ()
        if self.worker_procs is not None:
            # One pool per model: the compiled weights are exported
            # into a shared image once, and every flush travels to a
            # worker process over that model's shared-memory rings.
            pool = runtime.WorkerPool(
                compiled,
                self.worker_procs,
                ring_bytes=self._pool_ring_bytes(input_shape),
            )
            runner = lambda x: runtime.predict(target, x, executor=pool)  # noqa: E731
            # Fail closed: if the pool dies mid-flush the admitted
            # requests are re-served in-process (degraded mode) while
            # the supervisor heals the pool.
            fallback_runner = lambda x: runtime.predict(  # noqa: E731
                target, x, workers=self.workers
            )
            fallback_on = (
                runtime.BrokenWorkerPool,
                runtime.WorkerCrashed,
                RingTimeout,
            )
            stats.attach_workers(pool.stats_snapshot)
        else:
            runner = lambda x: runtime.predict(target, x, workers=self.workers)  # noqa: E731
        # Flushes (and the degraded fallback) run inside the residency
        # guard: promotion-if-needed before, ledger settle after.
        runner = self._guarded(name, runner)
        if fallback_runner is not None:
            fallback_runner = self._guarded(name, fallback_runner)
        served_meta = dict(meta or {})
        if pool is not None:
            served_meta["worker_procs"] = self.worker_procs
        if compiled is not None:
            # Cache observability: plan-reuse regressions (a cold
            # plan cache on every flush) and tuning-cache behaviour
            # show up on GET /stats instead of only in profiles.
            plans = compiled.plans
            stats.attach_cache(
                "plans",
                lambda: {
                    "hits": plans.stats.hits,
                    "misses": plans.stats.misses,
                    "evictions": plans.stats.evictions,
                    "hit_rate": round(plans.stats.hit_rate, 3),
                    "size": len(plans),
                    "bytes": plans.nbytes,
                },
            )
            if self.tune is not None:
                tuning_cache = runtime.get_tuning_cache()
                stats.attach_cache("tuning", tuning_cache.stats.snapshot)
        if compiled is not None and compiled.quantization is not None:
            report = compiled.quantization
            served_meta.update(
                quantized=f"int{report.bits}",
                quantized_layers=report.quantized_layers,
                fallback_layers=report.fallback_layers,
            )
        if compiled is not None and compiled.tuning is not None:
            served_meta.update(
                tuned=compiled.tuning.mode,
                tuned_layers=compiled.tuning.tuned_layers,
                tuned_changed=compiled.tuning.changed_layers,
            )
        return ServedModel(
            name=name,
            model=model,
            compiled=compiled,
            input_shape=tuple(input_shape),
            batcher=Batcher(
                runner,
                max_batch=self.max_batch,
                max_latency_ms=self.max_latency_ms,
                stats=stats,
                max_queue=max_queue,
                slo_ms=slo_ms,
                weight=weight,
                rate=rate,
                fallback_runner=fallback_runner,
                fallback_on=fallback_on,
            ),
            stats=stats,
            source=source,
            meta=served_meta,
            pool=pool,
        )

    def _install(self, served: ServedModel, replace: bool) -> Optional[ServedModel]:
        """Atomically swap ``served`` into the registry; return the old entry.

        New requests route to the new entry the moment the dict slot
        changes; requests already queued on a replaced entry's batcher
        are drained by :meth:`_retire_served` afterwards, so a reload
        never drops an accepted request.
        """
        with self._lock:
            old = self.models.get(served.name)
            if old is not None and not replace:
                raise KeyError(f"model {served.name!r} is already registered")
            self.models[served.name] = served
            started = self._started
        if served.pool is not None:
            self.supervisor.watch(served.name, served.pool)
        # Fleet bookkeeping: charge the tenant to the byte ledger and
        # hand its flushes to the central scheduler. Pooled tenants are
        # pinned (their hot state lives in worker processes; the shared
        # image is charged as an auxiliary) and never demoted.
        pool = served.pool
        self.residency.admit(
            served.name,
            served.compiled,
            aux_bytes=(lambda: pool.image.nbytes) if pool is not None else None,
            pinned=pool is not None,
        )
        self.scheduler.register(served.name, served.batcher)
        if started:
            served.batcher.start()
        return old

    def _retire_served(self, served: ServedModel, *, forget: bool = True) -> None:
        """Drain and tear down a registry entry that was swapped out.

        ``forget=False`` is the hot-reload path: the replacement already
        took over the tenant's ledger slot, so only the outgoing entry's
        queue/pool are torn down here.
        """
        if served.pool is not None:
            # Unwatch first: the supervisor must not resurrect workers
            # of a pool that is about to shut down.
            self.supervisor.unwatch(served.pool)
        # No-op for a replaced entry (register() already detached it);
        # otherwise waits out the in-flight flush before deregistering.
        self.scheduler.unregister(served.batcher)
        served.batcher.stop(drain=True)
        if forget:
            # Discharge the ledger the moment the tenant is gone — the
            # freed budget is available to the survivors immediately.
            self.residency.forget(served.name)
        if served.pool is not None:
            served.pool.shutdown()

    def add_model(
        self,
        name: str,
        model,
        input_shape: Tuple[int, int, int],
        *,
        source: str = "custom",
        meta: Optional[dict] = None,
        calibration: Optional[np.ndarray] = None,
        replace: bool = False,
        warm: bool = False,
        weight: float = 1.0,
        rate: Optional[float] = None,
        max_queue=_DEFAULT,
        slo_ms=_DEFAULT,
    ) -> ServedModel:
        """Register an already-built model under ``name``.

        ``calibration`` (only meaningful with the server's ``quantize=``)
        overrides the synthetic activation-calibration batch.

        ``weight``/``rate``/``max_queue``/``slo_ms`` set this tenant's
        fair-share weight, rate quota (req/s, HTTP 429 kind
        ``quota_exceeded`` past it) and admission/SLO contract; the
        latter two default to the server-wide policy (pass ``None``
        explicitly for unbounded/disabled).

        With ``replace=True`` an existing registration is hot-swapped:
        the new model compiles (and, with ``warm=True``, warms every
        flush geometry) off the serving path, then atomically takes over
        the registry slot while the old entry's batcher drains and its
        pool shuts down — accepted requests on either entry all
        complete. Without ``replace``, a name collision raises
        ``KeyError`` before any compile work happens.
        """
        with self._lock:
            if name in self.models and not replace:
                raise KeyError(f"model {name!r} is already registered")
        served = self._build_served(
            name, model, input_shape,
            source=source, meta=meta, calibration=calibration,
            weight=weight, rate=rate, max_queue=max_queue, slo_ms=slo_ms,
        )
        if warm:
            self._warm_served(served)
        old = self._install(served, replace=replace)
        if old is not None:
            # forget=False: the new entry already took over the ledger
            # slot; forgetting would discharge the *live* tenant.
            self._retire_served(old, forget=False)
        return served

    def remove_model(self, name: str) -> None:
        """Unregister ``name`` and tear it down, draining accepted work.

        The registry slot disappears first (new requests get 404), then
        the batcher drains whatever was already accepted, the tenant's
        ledger charge is discharged (the freed budget is immediately
        available — no leak), and the pool shuts down, unlinking its
        shared-memory segments.
        """
        with self._lock:
            served = self.models.pop(name, None)
        if served is None:
            raise KeyError(f"unknown model {name!r}; serving {sorted(self.models)}")
        self._retire_served(served)

    def load_registry(
        self,
        model_name: str,
        *,
        name: Optional[str] = None,
        n: Optional[int] = None,
        patterns: Optional[int] = None,
        seed: int = 0,
        calibration: Optional[np.ndarray] = None,
        replace: bool = False,
        warm: bool = False,
        weight: float = 1.0,
        rate: Optional[float] = None,
        max_queue=_DEFAULT,
        slo_ms=_DEFAULT,
    ) -> ServedModel:
        """Load a registered model, optionally PCNN-pruned before serving.

        With ``n`` given, the model is pruned (``PCNNPruner``) and the
        SPM encodings are attached, so its convs serve from pattern
        storage exactly as a bundle-restored model would.
        ``calibration`` feeds int8 activation calibration when the
        server was built with ``quantize=``. ``replace``/``warm`` hot
        swap an existing registration (see :meth:`add_model`).
        """
        from ..core import PCNNConfig, PCNNPruner
        from ..models import profile_model

        model = create_model(model_name, rng=np.random.default_rng(seed))
        meta = {"model": model_name, "setting": "dense"}
        if n is not None:
            profile = profile_model(
                model, model_input_shape(model_name), model_name=model_name
            )
            config = PCNNConfig.uniform(
                n, len(profile.prunable()), num_patterns=patterns
            )
            pruner = PCNNPruner(model, config)
            pruner.apply()
            pruner.attach_encodings()
            meta["setting"] = config.describe()
        return self.add_model(
            name or model_name,
            model,
            model_input_shape(model_name),
            source="registry",
            meta=meta,
            calibration=calibration,
            replace=replace,
            warm=warm,
            weight=weight,
            rate=rate,
            max_queue=max_queue,
            slo_ms=slo_ms,
        )

    def load_bundle(
        self,
        bundle_path: str,
        model_name: str,
        *,
        name: Optional[str] = None,
        seed: int = 0,
        calibration: Optional[np.ndarray] = None,
        replace: bool = False,
        warm: bool = False,
        weight: float = 1.0,
        rate: Optional[float] = None,
        max_queue=_DEFAULT,
        slo_ms=_DEFAULT,
    ) -> ServedModel:
        """Serve a :class:`DeploymentBundle` ``.npz`` on a registry model.

        The bundle's :meth:`~DeploymentBundle.restore_into` installs the
        pruned weights, masks and SPM encodings into a freshly built
        model, so the compiled pipeline lowers the pruned convs from
        their encodings (pattern serving) rather than dense weights.
        With the server's ``quantize=`` set, an 8-bit bundle serves int8
        end to end: the quantization pass re-quantizes the encoding's
        non-zero sequences directly (``(kernels, n)`` values, per output
        filter), so the dense float weight tensor is never materialised
        between bundle storage and the int8 GEMM operand.
        """
        model = create_model(model_name, rng=np.random.default_rng(seed))
        bundle = DeploymentBundle.load(bundle_path)
        bundle.restore_into(model)
        return self.add_model(
            name or model_name,
            model,
            model_input_shape(model_name),
            source="bundle",
            meta={
                "model": model_name,
                "bundle": bundle_path,
                "layers": len(bundle.layers),
                "storage_bits": bundle.storage_bits(),
                "bundle_weight_bits": sorted(
                    {layer.weight_bits for layer in bundle.layers.values()}
                ),
            },
            calibration=calibration,
            replace=replace,
            warm=warm,
            weight=weight,
            rate=rate,
            max_queue=max_queue,
            slo_ms=slo_ms,
        )

    # -- lifecycle -----------------------------------------------------
    def get(self, name: Optional[str] = None) -> ServedModel:
        """Look up a served model; ``None`` resolves a sole registration."""
        if name is None:
            if len(self.models) == 1:
                return next(iter(self.models.values()))
            raise KeyError(
                f"model name required; serving {sorted(self.models) or 'nothing'}"
            )
        served = self.models.get(name)
        if served is None:
            raise KeyError(f"unknown model {name!r}; serving {sorted(self.models)}")
        return served

    def _warm_served(self, served: ServedModel) -> None:
        """Prebuild plans and arena buffers for one model's buckets."""
        if served.pool is not None:
            ways = max(
                1, min(served.pool.procs, runtime.effective_cpu_count())
            )
            chunk_shapes = {
                (-(-size // ways),) + served.input_shape
                for size in bucket_sizes(self.max_batch)
            }
            served.pool.warmup(sorted(chunk_shapes))
        for size in bucket_sizes(self.max_batch):
            x = np.zeros((size,) + served.input_shape)
            served.batcher.runner(x)

    def warmup(self) -> None:
        """Prebuild plans and arena buffers for every batch bucket.

        Runs one zero batch per bucket geometry through each model's
        runner, so the first real request never pays plan construction
        or a large allocation. Models served by a worker-process pool
        additionally warm every *worker* on every chunk geometry —
        bucket runs dispatch least-loaded, so without the targeted pass
        some worker's first real chunk would still build plans cold.
        """
        for served in list(self.models.values()):
            self._warm_served(served)

    def start(self) -> "ModelServer":
        """Start the flush scheduler, every batcher + the supervisor."""
        self.scheduler.start()
        with self._lock:
            self._started = True
            models = list(self.models.values())
        for served in models:
            served.batcher.start()
        # Pools were registered with the supervisor at install time;
        # starting the monitor thread arms crash resurrection.
        self.supervisor.start()
        return self

    def stop(self) -> None:
        """Stop supervision, batchers (draining), scheduler, then pools.

        Order matters three times over: the supervisor stops first so it
        does not resurrect workers of pools being shut down; each batcher
        drains its queue inline (quiescing its in-flight scheduled flush)
        before the scheduler's dispatch threads stop; and the drain still
        needs live workers to serve the leftover flushes, so each model's
        pool shuts down last. Pool shutdown unlinks the shared-memory
        segments — nothing is left in ``/dev/shm`` afterwards.
        """
        self.supervisor.stop()
        with self._lock:
            self._started = False
            models = list(self.models.values())
        for served in models:
            served.batcher.stop()
        self.scheduler.stop()
        for served in models:
            if served.pool is not None:
                self.supervisor.unwatch(served.pool)
                served.pool.shutdown()

    def __enter__(self) -> "ModelServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- serving -------------------------------------------------------
    def submit(self, x: np.ndarray, model: Optional[str] = None):
        """Enqueue one ``(C, H, W)`` image; returns its Future."""
        served = self.get(model)
        return served.batcher.submit(served.validate(x))

    def predict(
        self, x: np.ndarray, model: Optional[str] = None, timeout: Optional[float] = None
    ) -> np.ndarray:
        """Synchronous single-image prediction through the batcher."""
        return self.submit(x, model).result(timeout=timeout)

    # -- observability -------------------------------------------------
    def describe_model(self, name: str) -> dict:
        """One /models row: endpoint metadata + residency + fair share."""
        served = self.get(name)
        row = served.describe()
        residency = self.residency.describe_tenant(name)
        if residency is not None:
            row.update(residency)
        return row

    def describe_models(self) -> dict:
        """The /models payload: every tenant's row, residency included."""
        return {name: self.describe_model(name) for name in list(self.models)}

    def stats(self) -> dict:
        """Per-model stats snapshots plus the ``_fleet`` block.

        ``_fleet`` (the underscore keeps it clear of model names) holds
        the residency ledger (budget/charged/headroom, per-tenant state)
        and the scheduler's fairness accounting (weights, observed
        shares, deficits).
        """
        report = {
            name: served.stats.snapshot(queue_depth=served.batcher.queue_depth)
            for name, served in self.models.items()
        }
        report["_fleet"] = {
            "residency": self.residency.snapshot(),
            "scheduler": self.scheduler.snapshot(),
        }
        return report

    def render_stats(self) -> str:
        """Shutdown summary, one block per served model."""
        return "\n".join(
            served.stats.render(title=name) for name, served in self.models.items()
        )

    def __repr__(self) -> str:
        return (
            f"ModelServer(models={sorted(self.models)}, "
            f"max_batch={self.max_batch}, max_latency_ms={self.max_latency_ms}, "
            f"workers={self.workers}, worker_procs={self.worker_procs})"
        )
