"""Multi-model serving registry on top of the compiled pipeline.

:class:`ModelServer` owns everything between "a model artifact exists"
and "requests get answers": it loads models by registry name (optionally
PCNN-pruning them first) or from a :class:`~repro.core.deploy.DeploymentBundle`
``.npz`` (whose :meth:`restore_into` installs weights, masks *and* SPM
encodings, so pruned convs serve through the pattern path), compiles each
model once (:func:`~repro.runtime.compile_model`), warms plans and arena
buffers for every batch bucket before traffic arrives, and runs one
dynamic :class:`~repro.serving.batcher.Batcher` per model that flushes
into ``runtime.predict(compiled, workers=N)``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from .. import runtime
from ..core.deploy import DeploymentBundle
from ..models import create_model, model_input_shape
from .batcher import Batcher, bucket_sizes
from .stats import ServerStats

__all__ = ["ServedModel", "ModelServer"]


@dataclass
class ServedModel:
    """One endpoint: eager source model, compiled pipeline, batcher."""

    name: str
    model: object  # the eager nn.Module (encodings attached when pruned)
    compiled: Optional[runtime.CompiledModel]
    input_shape: Tuple[int, int, int]  # (C, H, W)
    batcher: Batcher
    stats: ServerStats
    source: str = "registry"
    meta: dict = field(default_factory=dict)

    @property
    def target(self) -> object:
        """What predict() serves: the compiled pipeline when available."""
        return self.compiled if self.compiled is not None else self.model

    def validate(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.shape != self.input_shape:
            raise ValueError(
                f"model {self.name!r} expects one {self.input_shape} image, "
                f"got shape {x.shape}"
            )
        return x

    def describe(self) -> dict:
        """JSON-ready row for the /models endpoint."""
        return {
            "input_shape": list(self.input_shape),
            "compiled": self.compiled is not None,
            "source": self.source,
            **self.meta,
        }


class ModelServer:
    """Registry of served models with per-model dynamic batching.

    Parameters
    ----------
    workers:
        Thread-pool width each flush fans out over
        (``runtime.predict(compiled, workers=N)``); ``None``/1 keeps
        flushes single-threaded.
    max_batch / max_latency_ms:
        Default coalescing policy for every model's batcher.
    compile:
        Lower each model with :func:`runtime.compile_model` at load time
        (``False`` serves the eager module graph — mainly for tests and
        bit-exact float64 comparisons).
    """

    def __init__(
        self,
        *,
        workers: Optional[int] = None,
        max_batch: int = 32,
        max_latency_ms: float = 2.0,
        compile: bool = True,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.workers = workers
        self.max_batch = max_batch
        self.max_latency_ms = max_latency_ms
        self.compile = compile
        self.models: Dict[str, ServedModel] = {}
        self._lock = threading.Lock()

    # -- loading -------------------------------------------------------
    def add_model(
        self,
        name: str,
        model,
        input_shape: Tuple[int, int, int],
        *,
        source: str = "custom",
        meta: Optional[dict] = None,
    ) -> ServedModel:
        """Register an already-built model under ``name``."""
        with self._lock:
            if name in self.models:
                raise KeyError(f"model {name!r} is already registered")
            compiled = runtime.compile_model(model) if self.compile else None
            stats = ServerStats()
            target = compiled if compiled is not None else model
            runner = lambda x: runtime.predict(target, x, workers=self.workers)  # noqa: E731
            served = ServedModel(
                name=name,
                model=model,
                compiled=compiled,
                input_shape=tuple(input_shape),
                batcher=Batcher(
                    runner,
                    max_batch=self.max_batch,
                    max_latency_ms=self.max_latency_ms,
                    stats=stats,
                ),
                stats=stats,
                source=source,
                meta=dict(meta or {}),
            )
            self.models[name] = served
            return served

    def load_registry(
        self,
        model_name: str,
        *,
        name: Optional[str] = None,
        n: Optional[int] = None,
        patterns: Optional[int] = None,
        seed: int = 0,
    ) -> ServedModel:
        """Load a registered model, optionally PCNN-pruned before serving.

        With ``n`` given, the model is pruned (``PCNNPruner``) and the
        SPM encodings are attached, so its convs serve from pattern
        storage exactly as a bundle-restored model would.
        """
        from ..core import PCNNConfig, PCNNPruner
        from ..models import profile_model

        model = create_model(model_name, rng=np.random.default_rng(seed))
        meta = {"model": model_name, "setting": "dense"}
        if n is not None:
            profile = profile_model(
                model, model_input_shape(model_name), model_name=model_name
            )
            config = PCNNConfig.uniform(
                n, len(profile.prunable()), num_patterns=patterns
            )
            pruner = PCNNPruner(model, config)
            pruner.apply()
            pruner.attach_encodings()
            meta["setting"] = config.describe()
        return self.add_model(
            name or model_name,
            model,
            model_input_shape(model_name),
            source="registry",
            meta=meta,
        )

    def load_bundle(
        self,
        bundle_path: str,
        model_name: str,
        *,
        name: Optional[str] = None,
        seed: int = 0,
    ) -> ServedModel:
        """Serve a :class:`DeploymentBundle` ``.npz`` on a registry model.

        The bundle's :meth:`~DeploymentBundle.restore_into` installs the
        pruned weights, masks and SPM encodings into a freshly built
        model, so the compiled pipeline lowers the pruned convs from
        their encodings (pattern serving) rather than dense weights.
        """
        model = create_model(model_name, rng=np.random.default_rng(seed))
        bundle = DeploymentBundle.load(bundle_path)
        bundle.restore_into(model)
        return self.add_model(
            name or model_name,
            model,
            model_input_shape(model_name),
            source="bundle",
            meta={
                "model": model_name,
                "bundle": bundle_path,
                "layers": len(bundle.layers),
                "storage_bits": bundle.storage_bits(),
            },
        )

    # -- lifecycle -----------------------------------------------------
    def get(self, name: Optional[str] = None) -> ServedModel:
        """Look up a served model; ``None`` resolves a sole registration."""
        if name is None:
            if len(self.models) == 1:
                return next(iter(self.models.values()))
            raise KeyError(
                f"model name required; serving {sorted(self.models) or 'nothing'}"
            )
        served = self.models.get(name)
        if served is None:
            raise KeyError(f"unknown model {name!r}; serving {sorted(self.models)}")
        return served

    def warmup(self) -> None:
        """Prebuild plans and arena buffers for every batch bucket.

        Runs one zero batch per bucket geometry through each model's
        runner, so the first real request never pays plan construction
        or a large allocation.
        """
        for served in self.models.values():
            for size in bucket_sizes(self.max_batch):
                x = np.zeros((size,) + served.input_shape)
                served.batcher.runner(x)

    def start(self) -> "ModelServer":
        for served in self.models.values():
            served.batcher.start()
        return self

    def stop(self) -> None:
        for served in self.models.values():
            served.batcher.stop()

    def __enter__(self) -> "ModelServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- serving -------------------------------------------------------
    def submit(self, x: np.ndarray, model: Optional[str] = None):
        """Enqueue one ``(C, H, W)`` image; returns its Future."""
        served = self.get(model)
        return served.batcher.submit(served.validate(x))

    def predict(
        self, x: np.ndarray, model: Optional[str] = None, timeout: Optional[float] = None
    ) -> np.ndarray:
        """Synchronous single-image prediction through the batcher."""
        return self.submit(x, model).result(timeout=timeout)

    # -- observability -------------------------------------------------
    def stats(self) -> dict:
        """Per-model stats snapshots (the /stats payload)."""
        return {
            name: served.stats.snapshot(queue_depth=served.batcher.queue_depth)
            for name, served in self.models.items()
        }

    def render_stats(self) -> str:
        """Shutdown summary, one block per served model."""
        return "\n".join(
            served.stats.render(title=name) for name, served in self.models.items()
        )

    def __repr__(self) -> str:
        return (
            f"ModelServer(models={sorted(self.models)}, "
            f"max_batch={self.max_batch}, max_latency_ms={self.max_latency_ms}, "
            f"workers={self.workers})"
        )
