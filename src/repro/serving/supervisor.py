"""Self-healing serving: worker supervision, restart budgets, incidents.

PR 6 made worker death *survivable* — a SIGKILL'd worker's in-flight
chunks are redispatched to a survivor — but not *recoverable*: the slot
stayed dead forever, so every crash permanently shrank capacity.
:class:`Supervisor` closes that loop. A monitor thread watches every
registered :class:`~repro.runtime.WorkerPool`:

- **Crash resurrection.** A worker whose death the pool's collector
  observed (``alive`` False, not retired) is respawned from the pool's
  :class:`~repro.runtime.shm.SharedModelImage` — same shared weights,
  same rings, fresh process — subject to the restart budget.
- **Wedge detection.** Workers stamp a shared-clock heartbeat every
  loop iteration. A worker that is *alive* but has outstanding chunks
  and a heartbeat older than ``heartbeat_timeout`` is wedged
  (SIGSTOP, deadlock, runaway syscall): the supervisor SIGKILLs it, the
  pool's crash path replays its chunks, and the next tick resurrects it.
- **Restart budget.** Each pool gets at most ``max_restarts`` respawns
  per rolling ``budget_window`` seconds (default 3 per 30 s) with
  exponential backoff between attempts. A pool that keeps dying — bad
  model, poisoned image, OOM loop — is marked **degraded** instead of
  crash-looping: no further respawns, and the serving layer's
  in-process fallback carries the traffic.
- **Incident log.** Every crash, wedge, respawn, failure and
  degradation is appended to a bounded log served at ``GET /incidents``
  and counted for ``GET /metrics``.

The supervisor is deliberately poll-based (default 100 ms): the pool's
own collector already detects death within ~10 ms and replays in-flight
work; supervision only needs to restore capacity and keep the record,
so a simple self-contained loop beats wiring callbacks through every
failure path.
"""

from __future__ import annotations

import logging
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional

__all__ = ["Incident", "RestartBudget", "Supervisor"]

logger = logging.getLogger("repro.serving")

#: Bounded incident-log length: enough to audit a bad night, small
#: enough that /incidents never becomes the overload.
MAX_INCIDENTS = 256


@dataclass
class Incident:
    """One supervision event, JSON-ready via :meth:`describe`."""

    stamp: float  # wall-clock (time.time) for operator correlation
    kind: str  # worker_crash | worker_wedged | worker_respawned | ...
    model: str
    worker: Optional[int] = None
    detail: dict = field(default_factory=dict)

    def describe(self) -> dict:
        """JSON-ready row for ``GET /incidents`` (omits empty fields)."""
        row = {
            "time": self.stamp,
            "kind": self.kind,
            "model": self.model,
        }
        if self.worker is not None:
            row["worker"] = self.worker
        if self.detail:
            row["detail"] = self.detail
        return row


class RestartBudget:
    """Sliding-window restart allowance with exponential backoff.

    ``allow(now)`` answers "may I restart right now?" — False either
    while backing off after a recent restart or when ``max_restarts``
    already happened inside the rolling window. ``exhausted(now)`` is
    the stronger condition (window full) that flips a pool to degraded.
    """

    def __init__(
        self,
        max_restarts: int = 3,
        window_seconds: float = 30.0,
        base_backoff: float = 0.5,
    ) -> None:
        if max_restarts < 1:
            raise ValueError("max_restarts must be >= 1")
        if window_seconds <= 0 or base_backoff < 0:
            raise ValueError("window_seconds must be > 0, base_backoff >= 0")
        self.max_restarts = max_restarts
        self.window = window_seconds
        self.base_backoff = base_backoff
        self._stamps: Deque[float] = deque()

    def _prune(self, now: float) -> None:
        while self._stamps and now - self._stamps[0] > self.window:
            self._stamps.popleft()

    def backoff(self) -> float:
        """Current wait before the next restart: base * 2^(recent-1)."""
        if not self._stamps:
            return 0.0
        return self.base_backoff * (2 ** (len(self._stamps) - 1))

    def exhausted(self, now: float) -> bool:
        """Whether the rolling window is out of restarts (degrade cue)."""
        self._prune(now)
        return len(self._stamps) >= self.max_restarts

    def allow(self, now: float) -> bool:
        """Whether a restart may happen at ``now`` (budget + backoff)."""
        self._prune(now)
        if len(self._stamps) >= self.max_restarts:
            return False
        if self._stamps and now - self._stamps[-1] < self.backoff():
            return False
        return True

    def record(self, now: float) -> None:
        """Account one restart at ``now``."""
        self._prune(now)
        self._stamps.append(now)

    def snapshot(self) -> dict:
        """Budget state for ``model_status()``: window fill + next wait."""
        return {
            "max_restarts": self.max_restarts,
            "window_seconds": self.window,
            "recent": len(self._stamps),
            "next_backoff_s": round(self.backoff(), 3),
        }


@dataclass
class _Watched:
    """One supervised pool plus its healing state."""

    name: str
    pool: object  # runtime.WorkerPool
    budget: RestartBudget
    degraded: bool = False
    restarts: int = 0
    crashes: int = 0
    wedged: int = 0


class Supervisor:
    """Monitor thread healing the worker pools behind a model server.

    Parameters
    ----------
    interval:
        Poll period of the monitor loop. Crash *detection* belongs to
        the pool's collector (~10 ms); this only paces resurrection and
        wedge checks.
    heartbeat_timeout:
        A worker with in-flight chunks whose heartbeat is older than
        this is declared wedged and SIGKILLed. Must comfortably exceed
        the slowest legitimate chunk (seconds, not the ~ms a compiled
        flush takes).
    budget:
        Restart-budget factory applied to each watched pool
        (``max_restarts`` per ``window_seconds`` + exponential backoff).
    """

    def __init__(
        self,
        *,
        interval: float = 0.1,
        heartbeat_timeout: float = 5.0,
        budget: Optional[Callable[[], RestartBudget]] = None,
    ) -> None:
        if interval <= 0 or heartbeat_timeout <= 0:
            raise ValueError("interval and heartbeat_timeout must be > 0")
        self.interval = interval
        self.heartbeat_timeout = heartbeat_timeout
        self._budget_factory = budget if budget is not None else RestartBudget
        self._watched: Dict[int, _Watched] = {}
        self._incidents: Deque[Incident] = deque(maxlen=MAX_INCIDENTS)
        self._lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    # -- registration --------------------------------------------------
    def watch(self, name: str, pool) -> None:
        """Supervise ``pool`` (serving model ``name``).

        Installs the pool's ``on_worker_death`` hook so crashes are
        logged with their replay outcome the instant the collector sees
        them; resurrection happens on the monitor loop.
        """
        watched = _Watched(name=name, pool=pool, budget=self._budget_factory())

        def on_death(worker_id, exitcode, orphaned, redispatched) -> None:
            watched.crashes += 1
            self._record(
                "worker_crash", name, worker_id,
                exitcode=exitcode, in_flight=orphaned, replayed=redispatched,
            )

        pool.on_worker_death = on_death
        with self._lock:
            self._watched[id(pool)] = watched

    def unwatch(self, pool) -> None:
        """Stop supervising ``pool`` (idempotent)."""
        with self._lock:
            self._watched.pop(id(pool), None)
        pool.on_worker_death = None

    # -- lifecycle -----------------------------------------------------
    @property
    def running(self) -> bool:
        """Whether the monitor thread is alive."""
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "Supervisor":
        """Start the monitor thread (idempotent); returns self."""
        with self._lock:
            if self.running:
                return self
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._loop, name="repro-supervisor", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the monitor thread; watched pools are left untouched."""
        self._stop.set()
        thread = self._thread
        if thread is not None and thread.is_alive():
            thread.join(5.0)
        self._thread = None

    def __enter__(self) -> "Supervisor":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- monitor loop --------------------------------------------------
    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self.check_once()

    def check_once(self) -> None:
        """One supervision pass over every watched pool (loop body).

        Public so tests (and a paranoid operator shell) can drive
        supervision deterministically without the timing thread.
        """
        with self._lock:
            watched = list(self._watched.values())
        for entry in watched:
            try:
                self._check_pool(entry)
            except Exception as error:  # noqa: BLE001 - keep supervising
                logger.exception(
                    "supervision pass failed for %r: %s", entry.name, error
                )

    def _check_pool(self, entry: _Watched) -> None:
        pool = entry.pool
        if pool.closed:
            with self._lock:
                self._watched.pop(id(pool), None)
            return
        health = pool.worker_health()
        # Wedge detection first: a wedged worker is alive to the pool,
        # so it must be killed before the resurrection scan can see it.
        for worker_id, row in health.items():
            if (
                row["alive"]
                and row["process_alive"]
                and row["outstanding"] > 0
                and row["heartbeat_age_s"] is not None
                and row["heartbeat_age_s"] > self.heartbeat_timeout
            ):
                entry.wedged += 1
                self._record(
                    "worker_wedged", entry.name, worker_id,
                    heartbeat_age_s=round(row["heartbeat_age_s"], 3),
                    outstanding=row["outstanding"],
                )
                pool.kill_worker(worker_id)
        # Resurrection: every dead (not retired) slot, budget allowing.
        for worker_id, row in health.items():
            if row["alive"] or row["retired"] or entry.degraded:
                continue
            now = time.monotonic()
            if not entry.budget.allow(now):
                if entry.budget.exhausted(now):
                    entry.degraded = True
                    self._record(
                        "pool_degraded", entry.name,
                        budget=entry.budget.snapshot(),
                        alive=pool.alive_workers,
                    )
                    logger.error(
                        "pool for %r exceeded its restart budget "
                        "(%d respawns/%.0fs); marked degraded",
                        entry.name, entry.budget.max_restarts,
                        entry.budget.window,
                    )
                continue  # backing off; retry next tick
            try:
                pid = pool.respawn_worker(worker_id)
            except Exception as error:  # noqa: BLE001 - logged, budgeted
                entry.budget.record(time.monotonic())
                self._record(
                    "respawn_failed", entry.name, worker_id,
                    error=f"{type(error).__name__}: {error}",
                )
                continue
            entry.budget.record(time.monotonic())
            entry.restarts += 1
            self._record("worker_respawned", entry.name, worker_id, pid=pid)
            logger.warning(
                "respawned worker %d for %r (pid %d)",
                worker_id, entry.name, pid,
            )

    # -- observability -------------------------------------------------
    def _record(self, kind: str, model: str, worker=None, **detail) -> None:
        incident = Incident(
            stamp=time.time(), kind=kind, model=model, worker=worker,
            detail=detail,
        )
        with self._lock:
            self._incidents.append(incident)

    def record(self, kind: str, model: str, worker=None, **detail) -> None:
        """Append an externally-observed incident to the log.

        The residency manager routes tenant demotion/promotion/eviction
        and over-budget events here, so ``GET /incidents`` is the one
        place the fleet's healing *and* memory-pressure history lives.
        """
        self._record(kind, model, worker, **detail)

    def incidents(self) -> List[dict]:
        """The bounded incident log, oldest first (the /incidents body)."""
        with self._lock:
            return [incident.describe() for incident in self._incidents]

    def model_status(self) -> Dict[str, dict]:
        """Per-model healing counters (for /incidents, /metrics, /healthz)."""
        with self._lock:
            watched = list(self._watched.values())
        return {
            entry.name: {
                "degraded": entry.degraded,
                "restarts": entry.restarts,
                "crashes": entry.crashes,
                "wedged": entry.wedged,
                "workers_alive": entry.pool.alive_workers,
                "workers": entry.pool.procs,
                "budget": entry.budget.snapshot(),
            }
            for entry in watched
        }

    def snapshot(self) -> dict:
        """JSON payload of ``GET /incidents``."""
        return {"incidents": self.incidents(), "models": self.model_status()}

    def __repr__(self) -> str:
        with self._lock:
            pools = len(self._watched)
            incidents = len(self._incidents)
        return (
            f"Supervisor(pools={pools}, incidents={incidents}, "
            f"running={self.running})"
        )
