"""Length-prefixed binary framing for streaming inference connections.

HTTP/JSON serves one image per round trip; a camera-style client holds
one TCP connection open and pushes a *stream* of tensor frames down it.
This module defines the packet format both ends speak — the same
length-prefix + id + sequence-count idiom CCSDS space-packet telemetry
uses for exactly this "many small records on one long-lived link"
problem — and a :class:`FrameReader` that reassembles frames from
arbitrary TCP chunk boundaries.

Frame layout (header fields in network byte order)::

    u32   length      bytes that follow this prefix (header+payload+crc)
    u16   magic       0x5043 ("PC")
    u8    version     protocol version (currently 1)
    u8    kind        REQUEST / RESPONSE / ERROR / HELLO / HELLO_ACK
    u32   request_id  echoed on the response — responses may arrive out
                      of order, the id is how the client matches them
    u32   stream_id   which logical stream (camera) this frame belongs to
    u32   seq         per-stream sequence count, monotonically increasing
    u8    dtype       tensor dtype code (0 for JSON-payload kinds)
    u8    ndim        tensor rank (0..MAX_NDIM)
    u16   flags       bit 0 (FLAG_CACHE_HIT): response was served from
                      the server's per-stream delta cache
    u32 x ndim        shape dims
    ...   payload     raw little-endian tensor bytes (C order), or UTF-8
                      JSON for ERROR/HELLO/HELLO_ACK frames
    u32   crc32       zlib CRC-32 over everything between the length
                      prefix and this field

Design rules the serving layer relies on:

- **Out-of-order completion.** Responses carry the request id, so a
  slow batch never head-of-line-blocks the connection: whatever flush
  finishes first answers first.
- **Typed errors.** An ERROR frame's JSON payload is the same
  ``{"kind", "message"}`` contract as the HTTP error bodies (plus
  ``"retry_after"`` seconds on backpressure kinds), so a stream client
  branches on the exact same kinds a JSON client does.
- **Corruption never kills framing.** A frame that fails CRC, dtype,
  shape or magic checks is consumed in full and surfaced as a
  :class:`FrameError` *event* — the reader stays synchronised on the
  length prefixes and the connection survives. Oversize frames
  (declared length past ``max_frame_bytes``) are discarded in bounded
  chunks while the reader keeps accepting input.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass, field
from typing import List, Optional, Union

import numpy as np

__all__ = [
    "MAGIC",
    "VERSION",
    "KIND_REQUEST",
    "KIND_RESPONSE",
    "KIND_ERROR",
    "KIND_HELLO",
    "KIND_HELLO_ACK",
    "FLAG_CACHE_HIT",
    "DTYPE_CODES",
    "DEFAULT_MAX_FRAME_BYTES",
    "MAX_NDIM",
    "Frame",
    "FrameError",
    "WireError",
    "encode_tensor_frame",
    "encode_meta_frame",
    "encode_error_frame",
    "FrameReader",
]

MAGIC = 0x5043  # "PC"
VERSION = 1

KIND_REQUEST = 1
KIND_RESPONSE = 2
KIND_ERROR = 3
KIND_HELLO = 4
KIND_HELLO_ACK = 5

_KINDS = (KIND_REQUEST, KIND_RESPONSE, KIND_ERROR, KIND_HELLO, KIND_HELLO_ACK)
#: Kinds whose payload is UTF-8 JSON rather than raw tensor bytes.
_META_KINDS = (KIND_ERROR, KIND_HELLO, KIND_HELLO_ACK)

#: Responses served from the per-stream delta cache set this bit.
FLAG_CACHE_HIT = 0x1

#: Wire dtype codes — explicit little-endian so the format is
#: byte-order-defined rather than host-defined.
DTYPE_CODES = {
    1: np.dtype("<f4"),
    2: np.dtype("<f8"),
    3: np.dtype("i1"),
    4: np.dtype("<i4"),
    5: np.dtype("u1"),
    6: np.dtype("<i8"),
    7: np.dtype("<u4"),
}
_CODE_FOR_DTYPE = {dt: code for code, dt in DTYPE_CODES.items()}

#: Largest tensor rank a frame may carry.
MAX_NDIM = 8

#: Default per-frame size cap (64 MiB) — far above any image batch this
#: repo serves, far below "a corrupted length prefix allocates the heap".
DEFAULT_MAX_FRAME_BYTES = 64 * 2**20

_PREFIX = struct.Struct(">I")
_HEADER = struct.Struct(">HBBIIIBBH")  # magic..flags, 20 bytes
_DIM = struct.Struct(">I")
_CRC = struct.Struct(">I")
_MIN_BODY = _HEADER.size + _CRC.size


class WireError(RuntimeError):
    """A typed ERROR frame received from the peer.

    Mirrors the HTTP structured-error contract: ``kind`` is the stable
    machine-readable error kind (``queue_full``, ``quota_exceeded``,
    ``slo_expired``, ``bad_request``, ...), ``retry_after`` carries the
    backpressure hint in seconds when the kind implies one.
    """

    def __init__(
        self, kind: str, message: str, retry_after: Optional[float] = None
    ) -> None:
        super().__init__(f"{kind}: {message}")
        self.kind = kind
        self.message = message
        self.retry_after = retry_after


class FrameError(Exception):
    """One undecodable frame, consumed without losing stream sync.

    Returned (not raised) by :meth:`FrameReader.feed` as an event, so a
    server can answer it with a typed ERROR frame and keep reading.
    ``kind`` is the error-frame kind to reply with (``bad_frame``,
    ``frame_too_large`` or ``protocol``); ``request_id`` echoes the
    offending frame's id when the header was parseable (0 otherwise).
    """

    def __init__(self, kind: str, message: str, request_id: int = 0) -> None:
        super().__init__(f"{kind}: {message}")
        self.kind = kind
        self.message = message
        self.request_id = request_id


@dataclass
class Frame:
    """One decoded wire frame: header fields plus either a tensor
    payload (REQUEST/RESPONSE) or a JSON ``meta`` dict (ERROR/HELLO/
    HELLO_ACK)."""

    kind: int
    request_id: int
    stream_id: int = 0
    seq: int = 0
    flags: int = 0
    #: Tensor payload for REQUEST/RESPONSE frames (owns its memory).
    tensor: Optional[np.ndarray] = None
    #: Decoded JSON payload for ERROR/HELLO/HELLO_ACK frames.
    meta: Optional[dict] = field(default=None)

    @property
    def cache_hit(self) -> bool:
        """Whether this response came from the server's delta cache."""
        return bool(self.flags & FLAG_CACHE_HIT)

    def error(self) -> WireError:
        """The :class:`WireError` an ERROR frame describes."""
        meta = self.meta or {}
        return WireError(
            str(meta.get("kind", "internal")),
            str(meta.get("message", "")),
            meta.get("retry_after"),
        )


def _encode(
    kind: int,
    request_id: int,
    stream_id: int,
    seq: int,
    flags: int,
    dtype_code: int,
    shape: tuple,
    payload: bytes,
) -> bytes:
    header = _HEADER.pack(
        MAGIC, VERSION, kind, request_id, stream_id, seq,
        dtype_code, len(shape), flags,
    )
    dims = b"".join(_DIM.pack(d) for d in shape)
    body = header + dims + payload
    crc = zlib.crc32(body) & 0xFFFFFFFF
    return _PREFIX.pack(len(body) + _CRC.size) + body + _CRC.pack(crc)


def encode_tensor_frame(
    kind: int,
    request_id: int,
    tensor: np.ndarray,
    *,
    stream_id: int = 0,
    seq: int = 0,
    flags: int = 0,
) -> bytes:
    """Encode a REQUEST/RESPONSE frame carrying ``tensor``."""
    tensor = np.asarray(tensor)
    if not tensor.flags.c_contiguous:
        tensor = np.ascontiguousarray(tensor)
    wire_dtype = tensor.dtype.newbyteorder("<")
    code = _CODE_FOR_DTYPE.get(wire_dtype)
    if code is None:
        raise ValueError(
            f"dtype {tensor.dtype} has no wire code; supported: "
            f"{sorted(str(dt) for dt in _CODE_FOR_DTYPE)}"
        )
    if tensor.ndim > MAX_NDIM:
        raise ValueError(f"tensor rank {tensor.ndim} exceeds MAX_NDIM={MAX_NDIM}")
    payload = tensor.astype(wire_dtype, copy=False).tobytes()
    return _encode(
        kind, request_id, stream_id, seq, flags, code, tensor.shape, payload
    )


def encode_meta_frame(
    kind: int,
    request_id: int,
    meta: dict,
    *,
    stream_id: int = 0,
    seq: int = 0,
    flags: int = 0,
) -> bytes:
    """Encode an ERROR/HELLO/HELLO_ACK frame carrying a JSON payload."""
    payload = json.dumps(meta).encode()
    return _encode(kind, request_id, stream_id, seq, flags, 0, (), payload)


def encode_error_frame(
    request_id: int,
    kind: str,
    message: str,
    *,
    retry_after: Optional[float] = None,
    stream_id: int = 0,
    seq: int = 0,
) -> bytes:
    """Encode a typed ERROR frame (the wire form of an HTTP error body)."""
    meta = {"kind": kind, "message": message}
    if retry_after is not None:
        meta["retry_after"] = retry_after
    return encode_meta_frame(
        KIND_ERROR, request_id, meta, stream_id=stream_id, seq=seq
    )


class FrameReader:
    """Incremental frame decoder over arbitrary byte chunks.

    Feed it whatever ``recv`` returned; it buffers partial frames across
    calls and emits complete :class:`Frame`/:class:`FrameError` events
    in arrival order. Stream synchronisation is carried entirely by the
    length prefixes, so a bad frame costs exactly its own bytes.
    """

    def __init__(self, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES) -> None:
        if max_frame_bytes < _MIN_BODY:
            raise ValueError(f"max_frame_bytes must be >= {_MIN_BODY}")
        self.max_frame_bytes = max_frame_bytes
        self._buffer = bytearray()
        #: Bytes of an oversize frame still to discard before resyncing.
        self._skip = 0

    @property
    def pending_bytes(self) -> int:
        """Buffered bytes not yet assembled into a frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> List[Union[Frame, FrameError]]:
        """Consume ``data``; return every event it completed."""
        self._buffer.extend(data)
        events: List[Union[Frame, FrameError]] = []
        while True:
            if self._skip:
                drop = min(self._skip, len(self._buffer))
                del self._buffer[:drop]
                self._skip -= drop
                if self._skip:
                    return events  # still inside the oversize frame
            if len(self._buffer) < _PREFIX.size:
                return events
            (length,) = _PREFIX.unpack_from(self._buffer, 0)
            if length > self.max_frame_bytes:
                # Reject now (the sender should hear about it promptly),
                # discard the declared bytes as they arrive. Echo the
                # request id when enough of the header is already here.
                request_id = 0
                if len(self._buffer) >= _PREFIX.size + 8:
                    magic, _, _, request_id = struct.unpack_from(
                        ">HBBI", self._buffer, _PREFIX.size
                    )
                    if magic != MAGIC:
                        request_id = 0
                events.append(
                    FrameError(
                        "frame_too_large",
                        f"declared frame length {length} exceeds the "
                        f"{self.max_frame_bytes}-byte limit",
                        request_id,
                    )
                )
                available = len(self._buffer) - _PREFIX.size
                drop = min(length, available)
                del self._buffer[: _PREFIX.size + drop]
                self._skip = length - drop
                continue
            if length < _MIN_BODY:
                if len(self._buffer) < _PREFIX.size + length:
                    return events
                events.append(
                    FrameError(
                        "bad_frame",
                        f"declared frame length {length} is below the "
                        f"{_MIN_BODY}-byte minimum",
                    )
                )
                del self._buffer[: _PREFIX.size + length]
                continue
            if len(self._buffer) < _PREFIX.size + length:
                return events
            body = bytes(self._buffer[_PREFIX.size : _PREFIX.size + length])
            del self._buffer[: _PREFIX.size + length]
            events.append(self._decode_body(body))

    # -- one complete frame body ---------------------------------------
    def _decode_body(self, body: bytes) -> Union[Frame, FrameError]:
        (
            magic, version, kind, request_id, stream_id, seq,
            dtype_code, ndim, flags,
        ) = _HEADER.unpack_from(body, 0)
        if magic != MAGIC:
            return FrameError(
                "protocol", f"bad magic 0x{magic:04x} (expected 0x{MAGIC:04x})"
            )
        if version != VERSION:
            return FrameError(
                "protocol",
                f"unsupported protocol version {version} (speaking {VERSION})",
                request_id,
            )
        (crc_stored,) = _CRC.unpack_from(body, len(body) - _CRC.size)
        crc_actual = zlib.crc32(body[: -_CRC.size]) & 0xFFFFFFFF
        if crc_stored != crc_actual:
            return FrameError(
                "bad_frame",
                f"CRC mismatch (stored 0x{crc_stored:08x}, "
                f"computed 0x{crc_actual:08x})",
                request_id,
            )
        if kind not in _KINDS:
            return FrameError(
                "bad_frame", f"unknown frame kind {kind}", request_id
            )
        if ndim > MAX_NDIM:
            return FrameError(
                "bad_frame", f"rank {ndim} exceeds MAX_NDIM={MAX_NDIM}", request_id
            )
        dims_end = _HEADER.size + ndim * _DIM.size
        if dims_end + _CRC.size > len(body):
            return FrameError(
                "bad_frame", "frame too short for its shape header", request_id
            )
        shape = tuple(
            _DIM.unpack_from(body, _HEADER.size + i * _DIM.size)[0]
            for i in range(ndim)
        )
        payload = body[dims_end : len(body) - _CRC.size]
        if kind in _META_KINDS:
            try:
                meta = json.loads(payload.decode())
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                return FrameError(
                    "bad_frame", f"undecodable JSON payload: {error}", request_id
                )
            if not isinstance(meta, dict):
                return FrameError(
                    "bad_frame", "JSON payload must be an object", request_id
                )
            return Frame(
                kind=kind, request_id=request_id, stream_id=stream_id,
                seq=seq, flags=flags, meta=meta,
            )
        dtype = DTYPE_CODES.get(dtype_code)
        if dtype is None:
            return FrameError(
                "bad_frame", f"unknown dtype code {dtype_code}", request_id
            )
        expected = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        if expected != len(payload):
            return FrameError(
                "bad_frame",
                f"payload is {len(payload)} bytes but shape {shape} of "
                f"{dtype} needs {expected}",
                request_id,
            )
        tensor = np.frombuffer(payload, dtype=dtype).reshape(shape).copy()
        return Frame(
            kind=kind, request_id=request_id, stream_id=stream_id,
            seq=seq, flags=flags, tensor=tensor,
        )
