"""One serving-error contract shared by every transport.

PR 7 introduced structured errors (``{"error": {"kind", "message"}}``
bodies, ``Retry-After`` on the 429s); the streaming wire protocol
carries the same contract in typed ERROR frames. Before this module the
HTTP handler derived the status/kind/Retry-After mapping inline per
exception type — duplicating the two 429 paths and leaving nothing for
a second transport to reuse, so the stream protocol's backpressure
frames could silently drift from HTTP semantics. :func:`classify_error`
is now the single source of truth: HTTP renders its result as a status
plus headers, the stream server renders it as an ERROR frame, and both
agree on kind names and Retry-After values by construction.

Shed *accounting* stays where the shed happens — the
:class:`~repro.serving.batcher.Batcher` records ``queue_full``/
``quota``/``slo`` at the raise site — so transports only translate
errors, never double-count them.
"""

from __future__ import annotations

import math
from concurrent.futures import TimeoutError as FutureTimeout
from dataclasses import dataclass
from typing import Optional

from ..runtime import BrokenWorkerPool, WorkerCrashed
from .batcher import BatcherClosed, QueueFull, QuotaExceeded, SLOExpired

__all__ = ["ServingError", "classify_error", "retry_after_seconds"]

#: Retry-After clamp: whole seconds, at least 1 (the HTTP header is an
#: integer and "retry immediately" defeats the point of shedding).
_MIN_RETRY_AFTER = 1


def retry_after_seconds(estimate: float) -> int:
    """Clamp a drain-rate/token-bucket estimate to a Retry-After value.

    Both 429 kinds (``queue_full`` and ``quota_exceeded``) and both
    transports (HTTP header, ERROR-frame ``retry_after`` field) go
    through this one rounding, so a client always sees the same hint
    regardless of how it connected.
    """
    return max(_MIN_RETRY_AFTER, math.ceil(estimate))


@dataclass(frozen=True)
class ServingError:
    """Transport-neutral description of a failed request.

    ``status`` is the HTTP status code; ``kind`` is the stable
    machine-readable kind both the JSON error body and the wire ERROR
    frame carry; ``retry_after`` is set (whole seconds) exactly when the
    kind is a backpressure shed a client should retry later.
    """

    status: int
    kind: str
    message: str
    retry_after: Optional[int] = None


def classify_error(
    error: BaseException, *, request_timeout: Optional[float] = None
) -> ServingError:
    """Map a submit/result exception onto the serving error contract.

    ``request_timeout`` (seconds) only shapes the ``timeout`` kind's
    message — pass the transport's configured timeout when it has one.
    """
    if isinstance(error, QuotaExceeded):
        return ServingError(
            429, "quota_exceeded", str(error),
            retry_after=retry_after_seconds(error.retry_after),
        )
    if isinstance(error, QueueFull):
        return ServingError(
            429, "queue_full", str(error),
            retry_after=retry_after_seconds(error.retry_after),
        )
    if isinstance(error, SLOExpired):
        return ServingError(503, "slo_expired", str(error))
    if isinstance(error, BatcherClosed):
        return ServingError(503, "batcher_closed", str(error))
    if isinstance(error, (BrokenWorkerPool, WorkerCrashed)):
        return ServingError(
            503, "worker_pool", f"{type(error).__name__}: {error}"
        )
    if isinstance(error, FutureTimeout):
        if request_timeout is not None:
            message = (
                f"request did not complete within the server's "
                f"{request_timeout}s request_timeout"
            )
        else:
            message = "request did not complete within the server's timeout"
        return ServingError(504, "timeout", message)
    return ServingError(500, "internal", f"{type(error).__name__}: {error}")
