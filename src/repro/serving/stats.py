"""Serving-side observability: latency percentiles, batch histograms.

:class:`ServerStats` is the accounting object every served model carries.
The batcher feeds it one record per coalesced flush (batch size + model
seconds) and one record per request (end-to-end latency, queue wait
included); snapshots expose the numbers a capacity planner actually
reads — p50/p95/p99 latency, request throughput, and the coalesced
batch-size histogram that shows whether dynamic batching is doing
anything at all (mean batch 1.0 means it is not).

All methods are thread-safe: the batcher worker, HTTP handler threads
and stats scrapers all touch the same object.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Deque, Dict, Optional

import numpy as np

__all__ = ["ServerStats", "LATENCY_BUCKETS"]

#: Latency reservoir size. Percentiles are computed over the most recent
#: window rather than all-time, so a warm-up spike ages out of p99.
DEFAULT_WINDOW = 8192

#: Cumulative-histogram bucket upper bounds in seconds, Prometheus
#: convention (each bucket counts requests at or below its bound; the
#: implicit ``+Inf`` bucket equals the total request count). Spans the
#: sub-millisecond in-process path up to requests that sat out a full
#: overload queue.
LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0
)


class ServerStats:
    """Rolling serving statistics for one batched endpoint."""

    def __init__(self, window: int = DEFAULT_WINDOW) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self._lock = threading.Lock()
        self._latencies: Deque[float] = deque(maxlen=window)
        self._queue_waits: Deque[float] = deque(maxlen=window)
        self._completions: Deque[float] = deque(maxlen=window)
        self._batch_hist: Dict[int, int] = {}
        self.requests = 0
        self.batches = 0
        self.errors = 0
        self.model_seconds = 0.0
        #: Requests rejected before doing any work, keyed by reason
        #: (``queue_full`` — admission control shed them with a 429;
        #: ``slo`` — their deadline expired while queued, shed with 503).
        self.shed: Dict[str, int] = {}
        #: Flushes (and the requests they carried) that a dead worker
        #: pool failed and the batcher re-served through the in-process
        #: fallback runner instead of surfacing the error.
        self.degraded_flushes = 0
        self.degraded_requests = 0
        #: Cumulative (never-windowed) latency histogram counts, one per
        #: LATENCY_BUCKETS bound, Prometheus semantics via
        #: :meth:`latency_histogram`.
        self._bucket_counts = [0] * len(LATENCY_BUCKETS)
        self._latency_sum = 0.0
        self._caches: Dict[str, Callable[[], dict]] = {}
        self._workers_fn: Optional[Callable[[], dict]] = None
        self._streams_fn: Optional[Callable[[], dict]] = None

    # -- cache observability -------------------------------------------
    def attach_cache(self, name: str, snapshot: Callable[[], dict]) -> None:
        """Expose a cache's hit/miss counters on this model's snapshot.

        ``snapshot`` is a zero-arg callable returning a JSON-ready dict
        (e.g. a :class:`~repro.runtime.PlanCacheStats` or
        :class:`~repro.runtime.TuningCacheStats` view). The server
        attaches the compiled model's plan cache and the tuning cache at
        load time, so ``GET /stats`` makes plan-reuse regressions
        observable without code changes.
        """
        with self._lock:
            self._caches[name] = snapshot

    def attach_workers(self, snapshot: Callable[[], dict]) -> None:
        """Expose a worker pool's per-process view on this snapshot.

        ``snapshot`` is a zero-arg callable returning the pool's
        JSON-ready breakdown (per-worker req/s, ring occupancy,
        shared-image attach/copy counters —
        :meth:`~repro.runtime.workerpool.WorkerPool.stats_snapshot`).
        Shown as the ``workers`` block of ``GET /stats``, which is how
        an operator verifies every worker attached the shared weight
        image (``copied`` stays 0) and traffic spreads across processes.
        """
        with self._lock:
            self._workers_fn = snapshot

    def attach_streams(self, snapshot: Callable[[], dict]) -> None:
        """Expose the streaming front end's view on this snapshot.

        ``snapshot`` is a zero-arg callable returning the stream
        server's JSON-ready per-model counters (connections, open
        streams, frames/s, delta-cache hit rate). Shown as the
        ``streams`` block of ``GET /stats`` once the model has served
        at least one frame over the binary protocol.
        """
        with self._lock:
            self._streams_fn = snapshot

    # -- recording -----------------------------------------------------
    def record_batch(self, size: int, seconds: float) -> None:
        """One coalesced flush: ``size`` requests served in ``seconds``."""
        with self._lock:
            self.batches += 1
            self.model_seconds += seconds
            self._batch_hist[size] = self._batch_hist.get(size, 0) + 1

    def record_request(self, latency_seconds: float) -> None:
        """One completed request's end-to-end latency (queueing included)."""
        with self._lock:
            self.requests += 1
            self._latencies.append(latency_seconds)
            self._completions.append(time.perf_counter())
            self._latency_sum += latency_seconds
            for index, bound in enumerate(LATENCY_BUCKETS):
                if latency_seconds <= bound:
                    self._bucket_counts[index] += 1
                    break

    def record_queue_wait(self, seconds: float) -> None:
        """Time one request sat queued before its flush started.

        Splitting this out of the end-to-end latency makes the snapshot
        auditable: end-to-end p50 ≈ queue-wait p50 + flush time, so a
        percentile that silently excluded ring/worker time (measured
        inside the flush) would show up as an impossible gap.
        """
        with self._lock:
            self._queue_waits.append(max(0.0, seconds))

    def record_error(self, count: int = 1) -> None:
        """Count ``count`` failed requests (runner raised or rejected)."""
        with self._lock:
            self.errors += count

    def record_shed(self, reason: str, count: int = 1) -> None:
        """Count ``count`` requests shed by admission control.

        ``reason`` is ``"queue_full"`` (rejected at submit with a 429
        because the queue passed its high-water mark) or ``"slo"``
        (deadline already blown when the flush assembled; failed with a
        503 instead of wasting a batch slot). Shed requests are *not*
        errors — the runner never saw them.
        """
        with self._lock:
            self.shed[reason] = self.shed.get(reason, 0) + count

    def record_degraded(self, requests: int) -> None:
        """One flush the worker pool failed but the fallback served."""
        with self._lock:
            self.degraded_flushes += 1
            self.degraded_requests += requests

    # -- derived numbers -----------------------------------------------
    @property
    def mean_batch(self) -> float:
        """Mean coalesced batch size — > 1 iff batching actually happens."""
        with self._lock:
            total = sum(size * n for size, n in self._batch_hist.items())
            count = sum(self._batch_hist.values())
        return total / count if count else 0.0

    @property
    def batch_histogram(self) -> Dict[int, int]:
        """Coalesced batch size -> number of flushes (sorted copy)."""
        with self._lock:
            return dict(sorted(self._batch_hist.items()))

    def latency_percentiles(self) -> Dict[str, float]:
        """p50/p95/p99 over the recent latency window, in milliseconds."""
        with self._lock:
            window = list(self._latencies)
        if not window:
            return {"p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0}
        p50, p95, p99 = np.percentile(window, [50.0, 95.0, 99.0])
        return {
            "p50_ms": float(p50) * 1e3,
            "p95_ms": float(p95) * 1e3,
            "p99_ms": float(p99) * 1e3,
        }

    def queue_wait_percentiles(self) -> Dict[str, float]:
        """p50/p95 time-in-queue over the recent window, in milliseconds."""
        with self._lock:
            window = list(self._queue_waits)
        if not window:
            return {"queue_p50_ms": 0.0, "queue_p95_ms": 0.0}
        p50, p95 = np.percentile(window, [50.0, 95.0])
        return {"queue_p50_ms": float(p50) * 1e3, "queue_p95_ms": float(p95) * 1e3}

    @property
    def shed_total(self) -> int:
        """Total requests shed by admission control, all reasons."""
        with self._lock:
            return sum(self.shed.values())

    def latency_histogram(self) -> Dict[str, object]:
        """Cumulative latency histogram in Prometheus semantics.

        Returns ``{"buckets": [(le_seconds, cumulative_count), ...],
        "sum": seconds, "count": n}`` where the bucket list ends with the
        implicit ``+Inf`` bucket (``le = inf``) equal to ``count``.
        Unlike the percentile window this never ages out — it is the
        counter a Prometheus scraper ingests.
        """
        with self._lock:
            counts = list(self._bucket_counts)
            total = self.requests
            lat_sum = self._latency_sum
        buckets = []
        running = 0
        for bound, count in zip(LATENCY_BUCKETS, counts):
            running += count
            buckets.append((bound, running))
        buckets.append((float("inf"), total))
        return {"buckets": buckets, "sum": lat_sum, "count": total}

    @property
    def requests_per_second(self) -> float:
        """Throughput over the recent completion window.

        Measured across the window's completion timestamps — not since
        server start — so compile/warmup time and idle stretches after a
        burst do not dilute the figure capacity planning reads.
        """
        with self._lock:
            if len(self._completions) < 2:
                return 0.0
            span = self._completions[-1] - self._completions[0]
            count = len(self._completions)
        return (count - 1) / span if span > 0 else 0.0

    # -- reporting -----------------------------------------------------
    def snapshot(self, queue_depth: Optional[int] = None) -> dict:
        """JSON-ready view of the current counters (the /stats payload)."""
        report = {
            "requests": self.requests,
            "batches": self.batches,
            "errors": self.errors,
            "shed": dict(self.shed),
            "degraded_flushes": self.degraded_flushes,
            "mean_batch": round(self.mean_batch, 3),
            "batch_histogram": {str(k): v for k, v in self.batch_histogram.items()},
            "requests_per_second": round(self.requests_per_second, 2),
            "model_seconds": round(self.model_seconds, 4),
            **{k: round(v, 3) for k, v in self.latency_percentiles().items()},
            **{k: round(v, 3) for k, v in self.queue_wait_percentiles().items()},
        }
        if queue_depth is not None:
            report["queue_depth"] = queue_depth
        with self._lock:
            caches = dict(self._caches)
            workers_fn = self._workers_fn
            streams_fn = self._streams_fn
        if caches:
            report["caches"] = {name: fn() for name, fn in caches.items()}
        if workers_fn is not None:
            report["workers"] = workers_fn()
        if streams_fn is not None:
            report["streams"] = streams_fn()
        return report

    def render(self, title: str = "serving") -> str:
        """Human-readable summary (printed on server shutdown)."""
        snap = self.snapshot()
        hist = " ".join(f"{k}x{v}" for k, v in snap["batch_histogram"].items())
        return (
            f"[{title}] {snap['requests']} requests in {snap['batches']} batches "
            f"(mean batch {snap['mean_batch']}, errors {snap['errors']})\n"
            f"[{title}] latency p50 {snap['p50_ms']:.2f} ms / "
            f"p95 {snap['p95_ms']:.2f} ms / p99 {snap['p99_ms']:.2f} ms, "
            f"{snap['requests_per_second']:.1f} req/s\n"
            f"[{title}] batch histogram: {hist or '-'}"
        )

    def __repr__(self) -> str:
        return (
            f"ServerStats(requests={self.requests}, batches={self.batches}, "
            f"mean_batch={self.mean_batch:.2f})"
        )
