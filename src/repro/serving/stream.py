"""Persistent-connection streaming inference over the binary protocol.

:class:`StreamServer` is the TCP front end for camera-style clients: one
connection, many logical streams, length-prefixed tensor frames
(:mod:`repro.serving.wire`). It plugs into the existing serving stack at
the ``Batcher.submit`` seam — every frame that reaches the model goes
through the same admission control, SLO deadlines, rate quotas, fair
scheduling and residency guards HTTP traffic does — and answers with
RESPONSE frames *as their flushes complete*: responses carry the request
id, so a slow batch never head-of-line-blocks frames of other requests
on the same connection.

Per-stream temporal shortcut — the delta cache
----------------------------------------------
Consecutive camera frames are usually near-duplicates. Each stream
(connection, ``stream_id``) remembers its last *reference* frame — the
last frame that actually went to the batcher — and the (possibly still
pending) result it produced. A new frame whose L∞ distance from the
reference is at or below ``delta_threshold`` is answered from that
result without touching the batcher at all; the RESPONSE frame sets
``FLAG_CACHE_HIT`` and carries the reference frame's *exact* logits.
Because hits chain onto the reference's future, a near-duplicate that
arrives while its keyframe is still in flight simply waits for the same
flush — the cache is race-free by construction and never drifts: every
miss resets the reference, so deltas always compare against the frame
whose logits are being reused, not a decayed chain of neighbours.

Errors reuse the structured-error contract: a failed or shed frame is
answered with a typed ERROR frame whose JSON payload carries the same
``kind`` (and ``retry_after`` for the 429 kinds, via the shared
:func:`~repro.serving.errors.classify_error` helper) an HTTP client
would see — backpressure semantics cannot drift between transports.

:class:`StreamClient` is the matching client: ``submit()`` returns a
future immediately, a reader thread resolves futures as RESPONSE/ERROR
frames arrive (out of order included), and per-stream sequence counts
are stamped automatically.
"""

from __future__ import annotations

import logging
import queue
import socket
import socketserver
import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import Future
from typing import Deque, Dict, Optional, Tuple

import numpy as np

from .errors import classify_error
from .wire import (
    FLAG_CACHE_HIT,
    KIND_ERROR,
    KIND_HELLO,
    KIND_HELLO_ACK,
    KIND_REQUEST,
    KIND_RESPONSE,
    DEFAULT_MAX_FRAME_BYTES,
    Frame,
    FrameError,
    FrameReader,
    WireError,
    encode_error_frame,
    encode_meta_frame,
    encode_tensor_frame,
)

__all__ = ["StreamServer", "StreamClient", "StreamResult", "DEFAULT_DELTA_THRESHOLD"]

logger = logging.getLogger("repro.serving")

#: Default L∞ delta under which a frame counts as a near-duplicate of
#: its stream's reference frame. Inputs here are unit-scale (normalised
#: pixels); 1e-3 is far below any change that moves a logit visibly.
DEFAULT_DELTA_THRESHOLD = 1e-3

#: Per-connection cap on remembered streams (LRU-evicted): bounds the
#: delta cache's memory at ~streams x (frame + logits) per connection.
MAX_STREAMS_PER_CONNECTION = 1024


class _StreamCounters:
    """Per-model streaming counters behind /stats and /metrics."""

    def __init__(self, window: int = 4096) -> None:
        self._lock = threading.Lock()
        self.frames = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.errors = 0
        self._stamps: Deque[float] = deque(maxlen=window)

    def record_frame(self, cache_hit: bool) -> None:
        with self._lock:
            self.frames += 1
            self._stamps.append(time.perf_counter())
            if cache_hit:
                self.cache_hits += 1
            else:
                self.cache_misses += 1

    def record_error(self) -> None:
        with self._lock:
            self.errors += 1

    def frames_per_second(self) -> float:
        with self._lock:
            if len(self._stamps) < 2:
                return 0.0
            span = self._stamps[-1] - self._stamps[0]
            count = len(self._stamps)
        return (count - 1) / span if span > 0 else 0.0

    def snapshot(self, open_streams: int = 0, connections: int = 0) -> dict:
        with self._lock:
            frames = self.frames
            hits = self.cache_hits
            misses = self.cache_misses
            errors = self.errors
        total = hits + misses
        return {
            "connections": connections,
            "open_streams": open_streams,
            "frames": frames,
            "frames_per_second": round(self.frames_per_second(), 2),
            "cache_hits": hits,
            "cache_misses": misses,
            "cache_hit_rate": round(hits / total, 4) if total else 0.0,
            "errors": errors,
        }


class _StreamState:
    """One logical stream's delta-cache slot."""

    __slots__ = ("ref_frame", "ref_future")

    def __init__(self, ref_frame: np.ndarray, ref_future: "Future[np.ndarray]"):
        self.ref_frame = ref_frame
        self.ref_future = ref_future


class _Connection(socketserver.BaseRequestHandler):
    """One client connection: reader loop + dedicated writer thread.

    The reader thread parses frames and submits them; completions are
    encoded by whatever thread resolves the future (batcher flush
    threads) and handed to the writer queue, so a slow client socket can
    stall only its own writer — never a flush.
    """

    @property
    def facade(self) -> "StreamServer":
        return self.server.facade  # type: ignore[attr-defined]

    def setup(self) -> None:
        self.request.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._out: "queue.Queue[Optional[bytes]]" = queue.Queue()
        self._writer = threading.Thread(
            target=self._write_loop, name="repro-stream-writer", daemon=True
        )
        self._writer.start()
        self._model_name: Optional[str] = None
        self._streams: "OrderedDict[int, _StreamState]" = OrderedDict()
        self._streams_lock = threading.Lock()
        self.facade._track(self, +1)

    def finish(self) -> None:
        self._out.put(None)
        self._writer.join(timeout=5.0)
        with self._streams_lock:
            self._streams.clear()
        self.facade._track(self, -1)

    # -- outbound ------------------------------------------------------
    def _write_loop(self) -> None:
        while True:
            data = self._out.get()
            if data is None:
                return
            try:
                self.request.sendall(data)
            except OSError:
                # Client went away; the reader loop will notice EOF and
                # tear the connection down.
                return

    def send(self, data: bytes) -> None:
        self._out.put(data)

    def _send_error(
        self, request_id: int, kind: str, message: str,
        *, retry_after: Optional[float] = None,
        stream_id: int = 0, seq: int = 0,
    ) -> None:
        self.send(
            encode_error_frame(
                request_id, kind, message,
                retry_after=retry_after, stream_id=stream_id, seq=seq,
            )
        )

    # -- inbound -------------------------------------------------------
    def handle(self) -> None:
        facade = self.facade
        reader = FrameReader(facade.max_frame_bytes)
        while not facade.closing:
            try:
                data = self.request.recv(1 << 16)
            except OSError:
                return
            if not data:
                return
            for event in reader.feed(data):
                if isinstance(event, FrameError):
                    self._send_error(event.request_id, event.kind, event.message)
                    continue
                self._handle_frame(event)

    def _handle_frame(self, frame: Frame) -> None:
        if frame.kind == KIND_HELLO:
            self._handle_hello(frame)
        elif frame.kind == KIND_REQUEST:
            self._handle_request(frame)
        else:
            self._send_error(
                frame.request_id, "bad_request",
                f"unexpected frame kind {frame.kind} from a client",
            )

    def _handle_hello(self, frame: Frame) -> None:
        facade = self.facade
        name = (frame.meta or {}).get("model")
        try:
            served = facade.model_server.get(name)
        except KeyError as error:
            self._send_error(frame.request_id, "not_found", str(error))
            return
        self._model_name = served.name
        self.send(
            encode_meta_frame(
                KIND_HELLO_ACK, frame.request_id,
                {
                    "model": served.name,
                    "input_shape": list(served.input_shape),
                    "delta_threshold": facade.delta_threshold,
                },
            )
        )

    def _handle_request(self, frame: Frame) -> None:
        facade = self.facade
        rid, sid, seq = frame.request_id, frame.stream_id, frame.seq
        try:
            served = facade.model_server.get(self._model_name)
        except KeyError as error:
            self._send_error(rid, "not_found", str(error), stream_id=sid, seq=seq)
            return
        counters = facade.counters_for(served)
        try:
            x = served.validate(frame.tensor)
        except (ValueError, TypeError) as error:
            counters.record_error()
            self._send_error(rid, "bad_request", str(error), stream_id=sid, seq=seq)
            return

        # Per-stream delta cache: answer near-duplicates from the
        # reference frame's (possibly still in-flight) result.
        if facade.delta_threshold >= 0:
            with self._streams_lock:
                state = self._streams.get(sid)
                if state is not None and state.ref_frame.shape == x.shape:
                    self._streams.move_to_end(sid)
                    delta = float(np.max(np.abs(x - state.ref_frame)))
                    if delta <= facade.delta_threshold:
                        counters.record_frame(cache_hit=True)
                        self._respond_from(
                            state.ref_future, counters, rid, sid, seq,
                            flags=FLAG_CACHE_HIT,
                        )
                        return
        try:
            future = served.batcher.submit(x)
        except Exception as error:  # noqa: BLE001 - mapped to the contract
            counters.record_error()
            info = classify_error(error)
            self._send_error(
                rid, info.kind, info.message,
                retry_after=info.retry_after, stream_id=sid, seq=seq,
            )
            return
        counters.record_frame(cache_hit=False)
        if facade.delta_threshold >= 0:
            with self._streams_lock:
                self._streams[sid] = _StreamState(x, future)
                self._streams.move_to_end(sid)
                while len(self._streams) > MAX_STREAMS_PER_CONNECTION:
                    self._streams.popitem(last=False)
        self._respond_from(future, counters, rid, sid, seq, flags=0)

    def _respond_from(
        self, future: "Future[np.ndarray]", counters: _StreamCounters,
        rid: int, sid: int, seq: int, *, flags: int,
    ) -> None:
        """Answer ``rid`` with ``future``'s result whenever it lands.

        The callback runs on whichever thread resolves the future, which
        is exactly what out-of-order completion needs: each response is
        written the moment its own flush finishes.
        """

        def done(f: "Future[np.ndarray]") -> None:
            error = f.exception()
            if error is not None:
                counters.record_error()
                info = classify_error(error)
                self._send_error(
                    rid, info.kind, info.message,
                    retry_after=info.retry_after, stream_id=sid, seq=seq,
                )
                return
            self.send(
                encode_tensor_frame(
                    KIND_RESPONSE, rid, np.ascontiguousarray(f.result()),
                    stream_id=sid, seq=seq, flags=flags,
                )
            )

        future.add_done_callback(done)


class _StreamTCPServer(socketserver.ThreadingTCPServer):
    daemon_threads = True
    allow_reuse_address = True
    #: Same rationale as the HTTP front end: bursts of new connections
    #: must reach the protocol, not die as kernel RSTs.
    request_queue_size = 128


class StreamServer:
    """Binary streaming front end bound to a :class:`ModelServer`.

    Parameters
    ----------
    model_server:
        The serving registry frames are submitted to. Model selection
        follows HTTP semantics: a HELLO frame may name a model, and a
        sole registration resolves by default.
    host / port:
        Bind address; ``port=0`` binds an ephemeral port (tests) —
        read it back from :attr:`port`.
    delta_threshold:
        Per-stream near-duplicate threshold (L∞, input scale). Frames
        within it of their stream's reference frame are answered from
        the cached result without touching the batcher. ``0`` answers
        only bit-identical frames from cache; a negative value disables
        the cache entirely.
    max_frame_bytes:
        Per-frame size cap enforced by the reader (oversize frames are
        rejected with ``frame_too_large`` and skipped).
    """

    def __init__(
        self,
        model_server,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        delta_threshold: float = DEFAULT_DELTA_THRESHOLD,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        self.model_server = model_server
        self.delta_threshold = float(delta_threshold)
        self.max_frame_bytes = max_frame_bytes
        self.closing = False
        self._counters: Dict[str, _StreamCounters] = {}
        self._counters_lock = threading.Lock()
        self._connections: set = set()
        self._tcp = _StreamTCPServer((host, port), _Connection)
        self._tcp.facade = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None
        # Surface the stream stats on /stats and /metrics.
        model_server.stream_server = self

    def _track(self, connection: "_Connection", delta: int) -> None:
        with self._counters_lock:
            if delta > 0:
                self._connections.add(connection)
            else:
                self._connections.discard(connection)

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (ephemeral-safe)."""
        return self._tcp.server_address[:2]

    @property
    def port(self) -> int:
        """The bound TCP port (resolved, even when constructed with 0)."""
        return self._tcp.server_address[1]

    # -- counters ------------------------------------------------------
    def counters_for(self, served) -> _StreamCounters:
        """This model's stream counters, attached to its stats block on
        first use (so /stats grows a ``streams`` section)."""
        name = served.name
        with self._counters_lock:
            counters = self._counters.get(name)
            if counters is None:
                counters = _StreamCounters()
                self._counters[name] = counters
                served.stats.attach_streams(
                    lambda c=counters, n=name: c.snapshot(
                        open_streams=self.open_streams(n),
                        connections=self.connection_count(),
                    )
                )
        return counters

    def connection_count(self) -> int:
        """Number of currently-open client connections."""
        with self._counters_lock:
            return len(self._connections)

    def open_streams(self, name: Optional[str] = None) -> int:
        """Live delta-cache slots across connections (``name`` filters
        to connections bound to that model)."""
        total = 0
        with self._counters_lock:
            connections = list(self._connections)
        sole = len(self.model_server.models) <= 1
        for connection in connections:
            if name is not None:
                bound = connection._model_name
                if bound is not None and bound != name:
                    continue
                if bound is None and not sole:
                    continue
            with connection._streams_lock:
                total += len(connection._streams)
        return total

    def snapshot(self) -> dict:
        """JSON-ready per-model streaming stats (the /metrics source)."""
        with self._counters_lock:
            names = list(self._counters)
        connections = self.connection_count()
        return {
            name: self._counters[name].snapshot(
                open_streams=self.open_streams(name), connections=connections
            )
            for name in names
        }

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "StreamServer":
        """Accept connections on a daemon thread; returns self."""
        if self._thread is None or not self._thread.is_alive():
            self.closing = False
            self._thread = threading.Thread(
                target=self._tcp.serve_forever, name="repro-stream", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting, close every connection, join the acceptor."""
        self.closing = True
        self._tcp.shutdown()
        with self._counters_lock:
            connections = list(self._connections)
        for connection in connections:
            try:
                connection.request.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
        self._tcp.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "StreamServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


class StreamResult:
    """One response with its wire metadata (``meta=True`` submits)."""

    __slots__ = ("output", "cache_hit", "request_id", "stream_id", "seq")

    def __init__(self, output, cache_hit, request_id, stream_id, seq):
        self.output = output
        self.cache_hit = cache_hit
        self.request_id = request_id
        self.stream_id = stream_id
        self.seq = seq


class StreamClient:
    """Client side of the streaming protocol.

    ``submit()`` sends a REQUEST frame and returns a future immediately;
    a reader thread resolves futures as responses arrive — in whatever
    order the server finishes them. Typed ERROR frames resolve the
    matching future with a :class:`~repro.serving.wire.WireError`
    carrying the structured-error kind (and ``retry_after`` for the
    backpressure kinds).

    Parameters
    ----------
    host / port:
        The :class:`StreamServer` address.
    model:
        Model to bind the connection to (HELLO handshake); ``None``
        resolves the server's sole registration.
    timeout:
        Socket/handshake timeout in seconds.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        model: Optional[str] = None,
        timeout: float = 60.0,
    ) -> None:
        self.timeout = timeout
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._send_lock = threading.Lock()
        self._pending: Dict[int, Tuple[Future, bool]] = {}
        self._pending_lock = threading.Lock()
        self._next_rid = 0
        self._seq: Dict[int, int] = {}
        self._closed = False
        self.cache_hits = 0
        self.responses = 0
        self.hello: dict = {}
        # One reader state across handshake and read loop: response
        # bytes that ride in with the tail of the HELLO_ACK are kept.
        self._reader_state = FrameReader()
        self._handshake(model)
        self._sock.settimeout(None)
        self._reader = threading.Thread(
            target=self._read_loop, name="repro-stream-client", daemon=True
        )
        self._reader.start()

    # -- handshake -----------------------------------------------------
    def _handshake(self, model: Optional[str]) -> None:
        meta = {} if model is None else {"model": model}
        self._sock.sendall(encode_meta_frame(KIND_HELLO, 0, meta))
        deadline = time.monotonic() + self.timeout
        while True:
            if time.monotonic() > deadline:
                raise TimeoutError("stream handshake timed out")
            data = self._sock.recv(1 << 16)
            if not data:
                raise ConnectionError("server closed during handshake")
            for event in self._reader_state.feed(data):
                if isinstance(event, FrameError):
                    raise WireError(event.kind, event.message)
                if event.kind == KIND_ERROR:
                    raise event.error()
                if event.kind == KIND_HELLO_ACK:
                    self.hello = event.meta or {}
                    return

    # -- sending -------------------------------------------------------
    def submit(
        self,
        x: np.ndarray,
        *,
        stream_id: int = 0,
        meta: bool = False,
    ) -> "Future":
        """Send one frame on ``stream_id``; resolves to its output row.

        With ``meta=True`` the future resolves to a
        :class:`StreamResult` carrying the cache-hit flag and wire ids
        instead of the bare array.
        """
        if self._closed:
            raise ConnectionError("client is closed")
        x = np.ascontiguousarray(x)
        future: Future = Future()
        with self._pending_lock:
            self._next_rid += 1
            rid = self._next_rid
            seq = self._seq.get(stream_id, 0)
            self._seq[stream_id] = seq + 1
            self._pending[rid] = (future, meta)
        frame = encode_tensor_frame(KIND_REQUEST, rid, x, stream_id=stream_id, seq=seq)
        try:
            with self._send_lock:
                self._sock.sendall(frame)
        except OSError as error:
            with self._pending_lock:
                self._pending.pop(rid, None)
            raise ConnectionError(f"send failed: {error}") from error
        return future

    def predict(
        self,
        x: np.ndarray,
        *,
        stream_id: int = 0,
        timeout: Optional[float] = None,
    ) -> np.ndarray:
        """Synchronous convenience: submit one frame and wait."""
        return self.submit(x, stream_id=stream_id).result(
            timeout=self.timeout if timeout is None else timeout
        )

    # -- receiving -----------------------------------------------------
    def _read_loop(self) -> None:
        reader = self._reader_state
        try:
            while not self._closed:
                data = self._sock.recv(1 << 16)
                if not data:
                    break
                for event in reader.feed(data):
                    self._dispatch(event)
        except OSError:
            pass
        self._fail_pending(ConnectionError("stream connection closed"))

    def _dispatch(self, event) -> None:
        if isinstance(event, FrameError):
            # A frame the client could not decode — without a request id
            # there is no future to fail; log and continue.
            logger.warning("stream client dropped a frame: %s", event)
            return
        with self._pending_lock:
            entry = self._pending.pop(event.request_id, None)
        if entry is None:
            logger.warning(
                "stream client got a response for unknown request %d",
                event.request_id,
            )
            return
        future, want_meta = entry
        if event.kind == KIND_ERROR:
            future.set_exception(event.error())
            return
        if event.kind != KIND_RESPONSE:
            future.set_exception(
                WireError("protocol", f"unexpected frame kind {event.kind}")
            )
            return
        self.responses += 1
        if event.cache_hit:
            self.cache_hits += 1
        if want_meta:
            future.set_result(
                StreamResult(
                    event.tensor, event.cache_hit, event.request_id,
                    event.stream_id, event.seq,
                )
            )
        else:
            future.set_result(event.tensor)

    def _fail_pending(self, error: BaseException) -> None:
        with self._pending_lock:
            pending = list(self._pending.values())
            self._pending.clear()
        for future, _ in pending:
            if not future.done():
                future.set_exception(error)

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Close the connection; outstanding futures fail."""
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()
        self._reader.join(timeout=5.0)
        self._fail_pending(ConnectionError("client closed"))

    def __enter__(self) -> "StreamClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
