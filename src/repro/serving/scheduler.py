"""Weighted-fair flush scheduling across a fleet of tenants.

Pre-fleet, every :class:`~repro.serving.batcher.Batcher` ran its own
free-running coalescing thread, so under saturation the OS scheduler —
not the operator — decided which model got throughput: one hot tenant
could monopolise the GIL and the BLAS pool while the others starved.
:class:`FlushScheduler` centralises the decision. Batchers only queue;
the scheduler's dispatch thread(s) pick the next flush across all
registered tenants:

1. **Due filter.** A tenant is *due* when its oldest queued request's
   coalescing deadline (tightened by the SLO margin, exactly the
   standalone collect rule) has arrived, or its queue holds a full
   batch. Before that, flushing early would forfeit coalescing.
2. **SLO first.** Among due tenants, any whose oldest request is at
   risk of blowing its deadline is served earliest-deadline-first —
   latency contracts outrank fair shares.
3. **Deficit-weighted round-robin.** Otherwise the due tenant with the
   smallest *normalised service* (requests served divided by
   :attr:`Batcher.weight`) flushes next — the classic weighted
   fair-queueing virtual-time rule, so saturated tenants converge to
   throughput proportional to their weights.

A tenant that goes idle stops accumulating claims: on becoming ready
again its normalised-service clock is clamped to at most one flush of
credit behind the fleet's virtual time, so a tenant that slept for a
minute cannot starve everyone else while it "catches up" (the fair-
queueing wake rule).

The scheduler is also the fleet's single point of *serialisation*: the
residency manager wraps each tenant's runner so demotion/promotion and
flushes exclude each other per tenant, and ``quiesce()`` lets a
stopping batcher wait out its in-flight flush without a global pause.
"""

from __future__ import annotations

import logging
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["FlushScheduler"]

logger = logging.getLogger("repro.serving")


@dataclass
class _Entry:
    """One registered tenant's scheduling state."""

    name: str
    batcher: object
    weight: float
    #: Normalised service: requests served / weight — the tenant's
    #: position on the fair-queueing virtual-time axis.
    norm_served: float = 0.0
    requests: int = 0
    flushes: int = 0
    in_flight: bool = False
    idle: bool = True


class FlushScheduler:
    """Central deficit-weighted round-robin dispatcher over batchers.

    Parameters
    ----------
    threads:
        Dispatch threads. One thread serialises all flushes (strict
        run-to-completion fair queueing); more allow flushes of
        *different* tenants to overlap — a tenant never has two flushes
        in flight, so per-tenant ordering is preserved either way.
    """

    def __init__(self, *, threads: int = 1) -> None:
        if threads < 1:
            raise ValueError("threads must be >= 1")
        self.threads = threads
        self._cond = threading.Condition()
        self._entries: Dict[str, _Entry] = {}
        self._by_batcher: Dict[int, _Entry] = {}
        self._workers: List[threading.Thread] = []
        self._stopping = False
        #: Fleet virtual time: the max normalised service any tenant has
        #: received; new/woken tenants are clamped relative to this.
        self._vtime = 0.0

    # -- registration --------------------------------------------------
    def register(self, name: str, batcher, *, weight: Optional[float] = None) -> None:
        """Attach ``batcher`` as tenant ``name``.

        The batcher's ``start()`` stops spawning its own thread from
        here on — this scheduler owns its flushes. ``weight`` defaults
        to ``batcher.weight``.
        """
        with self._cond:
            old = self._entries.get(name)
            while old is not None and old.in_flight:
                # Hot reload: let the outgoing tenant's dispatched flush
                # finish before detaching it, so its requests are never
                # orphaned between "unregistered" and "drained".
                self._cond.wait(0.1)
                old = self._entries.get(name)
            if old is not None:
                self._by_batcher.pop(id(old.batcher), None)
                old.batcher._scheduler = None
            entry = _Entry(
                name=name,
                batcher=batcher,
                weight=float(weight if weight is not None else batcher.weight),
                norm_served=self._vtime,
            )
            if entry.weight <= 0:
                raise ValueError("weight must be > 0")
            self._entries[name] = entry
            self._by_batcher[id(batcher)] = entry
            batcher._scheduler = self
            self._cond.notify_all()

    def unregister(self, batcher) -> None:
        """Detach a batcher (idempotent); waits out its in-flight flush
        so the caller can safely tear the tenant down afterwards."""
        with self._cond:
            # Remove the entry *first* so no new flush can be dispatched,
            # then wait out the one (if any) already in flight — the
            # dispatch loop notifies the condition when it completes.
            entry = self._by_batcher.pop(id(batcher), None)
            if entry is not None:
                self._entries.pop(entry.name, None)
            batcher._scheduler = None
            while entry is not None and entry.in_flight:
                self._cond.wait(0.1)

    def serves(self, batcher) -> bool:
        """Whether ``batcher`` is registered here."""
        with self._cond:
            return id(batcher) in self._by_batcher

    # -- lifecycle -----------------------------------------------------
    @property
    def running(self) -> bool:
        """Whether any dispatch thread is alive."""
        return any(t.is_alive() for t in self._workers)

    def start(self) -> "FlushScheduler":
        """Start the dispatch threads (idempotent); returns self."""
        with self._cond:
            if self.running:
                return self
            self._stopping = False
            self._workers = [
                threading.Thread(
                    target=self._loop, name=f"repro-flush-sched-{i}", daemon=True
                )
                for i in range(self.threads)
            ]
            for worker in self._workers:
                worker.start()
        return self

    def stop(self) -> None:
        """Stop dispatching; in-flight flushes finish first.

        Queued requests are *not* drained here — stop each batcher
        (which drains or fails its own queue) before or after; the
        server's shutdown path does exactly that.
        """
        with self._cond:
            self._stopping = True
            self._cond.notify_all()
        for worker in self._workers:
            if worker.is_alive():
                worker.join(5.0)
        self._workers = []

    def __enter__(self) -> "FlushScheduler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- batcher signals -----------------------------------------------
    def wake(self) -> None:
        """Nudge the dispatch threads (a batcher queued work)."""
        with self._cond:
            self._cond.notify_all()

    def quiesce(self, batcher) -> None:
        """Block until ``batcher`` has no flush in flight.

        The caller is responsible for also making the batcher
        undispatchable (its ``next_due()`` returns None while stopping),
        otherwise a new flush may start right after this returns.
        """
        with self._cond:
            entry = self._by_batcher.get(id(batcher))
            while entry is not None and entry.in_flight:
                self._cond.wait(0.1)

    # -- dispatch ------------------------------------------------------
    def _scan(self, now: float):
        """(due entries, earliest future due time) under the lock."""
        ready: List[_Entry] = []
        next_due: Optional[float] = None
        for entry in self._entries.values():
            if entry.in_flight:
                continue
            due = entry.batcher.next_due()
            if due is None:
                entry.idle = True
                continue
            if entry.idle:
                # Wake clamp: an idle tenant re-enters at most one
                # max_batch flush of credit behind the fleet, instead of
                # cashing in every quantum it slept through.
                entry.idle = False
                slack = entry.batcher.max_batch / entry.weight
                if self._vtime - entry.norm_served > slack:
                    entry.norm_served = self._vtime - slack
            if due <= now:
                ready.append(entry)
            elif next_due is None or due < next_due:
                next_due = due
        return ready, next_due

    @staticmethod
    def _pick(ready: List[_Entry], now: float) -> _Entry:
        """SLO-urgent tenants EDF-first, else min normalised service."""
        urgent = [e for e in ready if e.batcher.slo_urgent(now)]
        if urgent:
            return min(urgent, key=lambda e: e.batcher.oldest_deadline())
        return min(ready, key=lambda e: (e.norm_served, e.name))

    def _loop(self) -> None:
        while True:
            entry: Optional[_Entry] = None
            with self._cond:
                while not self._stopping:
                    now = time.perf_counter()
                    ready, next_due = self._scan(now)
                    if ready:
                        entry = self._pick(ready, now)
                        entry.in_flight = True
                        break
                    timeout = None
                    if next_due is not None:
                        timeout = max(next_due - now, 0.0)
                    self._cond.wait(timeout)
                if entry is None:
                    return
            served = 0
            try:
                served = entry.batcher.flush_once()
            except Exception:  # noqa: BLE001 - keep dispatching
                logger.exception("flush dispatch failed for %r", entry.name)
            finally:
                with self._cond:
                    entry.in_flight = False
                    # Charge at least one unit so an all-shed flush
                    # still advances the tenant past a tie.
                    entry.norm_served += max(served, 1) / entry.weight
                    if entry.norm_served > self._vtime:
                        self._vtime = entry.norm_served
                    entry.requests += served
                    entry.flushes += 1
                    self._cond.notify_all()

    # -- observability -------------------------------------------------
    def snapshot(self) -> dict:
        """Per-tenant fairness accounting for /stats and /metrics."""
        with self._cond:
            entries = list(self._entries.values())
            vtime = self._vtime
        total_weight = sum(e.weight for e in entries)
        total_requests = sum(e.requests for e in entries)
        tenants = {}
        for e in entries:
            tenants[e.name] = {
                "weight": e.weight,
                "weight_share": e.weight / total_weight if total_weight else 0.0,
                "requests": e.requests,
                "flushes": e.flushes,
                "observed_share": (
                    e.requests / total_requests if total_requests else 0.0
                ),
                "deficit": round(vtime - e.norm_served, 3),
                "in_flight": e.in_flight,
            }
        return {
            "threads": self.threads,
            "running": self.running,
            "virtual_time": round(vtime, 3),
            "tenants": tenants,
        }

    def __repr__(self) -> str:
        with self._cond:
            n = len(self._entries)
        return f"FlushScheduler(tenants={n}, threads={self.threads}, running={self.running})"
