"""Prometheus text-format exposition for ``GET /metrics``.

``/stats`` is for humans (nested JSON, rounded numbers, windows);
``/metrics`` is for machines. This module renders the serving counters
in the `Prometheus text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ —
``# HELP`` / ``# TYPE`` headers, one ``name{labels} value`` sample per
line — using only the standard library, so any Prometheus-compatible
scraper can alert on shed rate, queue depth, worker restarts and
latency buckets without an adapter.

Conventions honoured:

- Counters end in ``_total`` and never decrease (the latency histogram
  uses the never-windowed cumulative counts from
  :meth:`~repro.serving.stats.ServerStats.latency_histogram`, not the
  percentile reservoir).
- Histogram buckets are cumulative with ``le`` upper bounds and an
  explicit ``+Inf`` bucket equal to ``_count``.
- Every sample carries a ``model`` label so a multi-model server
  exports one coherent family per metric.
"""

from __future__ import annotations

import math
from typing import List

__all__ = ["render_metrics", "CONTENT_TYPE"]

#: Content-Type of the exposition (text format, version 0.0.4).
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _fmt(value: float) -> str:
    """Prometheus sample-value formatting (``+Inf``, trimmed floats)."""
    if value == math.inf:
        return "+Inf"
    if float(value) == int(value):
        return str(int(value))
    return repr(float(value))


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


class _Writer:
    """Accumulates one metric family at a time (HELP/TYPE then samples)."""

    def __init__(self) -> None:
        self._lines: List[str] = []

    def family(self, name: str, kind: str, help_text: str) -> None:
        self._lines.append(f"# HELP {name} {help_text}")
        self._lines.append(f"# TYPE {name} {kind}")

    def sample(self, name: str, labels: dict, value: float) -> None:
        if labels:
            rendered = ",".join(
                f'{key}="{_escape(str(val))}"' for key, val in labels.items()
            )
            self._lines.append(f"{name}{{{rendered}}} {_fmt(value)}")
        else:
            self._lines.append(f"{name} {_fmt(value)}")

    def render(self) -> str:
        return "\n".join(self._lines) + "\n"


def render_metrics(model_server) -> str:
    """Render a :class:`~repro.serving.ModelServer` as Prometheus text.

    One pass over the served models (request/batch/shed/latency
    counters, queue depth) plus the supervisor's healing state
    (restarts, crashes, wedges, degraded flags, per-worker liveness).
    """
    models = dict(model_server.models)
    supervisor = getattr(model_server, "supervisor", None)
    status = supervisor.model_status() if supervisor is not None else {}

    w = _Writer()

    w.family("repro_requests_total", "counter", "Requests served to completion.")
    for name, served in models.items():
        w.sample("repro_requests_total", {"model": name}, served.stats.requests)

    w.family("repro_errors_total", "counter", "Requests failed by the runner.")
    for name, served in models.items():
        w.sample("repro_errors_total", {"model": name}, served.stats.errors)

    w.family("repro_batches_total", "counter", "Coalesced flushes executed.")
    for name, served in models.items():
        w.sample("repro_batches_total", {"model": name}, served.stats.batches)

    w.family(
        "repro_shed_total", "counter",
        "Requests shed by admission control, by reason "
        "(queue_full=429, quota=429 quota_exceeded, slo=503).",
    )
    for name, served in models.items():
        shed = dict(served.stats.shed)
        for reason in ("queue_full", "quota", "slo"):
            shed.setdefault(reason, 0)
        for reason, count in sorted(shed.items()):
            w.sample(
                "repro_shed_total", {"model": name, "reason": reason}, count
            )

    w.family(
        "repro_degraded_flushes_total", "counter",
        "Flushes the worker pool failed but the in-process fallback served.",
    )
    for name, served in models.items():
        w.sample(
            "repro_degraded_flushes_total", {"model": name},
            served.stats.degraded_flushes,
        )

    w.family(
        "repro_degraded_requests_total", "counter",
        "Requests served through the degraded-mode fallback.",
    )
    for name, served in models.items():
        w.sample(
            "repro_degraded_requests_total", {"model": name},
            served.stats.degraded_requests,
        )

    w.family(
        "repro_queue_depth", "gauge", "Requests waiting in the batcher queue."
    )
    for name, served in models.items():
        w.sample("repro_queue_depth", {"model": name}, served.batcher.queue_depth)

    w.family(
        "repro_requests_per_second", "gauge",
        "Throughput over the recent completion window.",
    )
    for name, served in models.items():
        w.sample(
            "repro_requests_per_second", {"model": name},
            served.stats.requests_per_second,
        )

    w.family(
        "repro_request_latency_seconds", "histogram",
        "End-to-end request latency (queueing included).",
    )
    for name, served in models.items():
        hist = served.stats.latency_histogram()
        for bound, cumulative in hist["buckets"]:
            w.sample(
                "repro_request_latency_seconds_bucket",
                {"model": name, "le": _fmt(bound)},
                cumulative,
            )
        w.sample("repro_request_latency_seconds_sum", {"model": name}, hist["sum"])
        w.sample(
            "repro_request_latency_seconds_count", {"model": name}, hist["count"]
        )

    # -- fleet families: residency + weighted-fair scheduling ----------
    residency = getattr(model_server, "residency", None)
    if residency is not None:
        fleet = residency.snapshot()
        w.family(
            "repro_fleet_budget_bytes", "gauge",
            "Configured reclaimable-byte budget (0 when unenforced).",
        )
        w.sample("repro_fleet_budget_bytes", {}, fleet["budget_bytes"] or 0)
        w.family(
            "repro_fleet_charged_bytes", "gauge",
            "Ledger total: reclaimable bytes charged across all tenants.",
        )
        w.sample("repro_fleet_charged_bytes", {}, fleet["charged_bytes"])
        w.family(
            "repro_tenant_state", "gauge",
            "Tenant residency (1 for the current state, 0 otherwise).",
        )
        for name, row in fleet["tenants"].items():
            for state in ("resident", "demoted", "evicted"):
                w.sample(
                    "repro_tenant_state", {"model": name, "state": state},
                    int(row["state"] == state),
                )
        w.family(
            "repro_tenant_resident_bytes", "gauge",
            "Reclaimable bytes currently charged to the tenant.",
        )
        for name, row in fleet["tenants"].items():
            w.sample("repro_tenant_resident_bytes", {"model": name}, row["bytes"])
        w.family(
            "repro_tenant_demotions_total", "counter",
            "Times the tenant's workspaces were reclaimed under budget pressure.",
        )
        w.family(
            "repro_tenant_evictions_total", "counter",
            "Times the tenant's derived op state was reclaimed too.",
        )
        w.family(
            "repro_tenant_promotions_total", "counter",
            "Times a request re-promoted a demoted/evicted tenant (warm, no recompile).",
        )
        for name, row in fleet["tenants"].items():
            w.sample("repro_tenant_demotions_total", {"model": name}, row["demotions"])
            w.sample("repro_tenant_evictions_total", {"model": name}, row["evictions"])
            w.sample("repro_tenant_promotions_total", {"model": name}, row["promotions"])

    scheduler = getattr(model_server, "scheduler", None)
    if scheduler is not None:
        sched = scheduler.snapshot()
        w.family(
            "repro_tenant_weight", "gauge",
            "Configured fair-share weight under the flush scheduler.",
        )
        w.family(
            "repro_tenant_weight_share", "gauge",
            "Weight as a fraction of the fleet's total weight.",
        )
        w.family(
            "repro_tenant_observed_share", "gauge",
            "Fraction of scheduled requests this tenant actually received.",
        )
        w.family(
            "repro_tenant_scheduled_requests_total", "counter",
            "Requests dispatched to the tenant by the flush scheduler.",
        )
        for name, row in sched["tenants"].items():
            w.sample("repro_tenant_weight", {"model": name}, row["weight"])
            w.sample("repro_tenant_weight_share", {"model": name}, row["weight_share"])
            w.sample(
                "repro_tenant_observed_share", {"model": name}, row["observed_share"]
            )
            w.sample(
                "repro_tenant_scheduled_requests_total", {"model": name},
                row["requests"],
            )

    w.family(
        "repro_plan_cache_bytes", "gauge",
        "Bytes held by the tenant's execution-plan cache.",
    )
    for name, served in models.items():
        if served.compiled is not None:
            w.sample("repro_plan_cache_bytes", {"model": name}, served.compiled.plans.nbytes)

    # -- streaming front-end families ----------------------------------
    stream_server = getattr(model_server, "stream_server", None)
    if stream_server is not None:
        streams = stream_server.snapshot()
        w.family(
            "repro_stream_connections", "gauge",
            "Open streaming-protocol TCP connections.",
        )
        w.sample("repro_stream_connections", {}, stream_server.connection_count())
        w.family(
            "repro_stream_open_streams", "gauge",
            "Logical streams with a live delta-cache reference frame.",
        )
        w.family(
            "repro_stream_frames_total", "counter",
            "Tensor frames accepted over the streaming protocol.",
        )
        w.family(
            "repro_stream_cache_hits_total", "counter",
            "Frames answered from the per-stream delta cache.",
        )
        w.family(
            "repro_stream_cache_misses_total", "counter",
            "Frames that missed the delta cache and hit the batcher.",
        )
        w.family(
            "repro_stream_errors_total", "counter",
            "Frames answered with a typed ERROR frame.",
        )
        w.family(
            "repro_stream_frames_per_second", "gauge",
            "Frame throughput over the recent completion window.",
        )
        for name, row in streams.items():
            w.sample("repro_stream_open_streams", {"model": name}, row["open_streams"])
            w.sample("repro_stream_frames_total", {"model": name}, row["frames"])
            w.sample(
                "repro_stream_cache_hits_total", {"model": name}, row["cache_hits"]
            )
            w.sample(
                "repro_stream_cache_misses_total", {"model": name},
                row["cache_misses"],
            )
            w.sample("repro_stream_errors_total", {"model": name}, row["errors"])
            w.sample(
                "repro_stream_frames_per_second", {"model": name},
                row["frames_per_second"],
            )

    # -- worker-pool / supervision families ----------------------------
    pooled = {name: m for name, m in models.items() if m.pool is not None}

    w.family(
        "repro_workers_alive", "gauge",
        "Worker processes currently accepting dispatch.",
    )
    for name, served in pooled.items():
        w.sample("repro_workers_alive", {"model": name}, served.pool.alive_workers)

    w.family("repro_workers_total", "gauge", "Configured worker-pool width.")
    for name, served in pooled.items():
        w.sample("repro_workers_total", {"model": name}, served.pool.procs)

    w.family(
        "repro_worker_restarts_total", "counter",
        "Workers respawned by the supervisor.",
    )
    w.family(
        "repro_worker_crashes_total", "counter",
        "Worker deaths observed by the pool collector.",
    )
    w.family(
        "repro_worker_wedged_total", "counter",
        "Workers killed for a stale heartbeat with work outstanding.",
    )
    w.family(
        "repro_pool_degraded", "gauge",
        "1 when the pool exhausted its restart budget (fallback serving).",
    )
    for name, row in status.items():
        w.sample("repro_worker_restarts_total", {"model": name}, row["restarts"])
        w.sample("repro_worker_crashes_total", {"model": name}, row["crashes"])
        w.sample("repro_worker_wedged_total", {"model": name}, row["wedged"])
        w.sample("repro_pool_degraded", {"model": name}, int(row["degraded"]))

    w.family(
        "repro_worker_up", "gauge",
        "Per-worker liveness (1=serving, 0=dead or retired).",
    )
    w.family(
        "repro_worker_heartbeat_age_seconds", "gauge",
        "Seconds since each live worker's last heartbeat stamp.",
    )
    for name, served in pooled.items():
        for worker_id, row in served.pool.worker_health().items():
            labels = {"model": name, "worker": worker_id}
            w.sample("repro_worker_up", labels, int(row["alive"]))
            if row["heartbeat_age_s"] is not None:
                w.sample(
                    "repro_worker_heartbeat_age_seconds", labels,
                    row["heartbeat_age_s"],
                )

    return w.render()
