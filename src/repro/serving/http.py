"""Stdlib JSON endpoint in front of a :class:`ModelServer`.

No web framework — ``http.server.ThreadingHTTPServer`` is enough: each
connection gets a handler thread that blocks on the batcher future,
which is exactly the concurrency shape dynamic batching wants (many
waiting clients, one worker coalescing them).

Routes
------
- ``POST /predict`` — body ``{"input": [[..C,H,W..]]}`` (one image) or
  ``{"inputs": [image, ...]}`` (each image submitted separately, so a
  multi-image request coalesces with everyone else's traffic), plus an
  optional ``"model"`` name when more than one model is served.
- ``POST /models`` — hot model lifecycle: add (or, with
  ``"reload": true``, atomically replace) a model from the registry or
  a bundle; compiles and warms off the serving path.
- ``DELETE /models/<name>`` — unregister a model, draining accepted
  requests before teardown.
- ``GET /stats`` — per-model :meth:`ServerStats.snapshot` JSON (models
  served by a worker-process pool include a ``workers`` block).
- ``GET /metrics`` — the same counters in Prometheus text format
  (scraper-ready: shed/restart counters, queue depth, latency buckets).
- ``GET /incidents`` — the supervisor's incident log + per-model
  healing status (restarts, crashes, wedges, degraded flags).
- ``GET /workers`` — just the per-model worker-pool breakdown (per-worker
  req/s, ring occupancy, shared-image attach/copy counters); models
  served in-process are omitted.
- ``GET /models`` — the served-model registry, one row per tenant with
  its residency state (``resident``/``demoted``/``evicted``), charged
  bytes, fair-share weight and demotion/promotion/eviction counters.
- ``GET /healthz`` — liveness probe; reports ``degraded`` when any
  pool exhausted its restart budget (still HTTP 200 — degraded serving
  answers requests through the in-process fallback).

Error contract
--------------
Every non-200 body is ``{"error": {"kind": ..., "message": ...}}`` so
clients can branch on a stable machine-readable ``kind`` instead of
parsing prose:

- ``400 bad_request`` — malformed body or wrong image shape.
- ``404 not_found`` — unknown route or model.
- ``409 conflict`` — ``POST /models`` on an existing name without
  ``"reload": true``.
- ``429 queue_full`` — admission control shed the request; the
  ``Retry-After`` header (seconds) is derived from the queue's current
  drain rate.
- ``429 quota_exceeded`` — the tenant is over its per-model rate quota;
  ``Retry-After`` is when the token bucket earns the next token back.
- ``503 slo_expired | batcher_closed | worker_pool`` — the request was
  accepted but could not be served within its SLO / the endpoint is
  shutting down / the worker pool failed without a fallback.
- ``504 timeout`` — the server-side ``request_timeout`` expired first.
- ``500 internal`` — anything else (a bug, by definition).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

import numpy as np

from .errors import classify_error
from .metrics import CONTENT_TYPE as METRICS_CONTENT_TYPE
from .metrics import render_metrics
from .server import ModelServer

__all__ = ["ServingHTTPServer", "serve_http"]

#: Reject absurd request bodies before json.loads allocates for them.
MAX_BODY_BYTES = 256 * 2**20


class _Handler(BaseHTTPRequestHandler):
    server: "ServingHTTPServer"

    # -- plumbing ------------------------------------------------------
    def _reply(self, status: int, payload: dict, headers: Optional[dict] = None) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for key, value in (headers or {}).items():
            self.send_header(key, value)
        self.end_headers()
        self.wfile.write(body)

    def _reply_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode()
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(
        self,
        status: int,
        kind: str,
        message: str,
        headers: Optional[dict] = None,
    ) -> None:
        """Structured error body: clients branch on ``error.kind``."""
        self._reply(
            status, {"error": {"kind": kind, "message": message}}, headers
        )

    def _serving_error(self, error: BaseException) -> None:
        """Render a submit/result exception per the shared error contract.

        The status/kind/Retry-After mapping lives in
        :func:`~repro.serving.errors.classify_error` so the streaming
        transport's ERROR frames agree with these responses by
        construction.
        """
        info = classify_error(error, request_timeout=self.server.request_timeout)
        headers = None
        if info.retry_after is not None:
            headers = {"Retry-After": str(info.retry_after)}
        self._error(info.status, info.kind, info.message, headers=headers)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.verbose:
            super().log_message(format, *args)

    # -- routes --------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        model_server = self.server.model_server
        if self.path == "/stats":
            self._reply(200, model_server.stats())
        elif self.path == "/metrics":
            self._reply_text(
                200, render_metrics(model_server), METRICS_CONTENT_TYPE
            )
        elif self.path == "/incidents":
            self._reply(200, model_server.supervisor.snapshot())
        elif self.path == "/workers":
            self._reply(
                200,
                {
                    name: m.pool.stats_snapshot()
                    for name, m in model_server.models.items()
                    if m.pool is not None
                },
            )
        elif self.path == "/models":
            self._reply(200, model_server.describe_models())
        elif self.path == "/healthz":
            status = model_server.supervisor.model_status()
            degraded = sorted(
                name for name, row in status.items() if row["degraded"]
            )
            payload = {
                "status": "degraded" if degraded else "ok",
                "models": sorted(model_server.models),
            }
            if degraded:
                payload["degraded"] = degraded
            self._reply(200, payload)
        else:
            self._error(404, "not_found", f"unknown path {self.path!r}")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self.path == "/predict":
            self._post_predict()
        elif self.path == "/models":
            self._post_models()
        else:
            self._error(404, "not_found", f"unknown path {self.path!r}")

    def do_DELETE(self) -> None:  # noqa: N802 - http.server API
        if not self.path.startswith("/models/"):
            self._error(404, "not_found", f"unknown path {self.path!r}")
            return
        name = self.path[len("/models/"):]
        model_server = self.server.model_server
        try:
            model_server.remove_model(name)
        except KeyError as error:
            self._error(404, "not_found", str(error))
            return
        self._reply(200, {"removed": name, "models": sorted(model_server.models)})

    # -- route bodies --------------------------------------------------
    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length", 0))
        if length <= 0 or length > MAX_BODY_BYTES:
            raise ValueError(f"bad Content-Length {length}")
        request = json.loads(self.rfile.read(length))
        if not isinstance(request, dict):
            raise ValueError("request body must be a JSON object")
        return request

    def _post_predict(self) -> None:
        try:
            request = self._read_json()
            if "input" in request:
                images = [request["input"]]
            elif "inputs" in request:
                images = list(request["inputs"])
                if not images:
                    raise ValueError("'inputs' must hold at least one image")
            else:
                raise ValueError("request needs an 'input' or 'inputs' field")
            name = request.get("model")
        except (ValueError, TypeError, json.JSONDecodeError) as error:
            self._error(400, "bad_request", str(error))
            return
        model_server = self.server.model_server
        try:
            resolved = model_server.get(name)
        except KeyError as error:
            self._error(404, "not_found", str(error))
            return
        try:
            # Validate every image before submitting any, so a bad one
            # rejects the whole request without burning model forwards
            # on its valid siblings.
            arrays = [resolved.validate(np.asarray(img)) for img in images]
        except (ValueError, TypeError) as error:
            self._error(400, "bad_request", str(error))
            return
        try:
            # Submit everything first so a multi-image request coalesces
            # into shared flushes, then wait.
            futures = [resolved.batcher.submit(array) for array in arrays]
            outputs = [f.result(timeout=self.server.request_timeout) for f in futures]
        except Exception as error:  # noqa: BLE001 - mapped to the contract
            self._serving_error(error)
            return
        self._reply(
            200,
            {
                "model": resolved.name,
                "outputs": np.stack(outputs).tolist(),
            },
        )

    def _post_models(self) -> None:
        """Hot add/reload: compile+warm off-path, then atomic swap.

        Body: ``{"model": <registry name>}`` plus optional ``"name"``
        (serving alias), ``"n"``/``"patterns"`` (PCNN pruning setting),
        ``"seed"``, ``"bundle"`` (serve a DeploymentBundle ``.npz``
        instead of registry weights), ``"weight"``/``"rate"`` (the
        tenant's fair-share weight and rate quota in req/s) and
        ``"reload": true`` to replace an existing registration (without
        it, a collision is a 409).
        """
        try:
            request = self._read_json()
            model_name = request.get("model")
            if not isinstance(model_name, str) or not model_name:
                raise ValueError("request needs a 'model' registry name")
            reload_flag = bool(request.get("reload", False))
            rate = request.get("rate")
            tenant_kwargs = {
                "weight": float(request.get("weight", 1.0)),
                "rate": None if rate is None else float(rate),
            }
        except (ValueError, TypeError, json.JSONDecodeError) as error:
            self._error(400, "bad_request", str(error))
            return
        model_server = self.server.model_server
        try:
            if request.get("bundle"):
                served = model_server.load_bundle(
                    str(request["bundle"]),
                    model_name,
                    name=request.get("name"),
                    seed=int(request.get("seed", 0)),
                    replace=reload_flag,
                    warm=True,
                    **tenant_kwargs,
                )
            else:
                n = request.get("n")
                patterns = request.get("patterns")
                served = model_server.load_registry(
                    model_name,
                    name=request.get("name"),
                    n=None if n is None else int(n),
                    patterns=None if patterns is None else int(patterns),
                    seed=int(request.get("seed", 0)),
                    replace=reload_flag,
                    warm=True,
                    **tenant_kwargs,
                )
        except KeyError as error:
            # add_model raises KeyError both for "already registered"
            # (conflict) and unknown registry names (not found).
            message = str(error)
            if "already registered" in message:
                self._error(409, "conflict", message)
            else:
                self._error(404, "not_found", message)
            return
        except (ValueError, TypeError, FileNotFoundError) as error:
            self._error(400, "bad_request", str(error))
            return
        except Exception as error:  # noqa: BLE001 - surfaced as 500
            self._error(500, "internal", f"{type(error).__name__}: {error}")
            return
        self._reply(
            200,
            {
                **served.describe(),
                "name": served.name,
                "reloaded": reload_flag,
            },
        )


class ServingHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP front-end bound to a :class:`ModelServer`.

    ``port=0`` binds an ephemeral port (tests); the bound address is
    available as ``server_address`` afterwards.
    """

    daemon_threads = True
    #: Deep accept backlog: an overload burst must reach admission
    #: control (429 + Retry-After) rather than die as kernel-level
    #: connection resets on the default 5-entry listen queue.
    request_queue_size = 128

    def __init__(
        self,
        model_server: ModelServer,
        host: str = "127.0.0.1",
        port: int = 8100,
        *,
        request_timeout: Optional[float] = 60.0,
        verbose: bool = False,
    ) -> None:
        self.model_server = model_server
        self.request_timeout = request_timeout
        self.verbose = verbose
        super().__init__((host, port), _Handler)

    @property
    def url(self) -> str:
        """``http://host:port`` of the bound socket (ephemeral-safe)."""
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def serve_in_background(self) -> threading.Thread:
        """Run ``serve_forever`` on a daemon thread (in-process serving)."""
        thread = threading.Thread(
            target=self.serve_forever, name="repro-http", daemon=True
        )
        thread.start()
        return thread


def serve_http(
    model_server: ModelServer,
    host: str = "127.0.0.1",
    port: int = 8100,
    **kwargs,
) -> ServingHTTPServer:
    """Start batchers + HTTP server; returns the (running) HTTP server."""
    model_server.start()
    httpd = ServingHTTPServer(model_server, host, port, **kwargs)
    httpd.serve_in_background()
    return httpd
