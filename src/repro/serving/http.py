"""Stdlib JSON endpoint in front of a :class:`ModelServer`.

No web framework — ``http.server.ThreadingHTTPServer`` is enough: each
connection gets a handler thread that blocks on the batcher future,
which is exactly the concurrency shape dynamic batching wants (many
waiting clients, one worker coalescing them).

Routes
------
- ``POST /predict`` — body ``{"input": [[..C,H,W..]]}`` (one image) or
  ``{"inputs": [image, ...]}`` (each image submitted separately, so a
  multi-image request coalesces with everyone else's traffic), plus an
  optional ``"model"`` name when more than one model is served.
- ``GET /stats`` — per-model :meth:`ServerStats.snapshot` JSON (models
  served by a worker-process pool include a ``workers`` block).
- ``GET /workers`` — just the per-model worker-pool breakdown (per-worker
  req/s, ring occupancy, shared-image attach/copy counters); models
  served in-process are omitted.
- ``GET /models`` — the served-model registry.
- ``GET /healthz`` — liveness probe.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

import numpy as np

from .server import ModelServer

__all__ = ["ServingHTTPServer", "serve_http"]

#: Reject absurd request bodies before json.loads allocates for them.
MAX_BODY_BYTES = 256 * 2**20


class _Handler(BaseHTTPRequestHandler):
    server: "ServingHTTPServer"

    # -- plumbing ------------------------------------------------------
    def _reply(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.verbose:
            super().log_message(format, *args)

    # -- routes --------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        model_server = self.server.model_server
        if self.path == "/stats":
            self._reply(200, model_server.stats())
        elif self.path == "/workers":
            self._reply(
                200,
                {
                    name: m.pool.stats_snapshot()
                    for name, m in model_server.models.items()
                    if m.pool is not None
                },
            )
        elif self.path == "/models":
            self._reply(
                200,
                {name: m.describe() for name, m in model_server.models.items()},
            )
        elif self.path == "/healthz":
            self._reply(200, {"status": "ok", "models": sorted(model_server.models)})
        else:
            self._reply(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self.path != "/predict":
            self._reply(404, {"error": f"unknown path {self.path!r}"})
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
            if length <= 0 or length > MAX_BODY_BYTES:
                raise ValueError(f"bad Content-Length {length}")
            request = json.loads(self.rfile.read(length))
            if "input" in request:
                images = [request["input"]]
            elif "inputs" in request:
                images = list(request["inputs"])
                if not images:
                    raise ValueError("'inputs' must hold at least one image")
            else:
                raise ValueError("request needs an 'input' or 'inputs' field")
            name = request.get("model")
        except (ValueError, TypeError, json.JSONDecodeError) as error:
            self._reply(400, {"error": str(error)})
            return
        model_server = self.server.model_server
        try:
            resolved = model_server.get(name)
        except KeyError as error:
            self._reply(404, {"error": str(error)})
            return
        try:
            # Validate every image before submitting any, so a bad one
            # rejects the whole request without burning model forwards
            # on its valid siblings.
            arrays = [resolved.validate(np.asarray(img)) for img in images]
        except (ValueError, TypeError) as error:
            self._reply(400, {"error": str(error)})
            return
        try:
            # Submit everything first so a multi-image request coalesces
            # into shared flushes, then wait.
            futures = [resolved.batcher.submit(array) for array in arrays]
            outputs = [f.result(timeout=self.server.request_timeout) for f in futures]
        except Exception as error:  # noqa: BLE001 - surfaced as 500
            self._reply(500, {"error": f"{type(error).__name__}: {error}"})
            return
        self._reply(
            200,
            {
                "model": resolved.name,
                "outputs": np.stack(outputs).tolist(),
            },
        )


class ServingHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP front-end bound to a :class:`ModelServer`.

    ``port=0`` binds an ephemeral port (tests); the bound address is
    available as ``server_address`` afterwards.
    """

    daemon_threads = True

    def __init__(
        self,
        model_server: ModelServer,
        host: str = "127.0.0.1",
        port: int = 8100,
        *,
        request_timeout: Optional[float] = 60.0,
        verbose: bool = False,
    ) -> None:
        self.model_server = model_server
        self.request_timeout = request_timeout
        self.verbose = verbose
        super().__init__((host, port), _Handler)

    @property
    def url(self) -> str:
        """``http://host:port`` of the bound socket (ephemeral-safe)."""
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def serve_in_background(self) -> threading.Thread:
        """Run ``serve_forever`` on a daemon thread (in-process serving)."""
        thread = threading.Thread(
            target=self.serve_forever, name="repro-http", daemon=True
        )
        thread.start()
        return thread


def serve_http(
    model_server: ModelServer,
    host: str = "127.0.0.1",
    port: int = 8100,
    **kwargs,
) -> ServingHTTPServer:
    """Start batchers + HTTP server; returns the (running) HTTP server."""
    model_server.start()
    httpd = ServingHTTPServer(model_server, host, port, **kwargs)
    httpd.serve_in_background()
    return httpd
