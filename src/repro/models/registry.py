"""Model registry mapping benchmark names to constructors and input shapes.

Benchmarks reference models by the names used in the paper's tables
("vgg16_cifar", "resnet18_cifar", "vgg16_imagenet"); this registry keeps the
mapping in one place together with the evaluation input shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from .. import nn
from .resnet import resnet18_cifar, resnet18_imagenet
from .simplecnn import patternnet
from .vgg import vgg16_cifar, vgg16_imagenet

__all__ = [
    "ModelSpec",
    "MODEL_REGISTRY",
    "create_model",
    "get_spec",
    "model_input_shape",
    "registered_models",
]


@dataclass(frozen=True)
class ModelSpec:
    """A named model: constructor + canonical input shape (C, H, W)."""

    name: str
    factory: Callable[..., nn.Module]
    input_shape: Tuple[int, int, int]
    description: str


MODEL_REGISTRY: Dict[str, ModelSpec] = {
    "vgg16_cifar": ModelSpec(
        "vgg16_cifar", vgg16_cifar, (3, 32, 32), "VGG-16 with BN for CIFAR-10 (Tables I, IV, V, VIII)"
    ),
    "vgg16_imagenet": ModelSpec(
        "vgg16_imagenet", vgg16_imagenet, (3, 224, 224), "VGG-16 for ImageNet (Tables III, VII)"
    ),
    "resnet18_cifar": ModelSpec(
        "resnet18_cifar", resnet18_cifar, (3, 32, 32), "ResNet-18 for CIFAR-10 (Tables II, VI)"
    ),
    "resnet18_imagenet": ModelSpec(
        "resnet18_imagenet", resnet18_imagenet, (3, 224, 224), "ResNet-18 with ImageNet stem"
    ),
    "patternnet": ModelSpec(
        "patternnet", patternnet, (3, 16, 16), "PatternNet trainable proxy (accuracy trends)"
    ),
}


def get_spec(name: str) -> ModelSpec:
    """Look up a registered :class:`ModelSpec` by name.

    The one place the "unknown model" error message is produced, so the
    CLI's multi-tenant serve spec, the HTTP loader and ``create_model``
    all reject bad names identically.
    """
    try:
        return MODEL_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; known: {sorted(MODEL_REGISTRY)}"
        ) from None


def create_model(name: str, rng: Optional[np.random.Generator] = None, **kwargs) -> nn.Module:
    """Instantiate a registered model by name."""
    return get_spec(name).factory(rng=rng, **kwargs)


def model_input_shape(name: str) -> Tuple[int, int, int]:
    """Canonical (C, H, W) evaluation input shape for a registered model."""
    return MODEL_REGISTRY[name].input_shape


def registered_models() -> Dict[str, Dict[str, object]]:
    """JSON-ready registry listing: name -> input shape + description.

    ``pcnn-repro serve --list-models`` uses this to enumerate what can
    be loaded without constructing anything.
    """
    return {
        name: {
            "input_shape": list(spec.input_shape),
            "description": spec.description,
        }
        for name, spec in MODEL_REGISTRY.items()
    }
