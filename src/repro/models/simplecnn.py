"""PatternNet — the trainable proxy CNN for accuracy experiments.

Full VGG-16/ResNet-18 training to the paper's absolute Top-1 numbers needs
GPU-days; the compression/FLOPs columns of Tables I-IV are reproduced
exactly on the real graphs (see :mod:`repro.core.compression`), while the
*accuracy* columns — whose claim is a trend ("PCNN loses <0.5% down to n=2;
loss grows as n or |P| shrink; ADMM recovers most of it") — are reproduced
with this small all-3x3 CNN on the synthetic dataset of
:mod:`repro.data.synthetic`. Every kernel is 3x3 so the identical PCNN
machinery (patterns, SPM, distillation, ADMM) applies unchanged.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from .. import nn

__all__ = ["PatternNet", "patternnet"]


class PatternNet(nn.Module):
    """A compact all-3x3 CNN: [conv-bn-relu] x L with pooling, then FC.

    Parameters
    ----------
    channels:
        Output channels of each conv layer; a max pool follows every layer
        whose index is in ``pool_after``.
    num_classes:
        Classifier outputs.
    in_channels:
        Input image channels.
    """

    def __init__(
        self,
        channels: Tuple[int, ...] = (16, 32, 64),
        num_classes: int = 10,
        in_channels: int = 3,
        pool_after: Tuple[int, ...] = (0, 1, 2),
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.channels = tuple(channels)
        layers: List[nn.Module] = []
        previous = in_channels
        for index, width in enumerate(channels):
            layers.append(
                nn.Conv2d(previous, width, kernel_size=3, padding=1, bias=False, rng=rng)
            )
            layers.append(nn.BatchNorm2d(width))
            layers.append(nn.ReLU())
            if index in pool_after:
                layers.append(nn.MaxPool2d(2))
            previous = width
        self.features = nn.Sequential(*layers)
        self.pool = nn.GlobalAvgPool2d()
        self.fc = nn.Linear(previous, num_classes, rng=rng)

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        return self.fc(self.pool(self.features(x)))

    def lowering_sequence(self) -> List[nn.Module]:
        """Ordered submodules for :func:`repro.runtime.compile_model`."""
        return [self.features, self.pool, self.fc]

    def conv_layers(self) -> List[Tuple[str, nn.Conv2d]]:
        """All (3x3) convolution layers in network order."""
        return [
            (name, module)
            for name, module in self.named_modules()
            if isinstance(module, nn.Conv2d)
        ]


def patternnet(
    channels: Tuple[int, ...] = (16, 32, 64),
    num_classes: int = 10,
    in_channels: int = 3,
    rng: Optional[np.random.Generator] = None,
) -> PatternNet:
    """Construct the default PatternNet proxy model."""
    return PatternNet(channels=channels, num_classes=num_classes, in_channels=in_channels, rng=rng)
