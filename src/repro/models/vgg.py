"""VGG-16 model definitions (CIFAR-10 and ImageNet variants).

The paper evaluates PCNN on VGG-16 [5] for both CIFAR-10 (Tables I, IV, V,
VIII) and ImageNet (Tables III, VII). The CIFAR variant follows the standard
community adaptation (13 conv layers with batch norm, a single 512->classes
classifier after global pooling of the 1x1 feature map); its conv parameter
count is 1.47e7 and conv MAC count 3.13e8 — matching the paper's baseline
row exactly.

All convolutions are 3x3, which is the granularity PCNN's 9-bit patterns
operate on.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from .. import nn

__all__ = ["VGG16", "vgg16_cifar", "vgg16_imagenet", "VGG16_CIFAR_PLAN", "VGG16_IMAGENET_PLAN"]

# (channels, blocks-before-pool) expressed as the classic VGG-16 "D" plan.
# 'M' entries are 2x2 max pools.
_VGG16_PLAN: Tuple = (64, 64, "M", 128, 128, "M", 256, 256, 256, "M", 512, 512, 512, "M", 512, 512, 512, "M")

VGG16_CIFAR_PLAN = _VGG16_PLAN
VGG16_IMAGENET_PLAN = _VGG16_PLAN


class VGG16(nn.Module):
    """VGG-16 with batch normalisation.

    Parameters
    ----------
    num_classes:
        Output classes (10 for CIFAR-10, 1000 for ImageNet).
    input_size:
        Input spatial resolution (32 for CIFAR, 224 for ImageNet).
    classifier:
        ``"cifar"`` — single Linear(512, classes) head used by the standard
        CIFAR adaptation. ``"imagenet"`` — the original three-FC head
        (4096-4096-classes). ``"light"`` — single Linear head even at
        ImageNet resolution: the paper's evaluation only covers conv layers
        (Sec. IV-A: "we mainly focus on convolution layers"), so benches use
        this to avoid allocating the 120M-parameter FC stack. ``"none"`` —
        features only.
    """

    def __init__(
        self,
        num_classes: int = 10,
        input_size: int = 32,
        classifier: str = "cifar",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.num_classes = num_classes
        self.input_size = input_size
        self.classifier_kind = classifier

        layers: List[nn.Module] = []
        in_channels = 3
        for entry in _VGG16_PLAN:
            if entry == "M":
                layers.append(nn.MaxPool2d(2))
                continue
            layers.append(
                nn.Conv2d(in_channels, entry, kernel_size=3, padding=1, bias=False, rng=rng)
            )
            layers.append(nn.BatchNorm2d(entry))
            layers.append(nn.ReLU())
            in_channels = entry
        self.features = nn.Sequential(*layers)

        final_spatial = input_size // 32  # five 2x2 pools
        if classifier == "cifar" or classifier == "light":
            self.pool = nn.GlobalAvgPool2d()
            self.head = nn.Linear(512, num_classes, rng=rng)
        elif classifier == "imagenet":
            self.pool = nn.Flatten()
            flat = 512 * final_spatial * final_spatial
            self.head = nn.Sequential(
                nn.Linear(flat, 4096, rng=rng),
                nn.ReLU(),
                nn.Dropout(0.5),
                nn.Linear(4096, 4096, rng=rng),
                nn.ReLU(),
                nn.Dropout(0.5),
                nn.Linear(4096, num_classes, rng=rng),
            )
        elif classifier == "none":
            self.pool = nn.Identity()
            self.head = nn.Identity()
        else:
            raise ValueError(f"unknown classifier kind {classifier!r}")

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        x = self.features(x)
        x = self.pool(x)
        return self.head(x)

    def lowering_sequence(self) -> List[nn.Module]:
        """Ordered submodules for :func:`repro.runtime.compile_model`."""
        return [self.features, self.pool, self.head]

    def conv_layers(self) -> List[Tuple[str, nn.Conv2d]]:
        """All convolution layers in network order, with dotted names."""
        return [
            (name, module)
            for name, module in self.named_modules()
            if isinstance(module, nn.Conv2d)
        ]


def vgg16_cifar(num_classes: int = 10, rng: Optional[np.random.Generator] = None) -> VGG16:
    """VGG-16 for CIFAR-10 (32x32 input, BN, single-FC head)."""
    return VGG16(num_classes=num_classes, input_size=32, classifier="cifar", rng=rng)


def vgg16_imagenet(
    num_classes: int = 1000,
    full_classifier: bool = False,
    rng: Optional[np.random.Generator] = None,
) -> VGG16:
    """VGG-16 for ImageNet (224x224 input).

    ``full_classifier=False`` (default) uses the light head since the
    paper's compression accounting covers conv layers only.
    """
    kind = "imagenet" if full_classifier else "light"
    return VGG16(num_classes=num_classes, input_size=224, classifier=kind, rng=rng)
