"""repro.models — VGG-16, ResNet-18 and the PatternNet proxy.

The real VGG-16/ResNet-18 graphs reproduce the paper's deterministic
columns (parameters, FLOPs, compression); PatternNet is the laptop-scale
trainable proxy for the accuracy columns (see DESIGN.md substitutions).
"""

from .flops import ConvProfile, ModelProfile, profile_model
from .registry import (
    MODEL_REGISTRY,
    ModelSpec,
    create_model,
    get_spec,
    model_input_shape,
    registered_models,
)
from .resnet import BasicBlock, ResNet18, resnet18_cifar, resnet18_imagenet
from .simplecnn import PatternNet, patternnet
from .vgg import VGG16, vgg16_cifar, vgg16_imagenet

__all__ = [
    "VGG16",
    "vgg16_cifar",
    "vgg16_imagenet",
    "ResNet18",
    "BasicBlock",
    "resnet18_cifar",
    "resnet18_imagenet",
    "PatternNet",
    "patternnet",
    "ConvProfile",
    "ModelProfile",
    "profile_model",
    "ModelSpec",
    "MODEL_REGISTRY",
    "get_spec",
    "create_model",
    "model_input_shape",
    "registered_models",
]
