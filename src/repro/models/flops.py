"""FLOPs and parameter accounting — the backbone of Tables I-III.

The paper reports "CONV FLOPs" (multiply-accumulate counts of convolution
layers) and "CONV Parameters" for each benchmark. These are deterministic
functions of the architecture, so this module reproduces those columns
exactly.

Profiling works by running a *shape-only* forward pass: within
:class:`ShapeProfiler`, ``Conv2d.forward`` is replaced by a stub that
records layer geometry and returns a zero tensor of the analytically
computed output shape. This keeps profiling of the 224x224 ImageNet VGG-16
graph instantaneous while exercising the real model control flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .. import nn
from ..nn.functional import conv_output_size

__all__ = ["ConvProfile", "ModelProfile", "profile_model"]


@dataclass(frozen=True)
class ConvProfile:
    """Geometry and cost of one convolution layer."""

    name: str
    in_channels: int
    out_channels: int
    kernel_size: int
    stride: int
    padding: int
    input_hw: Tuple[int, int]
    output_hw: Tuple[int, int]

    @property
    def kernels(self) -> int:
        """Number of (kh x kw) kernels = C_out * C_in."""
        return self.out_channels * self.in_channels

    @property
    def params(self) -> int:
        """Weight count (biases excluded; conv layers here are bias-free)."""
        return self.kernels * self.kernel_size * self.kernel_size

    @property
    def macs(self) -> int:
        """Dense multiply-accumulates for this layer."""
        oh, ow = self.output_hw
        return self.params * oh * ow

    @property
    def is_3x3(self) -> bool:
        return self.kernel_size == 3


@dataclass
class ModelProfile:
    """Aggregated convolution profile of a model."""

    model_name: str
    input_shape: Tuple[int, int, int]
    convs: List[ConvProfile] = field(default_factory=list)

    @property
    def conv_params(self) -> int:
        return sum(c.params for c in self.convs)

    @property
    def conv_macs(self) -> int:
        return sum(c.macs for c in self.convs)

    def by_name(self) -> Dict[str, ConvProfile]:
        return {c.name: c for c in self.convs}

    def prunable(self, kernel_size: int = 3) -> List[ConvProfile]:
        """Layers PCNN prunes (3x3 by default; 1x1 left dense, Sec. IV-B)."""
        return [c for c in self.convs if c.kernel_size == kernel_size]


class ShapeProfiler:
    """Context manager that records Conv2d geometry during a forward pass."""

    def __init__(self) -> None:
        self.records: List[Tuple[nn.Conv2d, Tuple[int, int], Tuple[int, int]]] = []

    def __enter__(self) -> "ShapeProfiler":
        self._original_forward = nn.Conv2d.forward
        profiler = self

        def recording_forward(module: nn.Conv2d, x: nn.Tensor) -> nn.Tensor:
            n, _, h, w = x.shape
            oh = conv_output_size(h, module.kernel_size, module.stride, module.padding)
            ow = conv_output_size(w, module.kernel_size, module.stride, module.padding)
            profiler.records.append((module, (h, w), (oh, ow)))
            return nn.Tensor(np.zeros((n, module.out_channels, oh, ow)))

        nn.Conv2d.forward = recording_forward
        return self

    def __exit__(self, *exc) -> None:
        nn.Conv2d.forward = self._original_forward


def profile_model(
    model: nn.Module,
    input_shape: Tuple[int, int, int],
    model_name: Optional[str] = None,
) -> ModelProfile:
    """Profile every Conv2d reached by a forward pass on ``input_shape``.

    Parameters
    ----------
    model:
        Any :class:`repro.nn.Module` whose forward accepts (N, C, H, W).
    input_shape:
        ``(channels, height, width)`` of a single input sample.
    """
    module_names = {id(m): n for n, m in model.named_modules()}
    with ShapeProfiler() as profiler:
        model.eval()
        model(nn.Tensor(np.zeros((1, *input_shape))))
    convs = [
        ConvProfile(
            name=module_names.get(id(module), "<anonymous>"),
            in_channels=module.in_channels,
            out_channels=module.out_channels,
            kernel_size=module.kernel_size,
            stride=module.stride,
            padding=module.padding,
            input_hw=in_hw,
            output_hw=out_hw,
        )
        for module, in_hw, out_hw in profiler.records
    ]
    name = model_name or type(model).__name__
    return ModelProfile(model_name=name, input_shape=tuple(input_shape), convs=convs)
