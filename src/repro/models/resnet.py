"""ResNet-18 model definitions (CIFAR-10 and ImageNet variants).

The paper evaluates ResNet-18 [4] on CIFAR-10 (Tables II, VI). The CIFAR
adaptation replaces the 7x7 stem with a 3x3 convolution and drops the max
pool, giving 1.12e7 conv parameters and 5.55e8 conv MACs — the paper's
baseline row.

PCNN prunes only the 3x3 convolutions; the 1x1 downsample convolutions are
"too accuracy-sensitive" (Sec. IV-B) and are left dense, which this module
exposes through :meth:`ResNet18.prunable_conv_layers`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from .. import nn

__all__ = ["BasicBlock", "ResNet18", "resnet18_cifar", "resnet18_imagenet"]


class BasicBlock(nn.Module):
    """Standard two-3x3-conv residual block with identity/projection skip."""

    expansion = 1

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int = 1,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.conv1 = nn.Conv2d(
            in_channels, out_channels, kernel_size=3, stride=stride, padding=1, bias=False, rng=rng
        )
        self.bn1 = nn.BatchNorm2d(out_channels)
        self.conv2 = nn.Conv2d(
            out_channels, out_channels, kernel_size=3, stride=1, padding=1, bias=False, rng=rng
        )
        self.bn2 = nn.BatchNorm2d(out_channels)
        if stride != 1 or in_channels != out_channels:
            self.downsample = nn.Sequential(
                nn.Conv2d(
                    in_channels, out_channels, kernel_size=1, stride=stride, bias=False, rng=rng
                ),
                nn.BatchNorm2d(out_channels),
            )
        else:
            self.downsample = nn.Identity()

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        identity = self.downsample(x)
        out = self.bn1(self.conv1(x)).relu()
        out = self.bn2(self.conv2(out))
        return (out + identity).relu()

    def lowering_branches(
        self,
    ) -> Tuple[List[nn.Module], List[nn.Module], bool]:
        """``(body, shortcut, post_relu)`` for
        :func:`repro.runtime.compile_model`.

        Mirrors :meth:`forward`: conv1→bn1→relu→conv2→bn2 on the body,
        the projection (or identity) on the shortcut, ReLU after the add
        (``post_relu=True`` — this is a post-activation block).
        """
        return (
            [self.conv1, self.bn1, nn.ReLU(), self.conv2, self.bn2],
            [self.downsample],
            True,
        )


class ResNet18(nn.Module):
    """ResNet-18: stem + 4 stages of 2 BasicBlocks + classifier.

    Parameters
    ----------
    num_classes:
        Output classes.
    cifar_stem:
        True (CIFAR) — 3x3 stride-1 stem, no max pool; False (ImageNet) —
        7x7 stride-2 stem followed by a 3x3 stride-2 max pool.
    """

    def __init__(
        self,
        num_classes: int = 10,
        cifar_stem: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.cifar_stem = cifar_stem
        if cifar_stem:
            self.conv1 = nn.Conv2d(3, 64, kernel_size=3, stride=1, padding=1, bias=False, rng=rng)
            self.maxpool = nn.Identity()
        else:
            self.conv1 = nn.Conv2d(3, 64, kernel_size=7, stride=2, padding=3, bias=False, rng=rng)
            self.maxpool = nn.MaxPool2d(3, stride=2, padding=1)
        self.bn1 = nn.BatchNorm2d(64)
        self.layer1 = self._make_stage(64, 64, stride=1, rng=rng)
        self.layer2 = self._make_stage(64, 128, stride=2, rng=rng)
        self.layer3 = self._make_stage(128, 256, stride=2, rng=rng)
        self.layer4 = self._make_stage(256, 512, stride=2, rng=rng)
        self.avgpool = nn.GlobalAvgPool2d()
        self.fc = nn.Linear(512, num_classes, rng=rng)

    @staticmethod
    def _make_stage(
        in_channels: int, out_channels: int, stride: int, rng: np.random.Generator
    ) -> nn.Sequential:
        return nn.Sequential(
            BasicBlock(in_channels, out_channels, stride=stride, rng=rng),
            BasicBlock(out_channels, out_channels, stride=1, rng=rng),
        )

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        x = self.bn1(self.conv1(x)).relu()
        x = self.maxpool(x)
        for stage in (self.layer1, self.layer2, self.layer3, self.layer4):
            x = stage(x)
        x = self.avgpool(x)
        return self.fc(x)

    def lowering_sequence(self) -> List[nn.Module]:
        """Ordered submodules for :func:`repro.runtime.compile_model`."""
        return [
            self.conv1,
            self.bn1,
            nn.ReLU(),
            self.maxpool,
            self.layer1,
            self.layer2,
            self.layer3,
            self.layer4,
            self.avgpool,
            self.fc,
        ]

    def conv_layers(self) -> List[Tuple[str, nn.Conv2d]]:
        """All convolution layers (including 1x1 projections)."""
        return [
            (name, module)
            for name, module in self.named_modules()
            if isinstance(module, nn.Conv2d)
        ]

    def prunable_conv_layers(self) -> List[Tuple[str, nn.Conv2d]]:
        """Only the 3x3 convolutions — what PCNN actually prunes."""
        return [(n, m) for n, m in self.conv_layers() if m.kernel_size == 3]


def resnet18_cifar(num_classes: int = 10, rng: Optional[np.random.Generator] = None) -> ResNet18:
    """ResNet-18 adapted for CIFAR-10 (3x3 stem, no max pool)."""
    return ResNet18(num_classes=num_classes, cifar_stem=True, rng=rng)


def resnet18_imagenet(num_classes: int = 1000, rng: Optional[np.random.Generator] = None) -> ResNet18:
    """ResNet-18 with the ImageNet 7x7 stem."""
    return ResNet18(num_classes=num_classes, cifar_stem=False, rng=rng)
