"""Runnable baseline pruning methods for the comparison tables (V, VI, VIII).

The paper compares against reported numbers from the literature; we do the
same in the benches but also implement executable versions of the main
baseline families so the comparison is reproducible end-to-end:

- :func:`magnitude_prune_irregular` — 0-D irregular pruning (Deep
  Compression [10]); needs CSC indices, the strawman PCNN beats on index
  overhead.
- :func:`filter_prune_l1` — 3-D filter pruning by L1 norm (Li et al. [18]).
- :func:`network_slimming` — channel selection by BatchNorm scale
  magnitude (Liu et al. [19]).
- :func:`snip_prune` — single-shot saliency pruning (SNIP [24]),
  connection sensitivity ``|g * w|`` from one mini-batch.

Each installs masks on the model's conv layers and returns them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from .. import nn

__all__ = [
    "magnitude_prune_irregular",
    "filter_prune_l1",
    "network_slimming",
    "snip_prune",
    "model_conv_density",
]


def _convs(model: nn.Module, kernel_size: Optional[int] = 3) -> List[Tuple[str, nn.Conv2d]]:
    return [
        (name, module)
        for name, module in model.named_modules()
        if isinstance(module, nn.Conv2d)
        and (kernel_size is None or module.kernel_size == kernel_size)
    ]


def model_conv_density(model: nn.Module, kernel_size: Optional[int] = 3) -> float:
    """Fraction of conv weights left non-zero by the installed masks."""
    kept = 0
    total = 0
    for _, module in _convs(model, kernel_size):
        total += module.weight.data.size
        if module.weight_mask is None:
            kept += module.weight.data.size
        else:
            kept += int(np.count_nonzero(module.weight_mask))
    return kept / total if total else 1.0


def magnitude_prune_irregular(
    model: nn.Module, density: float, scope: str = "global", kernel_size: int = 3
) -> Dict[str, np.ndarray]:
    """Irregular magnitude pruning to the given weight density.

    ``scope="global"`` thresholds all layers jointly (Deep Compression
    style); ``"layer"`` prunes each layer to the density independently.
    No structure is imposed — kernels end up with unequal non-zero counts,
    which is exactly the workload-imbalance problem PCNN removes.
    """
    if not 0.0 < density <= 1.0:
        raise ValueError("density must be in (0, 1]")
    convs = _convs(model, kernel_size)
    masks: Dict[str, np.ndarray] = {}
    if scope == "global":
        magnitudes = np.concatenate([np.abs(m.weight.data).reshape(-1) for _, m in convs])
        keep = max(1, int(round(density * magnitudes.size)))
        threshold = np.partition(magnitudes, -keep)[-keep]
        for name, module in convs:
            mask = (np.abs(module.weight.data) >= threshold).astype(np.float64)
            module.set_weight_mask(mask)
            masks[name] = mask
    elif scope == "layer":
        for name, module in convs:
            flat = np.abs(module.weight.data).reshape(-1)
            keep = max(1, int(round(density * flat.size)))
            threshold = np.partition(flat, -keep)[-keep]
            mask = (np.abs(module.weight.data) >= threshold).astype(np.float64)
            module.set_weight_mask(mask)
            masks[name] = mask
    else:
        raise ValueError(f"unknown scope {scope!r}")
    return masks


def filter_prune_l1(
    model: nn.Module, keep_fraction: float, kernel_size: int = 3
) -> Dict[str, np.ndarray]:
    """Filter pruning [18]: drop the output filters with smallest L1 norm."""
    if not 0.0 < keep_fraction <= 1.0:
        raise ValueError("keep_fraction must be in (0, 1]")
    masks: Dict[str, np.ndarray] = {}
    for name, module in _convs(model, kernel_size):
        weight = module.weight.data
        norms = np.abs(weight).reshape(weight.shape[0], -1).sum(axis=1)
        keep = max(1, int(round(keep_fraction * weight.shape[0])))
        kept = np.argsort(-norms)[:keep]
        mask = np.zeros_like(weight)
        mask[kept] = 1.0
        module.set_weight_mask(mask)
        masks[name] = mask
    return masks


def network_slimming(
    model: nn.Module, keep_fraction: float, kernel_size: int = 3
) -> Dict[str, np.ndarray]:
    """Network slimming [19]: select channels by |BatchNorm gamma|.

    Uses a single global threshold over all BN scales (as the original
    method does), then masks the corresponding conv output channels.
    Conv layers must be followed by a BatchNorm2d of matching width (true
    for VGG16/ResNet18/PatternNet here).
    """
    if not 0.0 < keep_fraction <= 1.0:
        raise ValueError("keep_fraction must be in (0, 1]")
    convs = _convs(model, kernel_size)
    modules = list(model.named_modules())
    # Pair each conv with the nearest following BatchNorm of equal width.
    conv_bn: List[Tuple[str, nn.Conv2d, nn.BatchNorm2d]] = []
    names = [name for name, _ in modules]
    for conv_name, conv in convs:
        conv_index = names.index(conv_name)
        for _, candidate in modules[conv_index + 1 :]:
            if isinstance(candidate, nn.BatchNorm2d) and candidate.num_features == conv.out_channels:
                conv_bn.append((conv_name, conv, candidate))
                break

    all_gammas = np.concatenate([np.abs(bn.gamma.data) for _, _, bn in conv_bn])
    keep = max(1, int(round(keep_fraction * all_gammas.size)))
    threshold = np.partition(all_gammas, -keep)[-keep]

    masks: Dict[str, np.ndarray] = {}
    for conv_name, conv, bn in conv_bn:
        channel_keep = np.abs(bn.gamma.data) >= threshold
        if not channel_keep.any():  # never kill a layer outright
            channel_keep[np.argmax(np.abs(bn.gamma.data))] = True
        mask = np.zeros_like(conv.weight.data)
        mask[channel_keep] = 1.0
        conv.set_weight_mask(mask)
        masks[conv_name] = mask
    return masks


def snip_prune(
    model: nn.Module,
    images: np.ndarray,
    labels: np.ndarray,
    density: float,
    kernel_size: int = 3,
) -> Dict[str, np.ndarray]:
    """SNIP [24]: single-shot pruning by connection sensitivity |dL/dw * w|."""
    if not 0.0 < density <= 1.0:
        raise ValueError("density must be in (0, 1]")
    convs = _convs(model, kernel_size)
    model.train()
    model.zero_grad()
    logits = model(nn.Tensor(images))
    loss = nn.cross_entropy(logits, labels)
    loss.backward()

    saliencies = []
    for _, module in convs:
        grad = module.weight.grad
        if grad is None:
            grad = np.zeros_like(module.weight.data)
        saliencies.append(np.abs(grad * module.weight.data).reshape(-1))
    flat = np.concatenate(saliencies)
    keep = max(1, int(round(density * flat.size)))
    threshold = np.partition(flat, -keep)[-keep]

    masks: Dict[str, np.ndarray] = {}
    for (name, module), saliency in zip(convs, saliencies):
        mask = (saliency.reshape(module.weight.data.shape) >= threshold).astype(np.float64)
        module.set_weight_mask(mask)
        masks[name] = mask
    model.zero_grad()
    return masks
