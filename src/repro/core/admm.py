"""ADMM fine-tuning under pattern constraints (Sec. IV-A).

The paper fine-tunes with the Alternating Direction Method of Multipliers
[17]: split ``min_W L(W) + g(W)`` — where ``g`` is the indicator of the
pattern-constrained set ``{W : every kernel matches a pattern in P_l}`` —
into

    W-update:  W <- argmin L(W) + rho/2 ||W - Z + U||^2   (SGD epochs)
    Z-update:  Z <- Pi_{P_l}(W + U)                        (exact projection)
    U-update:  U <- U + W - Z                              (dual ascent)

The W-update's penalty enters as an extra gradient ``rho (W - Z + U)``
added after each backward pass (the ``grad_hook`` of
:func:`repro.core.train.train_epoch`). After the ADMM rounds,
:meth:`ADMMFineTuner.finalize` hard-projects W onto the patterns and
installs masks for the final masked-retraining stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import nn
from ..data import DataLoader
from .masks import pattern_mask_for_weight
from .projection import project_to_patterns
from .train import TrainHistory, train_epoch

__all__ = ["ADMMState", "ADMMFineTuner"]


@dataclass
class ADMMState:
    """Per-layer ADMM variables."""

    patterns: np.ndarray
    z: np.ndarray
    u: np.ndarray
    residuals: List[float] = field(default_factory=list)


class ADMMFineTuner:
    """Pattern-constrained ADMM fine-tuning of a model.

    Parameters
    ----------
    model:
        Model whose 3x3 conv layers are being constrained.
    layer_patterns:
        Mapping ``layer name -> pattern set (bitmask array)`` — normally
        the output of :meth:`repro.core.pruner.PCNNPruner.distill`.
    rho:
        ADMM penalty weight.
    """

    def __init__(
        self,
        model: nn.Module,
        layer_patterns: Dict[str, np.ndarray],
        rho: float = 1e-2,
    ) -> None:
        self.model = model
        self.rho = rho
        modules = dict(model.named_modules())
        self.layers: List[Tuple[str, nn.Conv2d]] = []
        self.state: Dict[str, ADMMState] = {}
        for name, patterns in layer_patterns.items():
            module = modules.get(name)
            if module is None or not isinstance(module, nn.Conv2d):
                raise KeyError(f"{name!r} is not a Conv2d in this model")
            self.layers.append((name, module))
            w = module.weight.data
            self.state[name] = ADMMState(
                patterns=np.asarray(patterns, dtype=np.int64),
                z=project_to_patterns(w, patterns),
                u=np.zeros_like(w),
            )

    # ------------------------------------------------------------------
    def penalty_gradient_hook(self) -> None:
        """Add ``rho (W - Z + U)`` to each constrained layer's gradient."""
        for name, module in self.layers:
            state = self.state[name]
            extra = self.rho * (module.weight.data - state.z + state.u)
            if module.weight.grad is None:
                module.weight.grad = extra
            else:
                module.weight.grad = module.weight.grad + extra

    def dual_update(self) -> None:
        """Z and U updates (run after each W-update epoch block)."""
        for name, module in self.layers:
            state = self.state[name]
            w = module.weight.data
            state.z = project_to_patterns(w + state.u, state.patterns)
            state.u = state.u + w - state.z
            state.residuals.append(float(np.linalg.norm(w - state.z)))

    def primal_residual(self) -> float:
        """Current total ||W - Z|| over constrained layers."""
        return float(
            sum(
                np.linalg.norm(module.weight.data - self.state[name].z)
                for name, module in self.layers
            )
        )

    # ------------------------------------------------------------------
    def run(
        self,
        loader: DataLoader,
        epochs: int,
        optimizer: Optional[nn.Optimizer] = None,
        lr: float = 1e-3,
        eval_data=None,
    ) -> TrainHistory:
        """ADMM loop: each epoch = W-update epoch + Z/U dual update."""
        optimizer = optimizer or nn.Adam(self.model.parameters(), lr=lr)
        history = TrainHistory()
        for _ in range(epochs):
            loss = train_epoch(
                self.model, loader, optimizer, grad_hook=self.penalty_gradient_hook
            )
            self.dual_update()
            history.losses.append(loss)
            if eval_data is not None:
                from .train import evaluate

                history.accuracies.append(evaluate(self.model, eval_data[0], eval_data[1]))
        return history

    def finalize(self) -> Dict[str, np.ndarray]:
        """Hard-project weights onto patterns and install retrain masks.

        Returns the installed masks by layer name.
        """
        masks = {}
        for name, module in self.layers:
            state = self.state[name]
            projected = project_to_patterns(module.weight.data, state.patterns)
            module.weight.data[...] = projected
            mask = pattern_mask_for_weight(projected, state.patterns)
            module.set_weight_mask(mask)
            masks[name] = mask
        return masks
